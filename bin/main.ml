(* proxjoin: command-line interface to the weighted proximity best-join
   library.

     proxjoin demo
     proxjoin search  --term wordnet:pc-maker --term wordnet:sports FILE
     proxjoin extract --term wordnet:conference --term date --term place FILE
     proxjoin synth   --terms 4 --matches 30 --lambda 2.0

   FILE holds documents separated by blank lines; term specs follow the
   grammar of Pj_matching.Query_parser (wordnet:X, stem:X, exact:X,
   date, place, city, country, year, and |-disjunctions). *)

let read_documents path =
  let ic = open_in path in
  let docs = ref [] and current = Buffer.create 256 in
  let flush () =
    if Buffer.length current > 0 then begin
      docs := Buffer.contents current :: !docs;
      Buffer.clear current
    end
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line = "" then flush ()
       else begin
         Buffer.add_string current line;
         Buffer.add_char current ' '
       end
     done
   with End_of_file -> ());
  close_in ic;
  flush ();
  List.rev !docs

let scoring_of ~family ~alpha =
  match family with
  | "win" -> Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha)
  | "med" -> Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha)
  | "max" -> Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha)
  | other -> failwith (Printf.sprintf "unknown scoring family %S" other)

let build_query graph terms =
  match Pj_matching.Query_parser.parse graph terms with
  | Ok q -> q
  | Error msg -> failwith msg

let pp_matchset vocab (r : Pj_core.Naive.result) =
  Array.to_list r.Pj_core.Naive.matchset
  |> List.map (fun m ->
         Printf.sprintf "%s@%d(%.2f)"
           (Pj_text.Vocab.word vocab m.Pj_core.Match0.payload)
           m.Pj_core.Match0.loc m.Pj_core.Match0.score)
  |> String.concat " "

(* --- search: rank documents by best matchset ------------------------- *)

let run_search file terms family alpha top_k =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let query = build_query graph terms in
  let scoring = scoring_of ~family ~alpha in
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun text -> ignore (Pj_index.Corpus.add_text corpus text))
    (read_documents file);
  let vocab = Pj_index.Corpus.vocab corpus in
  let problems =
    Array.map
      (fun (d, p) -> (d.Pj_text.Document.id, p))
      (Pj_matching.Match_builder.scan_corpus corpus query)
  in
  let ranked = Pj_workload.Ranker.rank scoring problems in
  Printf.printf "%d documents, scoring %s\n" (Array.length ranked)
    (Pj_core.Scoring.name scoring);
  Array.iteri
    (fun i r ->
      if i < top_k then begin
        match r.Pj_workload.Ranker.result with
        | Some res ->
            Printf.printf "#%d doc %d  score %.5f  %s\n" (i + 1)
              r.Pj_workload.Ranker.doc_id res.Pj_core.Naive.score
              (pp_matchset vocab res)
        | None -> ()
      end)
    ranked

(* --- extract: best matchset by location over each document ----------- *)

let run_extract file terms family alpha threshold =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let query = build_query graph terms in
  let scoring = scoring_of ~family ~alpha in
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun text -> ignore (Pj_index.Corpus.add_text corpus text))
    (read_documents file);
  let vocab = Pj_index.Corpus.vocab corpus in
  Pj_index.Corpus.iter
    (fun doc ->
      let problem = Pj_matching.Match_builder.scan vocab doc query in
      if not (Pj_core.Match_list.has_empty_list problem) then begin
        let entries = Pj_core.Best_join.by_location scoring problem in
        let entries =
          match threshold with
          | None -> entries
          | Some t -> Pj_core.By_location.filter_by_score t entries
        in
        List.iter
          (fun e ->
            Printf.printf "doc %d  anchor %4d  score %8.4f  {%s}\n"
              doc.Pj_text.Document.id e.Pj_core.By_location.anchor
              e.Pj_core.By_location.score
              (String.concat " "
                 (Array.to_list
                    (Array.map
                       (fun m ->
                         Printf.sprintf "%s@%d"
                           (Pj_text.Vocab.word vocab m.Pj_core.Match0.payload)
                           m.Pj_core.Match0.loc)
                       e.Pj_core.By_location.matchset))))
          entries
      end)
    corpus

(* --- isearch: index-driven engine search with snippets ---------------- *)

let run_isearch file terms family alpha top_k shards blockmax =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let query = build_query graph terms in
  (* The index path matches expansion forms against indexed tokens, so
     the corpus is indexed over Porter stems and every matcher's
     expansions are stemmed to the same normalization. *)
  let query =
    {
      query with
      Pj_matching.Query.matchers =
        Array.map Pj_matching.Matcher.stem_expansions
          query.Pj_matching.Query.matchers;
    }
  in
  let scoring = scoring_of ~family ~alpha in
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun text ->
      let stems =
        Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)
      in
      ignore (Pj_index.Corpus.add_tokens corpus stems))
    (read_documents file);
  let vocab = Pj_index.Corpus.vocab corpus in
  (* Candidate counts are additive across shards (the shards partition
     the documents), so both paths report the same number. *)
  let hits, n_candidates =
    if shards <= 1 then begin
      let index = Pj_index.Inverted_index.build corpus in
      let searcher = Pj_engine.Searcher.create index in
      ( Pj_engine.Searcher.search ~k:top_k ~blockmax searcher scoring query,
        Array.length (Pj_engine.Searcher.candidates searcher query) )
    end
    else begin
      let sharded = Pj_index.Sharded_index.build ~shards corpus in
      let searcher = Pj_engine.Shard_searcher.create sharded in
      let n = ref 0 in
      for i = 0 to Pj_index.Sharded_index.n_shards sharded - 1 do
        let fragment =
          Pj_engine.Searcher.create (Pj_index.Sharded_index.shard sharded i)
        in
        n := !n + Array.length (Pj_engine.Searcher.candidates fragment query)
      done;
      ( Pj_engine.Shard_searcher.search ~k:top_k ~blockmax searcher scoring
          query,
        !n )
    end
  in
  Printf.printf "%d candidate documents, %d hits, scoring %s, %d shard%s\n"
    n_candidates (List.length hits)
    (Pj_core.Scoring.name scoring)
    (Stdlib.max 1 shards)
    (if Stdlib.max 1 shards = 1 then "" else "s");
  List.iteri
    (fun i hit ->
      let doc = Pj_index.Corpus.document corpus hit.Pj_engine.Searcher.doc_id in
      Printf.printf "#%d doc %d  score %.5f\n   %s\n" (i + 1)
        hit.Pj_engine.Searcher.doc_id hit.Pj_engine.Searcher.score
        (Pj_engine.Snippet.render vocab doc hit.Pj_engine.Searcher.matchset))
    hits

(* --- synth: solve one synthetic instance ------------------------------ *)

let run_synth n_terms matches lambda zipf_s seed =
  let params =
    {
      Pj_workload.Synthetic.n_terms;
      total_matches = matches;
      lambda;
      zipf_s;
      doc_length = 1000;
    }
  in
  let rng = Pj_util.Prng.create seed in
  let p = Pj_workload.Synthetic.generate params rng in
  Printf.printf "terms %d, matches %d, duplicate frequency %.1f%%\n" n_terms
    matches
    (100. *. Pj_core.Match_list.duplicate_frequency p);
  Format.printf "%a@." Pj_core.Match_list.pp p;
  List.iter
    (fun scoring ->
      match Pj_core.Best_join.solve ~dedup:true scoring p with
      | Some r ->
          Format.printf "%-14s score %10.6f  %a@."
            (Pj_core.Scoring.name scoring)
            r.Pj_core.Naive.score Pj_core.Matchset.pp r.Pj_core.Naive.matchset
      | None -> Printf.printf "%s: no valid matchset\n" (Pj_core.Scoring.name scoring))
    [
      Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.1);
      Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.1);
      Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.1);
    ]

(* --- demo: the Figure 1 example --------------------------------------- *)

let run_demo () =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let query =
    Pj_matching.Query.make "figure 1"
      [
        Pj_matching.Wordnet_matcher.create graph "pc-maker";
        Pj_matching.Wordnet_matcher.create graph "sports";
        Pj_matching.Wordnet_matcher.create graph "partnership";
      ]
  in
  let text =
    "As part of the new deal, Lenovo will become the official PC partner \
     of the NBA. The laptop-maker has a similar partnership with the \
     Olympic Games. Lenovo competes against Dell and Hewlett-Packard."
  in
  let vocab = Pj_text.Vocab.create () in
  let doc = Pj_text.Document.of_text vocab ~id:0 text in
  let problem = Pj_matching.Match_builder.scan vocab doc query in
  Printf.printf "query: {\"PC maker\", \"sports\", \"partnership\"}\n";
  List.iter
    (fun scoring ->
      match Pj_core.Best_join.solve ~dedup:true scoring problem with
      | Some r ->
          Printf.printf "%-14s %s\n"
            (Pj_core.Scoring.name scoring)
            (pp_matchset vocab r)
      | None -> ())
    [
      Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.2);
      Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.2);
      Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.2);
    ]

(* --- ask: factoid question answering over a document file ------------- *)

let run_ask file question k =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun text -> ignore (Pj_index.Corpus.add_text corpus text))
    (read_documents file);
  let answerer = Pj_qa.Answerer.create corpus in
  let analysis, query = Pj_qa.Answerer.question_of answerer question in
  Printf.printf "target type: %s, query terms: %s\n"
    (Pj_qa.Question.target_name analysis.Pj_qa.Question.target)
    (String.concat ", " (Array.to_list (Pj_matching.Query.term_names query)));
  match Pj_qa.Answerer.ask ~k answerer question with
  | [] -> Printf.printf "no answer found\n"
  | answers ->
      List.iteri
        (fun i a ->
          Printf.printf "A%d: %-15s (support %.2f, docs %s)\n" (i + 1)
            a.Pj_qa.Answerer.answer_word a.Pj_qa.Answerer.support
            (String.concat ","
               (List.map string_of_int a.Pj_qa.Answerer.documents)))
        answers

(* --- compact / inspect: the v4 mmap-servable on-disk format ------------ *)

let sniff_magic path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = Stdlib.min 4 (in_channel_length ic) in
      really_input_string ic n)

let balanced_counts ~shards n =
  let shards = Stdlib.max 1 shards in
  let base = n / shards and extra = n mod shards in
  Array.init shards (fun i -> base + if i < extra then 1 else 0)

let human_bytes n =
  let f = float_of_int n in
  if n >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (f /. float_of_int (1 lsl 20))
  else if n >= 1 lsl 10 then
    Printf.sprintf "%.1f KiB" (f /. float_of_int (1 lsl 10))
  else Printf.sprintf "%d B" n

let run_inspect path deep =
  let t0 = Pj_util.Timing.monotonic_now () in
  let mapped = Pj_ondisk.Mapped_index.open_file path in
  let open_ms = 1000. *. (Pj_util.Timing.monotonic_now () -. t0) in
  Pj_ondisk.Mapped_index.verify mapped;
  if deep then Pj_ondisk.Mapped_index.check mapped;
  let info = Pj_ondisk.Mapped_index.info mapped in
  let vocab = Pj_ondisk.Mapped_index.vocab mapped in
  Printf.printf "%s: proxjoin v4 index (%s, CRC ok, opened in %.2f ms)\n" path
    (if deep then "deep-checked" else "verified")
    open_ms;
  Printf.printf
    "  documents   %d in %d shard%s, %d tokens total\n"
    info.Pj_ondisk.Mapped_index.n_docs info.Pj_ondisk.Mapped_index.n_shards
    (if info.Pj_ondisk.Mapped_index.n_shards = 1 then "" else "s")
    info.Pj_ondisk.Mapped_index.total_tokens;
  Printf.printf "  vocabulary  %d terms\n" info.Pj_ondisk.Mapped_index.n_words;
  Printf.printf
    "  postings    %d in %d block%s (%.1f docs/block), %d positions\n"
    info.Pj_ondisk.Mapped_index.n_postings
    info.Pj_ondisk.Mapped_index.n_blocks
    (if info.Pj_ondisk.Mapped_index.n_blocks = 1 then "" else "s")
    (if info.Pj_ondisk.Mapped_index.n_blocks = 0 then 0.
     else
       float_of_int info.Pj_ondisk.Mapped_index.n_postings
       /. float_of_int info.Pj_ondisk.Mapped_index.n_blocks)
    info.Pj_ondisk.Mapped_index.n_positions;
  Printf.printf "  file        %s = vocab %s + docs %s + dict %s + postings %s\n"
    (human_bytes info.Pj_ondisk.Mapped_index.file_bytes)
    (human_bytes info.Pj_ondisk.Mapped_index.vocab_bytes)
    (human_bytes info.Pj_ondisk.Mapped_index.docs_bytes)
    (human_bytes info.Pj_ondisk.Mapped_index.dict_bytes)
    (human_bytes info.Pj_ondisk.Mapped_index.postings_bytes);
  if info.Pj_ondisk.Mapped_index.postings_bytes > 0 then
    Printf.printf
      "  compression postings %s on disk vs ~%s as in-memory arrays (%.1fx \
       smaller)\n"
      (human_bytes info.Pj_ondisk.Mapped_index.postings_bytes)
      (human_bytes info.Pj_ondisk.Mapped_index.mem_postings_bytes)
      (float_of_int info.Pj_ondisk.Mapped_index.mem_postings_bytes
      /. float_of_int info.Pj_ondisk.Mapped_index.postings_bytes);
  (* Per-block skip/max summaries for the heaviest terms: how full the
     blocks run and how the quantized block-max impacts spread. *)
  let heavy = ref [] in
  for tok = 0 to info.Pj_ondisk.Mapped_index.n_words - 1 do
    match Pj_ondisk.Mapped_index.term_reader mapped tok with
    | None -> ()
    | Some r -> heavy := (tok, r) :: !heavy
  done;
  let heavy =
    List.sort (fun (_, a) (_, b) -> compare b.Pj_ondisk.Codec.df a.Pj_ondisk.Codec.df) !heavy
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  (match take 5 heavy with
  | [] -> ()
  | top ->
      Printf.printf "  heaviest terms (df, blocks, block-max impact range):\n";
      List.iter
        (fun (tok, r) ->
          let qmin = ref 256 and qmax = ref (-1) and last = ref (-1) in
          Pj_ondisk.Codec.iter_blocks r
            (fun ~block:_ ~last_doc ~doc_count:_ ~qmax:q ->
              if q < !qmin then qmin := q;
              if q > !qmax then qmax := q;
              last := last_doc);
          Printf.printf
            "    %-16s df %-8d blocks %-6d max %.3f..%.3f  last doc %d\n"
            (Pj_text.Vocab.word vocab tok)
            r.Pj_ondisk.Codec.df
            (Pj_ondisk.Codec.n_blocks ~df:r.Pj_ondisk.Codec.df)
            (Pj_ondisk.Codec.dequantize !qmin)
            (Pj_ondisk.Codec.dequantize !qmax)
            !last)
        top)

(* --- serve: hold the index hot behind a TCP protocol ------------------- *)

let stemmed_corpus_of_file file =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun text ->
      let stems =
        Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)
      in
      ignore (Pj_index.Corpus.add_tokens corpus stems))
    (read_documents file);
  corpus

let stemmed_tokens text =
  Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)

(* Compact any corpus source — raw blank-line-separated documents, a
   legacy v1..v3 index file, or an existing v4 file — into a fresh v4
   file. Raw text is stemmed exactly as [serve]/[isearch] stem their
   corpora, so a compacted file answers the same queries. *)
let run_compact src dst shards =
  let t0 = Pj_util.Timing.monotonic_now () in
  let source, idx, counts =
    match sniff_magic src with
    | "PJIX" ->
        let sharded = Pj_index.Storage.load_sharded src in
        let corpus = Pj_index.Sharded_index.corpus sharded in
        let counts =
          match shards with
          | Some s -> balanced_counts ~shards:s (Pj_index.Corpus.size corpus)
          | None -> Pj_index.Sharded_index.counts sharded
        in
        ("legacy index", Pj_index.Inverted_index.build corpus, counts)
    | "PJX4" ->
        let mapped = Pj_ondisk.Mapped_index.open_file src in
        let corpus = Pj_ondisk.Mapped_index.corpus mapped in
        let counts =
          match shards with
          | Some s -> balanced_counts ~shards:s (Pj_index.Corpus.size corpus)
          | None -> Pj_ondisk.Mapped_index.counts mapped
        in
        ("v4 index", Pj_ondisk.Mapped_index.index mapped, counts)
    | _ ->
        let corpus = stemmed_corpus_of_file src in
        let counts =
          balanced_counts
            ~shards:(Option.value shards ~default:1)
            (Pj_index.Corpus.size corpus)
        in
        ("documents", Pj_index.Inverted_index.build corpus, counts)
  in
  Pj_ondisk.Writer.write ~counts idx dst;
  let elapsed = Pj_util.Timing.monotonic_now () -. t0 in
  let mapped = Pj_ondisk.Mapped_index.open_file dst in
  Pj_ondisk.Mapped_index.verify mapped;
  let info = Pj_ondisk.Mapped_index.info mapped in
  Printf.printf
    "compacted %s %s -> %s in %.2f s\n\
     %d documents, %d terms, %d postings in %d blocks, %d shard%s\n\
     file %s (postings %s on disk vs ~%s in memory, %.1fx smaller)\n"
    source src dst elapsed info.Pj_ondisk.Mapped_index.n_docs
    info.Pj_ondisk.Mapped_index.n_words info.Pj_ondisk.Mapped_index.n_postings
    info.Pj_ondisk.Mapped_index.n_blocks info.Pj_ondisk.Mapped_index.n_shards
    (if info.Pj_ondisk.Mapped_index.n_shards = 1 then "" else "s")
    (human_bytes info.Pj_ondisk.Mapped_index.file_bytes)
    (human_bytes info.Pj_ondisk.Mapped_index.postings_bytes)
    (human_bytes info.Pj_ondisk.Mapped_index.mem_postings_bytes)
    (if info.Pj_ondisk.Mapped_index.postings_bytes = 0 then 0.
     else
       float_of_int info.Pj_ondisk.Mapped_index.mem_postings_bytes
       /. float_of_int info.Pj_ondisk.Mapped_index.postings_bytes)

let run_serve file index_path host port domains queue cache deadline_ms
    drain_ms log_every shards live live_dir memtable mmap_segments merge_par
    blockmax wal fsync_policy_s =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let fsync_policy =
    match Pj_live.Wal.fsync_policy_of_string fsync_policy_s with
    | Ok p -> p
    | Error msg -> failwith ("serve: --fsync-policy: " ^ msg)
  in
  if wal && live_dir = None then
    failwith "serve: --wal needs --live-dir (the log lives in that directory)";
  if index_path <> None && (live || live_dir <> None) then
    failwith
      "serve: --index and --live/--live-dir are mutually exclusive (a live \
       index manages its own storage)";
  let file =
    match (file, index_path) with
    | Some f, _ -> f
    | None, Some _ -> "/dev/null" (* unused: everything comes from --index *)
    | None, None -> failwith "serve: FILE is required unless --index is given"
  in
  let live_index =
    if not (live || live_dir <> None) then None
    else begin
      let config =
        {
          Pj_live.Live_index.dir = live_dir;
          memtable_capacity = memtable;
          merge_threshold =
            Pj_live.Live_index.default_config
              .Pj_live.Live_index.merge_threshold;
          background_merge = true;
          mmap_segments;
          merge_parallelism = merge_par;
          wal;
          fsync_policy;
        }
      in
      let index =
        match live_dir with
        | Some dir -> Pj_live.Live_index.open_dir ~config dir
        | None -> Pj_live.Live_index.create ~config ()
      in
      (* Seed from FILE only when the index holds nothing — a recovered
         index already contains its documents, and re-adding the file
         would duplicate them under fresh ids. *)
      if (Pj_live.Live_index.stats index).Pj_live.Live_index.total_docs = 0
      then begin
        ignore
          (Pj_live.Live_index.add_batch index
             (List.map stemmed_tokens (read_documents file)));
        ignore (Pj_live.Live_index.flush index)
      end;
      Some index
    end
  in
  let corpus, search, n_shards =
    match live_index with
    | Some index ->
        ( Pj_live.Live_index.corpus index,
          Pj_server.Worker_pool.of_live ~blockmax index,
          1 )
    | None -> begin
        match index_path with
        | Some path ->
            (* Zero-copy serving: the index file is mapped, never
               loaded — postings and documents decode from the page
               cache per query. A persisted multi-shard layout is
               honored; otherwise --shards balanced ranges apply. *)
            let mapped = Pj_ondisk.Mapped_index.open_file path in
            let corpus = Pj_ondisk.Mapped_index.corpus mapped in
            let counts =
              let persisted = Pj_ondisk.Mapped_index.counts mapped in
              if Array.length persisted > 1 then persisted
              else balanced_counts ~shards (Pj_index.Corpus.size corpus)
            in
            if Array.length counts <= 1 then
              ( corpus,
                Pj_server.Worker_pool.of_searcher ~blockmax
                  (Pj_engine.Searcher.create (Pj_ondisk.Mapped_index.index mapped)),
                1 )
            else begin
              let sharded =
                Pj_index.Sharded_index.of_prebuilt corpus ~counts
                  ~shard_of:(fun _ ~pos ~len ->
                    Pj_ondisk.Mapped_index.shard_index mapped ~pos ~len)
              in
              ( corpus,
                Pj_server.Worker_pool.of_shard_searcher ~blockmax
                  (Pj_engine.Shard_searcher.create sharded),
                Array.length counts )
            end
        | None ->
            let corpus = stemmed_corpus_of_file file in
            if shards <= 1 then
              ( corpus,
                Pj_server.Worker_pool.of_searcher ~blockmax
                  (Pj_engine.Searcher.create
                     (Pj_index.Inverted_index.build corpus)),
                1 )
            else begin
              let sharded = Pj_index.Sharded_index.build ~shards corpus in
              ( corpus,
                Pj_server.Worker_pool.of_shard_searcher ~blockmax
                  (Pj_engine.Shard_searcher.create sharded),
                Pj_index.Sharded_index.n_shards sharded )
            end
      end
  in
  let config =
    {
      Pj_server.Server.host;
      port;
      domains;
      queue_capacity = queue;
      cache_capacity = cache;
      deadline_s = deadline_ms /. 1000.;
      drain_s = drain_ms /. 1000.;
      log_every_s = log_every;
      binary_inflight =
        Pj_server.Server.default_config.Pj_server.Server.binary_inflight;
    }
  in
  (* Static servers advertise their document count in STATS ([docs=])
     so a router can derive doc-id bases; live servers already do. *)
  let n_docs =
    match live_index with
    | None -> Some (Pj_index.Corpus.size corpus)
    | Some _ -> None
  in
  let server =
    Pj_server.Server.start ~config ?live:live_index ?n_docs ~graph search
  in
  (* SIGTERM/SIGINT trigger a graceful drain. The handler hands the
     (blocking) [Server.stop] to a fresh thread — a handler must not
     block. Subtlety: OCaml only runs signal handlers when some thread
     executes OCaml code, and on an idle server every thread is parked
     in a blocking syscall (accept, condition wait, read) — a pending
     SIGTERM would sit unhandled forever. The heartbeat thread below
     exists solely to return to OCaml a few times a second so pending
     handlers always run. (Blocking the signals and sigwait-ing them
     in a watcher thread does not work instead: runtime service
     threads created before main — domain 0's backup thread — keep
     them unblocked at default disposition, and delivery there kills
     the process.) *)
  let stopper = ref None in
  let stop_started = Atomic.make false in
  let on_signal _ =
    if not (Atomic.exchange stop_started true) then
      stopper :=
        Some (Thread.create (fun () -> Pj_server.Server.stop server) ())
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let _heartbeat =
    Thread.create
      (fun () ->
        while true do
          Thread.delay 0.1
        done)
      ()
  in
  Printf.printf
    "proxjoin serving %d documents on %s:%d (%s%d shard%s, %d domains, queue \
     %d, cache %d, deadline %.0f ms, drain %.0f ms)\n\
     %!"
    (Pj_index.Corpus.size corpus) host
    (Pj_server.Server.port server)
    (match (live_index, index_path) with
    | Some _, _ -> "live, "
    | None, Some _ -> "mmap, "
    | None, None -> "")
    n_shards
    (if n_shards = 1 then "" else "s")
    config.Pj_server.Server.domains queue cache deadline_ms drain_ms;
  Pj_server.Server.wait server;
  (* The accept loop only dies via [stop], so the handler has run; its
     [stopper] assignment races only the few milliseconds stop takes.
     Joining it means drain and worker shutdown are complete before
     the process exits 0. *)
  let rec join_stopper () =
    match !stopper with
    | Some th -> Thread.join th
    | None ->
        Thread.delay 0.01;
        join_stopper ()
  in
  join_stopper ();
  (* The server does not own the live index; stop its merger only once
     no worker can submit another write. *)
  (match live_index with
  | Some index -> Pj_live.Live_index.close index
  | None -> ());
  Printf.printf "proxjoin: shut down cleanly\n%!"

(* --- serve-router: scatter-gather front-end over shard servers --------- *)

let run_serve_router host port backends replicas cache deadline_ms drain_ms
    log_every binary_inflight =
  let parse_spec s =
    match Pj_cluster.Router.spec_of_string s with
    | Ok spec -> spec
    | Error msg -> failwith ("serve-router: " ^ msg)
  in
  if backends = [] then
    failwith "serve-router needs at least one --backend HOST:PORT[@BASE]";
  let primaries = List.map parse_spec backends in
  let n = List.length primaries in
  let replicas_per_leg = Array.make n [] in
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | None ->
          failwith
            (Printf.sprintf
               "serve-router: bad --replica %S (want LEG=HOST:PORT, LEG a \
                0-based --backend index)"
               spec)
      | Some i -> (
          let leg = String.sub spec 0 i in
          let hp = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt leg with
          | Some l when l >= 0 && l < n ->
              replicas_per_leg.(l) <- replicas_per_leg.(l) @ [ parse_spec hp ]
          | _ ->
              failwith
                (Printf.sprintf
                   "serve-router: --replica %S names leg %s, but there are %d \
                    --backend legs (0..%d)"
                   spec leg n (n - 1))))
    replicas;
  let legs = List.mapi (fun i p -> (p, replicas_per_leg.(i))) primaries in
  let router =
    match Pj_cluster.Router.create ~legs () with
    | Ok r -> r
    | Error msg -> failwith ("serve-router: " ^ msg)
  in
  let config =
    {
      Pj_server.Server.host;
      port;
      (* The router does no local scoring: its worker pool exists only
         because a server has one. Keep it minimal. *)
      domains = 1;
      queue_capacity = 1;
      cache_capacity = cache;
      deadline_s = deadline_ms /. 1000.;
      drain_s = drain_ms /. 1000.;
      log_every_s = log_every;
      binary_inflight;
    }
  in
  let graph = Pj_ontology.Mini_wordnet.create () in
  let never_searches ~scoring:_ ~k:_ ~deadline:_ _query =
    (* Unreachable: the forward hook intercepts every SEARCH before
       the pool, and ingest verbs answer ERR (no --live). *)
    Ok ([], [])
  in
  let server =
    Pj_server.Server.start ~config
      ~forward:(Pj_cluster.Router.search router)
      ~extra_stats:(fun () -> Pj_cluster.Router.stats_extra router)
      ~graph never_searches
  in
  let stopper = ref None in
  let stop_started = Atomic.make false in
  let on_signal _ =
    if not (Atomic.exchange stop_started true) then
      stopper :=
        Some (Thread.create (fun () -> Pj_server.Server.stop server) ())
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (* Same heartbeat as serve: signal handlers only run when a thread
     executes OCaml code. *)
  let _heartbeat =
    Thread.create
      (fun () ->
        while true do
          Thread.delay 0.1
        done)
      ()
  in
  let n_backends =
    List.fold_left (fun acc (_, rs) -> acc + 1 + List.length rs) 0 legs
  in
  Printf.printf
    "proxjoin routing %d leg%s (%d backend%s) on %s:%d (deadline %.0f ms, \
     drain %.0f ms, cache %d)\n\
     %!"
    n
    (if n = 1 then "" else "s")
    n_backends
    (if n_backends = 1 then "" else "s")
    host
    (Pj_server.Server.port server)
    deadline_ms drain_ms cache;
  Pj_server.Server.wait server;
  let rec join_stopper () =
    match !stopper with
    | Some th -> Thread.join th
    | None ->
        Thread.delay 0.01;
        join_stopper ()
  in
  join_stopper ();
  Pj_cluster.Router.close router;
  Printf.printf "proxjoin: shut down cleanly\n%!"

(* --- bench-serve: loopback load generator ------------------------------ *)

let connect host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (addr, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  fd

let run_bench_serve host port clients requests terms family alpha k =
  if terms = [] then failwith "bench-serve needs at least one --term";
  (* Fail fast with a readable message when no server is listening,
     instead of killing client threads mid-flight. *)
  (try Unix.close (connect host port)
   with Unix.Unix_error (e, _, _) ->
     failwith
       (Printf.sprintf "bench-serve: cannot connect to %s:%d (%s)" host port
          (Unix.error_message e)));
  let request =
    Printf.sprintf "SEARCH %s %g %d %s\n" family alpha k
      (String.concat " " terms)
  in
  let tally = [| 0; 0; 0; 0 |] in
  (* hits; busy; timeout; err *)
  let tally_mutex = Mutex.create () in
  let client () =
    let fd = connect host port in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let latencies = Array.make requests 0. in
    for i = 0 to requests - 1 do
      let t0 = Pj_util.Timing.monotonic_now () in
      output_string oc request;
      flush oc;
      let line = input_line ic in
      latencies.(i) <- Pj_util.Timing.monotonic_now () -. t0;
      let slot =
        if String.length line >= 4 && String.sub line 0 4 = "HITS" then 0
        else if line = "BUSY" then 1
        else if line = "TIMEOUT" then 2
        else 3
      in
      Mutex.lock tally_mutex;
      tally.(slot) <- tally.(slot) + 1;
      Mutex.unlock tally_mutex
    done;
    output_string oc "QUIT\n";
    flush oc;
    (try ignore (input_line ic) with End_of_file -> ());
    Unix.close fd;
    latencies
  in
  let t0 = Pj_util.Timing.monotonic_now () in
  let results = Array.make clients [||] in
  let threads =
    List.init clients (fun i ->
        Thread.create (fun () -> results.(i) <- client ()) ())
  in
  List.iter Thread.join threads;
  let elapsed = Pj_util.Timing.monotonic_now () -. t0 in
  let latencies = Array.concat (Array.to_list results) in
  let total = Array.length latencies in
  let ms p = 1000. *. Pj_util.Stats.percentile latencies p in
  Printf.printf
    "%d clients x %d requests in %.3f s — %.0f req/s\n\
     hits %d, busy %d, timeout %d, err %d\n\
     latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f\n"
    clients requests elapsed
    (float_of_int total /. elapsed)
    tally.(0) tally.(1) tally.(2) tally.(3) (ms 50.) (ms 95.) (ms 99.)
    (1000. *. Pj_util.Stats.mean latencies)

(* --- cmdliner glue ----------------------------------------------------- *)

open Cmdliner

let terms_arg =
  Arg.(
    value & opt_all string []
    & info [ "term"; "t" ] ~docv:"SPEC"
        ~doc:"Query term (repeatable): wordnet:CONCEPT, stem:WORD, \
              exact:WORD, date, place, city, country, year.")

let family_arg =
  Arg.(
    value & opt string "win"
    & info [ "scoring"; "s" ] ~docv:"FAMILY" ~doc:"win, med or max.")

let alpha_arg =
  Arg.(value & opt float 0.1 & info [ "alpha" ] ~doc:"Distance decay rate.")

let file_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Documents separated by blank lines.")

let wrap f = try `Ok (f ()) with Failure msg -> `Error (false, msg)

let search_cmd =
  let top_k = Arg.(value & opt int 5 & info [ "top" ] ~doc:"Results shown.") in
  let run file terms family alpha k =
    wrap (fun () -> run_search file terms family alpha k)
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Rank documents by overall best matchset.")
    Term.(ret (const run $ file_arg $ terms_arg $ family_arg $ alpha_arg $ top_k))

let extract_cmd =
  let threshold =
    Arg.(
      value & opt (some float) None
      & info [ "min-score" ] ~doc:"Keep matchsets at or above this score.")
  in
  let run file terms family alpha t =
    wrap (fun () -> run_extract file terms family alpha t)
  in
  Cmd.v
    (Cmd.info "extract"
       ~doc:"All locally best matchsets per document (Section VII).")
    Term.(
      ret (const run $ file_arg $ terms_arg $ family_arg $ alpha_arg $ threshold))

let shards_arg =
  Arg.(
    value
    & opt int (Pj_util.Parallel.recommended_shards ())
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the index into N doc-id-range shards searched \
           scatter-gather (default honors \\$PROXJOIN_SHARDS; 1 disables \
           sharding). Results are identical either way.")

let blockmax_arg =
  let no_blockmax =
    Arg.(
      value & flag
      & info [ "no-blockmax" ]
          ~doc:
            "Disable block-max pruned candidate generation and fall back to \
             the exhaustive DAAT traversal. Results are byte-identical \
             either way — this is an escape hatch and an oracle for \
             debugging or benchmarking the pruned path.")
  in
  Term.(const not $ no_blockmax)

let isearch_cmd =
  let top_k = Arg.(value & opt int 5 & info [ "top" ] ~doc:"Results shown.") in
  let run file terms family alpha k shards blockmax =
    wrap (fun () -> run_isearch file terms family alpha k shards blockmax)
  in
  Cmd.v
    (Cmd.info "isearch"
       ~doc:"Index-driven top-k search with highlighted snippets.")
    Term.(
      ret
        (const run $ file_arg $ terms_arg $ family_arg $ alpha_arg $ top_k
       $ shards_arg $ blockmax_arg))

let ask_cmd =
  let question =
    Arg.(
      required
      & opt (some string) None
      & info [ "question"; "q" ] ~docv:"TEXT" ~doc:"The factoid question.")
  in
  let top_k = Arg.(value & opt int 3 & info [ "top" ] ~doc:"Answers shown.") in
  let run file question k = wrap (fun () -> run_ask file question k) in
  Cmd.v
    (Cmd.info "ask" ~doc:"Answer a factoid question over the documents.")
    Term.(ret (const run $ file_arg $ question $ top_k))

let synth_cmd =
  let n_terms = Arg.(value & opt int 4 & info [ "terms" ] ~doc:"Query terms.") in
  let matches =
    Arg.(value & opt int 30 & info [ "matches" ] ~doc:"Total matches.")
  in
  let lambda =
    Arg.(value & opt float 2.0 & info [ "lambda" ] ~doc:"Duplicate control.")
  in
  let zipf = Arg.(value & opt float 1.1 & info [ "zipf" ] ~doc:"Skew s.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed.") in
  let run a b c d e = wrap (fun () -> run_synth a b c d e) in
  Cmd.v
    (Cmd.info "synth" ~doc:"Generate and solve one synthetic instance.")
    Term.(ret (const run $ n_terms $ matches $ lambda $ zipf $ seed))

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Bind/connect address.")

let port_arg ~default =
  Arg.(value & opt int default & info [ "port"; "p" ] ~docv:"PORT" ~doc:"TCP port.")

let serve_cmd =
  let domains =
    Arg.(
      value
      & opt int (Pj_util.Parallel.recommended_domains ())
      & info [ "domains" ] ~doc:"Worker domains (default honors \\$PROXJOIN_DOMAINS).")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~doc:"Pending searches before BUSY.")
  in
  let cache =
    Arg.(value & opt int 1024 & info [ "cache" ] ~doc:"Result-cache entries.")
  in
  let deadline =
    Arg.(
      value & opt float 2000.
      & info [ "deadline-ms" ] ~doc:"Per-query wall-clock budget (ms).")
  in
  let drain =
    Arg.(
      value & opt float 5000.
      & info [ "drain-ms" ]
          ~doc:
            "On SIGTERM/SIGINT, how long in-flight requests may finish \
             before connections are force-closed (ms).")
  in
  let log_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "log-every" ] ~docv:"SECONDS" ~doc:"Periodic stats line on stderr.")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Serve a writable live index: ADDDOC/DELDOC/FLUSH ingest \
             documents while searches run. Implied by $(b,--live-dir). \
             Sharding is ignored in live mode (segments play that role).")
  in
  let live_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "live-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the live index (segments + manifest) here and recover \
             from it on start; FILE seeds the index only when DIR is empty. \
             Implies $(b,--live).")
  in
  let memtable =
    Arg.(
      value & opt int 256
      & info [ "memtable" ] ~docv:"N"
          ~doc:"Live mode: auto-flush the memtable at N documents.")
  in
  let opt_file_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Documents separated by blank lines (omit when serving a \
             compacted index via $(b,--index)).")
  in
  let index_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "index" ] ~docv:"PATH"
          ~doc:
            "Serve a compacted v4 index file zero-copy via mmap (see \
             $(b,proxjoin compact)): opening is O(1) and postings decode \
             from the page cache per query. A persisted multi-shard layout \
             is honored; otherwise $(b,--shards) balanced doc-id ranges \
             apply. Mutually exclusive with $(b,--live).")
  in
  let mmap_segments =
    Arg.(
      value & flag
      & info [ "mmap-segments" ]
          ~doc:
            "Live mode: serve sealed segments zero-copy off their own \
             files' block-compressed postings instead of holding heap \
             indexes (needs $(b,--live-dir)).")
  in
  let merge_par =
    Arg.(
      value
      & opt int
          Pj_live.Live_index.default_config
            .Pj_live.Live_index.merge_parallelism
      & info [ "merge-par" ] ~docv:"N"
          ~doc:
            "Live mode: merge up to N disjoint adjacent segment pairs \
             concurrently per compaction step.")
  in
  let wal =
    Arg.(
      value & flag
      & info [ "wal" ]
          ~doc:
            "Live mode: write-ahead-log every acknowledged ADDDOC/DELDOC \
             into $(b,--live-dir) before answering, and replay the log on \
             restart — no acknowledged write is ever lost, even to \
             $(b,kill -9). Group-committed: one log write (and, under \
             $(b,per-batch), one fsync) per ingest batch.")
  in
  let fsync_policy =
    Arg.(
      value & opt string "per-batch"
      & info [ "fsync-policy" ] ~docv:"POLICY"
          ~doc:
            "When WAL commits reach the disk: $(b,per-batch) (fsync every \
             ingest batch — full durability), $(b,every:MS) (fsync at most \
             once per MS milliseconds — bounded loss), or $(b,never) (OS \
             write-through only — survives process crashes, not power \
             loss).")
  in
  let run file index host port domains queue cache deadline drain log_every
      shards live live_dir memtable mmap_segments merge_par blockmax wal
      fsync_policy =
    wrap (fun () ->
        run_serve file index host port domains queue cache deadline drain
          log_every shards live live_dir memtable mmap_segments merge_par
          blockmax wal fsync_policy)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve top-k queries over TCP (SEARCH/PING/STATS/QUIT line \
          protocol) from a hot in-memory index or an mmap-backed compacted \
          index (--index); with --live, also ADDDOC/DELDOC/FLUSH ingestion.")
    Term.(
      ret
        (const run $ opt_file_arg $ index_arg $ host_arg
       $ port_arg ~default:7070 $ domains $ queue $ cache $ deadline $ drain
       $ log_every $ shards_arg $ live $ live_dir $ memtable $ mmap_segments
       $ merge_par $ blockmax_arg $ wal $ fsync_policy))

let serve_router_cmd =
  let backends =
    Arg.(
      value & opt_all string []
      & info [ "backend"; "b" ] ~docv:"HOST:PORT[@BASE]"
          ~doc:
            "A shard-server leg, in corpus order (repeatable). Each leg \
             serves a contiguous doc-id slice; hits are rebased by BASE, \
             which defaults to the cumulative docs= (from STATS) of the \
             preceding legs — so N plain backends partition the corpus in \
             the order given.")
  in
  let replicas =
    Arg.(
      value & opt_all string []
      & info [ "replica" ] ~docv:"LEG=HOST:PORT"
          ~doc:
            "A replica of leg LEG (0-based $(b,--backend) index, \
             repeatable): a backend serving the same doc slice, tried in \
             order when the leg's primary fails, before the query degrades.")
  in
  let cache =
    Arg.(value & opt int 1024 & info [ "cache" ] ~doc:"Result-cache entries.")
  in
  let deadline =
    Arg.(
      value & opt float 2000.
      & info [ "deadline-ms" ]
          ~doc:"Per-query wall-clock budget across scatter, retries and merge (ms).")
  in
  let drain =
    Arg.(
      value & opt float 5000.
      & info [ "drain-ms" ]
          ~doc:
            "On SIGTERM/SIGINT, how long in-flight requests may finish \
             before connections are force-closed (ms).")
  in
  let log_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "log-every" ] ~docv:"SECONDS" ~doc:"Periodic stats line on stderr.")
  in
  let binary_inflight =
    Arg.(
      value & opt int 32
      & info [ "binary-inflight" ] ~docv:"N"
          ~doc:
            "Per-connection in-flight cap on the binary wire before the \
             router stops reading that client's socket.")
  in
  let run host port backends replicas cache deadline drain log_every
      binary_inflight =
    wrap (fun () ->
        run_serve_router host port backends replicas cache deadline drain
          log_every binary_inflight)
  in
  Cmd.v
    (Cmd.info "serve-router"
       ~doc:
         "Serve top-k queries by scatter-gathering over shard-server \
          backends (pipelined binary connections), merging the exact top-k \
          of surviving legs, and failing broken legs over to --replica \
          backends before answering OK-DEGRADED. Speaks the same text + \
          binary protocol as serve; STATS adds per-backend health.")
    Term.(
      ret
        (const run $ host_arg $ port_arg ~default:7080 $ backends $ replicas
       $ cache $ deadline $ drain $ log_every $ binary_inflight))

let bench_serve_cmd =
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent connections.")
  in
  let requests =
    Arg.(
      value & opt int 100 & info [ "requests"; "n" ] ~doc:"Requests per client.")
  in
  let top_k = Arg.(value & opt int 10 & info [ "top" ] ~doc:"k per query.") in
  let run host port clients requests terms family alpha k =
    wrap (fun () ->
        run_bench_serve host port clients requests terms family alpha k)
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:"Load-generate against a running proxjoin serve instance.")
    Term.(
      ret
        (const run $ host_arg $ port_arg ~default:7070 $ clients $ requests
       $ terms_arg $ family_arg $ alpha_arg $ top_k))

let compact_cmd =
  let src =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"SRC"
          ~doc:
            "Source: raw documents separated by blank lines, a legacy \
             v1..v3 index file, or an existing v4 file.")
  in
  let dst =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"DST" ~doc:"Output v4 index file.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Persist N balanced doc-id-range shards (default: keep the \
             source's layout; 1 for raw documents).")
  in
  let run src dst shards = wrap (fun () -> run_compact src dst shards) in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Rewrite a corpus as a block-compressed v4 index file that \
          $(b,serve --index) maps zero-copy.")
    Term.(ret (const run $ src $ dst $ shards))

let inspect_cmd =
  let path =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"PATH" ~doc:"A v4 index file.")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Additionally decode every document and posting block and audit \
             the skip tables (slow on large files).")
  in
  let run path deep = wrap (fun () -> run_inspect path deep) in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Verify and summarize a v4 index file: versions, counts, section \
          sizes, compression ratio, per-block skip/max summaries.")
    Term.(ret (const run $ path $ deep))

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"The paper's Figure 1 example.")
    Term.(ret (const (fun () -> wrap run_demo) $ const ()))

let main =
  Cmd.group
    (Cmd.info "proxjoin" ~version:"1.0.0"
       ~doc:"Weighted proximity best-joins for information retrieval.")
    [
      demo_cmd;
      search_cmd;
      isearch_cmd;
      extract_cmd;
      ask_cmd;
      synth_cmd;
      compact_cmd;
      inspect_cmd;
      serve_cmd;
      serve_router_cmd;
      bench_serve_cmd;
    ]

let () =
  (* Fault injection is armed before any subcommand touches the index
     or the network, so storage load/save sites fire too. A bad spec
     is an operator error: report it and refuse to start. *)
  (match Pj_util.Failpoint.init_from_env () with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "proxjoin: bad $PROXJOIN_FAILPOINTS: %s\n%!" msg;
      exit 2);
  exit (Cmd.eval main)
