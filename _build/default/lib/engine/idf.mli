(** Corpus-statistics-based individual match scores.

    The paper assumes individual match scores are given; for plain
    keyword terms a standard choice is inverse document frequency, so
    that rare terms contribute more. This module turns index statistics
    into matchers whose scores lie in (0, 1], as the join algorithms and
    the synthetic experiments assume. *)

val idf : Pj_index.Inverted_index.t -> string -> float
(** Smoothed IDF of a token: [ln (1 + N / (1 + df))], where N is the
    corpus size. 0 when the corpus is empty. *)

val normalized_idf : Pj_index.Inverted_index.t -> string -> float
(** IDF scaled into (0, 1] by the corpus's maximum possible IDF (that of
    an unseen token). Unseen tokens get 1. *)

val matcher : Pj_index.Inverted_index.t -> string -> Pj_matching.Matcher.t
(** Exact-token matcher for the word, scored by normalized IDF. *)

val weighted_matcher :
  Pj_index.Inverted_index.t -> Pj_matching.Matcher.t -> Pj_matching.Matcher.t
(** Rescale an existing matcher: each accepted token's score is
    multiplied by its normalized IDF, combining match quality with
    corpus rarity. Expansions are rescaled too when present. *)
