type style = {
  open_mark : string;
  close_mark : string;
  ellipsis : string;
}

let default_style = { open_mark = "["; close_mark = "]"; ellipsis = "..." }

let answer_words vocab (m : Pj_core.Matchset.t) =
  Array.to_list m
  |> List.map (fun x -> Pj_text.Vocab.word vocab x.Pj_core.Match0.payload)

let render ?(style = default_style) ?(padding = 3) vocab doc
    (m : Pj_core.Matchset.t) =
  let module Iset = Set.Make (Int) in
  let marked =
    Array.fold_left
      (fun s x -> Iset.add x.Pj_core.Match0.loc s)
      Iset.empty m
  in
  let lo = Stdlib.max 0 (Pj_core.Matchset.min_loc m - padding) in
  let hi =
    Stdlib.min (Pj_text.Document.length doc - 1)
      (Pj_core.Matchset.max_loc m + padding)
  in
  let buf = Buffer.create 128 in
  if lo > 0 then begin
    Buffer.add_string buf style.ellipsis;
    Buffer.add_char buf ' '
  end;
  for i = lo to hi do
    if i > lo then Buffer.add_char buf ' ';
    let word = Pj_text.Vocab.word vocab (Pj_text.Document.token_at doc i) in
    if Iset.mem i marked then begin
      Buffer.add_string buf style.open_mark;
      Buffer.add_string buf word;
      Buffer.add_string buf style.close_mark
    end
    else Buffer.add_string buf word
  done;
  if hi < Pj_text.Document.length doc - 1 then begin
    Buffer.add_char buf ' ';
    Buffer.add_string buf style.ellipsis
  end;
  Buffer.contents buf
