lib/engine/searcher.ml: Array Float Int List Pj_core Pj_index Pj_matching Pj_util Printf Set
