lib/engine/idf.mli: Pj_index Pj_matching
