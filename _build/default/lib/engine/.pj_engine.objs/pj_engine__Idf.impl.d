lib/engine/idf.ml: List Option Pj_index Pj_matching
