lib/engine/snippet.mli: Pj_core Pj_text
