lib/engine/searcher.mli: Pj_core Pj_index Pj_matching
