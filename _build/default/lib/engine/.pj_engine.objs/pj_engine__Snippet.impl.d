lib/engine/snippet.ml: Array Buffer Int List Pj_core Pj_text Set Stdlib
