(** Answer snippets: render a matchset in its document context, with
    the matched tokens highlighted — the presentation layer for "answer
    the question directly" results (Section I's "Lenovo partners with
    NBA"). *)

type style = {
  open_mark : string;   (** prefix for matched tokens, default "[" *)
  close_mark : string;  (** suffix for matched tokens, default "]" *)
  ellipsis : string;    (** shown when the window is clipped, default "..." *)
}

val default_style : style

val render :
  ?style:style ->
  ?padding:int ->
  Pj_text.Vocab.t ->
  Pj_text.Document.t ->
  Pj_core.Matchset.t ->
  string
(** The tokens from [padding] (default 3) before the matchset's first
    member to [padding] after its last, space-joined, with every member
    token wrapped in the style's marks. *)

val answer_words :
  Pj_text.Vocab.t -> Pj_core.Matchset.t -> string list
(** Just the matched tokens, in query-term order (via match payloads). *)
