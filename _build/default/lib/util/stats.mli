(** Summary statistics for the experiment harness (mean execution times,
    coefficients of variation as reported in Section VIII). *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Sample variance (divides by n-1); 0 for singleton arrays. *)

val stdev : float array -> float
(** Sample standard deviation. *)

val coefficient_of_variation : float array -> float
(** stdev / mean; the dispersion measure the paper reports (5.7% average). *)

val median : float array -> float
(** Median (average of the two central elements for even sizes).
    Does not mutate its argument. *)

val min_max : float array -> float * float
(** Smallest and largest elements. Requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] for p in [0,100], nearest-rank with linear
    interpolation. Does not mutate its argument. *)

val histogram : float array -> bins:int -> (float * int) array
(** Equal-width histogram; returns (bin lower bound, count) pairs. *)
