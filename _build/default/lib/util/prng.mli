(** Deterministic pseudo-random number generation.

    All randomized components of the library (workload generators,
    property tests, benchmarks) draw from this splittable SplitMix64
    generator so that every experiment is reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. Two generators
    created from the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). Requires [x > 0]. *)

val float_open : t -> float
(** Uniform in the half-open interval (0, 1]: never returns 0, as the
    paper draws individual match scores from (0, 1]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
