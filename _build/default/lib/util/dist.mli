(** Discrete distributions used by the workload generators of the paper's
    experimental section (Section VIII). *)

type discrete
(** A finite discrete distribution over [0 .. n-1]. *)

val of_weights : float array -> discrete
(** Distribution proportional to the given non-negative weights.
    Requires at least one strictly positive weight. *)

val sample : discrete -> Prng.t -> int
(** Draw an index according to the distribution. *)

val probability : discrete -> int -> float
(** Normalized probability of an index. *)

val support : discrete -> int
(** Number of outcomes. *)

val zipf : n:int -> s:float -> discrete
(** Zipf distribution over ranks 1..n mapped to indices 0..n-1:
    P(k) proportional to 1 / k^s. Used by the paper to skew the relative
    popularities of query terms. *)

val truncated_exponential : n:int -> lambda:float -> discrete
(** Distribution over 1..n mapped to indices 0..n-1 with
    P(tau) proportional to exp(-lambda * tau). Used by the paper to pick
    the number of co-located matches (duplicate frequency control). *)

val categorical_expectation : discrete -> (int -> float) -> float
(** Expectation of a function of the outcome index. *)
