type 'a t = {
  mutable data : 'a array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t elt =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 8 else 2 * cap in
  let data = Array.make new_cap elt in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t x =
  if t.size = Array.length t.data then grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then invalid_arg "Vec.pop: empty";
  t.size <- t.size - 1;
  t.data.(t.size)

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.size then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let last t =
  if t.size = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.size - 1)

let clear t = t.size <- 0

let to_array t = Array.sub t.data 0 t.size

let of_array a = { data = Array.copy a; size = Array.length a }

let to_list t = Array.to_list (to_array t)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.size && (p t.data.(i) || loop (i + 1)) in
  loop 0

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.size
