(** Wall-clock measurement for the experiment harness.

    The paper measures wall-clock time of each algorithm over a document
    set, excluding match-list generation, and reports coefficients of
    variation over repetitions; this module provides exactly that
    protocol. *)

val now : unit -> float
(** Monotonic-enough wall clock in seconds. *)

val time : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result together with the elapsed seconds. *)

type measurement = {
  mean_s : float;       (** mean elapsed seconds over repetitions *)
  stdev_s : float;
  cov : float;          (** coefficient of variation, as in Section VIII *)
  repetitions : int;
}

val measure : ?repetitions:int -> (unit -> unit) -> measurement
(** Run the thunk [repetitions] times (default 3) and summarize. *)

val pp_measurement : Format.formatter -> measurement -> unit
