(** Binary max-heaps over an explicit ordering.

    Used by the duplicate handler's best-first branch-and-bound search
    and available as a general priority queue. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] orders elements by [leq]; [pop] returns a maximal
    element (one for which no other element is strictly greater). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Maximal element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return a maximal element. *)
