let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    !acc /. float_of_int (n - 1)
  end

let stdev a = sqrt (variance a)

let coefficient_of_variation a =
  let m = mean a in
  if m = 0. then 0. else stdev a /. m

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  assert (Array.length a > 0);
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.

let min_max a =
  assert (Array.length a > 0);
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0))
    a

let percentile a p =
  assert (Array.length a > 0 && p >= 0. && p <= 100.);
  let b = sorted_copy a in
  let n = Array.length b in
  if n = 1 then b.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let histogram a ~bins =
  assert (bins > 0 && Array.length a > 0);
  let lo, hi = min_max a in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.min i (bins - 1) in
      counts.(i) <- counts.(i) + 1)
    a;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
