type t = int

let max_terms = 30

let empty = 0

let full n =
  assert (n >= 0 && n <= max_terms);
  (1 lsl n) - 1

let singleton j = 1 lsl j
let mem j s = s land (1 lsl j) <> 0
let add j s = s lor (1 lsl j)
let remove j s = s land lnot (1 lsl j)

let cardinal s =
  let rec loop s acc = if s = 0 then acc else loop (s lsr 1) (acc + (s land 1)) in
  loop s 0

let is_empty s = s = 0
let equal (a : t) b = a = b

let iter_elements s f =
  let rec loop j s =
    if s <> 0 then begin
      if s land 1 <> 0 then f j;
      loop (j + 1) (s lsr 1)
    end
  in
  loop 0 s

let elements s =
  let acc = ref [] in
  iter_elements s (fun j -> acc := j :: !acc);
  List.rev !acc

let iter_nonempty n f =
  for s = 1 to full n do
    f s
  done

let iter_by_decreasing_size n f =
  for size = n downto 1 do
    for s = 1 to full n do
      if cardinal s = size then f s
    done
  done
