type discrete = {
  cumulative : float array; (* strictly increasing, last element = 1. *)
  probabilities : float array;
}

let of_weights weights =
  let total = Array.fold_left ( +. ) 0. weights in
  assert (total > 0.);
  let n = Array.length weights in
  let probabilities = Array.map (fun w -> w /. total) weights in
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    assert (weights.(i) >= 0.);
    acc := !acc +. probabilities.(i);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.;
  { cumulative; probabilities }

let sample d rng =
  let u = Prng.float rng 1. in
  (* Binary search for the first cumulative value exceeding u. *)
  let lo = ref 0 and hi = ref (Array.length d.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.cumulative.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let probability d i = d.probabilities.(i)
let support d = Array.length d.probabilities

let zipf ~n ~s =
  assert (n > 0);
  of_weights (Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s))

let truncated_exponential ~n ~lambda =
  assert (n > 0);
  of_weights (Array.init n (fun i -> exp (-.lambda *. float_of_int (i + 1))))

let categorical_expectation d f =
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (p *. f i)) d.probabilities;
  !acc
