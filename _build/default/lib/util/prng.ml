type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit signed native int;
     rejection sampling avoids modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod n in
    (* r is uniform in [0, 2^62) = [0, max_int]; reject the final partial
       block, i.e. r - v > 2^62 - n = max_int - n + 1. *)
    if r - v > max_int - n + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  assert (x > 0.);
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits scaled into [0, 1). *)
  r /. 9007199254740992. *. x

let float_open t = 1. -. float t 1.

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
