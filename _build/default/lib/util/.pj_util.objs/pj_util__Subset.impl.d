lib/util/subset.ml: List
