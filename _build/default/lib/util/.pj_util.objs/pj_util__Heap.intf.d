lib/util/heap.mli:
