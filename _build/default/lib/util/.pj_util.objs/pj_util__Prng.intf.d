lib/util/prng.mli:
