lib/util/subset.mli:
