lib/util/parallel.mli:
