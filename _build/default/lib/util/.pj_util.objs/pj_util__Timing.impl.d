lib/util/timing.ml: Array Format Stats Unix
