lib/util/vec.mli:
