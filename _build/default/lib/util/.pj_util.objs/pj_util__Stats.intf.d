lib/util/stats.mli:
