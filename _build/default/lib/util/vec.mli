(** Growable arrays (OCaml 5.1 predates stdlib [Dynarray]).

    Used pervasively for building match lists and posting lists whose
    sizes are not known in advance. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the end; amortized O(1). *)

val pop : 'a t -> 'a
(** Remove and return the last element. Raises [Invalid_argument] when
    empty. *)

val get : 'a t -> int -> 'a
(** Bounds-checked access. *)

val set : 'a t -> int -> 'a -> unit

val last : 'a t -> 'a
(** Last element. Raises [Invalid_argument] when empty. *)

val clear : 'a t -> unit
(** Remove every element, retaining the allocated capacity. *)

val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val sort : ('a -> 'a -> int) -> 'a t -> unit
