type 'a t = {
  leq : 'a -> 'a -> bool;
  data : 'a Vec.t;
}

let create ~leq = { leq; data = Vec.create () }

let length t = Vec.length t.data
let is_empty t = Vec.is_empty t.data

let swap t i j =
  let tmp = Vec.get t.data i in
  Vec.set t.data i (Vec.get t.data j);
  Vec.set t.data j tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.leq (Vec.get t.data parent) (Vec.get t.data i) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.length t.data in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < n && t.leq (Vec.get t.data !largest) (Vec.get t.data l) then
    largest := l;
  if r < n && t.leq (Vec.get t.data !largest) (Vec.get t.data r) then
    largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let push t x =
  Vec.push t.data x;
  sift_up t (Vec.length t.data - 1)

let peek t = if is_empty t then None else Some (Vec.get t.data 0)

let pop t =
  if is_empty t then None
  else begin
    let top = Vec.get t.data 0 in
    let last = Vec.pop t.data in
    if not (Vec.is_empty t.data) then begin
      Vec.set t.data 0 last;
      sift_down t 0
    end;
    Some top
  end
