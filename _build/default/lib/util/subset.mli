(** Subsets of query terms represented as bitmasks.

    Algorithm 1 (WIN) keeps one best partial matchset per nonempty subset
    P of the query terms; subsets are integers below [1 lsl n] where bit
    [j] marks membership of term [j]. Supports up to 30 terms, far above
    the paper's |Q| <= 7. *)

type t = int

val empty : t
val full : int -> t
(** [full n] is the subset containing terms 0..n-1. *)

val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool

val iter_elements : t -> (int -> unit) -> unit
(** Visit member indices in increasing order. *)

val elements : t -> int list

val iter_nonempty : int -> (t -> unit) -> unit
(** [iter_nonempty n f] applies [f] to every nonempty subset of [full n],
    in increasing bitmask order. *)

val iter_by_decreasing_size : int -> (t -> unit) -> unit
(** Visit every nonempty subset of [full n] in order of decreasing
    cardinality (the processing order of Algorithm 1, which must update a
    set before the subsets it is derived from). *)
