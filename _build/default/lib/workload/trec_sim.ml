type term_kind =
  | Concept of string * string list
  | Year
  | Date
  | City
  | Country
  | Exact of string

type term_spec = {
  term_name : string;
  kind : term_kind;
  rate : float;
  answer : string;
}

type spec = {
  id : string;
  question : string;
  terms : term_spec list;
}

type case = {
  spec : spec;
  query : Pj_matching.Query.t;
  corpus : Pj_index.Corpus.t;
  answer_doc : int;
  problems : (int * Pj_core.Match_list.problem) array;
}

let years = List.init 21 (fun i -> string_of_int (1990 + i))

let specs () =
  [
    {
      id = "Q1";
      question = "Leaning Tower of Pisa began to be built in what year?";
      terms =
        [
          { term_name = "leaning-tower-of-pisa";
            kind = Concept ("pisa", [ "pisa"; "tower"; "italy"; "monument" ]);
            rate = 2.9; answer = "pisa" };
          { term_name = "began";
            kind = Concept ("began", [ "began"; "begin"; "start"; "launch" ]);
            rate = 0.2; answer = "began" };
          { term_name = "build";
            kind =
              Concept
                ("build",
                 (* "building" is kept rare: its stem also falls in the
                    pisa expansion, so it is the natural source of Q1's
                    duplicate matches (Fig. 12 reports 0.6 per doc). *)
                 [ "built"; "construct"; "construction"; "constructed";
                   "erect"; "erected"; "building" ]);
            rate = 8.3; answer = "built" };
          { term_name = "year"; kind = Year; rate = 3.7; answer = "1990" };
        ];
    };
    {
      id = "Q2";
      question = "What school and in what year did Hugo Chavez graduate from?";
      terms =
        [
          { term_name = "chavez";
            kind = Concept ("chavez", [ "chavez"; "hugo"; "president" ]);
            rate = 6.7; answer = "chavez" };
          { term_name = "graduate";
            kind =
              Concept
                ("graduate",
                 [ "graduate"; "graduated"; "graduation"; "degree"; "diploma" ]);
            rate = 5.2; answer = "graduated" };
          { term_name = "school";
            kind =
              Concept
                ("school",
                 [ "school"; "academy"; "college"; "university"; "institution" ]);
            rate = 4.3; answer = "academy" };
          { term_name = "year"; kind = Year; rate = 4.6; answer = "1994" };
        ];
    };
    {
      id = "Q3";
      question = "In what city is the Lebanese parliament located?";
      terms =
        [
          { term_name = "lebanese-parliament";
            kind =
              Concept
                ("parliament", [ "parliament"; "legislature"; "assembly" ]);
            rate = 0.1; answer = "parliament" };
          { term_name = "in"; kind = Exact "in"; rate = 11.9; answer = "in" };
          { term_name = "city"; kind = City; rate = 4.1; answer = "beirut" };
        ];
    };
    {
      id = "Q4";
      question = "In what country was Stonehenge built?";
      terms =
        [
          { term_name = "country"; kind = Country; rate = 11.4;
            answer = "england" };
          { term_name = "stonehenge";
            kind = Concept ("stonehenge", [ "stonehenge" ]);
            rate = 0.04; answer = "stonehenge" };
          { term_name = "in"; kind = Exact "in"; rate = 11.5; answer = "in" };
        ];
    };
    {
      id = "Q5";
      question = "When did Prince Edward marry?";
      terms =
        [
          { term_name = "prince-edward";
            kind = Concept ("edward", [ "edward"; "prince"; "royal" ]);
            rate = 3.4; answer = "edward" };
          { term_name = "marry";
            kind =
              Concept
                ("marry", [ "marry"; "married"; "marriage"; "wedding"; "wed" ]);
            rate = 2.1; answer = "married" };
          { term_name = "date"; kind = Date; rate = 18.2; answer = "june" };
        ];
    };
    {
      id = "Q6";
      question = "Where was Alfred Hitchcock born?";
      terms =
        [
          { term_name = "alfred-hitchcock";
            kind = Concept ("hitchcock", [ "hitchcock"; "alfred"; "director" ]);
            rate = 3.6; answer = "hitchcock" };
          { term_name = "born";
            kind = Concept ("born", [ "born"; "birth"; "birthplace"; "native" ]);
            rate = 0.1; answer = "born" };
          { term_name = "city"; kind = City; rate = 8.4; answer = "london" };
        ];
    };
    {
      id = "Q7";
      question = "Where is the IMF headquartered?";
      terms =
        [
          { term_name = "imf"; kind = Concept ("imf", [ "imf"; "fund" ]);
            rate = 7.5; answer = "imf" };
          { term_name = "headquarters";
            kind =
              Concept
                ("headquarters",
                 [ "headquarters"; "headquarter"; "base"; "office" ]);
            rate = 1.0; answer = "headquarters" };
          { term_name = "city"; kind = City; rate = 2.4; answer = "washington" };
        ];
    };
  ]

let find_spec id =
  match List.find_opt (fun s -> s.id = id) (specs ()) with
  | Some s -> s
  | None -> raise Not_found

(* --- matcher construction ------------------------------------------- *)

let matcher_of_kind graph term =
  match term.kind with
  | Concept (lemma, _) ->
      let m = Pj_matching.Wordnet_matcher.create graph lemma in
      { m with Pj_matching.Matcher.name = term.term_name }
  | Year ->
      Pj_matching.Matcher.of_table ~name:term.term_name
        (List.map (fun y -> (y, 1.)) years)
  | Date ->
      { (Pj_matching.Date_matcher.create ()) with
        Pj_matching.Matcher.name = term.term_name }
  | City ->
      Pj_matching.Matcher.of_table ~name:term.term_name
        (List.map (fun c -> (c, 1.)) (Pj_ontology.Gazetteer.cities ()))
  | Country ->
      Pj_matching.Matcher.of_table ~name:term.term_name
        (List.map (fun c -> (c, 1.)) (Pj_ontology.Gazetteer.countries ()))
  | Exact w -> Pj_matching.Matcher.exact w

let scatter_vocab term =
  match term.kind with
  | Concept (_, vocab) -> Array.of_list vocab
  | Year -> Array.of_list years
  | Date -> Array.of_list (Pj_ontology.Date_lex.months () @ years)
  | City -> Array.of_list (Pj_ontology.Gazetteer.cities ())
  | Country -> Array.of_list (Pj_ontology.Gazetteer.countries ())
  | Exact w -> [| w |]

(* --- corpus generation ----------------------------------------------- *)

let generate ?(seed = 42) ?(n_docs = 1000) ?(doc_length = 475) spec =
  let rng = Pj_util.Prng.create seed in
  let graph = Pj_ontology.Mini_wordnet.create () in
  let query =
    Pj_matching.Query.make spec.id
      (List.map (matcher_of_kind graph) spec.terms)
  in
  let corpus = Pj_index.Corpus.create () in
  let answer_doc = Pj_util.Prng.int rng n_docs in
  let scatter = List.map scatter_vocab spec.terms in
  let answers = List.map (fun t -> t.answer) spec.terms in
  for doc_id = 0 to n_docs - 1 do
    let len = doc_length - 25 + Pj_util.Prng.int rng 51 in
    let tokens =
      Array.init len (fun _ -> Textgen.random_filler rng)
    in
    (* Scatter per-term matching tokens at the Figure 12 rates. *)
    List.iter2
      (fun term vocab ->
        let k = Textgen.poissonish rng term.rate in
        for _ = 1 to k do
          let pos = Pj_util.Prng.int rng len in
          tokens.(pos) <- Pj_util.Prng.choose rng vocab
        done)
      spec.terms scatter;
    (* Plant the tight answer cluster in the answer document. *)
    if doc_id = answer_doc then begin
      let n_terms = List.length answers in
      let anchor = Pj_util.Prng.int rng (len - n_terms) in
      List.iteri (fun i a -> tokens.(anchor + i) <- a) answers
    end;
    ignore (Pj_index.Corpus.add_tokens corpus tokens)
  done;
  let problems =
    Array.map
      (fun (doc, p) -> (doc.Pj_text.Document.id, p))
      (Pj_matching.Match_builder.scan_corpus corpus query)
  in
  { spec; query; corpus; answer_doc; problems }

let measured_list_sizes case =
  let n = Pj_matching.Query.n_terms case.query in
  let sums = Array.make n 0 in
  Array.iter
    (fun (_, p) ->
      Array.iteri (fun j l -> sums.(j) <- sums.(j) + Array.length l) p)
    case.problems;
  let docs = float_of_int (Array.length case.problems) in
  Array.map (fun s -> float_of_int s /. docs) sums

let measured_duplicates case =
  let total =
    Array.fold_left
      (fun acc (_, p) -> acc + Pj_core.Match_list.duplicate_count p)
      0 case.problems
  in
  float_of_int total /. float_of_int (Array.length case.problems)
