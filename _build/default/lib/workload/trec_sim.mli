(** Simulated TREC 2006 QA workload (Section VIII, Figures 11 and 12).

    The paper runs seven factoid queries over 1000 short documents each
    (450-500 words), with WordNet-based matchers. We do not have the
    TREC collection, so for each query we generate a corpus with the
    same structure: filler text, per-term scattered matching tokens at
    the average rates of Figure 12's "match list sizes" column, and one
    answer document containing a tight cluster of exact answer tokens.
    The match lists are then built by the real matchers over the real
    mini-WordNet graph, so list sizes, overlaps and scores arise the way
    they would on real text. *)

type term_kind =
  | Concept of string * string list
      (** WordNet concept lemma, plus the scatter vocabulary whose
          tokens the concept's matcher accepts *)
  | Year    (** numeric years, matched at score 1 *)
  | Date    (** month names and years (the DBWorld-style date matcher) *)
  | City    (** gazetteer cities *)
  | Country (** gazetteer countries *)
  | Exact of string  (** literal token, e.g. the "in" of Q3/Q4 *)

type term_spec = {
  term_name : string;
  kind : term_kind;
  rate : float;      (** mean scattered matches per document (Fig. 12) *)
  answer : string;   (** the token planted in the answer cluster *)
}

type spec = {
  id : string;        (** "Q1" .. "Q7" *)
  question : string;  (** the factoid question *)
  terms : term_spec list;
}

type case = {
  spec : spec;
  query : Pj_matching.Query.t;
  corpus : Pj_index.Corpus.t;
  answer_doc : int;  (** document id holding the planted answer cluster *)
  problems : (int * Pj_core.Match_list.problem) array;
      (** (doc id, match lists) for every document, scan-built *)
}

val specs : unit -> spec list
(** The seven queries of Figure 12 with their per-term rates. *)

val find_spec : string -> spec
(** Lookup by id ("Q3"); raises [Not_found]. *)

val generate : ?seed:int -> ?n_docs:int -> ?doc_length:int -> spec -> case
(** Default 1000 documents of 450-500 tokens, as in the paper. The
    answer document is chosen deterministically from the seed. *)

val measured_list_sizes : case -> float array
(** Average match-list size per term over the corpus — the quantity the
    paper tabulates in Figure 12. *)

val measured_duplicates : case -> float
(** Average duplicate matches per document (Fig. 12's "# dups"). *)
