type ranked = {
  doc_id : int;
  result : Pj_core.Naive.result option;
}

let rank ?(dedup = true) scoring docs =
  let solved =
    Array.map
      (fun (doc_id, problem) ->
        { doc_id; result = Pj_core.Best_join.solve ~dedup scoring problem })
      docs
  in
  let score r =
    match r.result with
    | Some x -> x.Pj_core.Naive.score
    | None -> neg_infinity
  in
  let order a b =
    let c = compare (score b) (score a) in
    if c <> 0 then c else compare a.doc_id b.doc_id
  in
  Array.sort order solved;
  solved

type answer_rank = {
  rank : int;
  ties : int;
}

let answer_rank_of ranked ~doc_id =
  let target = ref None in
  Array.iter
    (fun r -> if r.doc_id = doc_id then target := r.result)
    ranked;
  match !target with
  | None -> None
  | Some answer ->
      let s = answer.Pj_core.Naive.score in
      let higher = ref 0 and ties = ref 0 in
      Array.iter
        (fun r ->
          match r.result with
          | None -> ()
          | Some x ->
              if x.Pj_core.Naive.score > s then incr higher
              else if x.Pj_core.Naive.score = s then incr ties)
        ranked;
      Some { rank = !higher + 1; ties = !ties }

let pp_answer_rank ppf r =
  if r.ties <= 1 then Format.fprintf ppf "%d" r.rank
  else Format.fprintf ppf "%d(%d)" r.rank r.ties
