(** The synthetic workload generator of Section VIII.

    Generates match-list problem instances directly, with the paper's
    control knobs:
    - [n_terms]: number of query terms (default 4);
    - [total_matches]: total size of the match lists per document
      (default 30);
    - [lambda]: at each match location, the number tau of co-located
      matches across lists is drawn from a truncated exponential
      [p (tau) proportional to exp (-lambda tau)], tau in [1, n_terms] —
      larger lambda means fewer duplicates (default 2.0, which yields a
      little under 24% duplicates at 4 terms, matching the paper);
    - [zipf_s]: the relative popularity of query terms follows a Zipf
      distribution with exponent [s] (default 1.1) — larger s skews the
      match-list sizes;
    - [doc_length]: number of candidate locations (default 1000);
    - match locations are chosen uniformly at random and individual
      match scores uniformly from (0, 1]. *)

type params = {
  n_terms : int;
  total_matches : int;
  lambda : float;
  zipf_s : float;
  doc_length : int;
}

val default : params
(** The paper's defaults: 4 terms, 30 matches, lambda 2.0, s 1.1,
    1000-word documents. *)

val generate : params -> Pj_util.Prng.t -> Pj_core.Match_list.problem
(** One document's match lists. Every list is sorted; the total size is
    exactly [total_matches] (when [total_matches <= doc_length *
    n_terms]; locations are not reused). *)

val generate_batch :
  ?seed:int -> ?n_docs:int -> params -> Pj_core.Match_list.problem array
(** A document collection (default 500 documents, the paper's setting). *)

val expected_duplicate_fraction : params -> float
(** Analytic duplicate frequency implied by [lambda] and [n_terms]:
    (E tau - P(tau = 1)) / E tau. Lambda 2.0 at 4 terms gives roughly
    0.25; the paper reports "a little less than 24%". *)
