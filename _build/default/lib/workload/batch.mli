(** Multicore batch solving: a document collection's problems are
    independent, so the overall-best join parallelizes trivially across
    domains. *)

val solve_all :
  ?domains:int ->
  ?dedup:bool ->
  Pj_core.Scoring.t ->
  Pj_core.Match_list.problem array ->
  Pj_core.Naive.result option array
(** [Best_join.solve] over every problem, in document order, chunked
    across domains (default {!Pj_util.Parallel.recommended_domains};
    [dedup] defaults to true). *)

val rank :
  ?domains:int ->
  ?dedup:bool ->
  Pj_core.Scoring.t ->
  (int * Pj_core.Match_list.problem) array ->
  Ranker.ranked array
(** Parallel counterpart of {!Ranker.rank}: identical output. *)
