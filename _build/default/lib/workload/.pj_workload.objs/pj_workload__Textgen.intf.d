lib/workload/textgen.mli: Pj_util
