lib/workload/dbworld_sim.ml: Array List Pj_core Pj_index Pj_matching Pj_ontology Pj_text Pj_util Stdlib Textgen
