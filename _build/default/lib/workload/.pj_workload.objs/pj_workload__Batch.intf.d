lib/workload/batch.mli: Pj_core Ranker
