lib/workload/textgen.ml: Buffer Float Pj_util String
