lib/workload/dbworld_sim.mli: Pj_core Pj_index Pj_matching
