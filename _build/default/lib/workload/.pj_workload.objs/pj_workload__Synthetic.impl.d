lib/workload/synthetic.ml: Array Hashtbl List Pj_core Pj_util Stdlib
