lib/workload/ranker.mli: Format Pj_core
