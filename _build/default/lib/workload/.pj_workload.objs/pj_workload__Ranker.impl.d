lib/workload/ranker.ml: Array Format Pj_core
