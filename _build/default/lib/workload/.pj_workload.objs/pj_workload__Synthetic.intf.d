lib/workload/synthetic.mli: Pj_core Pj_util
