lib/workload/batch.ml: Array Pj_core Pj_util Ranker
