type params = {
  n_terms : int;
  total_matches : int;
  lambda : float;
  zipf_s : float;
  doc_length : int;
}

let default =
  { n_terms = 4; total_matches = 30; lambda = 2.0; zipf_s = 1.1;
    doc_length = 1000 }

let validate p =
  if p.n_terms < 1 then invalid_arg "Synthetic: n_terms < 1";
  if p.total_matches < 0 then invalid_arg "Synthetic: negative total_matches";
  if p.doc_length < 1 then invalid_arg "Synthetic: doc_length < 1";
  if p.total_matches > p.doc_length * p.n_terms then
    invalid_arg "Synthetic: more matches than available slots"

(* Sample [k] distinct term indices according to the Zipf popularity,
   by repeated draws with rejection (k <= n_terms is tiny). *)
let distinct_terms zipf rng k n_terms =
  let chosen = Array.make n_terms false in
  let out = ref [] in
  let count = ref 0 in
  while !count < k do
    let t = Pj_util.Dist.sample zipf rng in
    if not chosen.(t) then begin
      chosen.(t) <- true;
      out := t :: !out;
      incr count
    end
  done;
  !out

let generate p rng =
  validate p;
  let zipf = Pj_util.Dist.zipf ~n:p.n_terms ~s:p.zipf_s in
  let tau_dist =
    Pj_util.Dist.truncated_exponential ~n:p.n_terms ~lambda:p.lambda
  in
  let lists = Array.init p.n_terms (fun _ -> Pj_util.Vec.create ()) in
  let used = Hashtbl.create p.total_matches in
  let placed = ref 0 in
  while !placed < p.total_matches do
    (* A fresh random location. *)
    let loc = ref (Pj_util.Prng.int rng p.doc_length) in
    while Hashtbl.mem used !loc do
      loc := Pj_util.Prng.int rng p.doc_length
    done;
    Hashtbl.add used !loc ();
    let tau = 1 + Pj_util.Dist.sample tau_dist rng in
    let tau = Stdlib.min tau (p.total_matches - !placed) in
    let terms = distinct_terms zipf rng tau p.n_terms in
    List.iter
      (fun t ->
        Pj_util.Vec.push lists.(t)
          (Pj_core.Match0.make ~loc:!loc
             ~score:(Pj_util.Prng.float_open rng)
             ()))
      terms;
    placed := !placed + tau
  done;
  Array.map
    (fun v -> Pj_core.Match_list.of_unsorted (Pj_util.Vec.to_array v))
    lists

let generate_batch ?(seed = 2009) ?(n_docs = 500) p =
  let rng = Pj_util.Prng.create seed in
  Array.init n_docs (fun _ -> generate p (Pj_util.Prng.split rng))

let expected_duplicate_fraction p =
  let tau_dist =
    Pj_util.Dist.truncated_exponential ~n:p.n_terms ~lambda:p.lambda
  in
  let e_tau =
    Pj_util.Dist.categorical_expectation tau_dist (fun i -> float_of_int (i + 1))
  in
  let p1 = Pj_util.Dist.probability tau_dist 0 in
  (e_tau -. p1) /. e_tau
