let solve_all ?domains ?(dedup = true) scoring problems =
  Pj_util.Parallel.map_array ?domains
    (fun p -> Pj_core.Best_join.solve ~dedup scoring p)
    problems

let rank ?domains ?(dedup = true) scoring docs =
  let solved =
    Pj_util.Parallel.map_array ?domains
      (fun (doc_id, problem) ->
        {
          Ranker.doc_id;
          result = Pj_core.Best_join.solve ~dedup scoring problem;
        })
      docs
  in
  let score (r : Ranker.ranked) =
    match r.Ranker.result with
    | Some x -> x.Pj_core.Naive.score
    | None -> neg_infinity
  in
  Array.sort
    (fun a b ->
      let c = compare (score b) (score a) in
      if c <> 0 then c else compare a.Ranker.doc_id b.Ranker.doc_id)
    solved;
  solved
