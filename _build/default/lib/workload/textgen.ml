let filler_token i =
  let letters = "abcdefghijklmnopqrstuvwxyz" in
  let buf = Buffer.create 8 in
  Buffer.add_string buf "zz";
  let rec go n =
    Buffer.add_char buf letters.[n mod 26];
    if n >= 26 then go (n / 26)
  in
  go i;
  Buffer.contents buf

let random_filler rng = filler_token (Pj_util.Prng.int rng 400)

let poissonish rng rate =
  let base = int_of_float (Float.floor rate) in
  let frac = rate -. Float.floor rate in
  base + (if Pj_util.Prng.float rng 1. < frac then 1 else 0)
