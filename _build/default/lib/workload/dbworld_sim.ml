type message = {
  doc_id : int;
  is_cfp : bool;
  is_extension : bool;
  event_city : string;
  event_country : string;
  event_month : string;
  event_year : string;
}

type case = {
  corpus : Pj_index.Corpus.t;
  query : Pj_matching.Query.t;
  messages : message array;
  problems : (int * Pj_core.Match_list.problem) array;
}

let conference_words = [| "conference"; "workshop"; "symposium"; "meeting" |]
let topic_fillers = 12 (* nonsense topic tokens per topics block *)

let push_words vec words =
  List.iter (fun w -> Pj_util.Vec.push vec w) words

let push_filler vec rng n =
  for _ = 1 to n do
    Pj_util.Vec.push vec (Textgen.random_filler rng)
  done

let month_for rng = Pj_util.Prng.choose rng
    [| "january"; "february"; "march"; "april"; "june"; "july";
       "september"; "october"; "november"; "december" |]

(* Event months exclude "august", the month used by the extension-trap
   deadline, so the first-date heuristic is genuinely wrong on traps. *)
let event_month_for = month_for

let day_for rng = string_of_int (1 + Pj_util.Prng.int rng 28)

let deadline_line vec rng label =
  push_words vec [ label; "submission" ];
  push_words vec [ day_for rng; month_for rng; "2008" ]

(* One program-committee entry: a name plus a place-heavy affiliation. *)
let pc_entry vec rng =
  push_filler vec rng 2;
  (* family and given nonsense names *)
  push_words vec [ "university"; "of" ];
  Pj_util.Vec.push vec
    (Pj_util.Prng.choose rng (Array.of_list (Pj_ontology.Gazetteer.cities ())));
  Pj_util.Vec.push vec
    (Pj_util.Prng.choose rng
       (Array.of_list (Pj_ontology.Gazetteer.countries ())))

let cfp_tokens rng ~is_extension ~loose_venue msg =
  let vec = Pj_util.Vec.create () in
  push_words vec [ "call"; "for"; "papers" ];
  if is_extension then begin
    (* The trap: the first date in the message is the extended deadline,
       not the event date (footnote 12). *)
    push_words vec [ "deadline"; "extension"; "the"; "submission";
                     "deadline"; "has"; "been"; "extended"; "to" ];
    push_words vec [ day_for rng; "august"; "2008" ];
    push_filler vec rng 6
  end;
  push_words vec [ "the"; "international"; "conference"; "on" ];
  push_filler vec rng 3;
  (* The venue sentence: the answer cluster. *)
  push_words vec [ "will"; "be"; "held"; "in" ];
  Pj_util.Vec.push vec msg.event_city;
  Pj_util.Vec.push vec msg.event_country;
  if loose_venue then push_filler vec rng 9;
  push_words vec [ "on"; day_for rng; msg.event_month; msg.event_year ];
  push_filler vec rng 6;
  (* Topics block with a few conference-ish mentions. *)
  push_words vec [ "topics"; "of"; "interest"; "include" ];
  for _ = 1 to topic_fillers do
    Pj_util.Vec.push vec (Textgen.random_filler rng)
  done;
  push_words vec [ "co-located" ];
  Pj_util.Vec.push vec (Pj_util.Prng.choose rng conference_words);
  push_filler vec rng 3;
  Pj_util.Vec.push vec (Pj_util.Prng.choose rng conference_words);
  push_filler vec rng 5;
  (* Important dates. *)
  push_words vec [ "important"; "dates" ];
  deadline_line vec rng "abstract";
  deadline_line vec rng "paper";
  deadline_line vec rng "demo";
  push_words vec [ "notification" ];
  push_words vec [ day_for rng; month_for rng; "2008" ];
  push_words vec [ "camera"; "ready" ];
  push_words vec [ day_for rng; month_for rng; "2008" ];
  push_filler vec rng 4;
  (* More conference mentions in the program section. *)
  push_words vec [ "the" ];
  Pj_util.Vec.push vec (Pj_util.Prng.choose rng conference_words);
  push_words vec [ "program"; "features" ];
  push_filler vec rng 6;
  for _ = 1 to 6 do
    Pj_util.Vec.push vec (Pj_util.Prng.choose rng conference_words);
    push_filler vec rng 4
  done;
  (* Program committee: the place flood. *)
  push_words vec [ "program"; "committee" ];
  let n_pc = 22 + Pj_util.Prng.int rng 5 in
  for _ = 1 to n_pc do
    pc_entry vec rng
  done;
  push_filler vec rng 5;
  Pj_util.Vec.to_array vec

(* Non-CFP DBWorld traffic: job ads and the like — a couple of dates and
   places but no meeting announcement. *)
let other_tokens rng =
  let vec = Pj_util.Vec.create () in
  push_words vec [ "job"; "opening"; "at"; "the"; "university"; "of" ];
  Pj_util.Vec.push vec
    (Pj_util.Prng.choose rng (Array.of_list (Pj_ontology.Gazetteer.cities ())));
  push_filler vec rng 40;
  push_words vec [ "apply"; "before"; day_for rng; month_for rng; "2008" ];
  push_filler vec rng 30;
  Pj_util.Vec.to_array vec

let build_query () =
  (* The paper's matcher setup: conference|workshop via WordNet with an
     added conference--workshop edge (direct neighbors score 0.7); a
     simple date matcher; gazetteer places with an added
     university--place edge. *)
  let graph = Pj_ontology.Mini_wordnet.create () in
  Pj_ontology.Graph.add_edge graph "conference" "workshop";
  Pj_ontology.Graph.add_edge graph "university" "place";
  let conference =
    Pj_matching.Wordnet_matcher.create ~radius:1 graph "conference"
  in
  let conference =
    { conference with Pj_matching.Matcher.name = "conference|workshop" }
  in
  Pj_matching.Query.make "dbworld"
    [ conference; Pj_matching.Date_matcher.create ();
      Pj_matching.Place_matcher.create graph ]

let generate ?(seed = 624) ?(n_cfps = 25) ?(n_other = 13) () =
  let rng = Pj_util.Prng.create seed in
  let query = build_query () in
  let corpus = Pj_index.Corpus.create () in
  let messages = Pj_util.Vec.create () in
  let n_extensions = Stdlib.min 7 n_cfps in
  let cities = Array.of_list (Pj_ontology.Gazetteer.cities ()) in
  let countries = Array.of_list (Pj_ontology.Gazetteer.countries ()) in
  for i = 0 to n_cfps - 1 do
    let is_extension = i < n_extensions in
    let msg =
      {
        doc_id = i;
        is_cfp = true;
        is_extension;
        event_city = Pj_util.Prng.choose rng cities;
        event_country = Pj_util.Prng.choose rng countries;
        event_month = event_month_for rng;
        event_year = "2009";
      }
    in
    (* One extension message gets a loose venue sentence: the hard case
       where even the proximity join extracts only a partial answer. *)
    let loose_venue = is_extension && i = 0 in
    let tokens = cfp_tokens rng ~is_extension ~loose_venue msg in
    ignore (Pj_index.Corpus.add_tokens corpus tokens);
    Pj_util.Vec.push messages msg
  done;
  for i = 0 to n_other - 1 do
    let msg =
      {
        doc_id = n_cfps + i;
        is_cfp = false;
        is_extension = false;
        event_city = ""; event_country = "";
        event_month = ""; event_year = "";
      }
    in
    ignore (Pj_index.Corpus.add_tokens corpus (other_tokens rng));
    Pj_util.Vec.push messages msg
  done;
  let vocab = Pj_index.Corpus.vocab corpus in
  let problems =
    Array.init n_cfps (fun doc_id ->
        let doc = Pj_index.Corpus.document corpus doc_id in
        (doc_id, Pj_matching.Match_builder.scan vocab doc query))
  in
  { corpus; query; messages = Pj_util.Vec.to_array messages; problems }

type extraction = {
  date_correct : bool;
  place_correct : bool;
}

let evaluate case solver =
  let vocab = Pj_index.Corpus.vocab case.corpus in
  Array.map
    (fun (doc_id, problem) ->
      let msg = case.messages.(doc_id) in
      match solver problem with
      | None -> (msg, None)
      | Some r ->
          let word j =
            Pj_text.Vocab.word vocab
              r.Pj_core.Naive.matchset.(j).Pj_core.Match0.payload
          in
          (* Term order: conference|workshop, date, place. *)
          let date = word 1 and place = word 2 in
          ( msg,
            Some
              {
                date_correct =
                  date = msg.event_month || date = msg.event_year;
                place_correct =
                  place = msg.event_city || place = msg.event_country;
              } ))
    case.problems

let first_date_heuristic case =
  let vocab = Pj_index.Corpus.vocab case.corpus in
  Array.map
    (fun (doc_id, _) ->
      let msg = case.messages.(doc_id) in
      let doc = Pj_index.Corpus.document case.corpus doc_id in
      let found = ref None in
      Array.iter
        (fun tok ->
          if !found = None then begin
            let w = Pj_text.Vocab.word vocab tok in
            if Pj_ontology.Date_lex.is_date_token w then found := Some w
          end)
        doc.Pj_text.Document.tokens;
      let correct =
        match !found with
        | Some w -> w = msg.event_month || w = msg.event_year
        | None -> false
      in
      (msg, correct))
    case.problems

let average_list_sizes case =
  let n = Pj_matching.Query.n_terms case.query in
  let sums = Array.make n 0 in
  Array.iter
    (fun (_, p) ->
      Array.iteri (fun j l -> sums.(j) <- sums.(j) + Array.length l) p)
    case.problems;
  let docs = float_of_int (Array.length case.problems) in
  Array.map (fun s -> float_of_int s /. docs) sums
