(** Small helpers shared by the corpus generators. *)

val filler_token : int -> string
(** Letter-only nonsense token ("zz..."): never in any lexicon, never
    numeric, and safe from stem collisions with real vocabulary. *)

val random_filler : Pj_util.Prng.t -> string
(** A filler token drawn from a 400-token pool. *)

val poissonish : Pj_util.Prng.t -> float -> int
(** Integer draw with the given mean: floor(rate) plus a Bernoulli on
    the fractional part. *)
