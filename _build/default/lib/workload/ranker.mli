(** Document ranking by overall-best-matchset score, and the answer-rank
    measure of the paper's TREC experiment (Figure 12): "the rank of a
    document in which the best matchset found is the correct answer",
    with the number of documents tied at that rank. *)

type ranked = {
  doc_id : int;
  result : Pj_core.Naive.result option;
      (** best (valid) matchset in the document, [None] when some match
          list is empty *)
}

val rank :
  ?dedup:bool ->
  Pj_core.Scoring.t ->
  (int * Pj_core.Match_list.problem) array ->
  ranked array
(** Solve every document with the fast algorithm for the scoring family
    ([dedup] defaults to true, as the paper's experiments always apply
    the Section VI handler) and sort by descending best score; documents
    with no matchset rank last (stable among themselves). *)

type answer_rank = {
  rank : int;   (** 1 + number of documents with strictly higher score *)
  ties : int;   (** number of documents sharing the answer's score *)
}

val answer_rank_of : ranked array -> doc_id:int -> answer_rank option
(** Rank of a document in a [rank] output; [None] when the document has
    no matchset or is absent. *)

val pp_answer_rank : Format.formatter -> answer_rank -> unit
(** "1" or "2(3)" in the style of Figure 12. *)
