(** Simulated DBWorld call-for-papers workload (Section VIII).

    The paper collected 38 DBWorld messages (25 of them CFPs) and ran
    the query (conference-or-workshop, date, place) to extract each
    meeting's date and location. Generated messages reproduce the
    documented structure:
    - a title and a venue sentence "...will be held in CITY COUNTRY on
      DAY MONTH YEAR" — the answer cluster;
    - an important-dates block with many deadline dates (matching the
      ~13 date matches per message);
    - a program-committee list whose affiliations mention dozens of
      cities and countries (matching the ~73 place matches per message);
    - 7 of the 25 CFPs are deadline-extension messages whose first date
      is the new deadline, the trap that defeats the first-date
      heuristic (footnote 12).

    Matchers follow the paper: the conference term is WordNet-based with
    a [conference -- workshop] edge added, scoring direct neighbors 0.7;
    dates by month/year lexicon at score 1; places by gazetteer at score
    1 or WordNet neighbors of "place" at 0.7, with a
    [university -- place] edge added. *)

type message = {
  doc_id : int;
  is_cfp : bool;
  is_extension : bool;  (** first date is a new deadline, not the event's *)
  event_city : string;
  event_country : string;
  event_month : string;
  event_year : string;
}

type case = {
  corpus : Pj_index.Corpus.t;
  query : Pj_matching.Query.t;
  messages : message array;  (** one per document *)
  problems : (int * Pj_core.Match_list.problem) array;
      (** match lists for the CFP documents only, as the paper runs the
          query on the 25 CFPs *)
}

val generate : ?seed:int -> ?n_cfps:int -> ?n_other:int -> unit -> case
(** Default 25 CFPs (7 with deadline extensions) + 13 other messages. *)

type extraction = {
  date_correct : bool;   (** extracted date token is the event's month/year *)
  place_correct : bool;  (** extracted place token is the event's city/country *)
}

val evaluate :
  case -> (Pj_core.Match_list.problem -> Pj_core.Naive.result option) ->
  (message * extraction option) array
(** Run a solver on every CFP and judge the extracted matchset against
    the ground truth ([None] when the solver returns no matchset). *)

val first_date_heuristic : case -> (message * bool) array
(** The strawman of footnote 12: take the first date token of each CFP
    as the event date; the boolean says whether it is correct. *)

val average_list_sizes : case -> float array
(** Mean match-list sizes over the CFPs — the paper reports
    (13.2, 12.7, 73.5). *)
