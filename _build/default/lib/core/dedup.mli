(** Avoiding duplicate matches (Section VI).

    A matchset is valid when no two of its members refer to the same
    document token (same location). This module wraps any
    duplicate-unaware solver: run it; if the winning matchset uses some
    match for several terms, branch on which single term keeps the match
    (removing it from the other lists), re-solve each modified instance
    recursively, and return the best valid matchset found. The method is
    exact and, on realistic inputs where duplicates are rare in best
    matchsets, usually needs a single solver invocation. The search is
    pruned with a sound bound (removing matches can only lower an
    instance's duplicate-unaware optimum, which bounds every valid
    matchset in its subtree) and memoizes repeated removal sets. *)

type solver = Match_list.problem -> Naive.result option

type stats = {
  invocations : int;
      (** number of times the duplicate-unaware solver ran — the
          quantity plotted in Figure 8 *)
}

val best_valid :
  solver -> Match_list.problem -> Naive.result option * stats
(** Best valid matchset under the wrapped solver's scoring, or [None]
    when no valid matchset exists (e.g. some list is empty, or the only
    candidates reuse tokens). *)
