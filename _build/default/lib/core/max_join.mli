(** Overall best matchset under MAX scoring (Section V).

    [best] is the efficient specialized algorithm for MAX scoring
    functions that are at-most-one-crossing and maximized-at-match
    (Definition 8) — both Eq. (4) and Eq. (5) qualify (Lemma 3). It
    precomputes the per-term dominating-match lists with the same stack
    pass as Algorithm 2 and then evaluates the envelope sum
    [sum_j S_j (l)] at match locations, tracking the maximum; by Lemma 2
    the dominating matches at the maximizing location form an overall
    best matchset. Running time [O(|Q| * sum |L_j|)].

    [best_general] is Section V's general approach: it builds the
    interval–match-pair representation of every [U_j] over the location
    range and maximizes the envelope sum over it. It works for arbitrary
    monotone contribution functions but costs time proportional to the
    location range times the list sizes; it serves as a reference
    implementation and ablation baseline. *)

val best : Scoring.max -> Match_list.problem -> Naive.result option
(** Specialized algorithm. [None] when a list is empty. The result score
    equals the naive NMAX score on the same input (for
    maximized-at-match scoring functions). *)

val best_general : Scoring.max -> Match_list.problem -> Naive.result option
(** General envelope-sum approach over the full integer location range
    of the problem. *)

val best_anchored :
  anchor_term:int -> Scoring.max -> Match_list.problem -> Naive.result option
(** The scoring of Chakrabarti et al. (the paper's reference [7]), which
    Eq. (5) generalizes: the reference point is pinned to the location
    of the anchor term's match ("who", "physicist", ... — the query's
    single type term) instead of being maximized over. Returns the
    matchset maximizing [f (sum_j c_j (m_j, loc m_k))] where [k] is
    [anchor_term]. Runs in [O(|Q| * sum |L_j|)] with the same envelope
    precomputation as [best]. The reported score is the score at the
    anchor (not the MAX score). *)

val dominating_lists : Scoring.max -> Match_list.problem -> Match0.t array array
(** The precomputed per-term dominating-match lists (exposed for tests
    and diagnostics). *)
