(** Top-level convenience API for the weighted proximity best-join.

    Dispatches a problem instance to the efficient algorithm for the
    given scoring family (Algorithm 1 for WIN, Algorithm 2 for MED, the
    specialized envelope algorithm for MAX), optionally wrapped in the
    Section VI duplicate handler, and optionally applying the Section
    VIII switch heuristic (fall back to the naive algorithm when all
    match lists but one contain at most one match, where the cross
    product is trivially small). *)

type algorithm =
  | Fast       (** the paper's linear-time algorithms *)
  | Naive_alg  (** cross-product baselines NWIN / NMED / NMAX *)
  | Auto       (** Fast, or Naive when the switch heuristic applies *)

val solve :
  ?algorithm:algorithm ->
  ?dedup:bool ->
  Scoring.t ->
  Match_list.problem ->
  Naive.result option
(** Overall best matchset (Definition 2), or best *valid* matchset when
    [dedup] is true (default: false). [None] when a list is empty or,
    with [dedup], when no valid matchset exists. *)

val solve_with_stats :
  ?algorithm:algorithm ->
  Scoring.t ->
  Match_list.problem ->
  Naive.result option * Dedup.stats
(** [solve ~dedup:true] exposing the number of duplicate-unaware solver
    invocations (Figure 8's measure). *)

val by_location : Scoring.t -> Match_list.problem -> By_location.entry list
(** Section VII: best matchset per anchor location. *)

val top_k : k:int -> Scoring.t -> Match_list.problem -> By_location.entry list
(** The [k] highest-scoring locally best matchsets (one per anchor
    location, Section VII), in decreasing score order — the natural
    "several good answers" interface for extraction applications. *)

val switch_to_naive : Match_list.problem -> bool
(** The Section VIII heuristic predicate: true when at most one match
    list has more than one match. *)
