type pending = {
  anchor : int;
  best : float array;               (* per-term max contribution at anchor *)
  best_match : Match0.t option array;
}

type t = {
  scoring : Scoring.max;
  n_terms : int;
  decay : int -> float;
  stacks : Match0.t Pj_util.Vec.t array;  (* online dominating stacks *)
  pending : pending Queue.t;
  mutable group : (int * Match0.t) list;
  mutable group_loc : int;
  mutable closed : bool;
}

let create scoring ~n_terms ~decay =
  if n_terms < 1 then invalid_arg "Max_stream.create: n_terms < 1";
  {
    scoring;
    n_terms;
    decay;
    stacks = Array.init n_terms (fun _ -> Pj_util.Vec.create ());
    pending = Queue.create ();
    group = [];
    group_loc = min_int;
    closed = false;
  }

let contribution t ~term m ~at = Scoring.max_contribution t.scoring ~term m ~at

(* Algorithm 2's stack step, applied online as matches arrive. *)
let stack_push t ~term m =
  let stack = t.stacks.(term) in
  let c = contribution t ~term in
  let loc = m.Match0.loc in
  if
    Pj_util.Vec.is_empty stack
    || c m ~at:loc >= c (Pj_util.Vec.last stack) ~at:loc
  then begin
    let continue = ref true in
    while !continue && not (Pj_util.Vec.is_empty stack) do
      let top = Pj_util.Vec.last stack in
      if c m ~at:top.Match0.loc >= c top ~at:top.Match0.loc then
        ignore (Pj_util.Vec.pop stack)
      else continue := false
    done;
    Pj_util.Vec.push stack m
  end

let emit t (p : pending) =
  let complete = Array.for_all Option.is_some p.best_match in
  if not complete then None
  else begin
    let matchset = Array.map Option.get p.best_match in
    let total = Array.fold_left ( +. ) 0. p.best in
    Some
      {
        Anchored.anchor = p.anchor;
        matchset;
        score = t.scoring.Scoring.max_f total;
      }
  end

let settled t (p : pending) ~pos =
  let bound = t.decay (pos - p.anchor) in
  let ok = ref true in
  for j = 0 to t.n_terms - 1 do
    if p.best.(j) < bound then ok := false
  done;
  !ok

let drain t ~pos =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.pending with
    | Some p when pos = max_int || settled t p ~pos ->
        ignore (Queue.pop t.pending);
        (match emit t p with
        | Some e -> out := e :: !out
        | None -> ())
    | Some _ | None -> continue := false
  done;
  List.rev !out

let close_group t =
  match t.group with
  | [] -> ()
  | group ->
      let l = t.group_loc in
      let n = t.n_terms in
      (* The group is strictly right of every older pending anchor. *)
      Queue.iter
        (fun p ->
          List.iter
            (fun (term, m) ->
              let c = contribution t ~term m ~at:p.anchor in
              if c > p.best.(term) then begin
                p.best.(term) <- c;
                p.best_match.(term) <- Some m
              end)
            group)
        t.pending;
      (* Fold the group into the stacks, then freeze the left side of
         the new anchor from the stack tops (each dominates all matches
         seen so far at positions >= its own location). *)
      List.iter (fun (term, m) -> stack_push t ~term m) group;
      let best = Array.make n neg_infinity in
      let best_match = Array.make n None in
      for j = 0 to n - 1 do
        if not (Pj_util.Vec.is_empty t.stacks.(j)) then begin
          let top = Pj_util.Vec.last t.stacks.(j) in
          best.(j) <- contribution t ~term:j top ~at:l;
          best_match.(j) <- Some top
        end
      done;
      Queue.add { anchor = l; best; best_match } t.pending;
      t.group <- []

let feed t ~term m =
  if t.closed then invalid_arg "Max_stream.feed: stream is finished";
  if term < 0 || term >= t.n_terms then
    invalid_arg "Max_stream.feed: bad term index";
  if m.Match0.loc < t.group_loc then
    invalid_arg "Max_stream.feed: locations must be non-decreasing";
  if contribution t ~term m ~at:m.Match0.loc > t.decay 0 +. 1e-12 then
    invalid_arg "Max_stream.feed: contribution above decay 0";
  let emitted =
    if m.Match0.loc > t.group_loc then begin
      close_group t;
      t.group_loc <- m.Match0.loc;
      drain t ~pos:m.Match0.loc
    end
    else []
  in
  t.group <- (term, m) :: t.group;
  emitted

let finish t =
  if t.closed then invalid_arg "Max_stream.finish: stream is finished";
  t.closed <- true;
  close_group t;
  drain t ~pos:max_int

let pending_count t =
  Queue.length t.pending + (match t.group with [] -> 0 | _ -> 1)

let default_decay x (p : Match_list.problem) =
  let s_max = ref 0. in
  Array.iter
    (Array.iter (fun m -> s_max := Float.max !s_max m.Match0.score))
    p;
  let n = Array.length p in
  fun d ->
    let best = ref neg_infinity in
    for j = 0 to n - 1 do
      best := Float.max !best (x.Scoring.max_g j !s_max d)
    done;
    !best

let run ?decay x (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then []
  else begin
    let decay =
      match decay with
      | Some f -> f
      | None -> default_decay x p
    in
    let t = create x ~n_terms:(Array.length p) ~decay in
    let out = ref [] in
    Match_list.iter_in_location_order p (fun ~term m ->
        List.iter (fun e -> out := e :: !out) (feed t ~term m));
    List.iter (fun e -> out := e :: !out) (finish t);
    List.rev !out
  end
