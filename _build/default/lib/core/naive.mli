(** Naive cross-product solvers NWIN / NMED / NMAX (Sections II and VIII).

    These enumerate every matchset in [L_1 x ... x L_n], evaluate the
    scoring function definitionally, and keep the best — time
    [Theta(|Q| prod |L_j|)]. They are the experimental baselines and the
    test oracles for the fast algorithms. *)

type result = {
  matchset : Matchset.t;
  score : float;
}

val best : Scoring.t -> Match_list.problem -> result option
(** Overall best matchset (Definition 2), or [None] when some match list
    is empty. Ties are broken toward the matchset enumerated first
    (lexicographic in list positions). *)

val best_valid : Scoring.t -> Match_list.problem -> result option
(** Overall best among matchsets containing no duplicate matches
    (Section VI validity) — the oracle for the duplicate handler. *)

val iter_matchsets : Match_list.problem -> (Matchset.t -> unit) -> unit
(** Enumerate the full cross product. The matchset array passed to the
    callback is reused between calls; copy it to retain it. *)

val count_matchsets : Match_list.problem -> int
(** Size of the cross product (saturating at [max_int]). *)
