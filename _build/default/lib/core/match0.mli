(** Individual matches (Definition 1).

    A match is an occurrence of (something matching) a query term in a
    document: it carries an integer location and a real-valued score
    measuring the quality of the match. The [payload] field is opaque to
    the join algorithms; higher layers use it to recover which token
    produced the match. *)

type t = {
  loc : int;       (** location within the document, in token positions *)
  score : float;   (** individual match score, typically in (0, 1] *)
  payload : int;   (** opaque user tag (e.g. vocabulary id of the token) *)
}

val make : ?payload:int -> loc:int -> score:float -> unit -> t

val compare_by_loc : t -> t -> int
(** Total order: by location, then score, then payload — gives the
    deterministic processing order used by every algorithm. *)

val equal : t -> t -> bool

val same_token : t -> t -> bool
(** Two matches denote the same document token iff they share a location
    (Section VI: a duplicate is a match whose location is identical to a
    match from another list). *)

val pp : Format.formatter -> t -> unit
