type t = Match0.t array
type problem = t array

let of_unsorted matches =
  let a = Array.copy matches in
  Array.sort Match0.compare_by_loc a;
  a

let is_sorted (l : t) =
  let ok = ref true in
  for i = 1 to Array.length l - 1 do
    if Match0.compare_by_loc l.(i - 1) l.(i) > 0 then ok := false
  done;
  !ok

let validate (p : problem) =
  if Array.length p = 0 then invalid_arg "Match_list.validate: no query term";
  Array.iteri
    (fun j l ->
      if not (is_sorted l) then
        invalid_arg (Printf.sprintf "Match_list.validate: list %d unsorted" j))
    p

let n_terms (p : problem) = Array.length p

let total_size (p : problem) =
  Array.fold_left (fun acc l -> acc + Array.length l) 0 p

let has_empty_list (p : problem) =
  Array.exists (fun l -> Array.length l = 0) p

let duplicate_count (p : problem) =
  (* Count, per list, matches whose location occurs in some other list. *)
  let module Iset = Set.Make (Int) in
  let loc_sets =
    Array.map
      (fun l -> Array.fold_left (fun s m -> Iset.add m.Match0.loc s) Iset.empty l)
      p
  in
  let count = ref 0 in
  Array.iteri
    (fun j l ->
      Array.iter
        (fun m ->
          let in_other =
            Array.to_seq loc_sets
            |> Seq.mapi (fun j' s -> (j', s))
            |> Seq.exists (fun (j', s) -> j' <> j && Iset.mem m.Match0.loc s)
          in
          if in_other then incr count)
        l)
    p;
  !count

let duplicate_frequency (p : problem) =
  let n = total_size p in
  if n = 0 then 0. else float_of_int (duplicate_count p) /. float_of_int n

let iter_in_location_order (p : problem) f =
  let n = Array.length p in
  let cursor = Array.make n 0 in
  let exhausted () =
    let all = ref true in
    for j = 0 to n - 1 do
      if cursor.(j) < Array.length p.(j) then all := false
    done;
    !all
  in
  while not (exhausted ()) do
    (* Pick the smallest head among the lists; ties by compare, then term. *)
    let best = ref (-1) in
    for j = n - 1 downto 0 do
      if cursor.(j) < Array.length p.(j) then begin
        if !best = -1 then best := j
        else begin
          let c =
            Match0.compare_by_loc p.(j).(cursor.(j)) p.(!best).(cursor.(!best))
          in
          if c < 0 || (c = 0 && j < !best) then best := j
        end
      end
    done;
    let j = !best in
    f ~term:j p.(j).(cursor.(j));
    cursor.(j) <- cursor.(j) + 1
  done

let locations (p : problem) =
  let module Iset = Set.Make (Int) in
  let s =
    Array.fold_left
      (fun s l -> Array.fold_left (fun s m -> Iset.add m.Match0.loc s) s l)
      Iset.empty p
  in
  Array.of_list (Iset.elements s)

let merge (a : t) (b : t) : t =
  let all = Array.append a b in
  Array.sort Match0.compare_by_loc all;
  (* Keep one match per location: the last of a co-located run is the
     highest-scoring under [compare_by_loc]. *)
  let out = ref [] in
  Array.iter
    (fun m ->
      match !out with
      | prev :: rest when prev.Match0.loc = m.Match0.loc -> out := m :: rest
      | _ -> out := m :: !out)
    all;
  Array.of_list (List.rev !out)

let remove_match (p : problem) ~term m =
  let l = p.(term) in
  let idx = ref (-1) in
  Array.iteri (fun i x -> if !idx = -1 && Match0.equal x m then idx := i) l;
  if !idx = -1 then invalid_arg "Match_list.remove_match: match not present";
  let l' =
    Array.init
      (Array.length l - 1)
      (fun i -> if i < !idx then l.(i) else l.(i + 1))
  in
  Array.mapi (fun j lj -> if j = term then l' else lj) p

let pp ppf (p : problem) =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun j l ->
      Format.fprintf ppf "L%d: @[<h>%a@]@," j
        (Format.pp_print_array ~pp_sep:Format.pp_print_space Match0.pp)
        l)
    p;
  Format.fprintf ppf "@]"
