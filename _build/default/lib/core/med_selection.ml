type options = {
  left : (float * Match0.t) option;
  at : (float * Match0.t) option;
  right : (float * Match0.t) option;
}

let no_options = { left = None; at = None; right = None }

(* Choose one option per other term, maximizing total contribution,
   subject to the anchor being the median: with R terms strictly after
   and A terms exactly at the anchor (plus the anchor member itself),
   the floor((n+1)/2)-th greatest location equals the anchor iff
   R <= mr - 1 and R + A + 1 >= mr, where mr = floor((n+1)/2). *)
let select n (options : options array) =
  let mr = (n + 1) / 2 in
  let max_r = mr - 1 in
  let k = Array.length options in
  let neg = neg_infinity in
  let dp = Array.init (k + 1) (fun _ -> Array.make_matrix (max_r + 1) (n + 1) neg) in
  let choice = Array.init (k + 1) (fun _ -> Array.make_matrix (max_r + 1) (n + 1) (-1)) in
  dp.(0).(0).(0) <- 0.;
  for i = 0 to k - 1 do
    let o = options.(i) in
    for r = 0 to max_r do
      for a = 0 to n do
        let v = dp.(i).(r).(a) in
        if v > neg then begin
          (match o.left with
          | Some (c, _) ->
              if v +. c > dp.(i + 1).(r).(a) then begin
                dp.(i + 1).(r).(a) <- v +. c;
                choice.(i + 1).(r).(a) <- 0
              end
          | None -> ());
          (match o.at with
          | Some (c, _) when a + 1 <= n ->
              if v +. c > dp.(i + 1).(r).(a + 1) then begin
                dp.(i + 1).(r).(a + 1) <- v +. c;
                choice.(i + 1).(r).(a + 1) <- 1
              end
          | Some _ | None -> ());
          (match o.right with
          | Some (c, _) when r + 1 <= max_r ->
              if v +. c > dp.(i + 1).(r + 1).(a) then begin
                dp.(i + 1).(r + 1).(a) <- v +. c;
                choice.(i + 1).(r + 1).(a) <- 2
              end
          | Some _ | None -> ())
        end
      done
    done
  done;
  (* Best feasible final state. *)
  let best = ref None in
  for r = 0 to max_r do
    for a = 0 to n do
      if r + a + 1 >= mr && dp.(k).(r).(a) > neg then begin
        match !best with
        | Some (v, _, _) when v >= dp.(k).(r).(a) -> ()
        | _ -> best := Some (dp.(k).(r).(a), r, a)
      end
    done
  done;
  match !best with
  | None -> None
  | Some (_, r0, a0) ->
      (* Walk the choices back to recover the selected matches. *)
      let picks = Array.make k (Match0.make ~loc:0 ~score:0. ()) in
      let r = ref r0 and a = ref a0 in
      for i = k downto 1 do
        let c = choice.(i).(!r).(!a) in
        let o = options.(i - 1) in
        let take = function
          | Some (_, m) -> m
          | None -> assert false
        in
        (match c with
        | 0 -> picks.(i - 1) <- take o.left
        | 1 ->
            picks.(i - 1) <- take o.at;
            decr a
        | 2 ->
            picks.(i - 1) <- take o.right;
            decr r
        | _ -> assert false);
      done;
      Some picks

