type win = {
  win_g : int -> float -> float;
  win_f : float -> int -> float;
  win_key : float -> int -> float;
  win_name : string;
}

let score_win w (m : Matchset.t) =
  let gsum = ref 0. in
  Array.iteri (fun j x -> gsum := !gsum +. w.win_g j x.Match0.score) m;
  w.win_f !gsum (Matchset.window m)

let win_exponential ~alpha =
  {
    win_g = (fun _ x -> log x);
    win_f = (fun x y -> exp (x -. (alpha *. float_of_int y)));
    win_key = (fun x y -> x -. (alpha *. float_of_int y));
    win_name = Printf.sprintf "WIN-exp(%.2g)" alpha;
  }

let win_linear =
  let f x y = x -. float_of_int y in
  {
    win_g = (fun _ x -> x /. 0.3);
    win_f = f;
    win_key = f;
    win_name = "WIN-linear";
  }

type med = {
  med_g : int -> float -> float;
  med_f : float -> float;
  med_name : string;
}

let med_contribution d ~term m ~at =
  d.med_g term m.Match0.score -. float_of_int (abs (m.Match0.loc - at))

let score_med d (m : Matchset.t) =
  let median = Matchset.median_loc m in
  let sum = ref 0. in
  Array.iteri
    (fun j x -> sum := !sum +. med_contribution d ~term:j x ~at:median)
    m;
  d.med_f !sum

let med_exponential ~alpha =
  {
    med_g = (fun _ x -> log x /. alpha);
    med_f = (fun x -> exp (alpha *. x));
    med_name = Printf.sprintf "MED-exp(%.2g)" alpha;
  }

let med_linear =
  {
    med_g = (fun _ x -> x /. 0.3);
    med_f = (fun x -> x);
    med_name = "MED-linear";
  }

type max = {
  max_g : int -> float -> int -> float;
  max_f : float -> float;
  max_name : string;
}

let max_contribution x ~term m ~at =
  x.max_g term m.Match0.score (abs (m.Match0.loc - at))

let score_max_at x (m : Matchset.t) ~at =
  let sum = ref 0. in
  Array.iteri (fun j mm -> sum := !sum +. max_contribution x ~term:j mm ~at) m;
  x.max_f !sum

let score_max x (m : Matchset.t) =
  (* Maximized-at-match (Definition 8): the optimum reference point is at
     one of the member locations, so scanning those is exact for the
     instances we ship (Lemma 3). *)
  let best = ref neg_infinity in
  Array.iter
    (fun anchor ->
      let s = score_max_at x m ~at:anchor.Match0.loc in
      if s > !best then best := s)
    m;
  !best

let max_product ~alpha =
  {
    max_g = (fun _ x d -> log x -. (alpha *. float_of_int d));
    max_f = exp;
    max_name = Printf.sprintf "MAX-prod(%.2g)" alpha;
  }

let max_sum ~alpha =
  {
    max_g = (fun _ x d -> x *. exp (-.alpha *. float_of_int d));
    max_f = (fun x -> x);
    max_name = Printf.sprintf "MAX-sum(%.2g)" alpha;
  }

let max_gaussian_sum ~alpha =
  {
    max_g =
      (fun _ x d ->
        let d = float_of_int d in
        x *. exp (-.alpha *. d *. d));
    max_f = (fun x -> x);
    max_name = Printf.sprintf "MAX-gauss(%.2g)" alpha;
  }

let score_max_in_range x (m : Matchset.t) ~lo ~hi =
  let best = ref neg_infinity in
  for l = lo to hi do
    let s = score_max_at x m ~at:l in
    if s > !best then best := s
  done;
  !best

type t =
  | Win of win
  | Med of med
  | Max of max

let name = function
  | Win w -> w.win_name
  | Med d -> d.med_name
  | Max x -> x.max_name

let score t m =
  match t with
  | Win w -> score_win w m
  | Med d -> score_med d m
  | Max x -> score_max x m

let upper_bound t best_scores =
  let sum g =
    let acc = ref 0. in
    Array.iteri (fun j s -> acc := !acc +. g j s) best_scores;
    !acc
  in
  match t with
  | Win w -> w.win_f (sum w.win_g) 0
  | Med d -> d.med_f (sum d.med_g)
  | Max x -> x.max_f (sum (fun j s -> x.max_g j s 0))
