(** Algorithm 2: overall best matchset under MED scoring (Section IV).

    By Lemma 1 there is an overall best matchset whose every member is a
    dominating match (for its term) at the matchset's median location.
    After a linear-time precomputation of the per-term dominating-match
    lists, the algorithm scans all matches in location order and, at
    every match location, assembles the matchset of dominating matches
    and scores it definitionally, returning the best candidate seen.
    (The paper's variant additionally checks that the current match is
    the candidate's median; dropping the check and scoring definitionally
    is exact — see the proof note in the implementation — and robust to
    location ties, which break the literal rank test.)
    Running time [O((|Q| + log |Q|) * sum |L_j|)], space [O(sum |L_j|)]. *)

val best : Scoring.med -> Match_list.problem -> Naive.result option
(** Overall best matchset, or [None] when a list is empty. The score of
    the result equals the naive NMED score on the same input. *)

val dominating_lists : Scoring.med -> Match_list.problem -> Match0.t array array
(** The precomputed per-term dominating-match lists [V_j] (exposed for
    tests and diagnostics). *)
