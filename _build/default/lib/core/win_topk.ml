(* Each subset state holds up to k entries (g_sum, l_min, members),
   deduplicated by matchset membership and ordered by the scoring key at
   the current location. Lists are tiny (k is small), so plain sorted
   lists beat fancier structures. *)

type chain =
  | Nil
  | Cons of int * Match0.t * chain

type entry = {
  g_sum : float;
  l_min : int;
  members : chain;
  key_id : string;  (* canonical matchset identity for deduplication *)
}

let rec chain_members acc = function
  | Nil -> acc
  | Cons (term, m, rest) ->
      chain_members ((term, m.Match0.loc, m.Match0.score, m.Match0.payload) :: acc) rest

let identity_of chain =
  let members = List.sort compare (chain_members [] chain) in
  String.concat ";"
    (List.map
       (fun (t, l, s, p) -> Printf.sprintf "%d,%d,%h,%d" t l s p)
       members)

let rebuild n chain =
  let a = Array.make n None in
  let rec walk = function
    | Nil -> ()
    | Cons (j, m, rest) ->
        a.(j) <- Some m;
        walk rest
  in
  walk chain;
  Array.map
    (function
      | Some m -> m
      | None -> assert false)
    a

(* Insert an entry into a key-descending list of size <= k, dropping
   duplicates (an existing entry with the same matchset can only have a
   key at least as good: both carry the same g_sum and l_min). *)
let insert ~k ~key_at entries e =
  if List.exists (fun x -> String.equal x.key_id e.key_id) entries then entries
  else begin
    let rec place = function
      | [] -> [ e ]
      | x :: rest ->
          if key_at e > key_at x then e :: x :: rest else x :: place rest
    in
    let placed = place entries in
    if List.length placed > k then List.filteri (fun i _ -> i < k) placed
    else placed
  end

let best_k ~k (w : Scoring.win) (p : Match_list.problem) =
  if k < 0 then invalid_arg "Win_topk.best_k: negative k";
  Match_list.validate p;
  if k = 0 || Match_list.has_empty_list p then []
  else begin
    let n = Array.length p in
    let full = Pj_util.Subset.full n in
    let states : entry list array = Array.make (full + 1) [] in
    (* Global candidate pool for the Q subset: matchset identity -> best
       (true) score seen, which occurs when its last member is processed. *)
    let candidates : (string, float * chain) Hashtbl.t = Hashtbl.create 64 in
    let process ~term m =
      let g = w.Scoring.win_g term m.Match0.score in
      let l = m.Match0.loc in
      let key_at e = w.Scoring.win_key e.g_sum (l - e.l_min) in
      Pj_util.Subset.iter_by_decreasing_size n (fun s ->
          if Pj_util.Subset.mem term s then begin
            if Pj_util.Subset.equal s (Pj_util.Subset.singleton term) then begin
              let members = Cons (term, m, Nil) in
              let e = { g_sum = g; l_min = l; members; key_id = identity_of members } in
              states.(s) <- insert ~k ~key_at states.(s) e
            end
            else begin
              let sub = states.(Pj_util.Subset.remove term s) in
              List.iter
                (fun se ->
                  let members = Cons (term, m, se.members) in
                  let e =
                    {
                      g_sum = se.g_sum +. g;
                      l_min = se.l_min;
                      members;
                      key_id = identity_of members;
                    }
                  in
                  states.(s) <- insert ~k ~key_at states.(s) e)
                sub
            end
          end);
      (* Record the Q-subset entries at this location: an entry whose
         last member is m gets its true score here; aged entries only
         re-record lower values, filtered by the max-keeping table. *)
      List.iter
        (fun e ->
          let score = w.Scoring.win_f e.g_sum (l - e.l_min) in
          match Hashtbl.find_opt candidates e.key_id with
          | Some (s, _) when s >= score -> ()
          | _ -> Hashtbl.replace candidates e.key_id (score, e.members))
        states.(full)
    in
    Match_list.iter_in_location_order p process;
    Hashtbl.fold (fun _ (score, members) acc -> (score, members) :: acc)
      candidates []
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.filteri (fun i _ -> i < k)
    |> List.map (fun (score, members) ->
           { Naive.matchset = rebuild n members; score })
  end
