type t = {
  loc : int;
  score : float;
  payload : int;
}

let make ?(payload = 0) ~loc ~score () = { loc; score; payload }

let compare_by_loc a b =
  let c = compare a.loc b.loc in
  if c <> 0 then c
  else begin
    let c = compare a.score b.score in
    if c <> 0 then c else compare a.payload b.payload
  end

let equal a b = a.loc = b.loc && a.score = b.score && a.payload = b.payload

let same_token a b = a.loc = b.loc

let pp ppf m = Format.fprintf ppf "@[<h>(%d, %.3f)@]" m.loc m.score
