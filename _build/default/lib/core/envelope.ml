type contribution = Match0.t -> int -> float

(* dominates m m' l <=> c (m, l) >= c (m', l); ties count as dominance so
   that the later of two tying matches wins (footnote 4). *)
let dominates c m m' l = c m l >= c m' l

let dominating_list c (lst : Match_list.t) =
  let stack = Pj_util.Vec.create () in
  Array.iter
    (fun m ->
      let loc = m.Match0.loc in
      if
        Pj_util.Vec.is_empty stack
        || dominates c m (Pj_util.Vec.last stack) loc
      then begin
        let continue = ref true in
        while !continue && not (Pj_util.Vec.is_empty stack) do
          let top = Pj_util.Vec.last stack in
          if dominates c m top top.Match0.loc then
            ignore (Pj_util.Vec.pop stack)
          else continue := false
        done;
        Pj_util.Vec.push stack m
      end)
    lst;
  Pj_util.Vec.to_array stack

type cursor = {
  contribution : contribution;
  doms : Match0.t array;
  mutable next : int;  (* index of the first dominating match with loc > last query *)
}

let cursor c doms = { contribution = c; doms; next = 0 }

type pick = {
  chosen : Match0.t;
  succeeds : bool;
  value : float;
}

let query cur l =
  let n = Array.length cur.doms in
  if n = 0 then None
  else begin
    while cur.next < n && cur.doms.(cur.next).Match0.loc <= l do
      cur.next <- cur.next + 1
    done;
    let before = if cur.next > 0 then Some cur.doms.(cur.next - 1) else None in
    let after = if cur.next < n then Some cur.doms.(cur.next) else None in
    match (before, after) with
    | None, None -> None
    | Some m, None ->
        Some { chosen = m; succeeds = false; value = cur.contribution m l }
    | None, Some m ->
        Some { chosen = m; succeeds = true; value = cur.contribution m l }
    | Some m1, Some m2 ->
        (* Prefer the succeeding match on ties (footnote 3). *)
        let v1 = cur.contribution m1 l and v2 = cur.contribution m2 l in
        if v2 >= v1 then Some { chosen = m2; succeeds = true; value = v2 }
        else Some { chosen = m1; succeeds = false; value = v1 }
  end

let pointwise_max c (lst : Match_list.t) l =
  Array.fold_left (fun acc m -> Float.max acc (c m l)) neg_infinity lst

let pointwise_argmax c (lst : Match_list.t) l =
  (* Ties toward the later match, consistent with [dominating_list]. *)
  let best = ref None in
  Array.iter
    (fun m ->
      let v = c m l in
      match !best with
      | Some (_, bv) when bv > v -> ()
      | _ -> best := Some (m, v))
    lst;
  !best

let interval_pairs c (lst : Match_list.t) ~lo ~hi =
  if Array.length lst = 0 || lo > hi then []
  else begin
    let segments = ref [] in
    let current = ref None in
    for l = lo to hi do
      match pointwise_argmax c lst l with
      | None -> ()
      | Some (m, _) -> begin
          match !current with
          | Some (a, _, m') when Match0.equal m m' ->
              current := Some (a, l, m')
          | Some seg ->
              segments := seg :: !segments;
              current := Some (l, l, m)
          | None -> current := Some (l, l, m)
        end
    done;
    (match !current with
    | Some seg -> segments := seg :: !segments
    | None -> ());
    List.rev !segments
  end
