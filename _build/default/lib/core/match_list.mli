(** Match lists and join-problem instances (Definition 1).

    A problem instance holds one match list per query term; each list is
    sorted by increasing location, as produced by a document scan or by
    merging inverted lists. *)

type t = Match0.t array
(** One match list, sorted by [Match0.compare_by_loc]. *)

type problem = t array
(** One list per query term; index [j] is the list for term [j]. *)

val of_unsorted : Match0.t array -> t
(** Sort a copy of the given matches into a valid match list. *)

val is_sorted : t -> bool

val validate : problem -> unit
(** Raises [Invalid_argument] if any list is unsorted or the problem has
    no term. Empty lists are allowed (the join result is then [None]). *)

val n_terms : problem -> int

val total_size : problem -> int
(** Sum of the match-list sizes, the input-size measure of the paper. *)

val has_empty_list : problem -> bool
(** True iff some term has no match, in which case no matchset exists. *)

val duplicate_count : problem -> int
(** Number of matches whose location also appears in another list
    (the duplicate-frequency numerator of Section VIII, footnote 8). *)

val duplicate_frequency : problem -> float
(** [duplicate_count / total_size]; 0 for an empty problem. *)

val iter_in_location_order : problem -> (term:int -> Match0.t -> unit) -> unit
(** Visit every match of every list in increasing location order
    (k-way merge). Co-located matches are visited in a deterministic
    order: by [Match0.compare_by_loc], then by term index. *)

val locations : problem -> int array
(** Sorted array of the distinct locations appearing in the problem. *)

val merge : t -> t -> t
(** Union of two match lists for the same term, sorted; when both lists
    contain a match at the same location, the higher-scoring one is
    kept (the per-location best of both sources) — the combinator for
    assembling a term's list from several matchers (e.g. token-level
    plus phrase-level). *)

val remove_match : problem -> term:int -> Match0.t -> problem
(** A copy of the problem with one occurrence of the given match deleted
    from the given term's list (used by the Section VI duplicate
    handler). The match must be present. *)

val pp : Format.formatter -> problem -> unit
