(* Best partial matchsets are shared persistently: each state points at
   the state it extends, so an update is O(1) and the final matchset is
   rebuilt once at the end. Score comparisons go through the scoring
   function's comparison key (a strictly increasing transform of f),
   which keeps e.g. exponentials out of the inner subset loop. *)
type chain =
  | Nil
  | Cons of int * Match0.t * chain  (* term, match, rest *)

type state = {
  mutable live : bool;       (* is there a P-matchset yet? *)
  mutable g_sum : float;     (* sum of g_j over the members *)
  mutable l_min : int;       (* smallest member location *)
  mutable members : chain;
}

let rebuild n chain =
  let a = Array.make n None in
  let rec walk = function
    | Nil -> ()
    | Cons (j, m, rest) ->
        a.(j) <- Some m;
        walk rest
  in
  walk chain;
  Array.map
    (function
      | Some m -> m
      | None -> assert false)
    a

let best (w : Scoring.win) (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then None
  else begin
    let n = Array.length p in
    let full = Pj_util.Subset.full n in
    let states =
      Array.init (full + 1) (fun _ ->
          { live = false; g_sum = 0.; l_min = 0; members = Nil })
    in
    let key = w.Scoring.win_key in
    let best_key = ref neg_infinity in
    let best_g = ref 0. in
    let best_window = ref 0 in
    let best_chain = ref Nil in
    let have_best = ref false in
    let process ~term m =
      let g = w.Scoring.win_g term m.Match0.score in
      let l = m.Match0.loc in
      (* Visit subsets containing [term] from larger to smaller so that
         P \ {term} still holds its value at the previous location. *)
      Pj_util.Subset.iter_by_decreasing_size n (fun s ->
          if Pj_util.Subset.mem term s then begin
            let st = states.(s) in
            if Pj_util.Subset.equal s (Pj_util.Subset.singleton term) then begin
              (* Best single-term matchset at l: either keep the previous
                 best (aged to l) or restart at m with window 0. *)
              if (not st.live) || key st.g_sum (l - st.l_min) < key g 0 then begin
                st.live <- true;
                st.g_sum <- g;
                st.l_min <- l;
                st.members <- Cons (term, m, Nil)
              end
            end
            else begin
              let sub = states.(Pj_util.Subset.remove term s) in
              if sub.live then begin
                let cand_g = sub.g_sum +. g in
                let cand_lmin = sub.l_min in
                if
                  (not st.live)
                  || key st.g_sum (l - st.l_min) < key cand_g (l - cand_lmin)
                then begin
                  st.live <- true;
                  st.g_sum <- cand_g;
                  st.l_min <- cand_lmin;
                  st.members <- Cons (term, m, sub.members)
                end
              end
            end
          end);
      let q = states.(full) in
      if q.live then begin
        let k = key q.g_sum (l - q.l_min) in
        if (not !have_best) || k > !best_key then begin
          have_best := true;
          best_key := k;
          best_g := q.g_sum;
          best_window := l - q.l_min;
          best_chain := q.members
        end
      end
    in
    Match_list.iter_in_location_order p process;
    if !have_best then
      Some
        {
          Naive.matchset = rebuild n !best_chain;
          score = w.Scoring.win_f !best_g !best_window;
        }
    else None
  end

(* Extension beyond the paper's Section VI wrapper: an exact
   duplicate-aware variant of Algorithm 1 in the same O(2^|Q| sum |L|)
   bound. A valid matchset uses at most one match per location, so it is
   enough to process matches one location group at a time and extend
   only the states as they were before the group: within a group, a
   match can then never join a partial matchset containing a co-located
   match. The cut-and-paste optimality argument carries over unchanged,
   with groups in place of single matches. *)
let best_valid (w : Scoring.win) (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then None
  else begin
    let n = Array.length p in
    let full = Pj_util.Subset.full n in
    let states =
      Array.init (full + 1) (fun _ ->
          { live = false; g_sum = 0.; l_min = 0; members = Nil })
    in
    let snapshot =
      Array.init (full + 1) (fun _ ->
          { live = false; g_sum = 0.; l_min = 0; members = Nil })
    in
    let key = w.Scoring.win_key in
    let best_key = ref neg_infinity in
    let best_g = ref 0. in
    let best_window = ref 0 in
    let best_chain = ref Nil in
    let have_best = ref false in
    (* Collect the matches of one location group, then fold them in. *)
    let group : (int * Match0.t) list ref = ref [] in
    let group_loc = ref min_int in
    let flush_group () =
      match !group with
      | [] -> ()
      | members ->
          let l = !group_loc in
          for s = 0 to full do
            let st = states.(s) and sn = snapshot.(s) in
            sn.live <- st.live;
            sn.g_sum <- st.g_sum;
            sn.l_min <- st.l_min;
            sn.members <- st.members
          done;
          (* Extensions read the snapshot (pre-group states), so no two
             co-located matches can enter the same partial matchset. *)
          List.iter
            (fun (term, m) ->
              let g = w.Scoring.win_g term m.Match0.score in
              Pj_util.Subset.iter_nonempty n (fun s ->
                  if Pj_util.Subset.mem term s then begin
                    let st = states.(s) in
                    let consider cand_g cand_lmin cand_members =
                      if
                        (not st.live)
                        || key st.g_sum (l - st.l_min)
                           < key cand_g (l - cand_lmin)
                      then begin
                        st.live <- true;
                        st.g_sum <- cand_g;
                        st.l_min <- cand_lmin;
                        st.members <- cand_members
                      end
                    in
                    if Pj_util.Subset.equal s (Pj_util.Subset.singleton term)
                    then consider g l (Cons (term, m, Nil))
                    else begin
                      let sub = snapshot.(Pj_util.Subset.remove term s) in
                      if sub.live then
                        consider (sub.g_sum +. g) sub.l_min
                          (Cons (term, m, sub.members))
                    end
                  end))
            members;
          let q = states.(full) in
          if q.live then begin
            let k = key q.g_sum (l - q.l_min) in
            if (not !have_best) || k > !best_key then begin
              have_best := true;
              best_key := k;
              best_g := q.g_sum;
              best_window := l - q.l_min;
              best_chain := q.members
            end
          end;
          group := []
    in
    Match_list.iter_in_location_order p (fun ~term m ->
        if m.Match0.loc <> !group_loc then begin
          flush_group ();
          group_loc := m.Match0.loc
        end;
        group := (term, m) :: !group);
    flush_group ();
    if !have_best then
      Some
        {
          Naive.matchset = rebuild n !best_chain;
          score = w.Scoring.win_f !best_g !best_window;
        }
    else None
  end

(* Order-constrained variant: members must appear in query-term order,
   so a partial matchset is always a prefix {q_1..q_k} and the DP keeps
   one state per prefix. When processing a match for term k at location
   l, it can only extend the best (k-1)-prefix at a location <= l —
   which is exactly the prefix state at the previous processing step,
   by the same cut-and-paste argument as Algorithm 1. Ties in location
   are processed in increasing term order so that a term-k match can
   extend a co-located term-(k-1) match (the constraint is non-strict). *)
let iter_by_location_then_term (p : Match_list.problem) f =
  let all = Pj_util.Vec.create () in
  Array.iteri
    (fun term l -> Array.iter (fun m -> Pj_util.Vec.push all (term, m)) l)
    p;
  let arr = Pj_util.Vec.to_array all in
  Array.sort
    (fun (ta, ma) (tb, mb) ->
      let c = compare ma.Match0.loc mb.Match0.loc in
      if c <> 0 then c
      else begin
        let c = compare ta tb in
        if c <> 0 then c else Match0.compare_by_loc ma mb
      end)
    arr;
  Array.iter (fun (term, m) -> f ~term m) arr

let best_ordered (w : Scoring.win) (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then None
  else begin
    let n = Array.length p in
    (* states.(k): best ordered matchset over terms 0..k. *)
    let states =
      Array.init n (fun _ ->
          { live = false; g_sum = 0.; l_min = 0; members = Nil })
    in
    let key = w.Scoring.win_key in
    let best_key = ref neg_infinity in
    let best_g = ref 0. in
    let best_window = ref 0 in
    let best_chain = ref Nil in
    let have_best = ref false in
    let process ~term m =
      let g = w.Scoring.win_g term m.Match0.score in
      let l = m.Match0.loc in
      let st = states.(term) in
      if term = 0 then begin
        if (not st.live) || key st.g_sum (l - st.l_min) < key g 0 then begin
          st.live <- true;
          st.g_sum <- g;
          st.l_min <- l;
          st.members <- Cons (term, m, Nil)
        end
      end
      else begin
        let sub = states.(term - 1) in
        if sub.live then begin
          let cand_g = sub.g_sum +. g in
          if
            (not st.live)
            || key st.g_sum (l - st.l_min) < key cand_g (l - sub.l_min)
          then begin
            st.live <- true;
            st.g_sum <- cand_g;
            st.l_min <- sub.l_min;
            st.members <- Cons (term, m, sub.members)
          end
        end
      end;
      let q = states.(n - 1) in
      if q.live then begin
        let k = key q.g_sum (l - q.l_min) in
        if (not !have_best) || k > !best_key then begin
          have_best := true;
          best_key := k;
          best_g := q.g_sum;
          best_window := l - q.l_min;
          best_chain := q.members
        end
      end
    in
    iter_by_location_then_term p process;
    if !have_best then
      Some
        {
          Naive.matchset = rebuild n !best_chain;
          score = w.Scoring.win_f !best_g !best_window;
        }
    else None
  end
