lib/core/matchset.mli: Format Match0
