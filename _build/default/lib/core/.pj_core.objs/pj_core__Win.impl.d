lib/core/win.ml: Array List Match0 Match_list Naive Pj_util Scoring
