lib/core/by_location.mli: Anchored Match_list Matchset Scoring
