lib/core/anchored.mli: Matchset
