lib/core/win_stream.mli: Anchored Match0 Match_list Scoring
