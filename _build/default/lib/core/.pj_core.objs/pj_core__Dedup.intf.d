lib/core/dedup.mli: Match_list Naive
