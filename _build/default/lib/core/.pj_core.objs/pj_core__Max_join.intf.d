lib/core/max_join.mli: Match0 Match_list Naive Scoring
