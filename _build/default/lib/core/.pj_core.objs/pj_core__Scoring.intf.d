lib/core/scoring.mli: Match0 Matchset
