lib/core/match0.mli: Format
