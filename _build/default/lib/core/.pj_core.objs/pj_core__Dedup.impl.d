lib/core/dedup.ml: Array Hashtbl Int List Map Match0 Match_list Matchset Naive Option Pj_util Seq Set
