lib/core/med.ml: Array Envelope Match0 Match_list Naive Scoring
