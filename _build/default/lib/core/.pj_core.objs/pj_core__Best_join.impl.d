lib/core/best_join.ml: Array By_location Dedup List Match_list Max_join Med Naive Scoring Win
