lib/core/match0.ml: Format
