lib/core/anchored.ml: List Matchset
