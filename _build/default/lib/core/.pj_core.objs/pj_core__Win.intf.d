lib/core/win.mli: Match_list Naive Scoring
