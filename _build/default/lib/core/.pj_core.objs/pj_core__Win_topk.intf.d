lib/core/win_topk.mli: Match_list Naive Scoring
