lib/core/match_list.ml: Array Format Int List Match0 Printf Seq Set
