lib/core/med_selection.mli: Match0
