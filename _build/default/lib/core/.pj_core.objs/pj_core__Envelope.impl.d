lib/core/envelope.ml: Array Float List Match0 Match_list Pj_util
