lib/core/win_topk.ml: Array Hashtbl List Match0 Match_list Naive Pj_util Printf Scoring String
