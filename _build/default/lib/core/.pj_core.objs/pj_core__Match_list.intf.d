lib/core/match_list.mli: Format Match0
