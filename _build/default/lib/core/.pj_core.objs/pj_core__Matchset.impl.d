lib/core/matchset.ml: Array Format Match0 Stdlib
