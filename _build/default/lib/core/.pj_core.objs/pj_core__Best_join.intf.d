lib/core/best_join.mli: By_location Dedup Match_list Naive Scoring
