lib/core/max_stream.mli: Anchored Match0 Match_list Scoring
