lib/core/envelope.mli: Match0 Match_list
