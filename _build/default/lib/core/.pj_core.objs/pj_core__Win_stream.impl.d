lib/core/win_stream.ml: Anchored Array List Match0 Match_list Pj_util Scoring
