lib/core/med_selection.ml: Array Match0
