lib/core/med_stream.ml: Anchored Array Float List Match0 Match_list Med_selection Queue Scoring
