lib/core/naive.ml: Array Match_list Matchset Scoring Stdlib
