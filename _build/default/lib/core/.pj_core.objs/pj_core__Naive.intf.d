lib/core/naive.mli: Match_list Matchset Scoring
