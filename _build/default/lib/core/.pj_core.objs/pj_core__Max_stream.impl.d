lib/core/max_stream.ml: Anchored Array Float List Match0 Match_list Option Pj_util Queue Scoring
