lib/core/med.mli: Match0 Match_list Naive Scoring
