lib/core/scoring.ml: Array Match0 Matchset Printf
