lib/core/by_location.ml: Anchored Array Envelope List Match0 Match_list Matchset Med_selection Scoring Win_stream
