lib/core/max_join.ml: Array Envelope List Match0 Match_list Naive Scoring
