type result = {
  matchset : Matchset.t;
  score : float;
}

let iter_matchsets (p : Match_list.problem) f =
  let n = Array.length p in
  if not (Match_list.has_empty_list p) then begin
    let current = Array.make n p.(0).(0) in
    let rec fill j =
      if j = n then f current
      else
        Array.iter
          (fun m ->
            current.(j) <- m;
            fill (j + 1))
          p.(j)
    in
    fill 0
  end

let count_matchsets (p : Match_list.problem) =
  Array.fold_left
    (fun acc l ->
      let len = Array.length l in
      if len = 0 then 0
      else if acc > max_int / (Stdlib.max len 1) then max_int
      else acc * len)
    1 p

let best_where keep scoring (p : Match_list.problem) =
  Match_list.validate p;
  let best = ref None in
  iter_matchsets p (fun m ->
      if keep m then begin
        let s = Scoring.score scoring m in
        match !best with
        | Some r when r.score >= s -> ()
        | _ -> best := Some { matchset = Array.copy m; score = s }
      end);
  !best

let best scoring p = best_where (fun _ -> true) scoring p

let best_valid scoring p = best_where Matchset.is_valid scoring p
