(* Anchors wait in a queue until settled. An anchor at location l is
   settled at scan position pos when, for every term, the best
   strictly-after candidate seen so far has (g - loc) at least
   g_bound - pos: any later match (loc >= pos) contributes at most
   (g_bound - loc + l) <= (g_bound - pos) + l to the anchor, so it can
   no longer change any selection option. Left and at-anchor options are
   frozen the moment the anchor's location group closes. *)

type pending = {
  anchor : int;
  members : (int * Match0.t) list;  (* the anchor-member candidates *)
  frozen : Med_selection.options array;
      (* left/at options per term; right filled at settlement *)
  right_key : float array;          (* running max of g - loc, per term *)
  right_match : Match0.t option array;
}

type t = {
  scoring : Scoring.med;
  n_terms : int;
  g_bound : float;
  (* running best strictly-left candidate per term: max of g + loc *)
  left_key : float array;
  left_match : Match0.t option array;
  pending : pending Queue.t;
  mutable group : (int * Match0.t) list;
  mutable group_loc : int;
  mutable closed : bool;
}

let create scoring ~n_terms ~g_bound =
  if n_terms < 1 then invalid_arg "Med_stream.create: n_terms < 1";
  {
    scoring;
    n_terms;
    g_bound;
    left_key = Array.make n_terms neg_infinity;
    left_match = Array.make n_terms None;
    pending = Queue.create ();
    group = [];
    group_loc = min_int;
    closed = false;
  }

let g_of t term m = t.scoring.Scoring.med_g term m.Match0.score

(* Settle one pending anchor: build the full options array and run the
   selection DP for every anchor-member candidate. *)
let emit t (p : pending) =
  let n = t.n_terms in
  let options =
    Array.mapi
      (fun j frozen ->
        let right =
          match p.right_match.(j) with
          | None -> None
          | Some m -> Some (p.right_key.(j) +. float_of_int p.anchor, m)
        in
        { frozen with Med_selection.right })
      p.frozen
  in
  let best = ref None in
  List.iter
    (fun (term, m) ->
      let others =
        Array.of_list
          (List.filter_map
             (fun j -> if j = term then None else Some options.(j))
             (List.init n (fun j -> j)))
      in
      match Med_selection.select n others with
      | None -> ()
      | Some picks ->
          let matchset = Array.make n m in
          let k = ref 0 in
          for j = 0 to n - 1 do
            if j <> term then begin
              matchset.(j) <- picks.(!k);
              incr k
            end
          done;
          let s = Scoring.score_med t.scoring matchset in
          (match !best with
          | Some (s', _) when s' >= s -> ()
          | _ -> best := Some (s, matchset)))
    p.members;
  match !best with
  | None -> None
  | Some (score, matchset) ->
      Some { Anchored.anchor = p.anchor; matchset; score }

let settled t (p : pending) ~pos =
  let ok = ref true in
  for j = 0 to t.n_terms - 1 do
    if p.right_key.(j) < t.g_bound -. pos then ok := false
  done;
  !ok

(* Emit settled anchors from the front of the queue, preserving anchor
   order (a later anchor is held until every earlier one is out). *)
let drain t ~pos =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.pending with
    | Some p when settled t p ~pos ->
        ignore (Queue.pop t.pending);
        (match emit t p with
        | Some e -> out := e :: !out
        | None -> ())
    | Some _ | None -> continue := false
  done;
  List.rev !out

(* Close the buffered location group into a pending anchor. *)
let close_group t =
  match t.group with
  | [] -> ()
  | group ->
      let l = t.group_loc in
      let n = t.n_terms in
      (* This group lies strictly after every older pending anchor. *)
      Queue.iter
        (fun p ->
          List.iter
            (fun (term, m) ->
              let key = g_of t term m -. float_of_int m.Match0.loc in
              if key > p.right_key.(term) then begin
                p.right_key.(term) <- key;
                p.right_match.(term) <- Some m
              end)
            group)
        t.pending;
      (* Freeze left and at options for the new anchor. *)
      let at_key = Array.make n neg_infinity in
      let at_match = Array.make n None in
      List.iter
        (fun (term, m) ->
          let g = g_of t term m in
          if g >= at_key.(term) then begin
            at_key.(term) <- g;
            at_match.(term) <- Some m
          end)
        group;
      let frozen =
        Array.init n (fun j ->
            {
              Med_selection.left =
                (match t.left_match.(j) with
                | None -> None
                | Some m -> Some (t.left_key.(j) -. float_of_int l, m));
              at =
                (match at_match.(j) with
                | None -> None
                | Some m -> Some (at_key.(j), m));
              right = None;
            })
      in
      Queue.add
        {
          anchor = l;
          members = List.rev group;
          frozen;
          right_key = Array.make n neg_infinity;
          right_match = Array.make n None;
        }
        t.pending;
      (* The group now belongs to the strict left of future anchors. *)
      List.iter
        (fun (term, m) ->
          let key = g_of t term m +. float_of_int m.Match0.loc in
          if key > t.left_key.(term) then begin
            t.left_key.(term) <- key;
            t.left_match.(term) <- Some m
          end)
        group;
      t.group <- []

let feed t ~term m =
  if t.closed then invalid_arg "Med_stream.feed: stream is finished";
  if term < 0 || term >= t.n_terms then
    invalid_arg "Med_stream.feed: bad term index";
  if m.Match0.loc < t.group_loc then
    invalid_arg "Med_stream.feed: locations must be non-decreasing";
  if g_of t term m > t.g_bound +. 1e-12 then
    invalid_arg "Med_stream.feed: contribution above g_bound";
  let emitted =
    if m.Match0.loc > t.group_loc then begin
      close_group t;
      t.group_loc <- m.Match0.loc;
      drain t ~pos:(float_of_int m.Match0.loc)
    end
    else []
  in
  t.group <- (term, m) :: t.group;
  emitted

let finish t =
  if t.closed then invalid_arg "Med_stream.finish: stream is finished";
  t.closed <- true;
  close_group t;
  drain t ~pos:infinity

let pending_count t =
  Queue.length t.pending + (match t.group with [] -> 0 | _ -> 1)

let default_bound d (p : Match_list.problem) =
  let bound = ref neg_infinity in
  Array.iteri
    (fun j l ->
      Array.iter
        (fun m -> bound := Float.max !bound (d.Scoring.med_g j m.Match0.score))
        l)
    p;
  !bound

let run ?g_bound d (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then []
  else begin
    let g_bound =
      match g_bound with
      | Some b -> b
      | None -> default_bound d p
    in
    let t = create d ~n_terms:(Array.length p) ~g_bound in
    let out = ref [] in
    Match_list.iter_in_location_order p (fun ~term m ->
        List.iter (fun e -> out := e :: !out) (feed t ~term m));
    List.iter (fun e -> out := e :: !out) (finish t);
    List.rev !out
  end
