(** Less-blocking best-matchset-by-location for MAX scoring — the MAX
    counterpart of {!Med_stream}, also from Section VII's closing
    future-work remark.

    The best matchset with reference point [l] consists of each term's
    maximum-contribution match at [l]. Contributions decay with
    distance, so given a non-increasing bound [decay d] on the
    contribution any match can make from distance [d] (e.g.
    [exp (-alpha d)] for Eq. (5) with scores in (0, 1]), an anchor is
    final once the scan position [pos] satisfies
    [best_j >= decay (pos - l)] for every term [j]: no future match can
    enter the dominating matchset at [l]. The frozen left side of each
    anchor comes from an online version of Algorithm 2's dominating
    stack (exact for at-most-one-crossing contributions, Definition 8);
    the right side is maintained incrementally.

    Matches must be fed in non-decreasing location order. *)

type t

val create :
  Scoring.max -> n_terms:int -> decay:(int -> float) -> t
(** [decay d] must bound [max_g j score d] over every term and feedable
    score, and be non-increasing in [d]. *)

val feed : t -> term:int -> Match0.t -> Anchored.entry list
(** Push the next match; returns the anchors settled by this advance, in
    increasing anchor order. Raises [Invalid_argument] on out-of-order
    locations, a bad term index, or a contribution above [decay 0]. *)

val finish : t -> Anchored.entry list
(** Close the stream, emitting every remaining anchor (anchors for
    which some term never matched are dropped, matching
    [By_location.max_] on problems with an empty list). *)

val pending_count : t -> int

val run :
  ?decay:(int -> float) ->
  Scoring.max ->
  Match_list.problem ->
  Anchored.entry list
(** Drive a whole problem through a fresh stream. [decay] defaults to
    [fun d -> max_j max_g j s_max d] with [s_max] the largest score in
    the problem. The result equals [By_location.max_] on the same
    input. *)
