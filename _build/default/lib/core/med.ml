let contribution (d : Scoring.med) ~term : Envelope.contribution =
 fun m l -> Scoring.med_contribution d ~term m ~at:l

let dominating_lists d (p : Match_list.problem) =
  Array.mapi (fun j l -> Envelope.dominating_list (contribution d ~term:j) l) p

(* Algorithm 2 checks that the current match is the median of the
   assembled candidate before considering it; that check is brittle under
   location ties (co-located matches shift ranks without shifting the
   median value). We use a strictly stronger and simpler criterion
   instead: score every dominating candidate definitionally. This is
   exact because, writing C(l) for the candidate of dominating matches at
   location l and S_j for the contribution upper envelopes,

     score_MED (C(l)) = f (sum_j c_j (C_j, median C(l)))
                     >= f (sum_j c_j (C_j, l))          (the median of a
                        matchset minimizes its total distance, so moving
                        the reference point to median C(l) cannot lower
                        the sum)
                      = f (sum_j S_j (l)),

   while for the median location l0 of an overall best matchset M
   (which consists of dominating matches at l0 by Lemma 1),

     f (sum_j S_j (l0)) >= f (sum_j c_j (M_j, l0)) = score_MED (M).

   Hence score_MED (C(l0)) reaches the optimum, every candidate scores at
   most the optimum, and the best candidate over all match locations is
   an overall best matchset. *)
let best (d : Scoring.med) (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then None
  else begin
    let n = Array.length p in
    let doms = dominating_lists d p in
    let cursors =
      Array.init n (fun j -> Envelope.cursor (contribution d ~term:j) doms.(j))
    in
    let best = ref None in
    let candidate = Array.make n (Match0.make ~loc:0 ~score:0. ()) in
    let last_location = ref min_int in
    let consider ~term:_ m =
      let l = m.Match0.loc in
      if l <> !last_location then begin
        last_location := l;
        for j = 0 to n - 1 do
          match Envelope.query cursors.(j) l with
          | None -> assert false (* lists are non-empty *)
          | Some pick -> candidate.(j) <- pick.Envelope.chosen
        done;
        let s = Scoring.score_med d candidate in
        match !best with
        | Some r when r.Naive.score >= s -> ()
        | _ -> best := Some { Naive.matchset = Array.copy candidate; score = s }
      end
    in
    Match_list.iter_in_location_order p consider;
    !best
  end
