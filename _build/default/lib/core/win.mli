(** Algorithm 1: overall best matchset under WIN scoring (Section III).

    A dynamic program over the nonempty subsets P of the query terms:
    matches are processed in location order, and for every P a best
    partial P-matchset at the current location is maintained, using the
    optimal substructure property of [f] to carry bests forward. Running
    time [O(2^|Q| * sum |L_j|)]; space [O(|Q| * 2^|Q|)]. *)

val best : Scoring.win -> Match_list.problem -> Naive.result option
(** Overall best matchset, or [None] when a list is empty. The score of
    the result equals the naive NWIN score on the same input. *)

val best_ordered : Scoring.win -> Match_list.problem -> Naive.result option
(** Extension: the overall best matchset whose member locations respect
    the query-term order ([loc m_1 <= loc m_2 <= ...]) — the "order
    constraint" of Cheng et al.'s EntityRank, which Eq. (1) drops.
    Under the constraint only prefix subsets of the query can carry best
    partial matchsets, so the DP runs in [O(|Q| * sum |L_j|)] — without
    the [2^|Q|] factor. [None] when no ordered matchset exists. *)

val best_valid : Scoring.win -> Match_list.problem -> Naive.result option
(** Extension beyond the paper's generic Section VI wrapper: the best
    {e valid} matchset (no duplicate matches), computed directly by a
    duplicate-aware variant of Algorithm 1 in the same
    [O(2^|Q| * sum |L_j|)] bound. Matches are folded in one location
    group at a time against a snapshot of the pre-group states, so no
    partial matchset ever acquires two co-located members. [None] when
    a list is empty or no valid matchset exists. *)
