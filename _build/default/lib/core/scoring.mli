(** Matchset scoring functions (Definitions 3, 5 and 7).

    Each family is represented by first-class records holding the [f]
    and [g_j] components, so that the join algorithms work for any
    function in the family while the concrete instances of the paper are
    provided ready-made. *)

(** {1 Window-length (WIN), Definition 3} *)

type win = {
  win_g : int -> float -> float;
      (** [win_g j score]: the monotonically increasing per-term
          transform g_j of the individual match score. *)
  win_f : float -> int -> float;
      (** [win_f gsum window]: monotonically increasing in the first
          argument, decreasing in the second, and satisfying the optimal
          substructure property of Definition 3. *)
  win_key : float -> int -> float;
      (** A strictly increasing transform of [win_f], used for score
          comparisons in the inner loops of Algorithm 1 — e.g. for
          Eq. (1)'s [exp (x - alpha y)] the key is [x - alpha y], which
          avoids an exponential per comparison. Must order pairs exactly
          as [win_f] does; defaults to [win_f] in the provided
          constructors when no cheaper form exists. *)
  win_name : string;
}

val score_win : win -> Matchset.t -> float
(** Definitional WIN score: [f (sum_j g_j score_j) (window M)]. *)

val win_exponential : alpha:float -> win
(** Equation (1): [(prod score_j) * exp (-alpha * window)] — the
    approximation of Cheng et al.'s EntityRank scoring, with
    [g_j = ln] and [f (x, y) = exp (x - alpha y)]. *)

val win_linear : win
(** Footnote 9's TREC instance: [g_j x = x / 0.3], [f (x, y) = x - y]. *)

(** {1 Distance-from-median (MED), Definition 5} *)

type med = {
  med_g : int -> float -> float;  (** monotonically increasing g_j *)
  med_f : float -> float;         (** monotonically increasing f *)
  med_name : string;
}

val med_contribution : med -> term:int -> Match0.t -> at:int -> float
(** Distance-decayed score contribution
    [c_j (m, l) = g_j (score m) - |loc m - l|]. *)

val score_med : med -> Matchset.t -> float
(** Definitional MED score: [f (sum_j c_j (m_j, median M))]. *)

val med_exponential : alpha:float -> med
(** Equation (3): [prod (score_j * exp (-alpha |loc_j - median|))], with
    [g_j x = ln x / alpha] and [f x = exp (alpha x)]. *)

val med_linear : med
(** Footnote 9's TREC instance: [g_j x = x / 0.3], [f x = x]. *)

(** {1 Maximize-over-location (MAX), Definition 7} *)

type max = {
  max_g : int -> float -> int -> float;
      (** [max_g j score dist]: g_j, increasing in the score and
          decreasing in the distance. *)
  max_f : float -> float;  (** monotonically increasing f *)
  max_name : string;
}

val max_contribution : max -> term:int -> Match0.t -> at:int -> float
(** Contribution [c_j (m, l) = g_j (score m) |loc m - l|]. *)

val score_max_at : max -> Matchset.t -> at:int -> float
(** The matchset score with the reference point fixed at a location:
    [f (sum_j c_j (m_j, l))]. *)

val score_max : max -> Matchset.t -> float
(** Definitional MAX score, [max_l score_max_at l]. Exact for
    maximized-at-match scoring functions (Definition 8) — the maximum is
    taken over the member locations, which is where both Eq. (4) and
    Eq. (5) attain it (Lemma 3). *)

val max_product : alpha:float -> max
(** Equation (4): [max_l prod (score_j * exp (-alpha |loc_j - l|))],
    with [g_j (x, y) = ln x - alpha y] and [f = exp]. *)

val max_sum : alpha:float -> max
(** Equation (5): [max_l sum (score_j * exp (-alpha |loc_j - l|))],
    with [g_j (x, y) = x exp (-alpha y)] and [f = id] — the
    generalization of Chakrabarti et al.'s scoring. *)

val max_gaussian_sum : alpha:float -> max
(** [max_l sum (score_j * exp (-alpha (loc_j - l)^2))]: Gaussian decay.
    At-most-one-crossing (the log-contribution difference of two matches
    is linear in [l]) but {e not} maximized-at-match — two nearby equal
    matches peak between their locations — so [score_max] and the
    specialized algorithm underestimate it; use [score_max_in_range] and
    [Max_join.best_general]. Provided as the documented counterexample
    for Definition 8's maximized-at-match requirement. *)

val score_max_in_range : max -> Matchset.t -> lo:int -> hi:int -> float
(** MAX score with the reference point ranging over the integer
    locations [lo..hi] — the definitional score for MAX functions
    without the maximized-at-match property. *)

(** {1 Uniform view} *)

type t =
  | Win of win
  | Med of med
  | Max of max

val name : t -> string

val score : t -> Matchset.t -> float
(** Definitional score under any family. *)

val upper_bound : t -> float array -> float
(** [upper_bound scoring best_scores] bounds the score of any matchset
    whose member for term [j] has individual score at most
    [best_scores.(j)]: the proximity penalty is dropped (window 0 /
    distance 0), leaving [f] of the summed per-term maxima. Used for
    candidate pruning in top-k document search. *)
