type t = Match0.t array

let min_loc (m : t) =
  assert (Array.length m > 0);
  Array.fold_left (fun acc x -> Stdlib.min acc x.Match0.loc) max_int m

let max_loc (m : t) =
  assert (Array.length m > 0);
  Array.fold_left (fun acc x -> Stdlib.max acc x.Match0.loc) min_int m

let window m = max_loc m - min_loc m

let median_loc (m : t) =
  let n = Array.length m in
  assert (n > 0);
  let locs = Array.map (fun x -> x.Match0.loc) m in
  (* Rank by value, greatest first; pick the floor((n+1)/2)-th. *)
  Array.sort (fun a b -> compare b a) locs;
  locs.(((n + 1) / 2) - 1)

let is_valid (m : t) =
  let n = Array.length m in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Match0.same_token m.(i) m.(j) then ok := false
    done
  done;
  !ok

let locations (m : t) = Array.map (fun x -> x.Match0.loc) m

let equal (a : t) b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if not (Match0.equal x b.(i)) then ok := false) a;
       !ok
     end

let pp ppf (m : t) =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Match0.pp)
    m
