type solver = Match_list.problem -> Naive.result option

type stats = { invocations : int }

(* Group the members of a matchset by location; groups of size >= 2 are
   duplicate uses of one token. Returns the (term, match) members per
   group. *)
let duplicate_groups (m : Matchset.t) =
  let module Imap = Map.Make (Int) in
  let groups =
    Array.to_seq m
    |> Seq.mapi (fun j x -> (j, x))
    |> Seq.fold_left
         (fun acc (j, x) ->
           Imap.update x.Match0.loc
             (function
               | None -> Some [ (j, x) ]
               | Some l -> Some ((j, x) :: l))
             acc)
         Imap.empty
  in
  Imap.fold
    (fun _ members acc -> if List.length members >= 2 then members :: acc else acc)
    groups []

(* All ways of keeping each duplicated match in exactly one of the lists
   that used it: the cross product of per-group keeper choices. Each
   choice yields the list of (term, match) removals to apply. *)
let removal_plans groups =
  let rec expand = function
    | [] -> [ [] ]
    | group :: rest ->
        let rest_plans = expand rest in
        List.concat_map
          (fun (keep_term, _) ->
            let removals =
              List.filter_map
                (fun (j, x) -> if j = keep_term then None else Some (j, x))
                group
            in
            List.map (fun plan -> removals @ plan) rest_plans)
          group
  in
  expand groups

(* Exactness of the search: a valid matchset survives in the branch that
   keeps, for every duplicated token, the term (if any) for which the
   matchset uses it, so the exhaustive branch cross product always
   contains the best valid matchset. The search is organized best-first
   with branch-and-bound: deleting matches can only lower an instance's
   (duplicate-unaware) optimum, so a parent's score bounds every valid
   matchset in its subtree. Instances are expanded in decreasing bound
   order and the search stops as soon as the best pending bound cannot
   beat the best valid matchset found — which keeps the number of solver
   invocations small (around the paper's reported 10-12 per document)
   even at 60% duplicate frequency. Repeated removal sets are solved
   once. *)
type node = {
  bound : float;  (* parent's duplicate-unaware optimum; +inf at the root *)
  problem : Match_list.problem;
  removals : (int * Match0.t) list;  (* sorted: the memoization key *)
}

(* A fully disambiguated copy of the problem: every location occurring
   in several lists keeps its match only in the list where it scores
   highest (ties toward the lower term index). Any matchset of the
   disambiguated instance is valid, so solving it yields an immediate
   valid incumbent whose score seeds the branch-and-bound pruning. *)
let disambiguate (p : Match_list.problem) =
  (* Per location: the set of terms using it and the best (score, term). *)
  let module Iset = Set.Make (Int) in
  let terms_at : (int, Iset.t) Hashtbl.t = Hashtbl.create 64 in
  let best_at : (int, int * float) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun j l ->
      Array.iter
        (fun m ->
          let loc = m.Match0.loc in
          let prev =
            Option.value ~default:Iset.empty (Hashtbl.find_opt terms_at loc)
          in
          Hashtbl.replace terms_at loc (Iset.add j prev);
          (match Hashtbl.find_opt best_at loc with
          | Some (_, s) when s >= m.Match0.score -> ()
          | _ -> Hashtbl.replace best_at loc (j, m.Match0.score)))
        l)
    p;
  Array.mapi
    (fun j l ->
      Array.of_list
        (List.filter
           (fun m ->
             let loc = m.Match0.loc in
             Iset.cardinal (Hashtbl.find terms_at loc) <= 1
             || fst (Hashtbl.find best_at loc) = j)
           (Array.to_list l)))
    p

let best_valid solve (p : Match_list.problem) =
  let invocations = ref 0 in
  let best : Naive.result option ref = ref None in
  let visited = Hashtbl.create 64 in
  let improves s =
    match !best with
    | None -> true
    | Some b -> s > b.Naive.score
  in
  let queue =
    Pj_util.Heap.create ~leq:(fun a b -> a.bound <= b.bound)
  in
  Pj_util.Heap.push queue { bound = infinity; problem = p; removals = [] };
  (* Lazy incumbent seeding: on the first invalid result, solve a
     disambiguated copy whose matchsets are all valid; its optimum is a
     strong incumbent that lets the bound prune most of the tree. *)
  let seeded = ref false in
  let seed_incumbent () =
    if not !seeded then begin
      seeded := true;
      let p' = disambiguate p in
      if not (Match_list.has_empty_list p') then begin
        incr invocations;
        match solve p' with
        | Some r when improves r.Naive.score ->
            (* Location sharing is impossible in the disambiguated
               instance, so the result is a valid matchset of [p]. *)
            best := Some r
        | Some _ | None -> ()
      end
    end
  in
  let continue = ref true in
  while !continue do
    match Pj_util.Heap.pop queue with
    | None -> continue := false
    | Some node ->
        if not (improves node.bound) then continue := false
          (* every pending bound is lower still: nothing can improve *)
        else if not (Hashtbl.mem visited node.removals) then begin
          Hashtbl.add visited node.removals ();
          incr invocations;
          match solve node.problem with
          | None -> ()
          | Some r ->
              if not (improves r.Naive.score) then ()
              else if Matchset.is_valid r.Naive.matchset then best := Some r
              else begin
                seed_incumbent ();
                (* Branch on a single duplicated token per level (the
                   cross product over all groups is reached across
                   levels): fewer children per node, so the best-first
                   bound prunes earlier. *)
                let plans =
                  match duplicate_groups r.Naive.matchset with
                  | [] -> []
                  | group :: _ -> removal_plans [ group ]
                in
                List.iter
                  (fun plan ->
                    let p' =
                      List.fold_left
                        (fun acc (term, m) ->
                          Match_list.remove_match acc ~term m)
                        node.problem plan
                    in
                    if not (Match_list.has_empty_list p') then
                      Pj_util.Heap.push queue
                        {
                          bound = r.Naive.score;
                          problem = p';
                          removals = List.sort compare (plan @ node.removals);
                        })
                  plans
              end
        end
  done;
  (!best, { invocations = !invocations })
