(** Streaming best-matchset-by-location for WIN scoring (Section VII's
    "A Note on Streaming").

    WIN anchors a matchset at its largest match location, so the best
    matchset anchored at [l] is known as soon as every match at [l] has
    been seen: the operator emits each result immediately after its
    anchor location closes, in a single pass, with state independent of
    the input size ([O(|Q| 2^|Q|)]). MED and MAX do not admit such an
    operator (a later match can join an earlier anchor), which is why
    only WIN gets one.

    Matches must be fed in non-decreasing location order; term indices
    must be below [n_terms]. *)

type t

val create : Scoring.win -> n_terms:int -> t

val feed : t -> term:int -> Match0.t -> Anchored.entry option
(** Push the next match. When this match's location strictly exceeds
    the previous one, the best matchset anchored at the previous
    location (if any) is emitted. Raises [Invalid_argument] on
    out-of-order locations or a bad term index. *)

val finish : t -> Anchored.entry option
(** Close the stream, emitting the entry for the final location. The
    stream can no longer be fed. *)

val run : Scoring.win -> Match_list.problem -> Anchored.entry list
(** Drive a whole problem through a fresh stream: equivalent to (and
    the implementation of) [By_location.win]. *)
