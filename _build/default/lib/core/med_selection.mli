(** Per-anchor candidate selection for MED (support module shared by
    {!By_location.med} and {!Med_stream}).

    For a fixed anchor location, each other query term contributes one
    of up to three side-best candidates: the best match strictly before
    the anchor, the best exactly at it, and the best strictly after it
    (contributions evaluated at the anchor). The anchor is the median of
    the assembled matchset iff, with R terms strictly after and A terms
    exactly at the anchor (plus the anchor member itself),
    [R <= mr - 1] and [R + A + 1 >= mr] where [mr = floor ((n+1)/2)].
    [select] maximizes the total contribution under that constraint by a
    small dynamic program over (R, A) states. *)

type options = {
  left : (float * Match0.t) option;
      (** best strictly-before candidate: (contribution at anchor, match) *)
  at : (float * Match0.t) option;    (** best exactly-at candidate *)
  right : (float * Match0.t) option; (** best strictly-after candidate *)
}

val no_options : options

val select : int -> options array -> Match0.t array option
(** [select n others] picks one candidate from each element of [others]
    (the [n - 1] terms other than the anchor member's), maximizing total
    contribution subject to the median constraint; [None] when no
    feasible assignment exists. *)
