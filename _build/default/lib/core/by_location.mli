(** Best matchset by location (Section VII, Definitions 9 and 10).

    Instead of one overall best matchset, return a best matchset for
    every possible anchor location:
    - WIN anchors a matchset at its largest match location; the solver is
      a streaming extension of Algorithm 1 that emits the best candidate
      as soon as all matches at a location have been processed.
    - MED anchors at the median location; for every anchor we select, per
      other term, a side-best candidate (strictly before, exactly at, or
      strictly after the anchor) under a cardinality constraint that
      forces the anchor to be the median — a small dynamic program per
      anchor, overall [O(|Q|^3 * sum |L_j|)] with tiny constants (the
      paper's variant is [O(|Q|^2 * sum |L_j|)]).
    - MAX anchors at the reference location; for every location we return
      the matchset of dominating matches, which maximizes the score
      evaluated at that location.

    Results can be post-filtered by score threshold for
    information-extraction use (Section I). *)

type entry = Anchored.entry = {
  anchor : int;            (** the anchor location *)
  matchset : Matchset.t;
  score : float;
      (** for WIN and MED: the definitional matchset score; for MAX: the
          score evaluated at the anchor, [score_max_at anchor] *)
}

val win : Scoring.win -> Match_list.problem -> entry list
(** One entry per location [l] where some matchset has its largest match:
    the best matchset whose largest match location is [l]. Entries are in
    increasing anchor order. Empty when some match list is empty.
    Implemented by the streaming operator {!Win_stream}. *)

val med : Scoring.med -> Match_list.problem -> entry list
(** One entry per location [l] where some matchset has its median: the
    best matchset whose median location is [l]. *)

val max_ : Scoring.max -> Match_list.problem -> entry list
(** One entry per match location [l]: the matchset maximizing the score
    with reference point [l]. *)

val filter_by_score : float -> entry list -> entry list
(** Keep the entries whose score reaches the threshold — the "good
    enough matchsets" filter for extraction applications. *)

val best_entry : entry list -> entry option
(** The highest-scoring entry (for cross-checking against the
    overall-best solvers). *)
