(** Dominating-match functions and contribution upper envelopes
    (Definition 6, Sections IV and V).

    For a match list [L_j] and a contribution function [c_j], the
    contribution upper envelope is [S_j (l) = max_{m in L_j} c_j (m, l)]
    and the dominating-match function [U_j (l)] returns a match attaining
    it. For contribution functions satisfying the at-most-one-crossing
    property (Definition 8) — which includes the MED contribution and the
    MAX contributions of Eq. (4) and Eq. (5) — the envelope is
    represented by the list of its dominating matches in location order,
    precomputed with the stack pass of Algorithm 2
    (PrecomputeDomMatchFunc), and queried at a location by comparing the
    two dominating matches closest to it. *)

type contribution = Match0.t -> int -> float
(** [c m l]: distance-decayed contribution of match [m] at location [l]. *)

val dominating_list : contribution -> Match_list.t -> Match0.t array
(** The stack precomputation: the dominating matches of the envelope in
    increasing location order. Ties are broken toward the match that
    comes last in the list. Linear time: each match is pushed and popped
    at most once. Exact for at-most-one-crossing contributions. *)

type cursor
(** Incremental envelope reader for queries issued in non-decreasing
    location order (the access pattern of Algorithms 2 and the MAX
    algorithm). *)

val cursor : contribution -> Match0.t array -> cursor
(** Build a cursor over a precomputed dominating list. *)

type pick = {
  chosen : Match0.t;
  succeeds : bool;
      (** true when the chosen dominating match is located strictly after
          the query location — the tie-breaking direction Algorithm 2
          must favor (footnote 3). *)
  value : float;  (** the envelope value [S_j (l)] *)
}

val query : cursor -> int -> pick option
(** [query cur l]: a dominating match at [l]. Locations passed to
    successive queries on the same cursor must be non-decreasing.
    [None] iff the dominating list is empty. When the match strictly
    after [l] ties with the one at-or-before [l], the later one is
    chosen, as the correctness of Algorithm 2 requires. *)

val pointwise_max : contribution -> Match_list.t -> int -> float
(** Brute-force [S_j (l)] by scanning the whole list — the definitional
    oracle used in tests. [neg_infinity] on an empty list. *)

val interval_pairs :
  contribution -> Match_list.t -> lo:int -> hi:int ->
  (int * int * Match0.t) list
(** The interval–match-pair representation of the dominating-match
    function over integer locations [lo..hi] (Section V's general
    approach): maximal intervals [(a, b, m)] with [U_j (l) = m] for all
    [l] in [a..b]. Computed by pointwise scanning, O((hi-lo) |L|) — the
    general method works for arbitrary contribution functions but is far
    slower than the stack precomputation; see the [max_ablation]
    benchmark. *)
