(** Top-k overall matchsets under WIN scoring — a k-best extension of
    Algorithm 1 (the paper's related work contrasts the best-join with
    general top-k joins; this bridges the two for WIN).

    The dynamic program keeps, per nonempty term subset P, the k best
    partial P-matchsets at the current location instead of one. The
    optimal substructure property transfers rank by rank: a partial
    matchset outside its subset's top k at the previous location is
    dominated by k others both after aging and after any extension, so
    it can never enter a top-k answer. Distinctness is by matchset
    membership. Running time [O(k * 2^|Q| * sum |L_j| * log k)]. *)

val best_k :
  k:int -> Scoring.win -> Match_list.problem -> Naive.result list
(** The [k] highest-scoring distinct matchsets, best first (fewer when
    the cross product is smaller than [k]; empty when a list is empty).
    [best_k ~k:1] returns the same score as [Win.best]. Raises
    [Invalid_argument] when [k < 0]. *)
