type entry = {
  anchor : int;
  matchset : Matchset.t;
  score : float;
}

let filter_by_score threshold entries =
  List.filter (fun e -> e.score >= threshold) entries

let best_entry entries =
  List.fold_left
    (fun best e ->
      match best with
      | Some b when b.score >= e.score -> best
      | _ -> Some e)
    None entries
