let contribution (x : Scoring.max) ~term : Envelope.contribution =
 fun m l -> Scoring.max_contribution x ~term m ~at:l

let dominating_lists x (p : Match_list.problem) =
  Array.mapi (fun j l -> Envelope.dominating_list (contribution x ~term:j) l) p

let best (x : Scoring.max) (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then None
  else begin
    let n = Array.length p in
    let doms = dominating_lists x p in
    let cursors =
      Array.init n (fun j -> Envelope.cursor (contribution x ~term:j) doms.(j))
    in
    let best = ref None in
    let candidate = Array.make n (Match0.make ~loc:0 ~score:0. ()) in
    (* Evaluate the envelope sum at every match location. The
       maximized-at-match property guarantees the optimum reference point
       is the location of some member of the best matchset, and every
       member location appears in the scan. *)
    let consider ~term:_ m =
      let l = m.Match0.loc in
      let total = ref 0. in
      let feasible = ref true in
      for j = 0 to n - 1 do
        match Envelope.query cursors.(j) l with
        | None -> feasible := false
        | Some pick ->
            candidate.(j) <- pick.Envelope.chosen;
            total := !total +. pick.Envelope.value
      done;
      if !feasible then begin
        let s = x.Scoring.max_f !total in
        match !best with
        | Some r when r.Naive.score >= s -> ()
        | _ -> best := Some { Naive.matchset = Array.copy candidate; score = s }
      end
    in
    Match_list.iter_in_location_order p consider;
    !best
  end

let best_anchored ~anchor_term (x : Scoring.max) (p : Match_list.problem) =
  Match_list.validate p;
  let n = Array.length p in
  if anchor_term < 0 || anchor_term >= n then
    invalid_arg "Max_join.best_anchored: bad anchor term";
  if Match_list.has_empty_list p then None
  else begin
    let doms = dominating_lists x p in
    let cursors =
      Array.init n (fun j -> Envelope.cursor (contribution x ~term:j) doms.(j))
    in
    let best = ref None in
    let candidate = Array.make n (Match0.make ~loc:0 ~score:0. ()) in
    (* The anchor term's matches are visited in location order, so the
       other terms' envelope cursors advance monotonically. *)
    Array.iter
      (fun m ->
        let l = m.Match0.loc in
        candidate.(anchor_term) <- m;
        let total = ref (contribution x ~term:anchor_term m l) in
        for j = 0 to n - 1 do
          if j <> anchor_term then begin
            match Envelope.query cursors.(j) l with
            | None -> assert false (* lists are non-empty *)
            | Some pick ->
                candidate.(j) <- pick.Envelope.chosen;
                total := !total +. pick.Envelope.value
          end
        done;
        let s = x.Scoring.max_f !total in
        match !best with
        | Some r when r.Naive.score >= s -> ()
        | _ -> best := Some { Naive.matchset = Array.copy candidate; score = s })
      p.(anchor_term);
    !best
  end

let best_general (x : Scoring.max) (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then None
  else begin
    let n = Array.length p in
    let locs = Match_list.locations p in
    let lo = locs.(0) and hi = locs.(Array.length locs - 1) in
    let pairs =
      Array.init n (fun j ->
          Envelope.interval_pairs (contribution x ~term:j) p.(j) ~lo ~hi)
    in
    (* U_j as an array over the location range for O(1) lookup. *)
    let table =
      Array.map
        (fun segs ->
          let t = Array.make (hi - lo + 1) None in
          List.iter
            (fun (a, b, m) ->
              for l = a to b do
                t.(l - lo) <- Some m
              done)
            segs;
          t)
        pairs
    in
    let best = ref None in
    let candidate = Array.make n (Match0.make ~loc:0 ~score:0. ()) in
    for l = lo to hi do
      let total = ref 0. in
      let feasible = ref true in
      for j = 0 to n - 1 do
        match table.(j).(l - lo) with
        | None -> feasible := false
        | Some m ->
            candidate.(j) <- m;
            total := !total +. contribution x ~term:j m l
      done;
      if !feasible then begin
        let s = x.Scoring.max_f !total in
        match !best with
        | Some r when r.Naive.score >= s -> ()
        | _ -> best := Some { Naive.matchset = Array.copy candidate; score = s }
      end
    done;
    !best
  end
