(* The streaming form of Algorithm 1 extended for the
   best-matchset-by-location problem: the subset DP of Win, fed one
   match at a time, with one result emitted per closed location. All
   matches sharing a location are buffered and folded into the DP
   together before the location's result is computed, because a
   matchset anchored at l may contain several matches at l. *)

type chain =
  | Nil
  | Cons of int * Match0.t * chain

type state = {
  mutable live : bool;
  mutable g_sum : float;
  mutable l_min : int;
  mutable members : chain;
}

type t = {
  scoring : Scoring.win;
  n_terms : int;
  states : state array;          (* indexed by nonempty term subsets *)
  mutable group : (int * Match0.t) list;  (* buffered co-located matches *)
  mutable group_loc : int;
  mutable closed : bool;
}

let create scoring ~n_terms =
  if n_terms < 1 then invalid_arg "Win_stream.create: n_terms < 1";
  let full = Pj_util.Subset.full n_terms in
  {
    scoring;
    n_terms;
    states =
      Array.init (full + 1) (fun _ ->
          { live = false; g_sum = 0.; l_min = 0; members = Nil });
    group = [];
    group_loc = min_int;
    closed = false;
  }

let rebuild n chain =
  let a = Array.make n None in
  let rec walk = function
    | Nil -> ()
    | Cons (j, m, rest) ->
        a.(j) <- Some m;
        walk rest
  in
  walk chain;
  Array.map
    (function
      | Some m -> m
      | None -> assert false)
    a

(* Fold one match into the DP at its location (Algorithm 1's update). *)
let update t ~term m =
  let w = t.scoring in
  let key = w.Scoring.win_key in
  let g = w.Scoring.win_g term m.Match0.score in
  let l = m.Match0.loc in
  Pj_util.Subset.iter_by_decreasing_size t.n_terms (fun s ->
      if Pj_util.Subset.mem term s then begin
        let st = t.states.(s) in
        if Pj_util.Subset.equal s (Pj_util.Subset.singleton term) then begin
          if (not st.live) || key st.g_sum (l - st.l_min) < key g 0 then begin
            st.live <- true;
            st.g_sum <- g;
            st.l_min <- l;
            st.members <- Cons (term, m, Nil)
          end
        end
        else begin
          let sub = t.states.(Pj_util.Subset.remove term s) in
          if sub.live then begin
            if
              (not st.live)
              || key st.g_sum (l - st.l_min)
                 < key (sub.g_sum +. g) (l - sub.l_min)
            then begin
              st.live <- true;
              st.g_sum <- sub.g_sum +. g;
              st.l_min <- sub.l_min;
              st.members <- Cons (term, m, sub.members)
            end
          end
        end
      end)

(* Close the buffered location: fold its matches in, then emit the best
   matchset anchored there — some match of the group completed by the
   best partial matchset over the other terms. *)
let close_group t =
  match t.group with
  | [] -> None
  | group ->
      let w = t.scoring in
      let l = t.group_loc in
      let full = Pj_util.Subset.full t.n_terms in
      List.iter (fun (term, m) -> update t ~term m) (List.rev group);
      t.group <- [];
      let best = ref None in
      List.iter
        (fun (term, m) ->
          let g = w.Scoring.win_g term m.Match0.score in
          let candidate =
            if t.n_terms = 1 then
              Some (g, 0, Cons (term, m, Nil))
            else begin
              let sub = t.states.(Pj_util.Subset.remove term full) in
              if sub.live then
                Some (sub.g_sum +. g, l - sub.l_min, Cons (term, m, sub.members))
              else None
            end
          in
          match candidate with
          | None -> ()
          | Some (g_sum, window, ch) -> begin
              let k = w.Scoring.win_key g_sum window in
              match !best with
              | Some (k', _, _, _) when k' >= k -> ()
              | _ -> best := Some (k, g_sum, window, ch)
            end)
        group;
      match !best with
      | None -> None
      | Some (_, g_sum, window, ch) ->
          Some
            {
              Anchored.anchor = l;
              matchset = rebuild t.n_terms ch;
              score = w.Scoring.win_f g_sum window;
            }

let feed t ~term m =
  if t.closed then invalid_arg "Win_stream.feed: stream is finished";
  if term < 0 || term >= t.n_terms then
    invalid_arg "Win_stream.feed: bad term index";
  if m.Match0.loc < t.group_loc then
    invalid_arg "Win_stream.feed: locations must be non-decreasing";
  let emitted =
    if m.Match0.loc > t.group_loc then begin
      let e = close_group t in
      t.group_loc <- m.Match0.loc;
      e
    end
    else None
  in
  t.group <- (term, m) :: t.group;
  emitted

let finish t =
  if t.closed then invalid_arg "Win_stream.finish: stream is finished";
  t.closed <- true;
  close_group t

let run scoring (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then []
  else begin
    let t = create scoring ~n_terms:(Array.length p) in
    let out = ref [] in
    Match_list.iter_in_location_order p (fun ~term m ->
        match feed t ~term m with
        | Some e -> out := e :: !out
        | None -> ());
    (match finish t with
    | Some e -> out := e :: !out
    | None -> ());
    List.rev !out
  end
