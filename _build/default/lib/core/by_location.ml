type entry = Anchored.entry = {
  anchor : int;
  matchset : Matchset.t;
  score : float;
}

let filter_by_score = Anchored.filter_by_score
let best_entry = Anchored.best_entry

(* Group the merged match stream by location. *)
let iter_location_groups (p : Match_list.problem) f =
  let buffer = ref [] in
  let current_loc = ref min_int in
  let flush () =
    match !buffer with
    | [] -> ()
    | group -> f !current_loc (List.rev group)
  in
  Match_list.iter_in_location_order p (fun ~term m ->
      if m.Match0.loc <> !current_loc then begin
        flush ();
        buffer := [];
        current_loc := m.Match0.loc
      end;
      buffer := (term, m) :: !buffer);
  flush ()

(* --- WIN: delegated to the streaming operator ------------------------ *)

let win = Win_stream.run

(* --- MED: per-anchor side-best selection ----------------------------- *)

(* Per-term side-best tables under the MED contribution
   c_j (m, l) = g_j (score m) - |loc m - l|. For matches strictly left of
   the anchor the contribution is (g + loc) - l, so the best left match
   at every anchor is a prefix argmax of (g + loc); symmetrically the
   best right match is a suffix argmax of (g - loc). *)
type med_side_tables = {
  list : Match_list.t;
  g : float array;                (* g_j (score) per match *)
  prefix_best : int array;        (* argmax of g + loc over 0..i *)
  suffix_best : int array;        (* argmax of g - loc over i.. *)
  mutable idx_lt : int;           (* #matches with loc <  current anchor *)
  mutable idx_le : int;           (* #matches with loc <= current anchor *)
}

let med_tables (d : Scoring.med) term (list : Match_list.t) =
  let len = Array.length list in
  let g = Array.map (fun m -> d.Scoring.med_g term m.Match0.score) list in
  let key_left i = g.(i) +. float_of_int list.(i).Match0.loc in
  let key_right i = g.(i) -. float_of_int list.(i).Match0.loc in
  let prefix_best = Array.make len 0 in
  for i = 1 to len - 1 do
    prefix_best.(i) <-
      (if key_left i >= key_left prefix_best.(i - 1) then i
       else prefix_best.(i - 1))
  done;
  let suffix_best = Array.make len 0 in
  if len > 0 then begin
    suffix_best.(len - 1) <- len - 1;
    for i = len - 2 downto 0 do
      suffix_best.(i) <-
        (if key_right i > key_right suffix_best.(i + 1) then i
         else suffix_best.(i + 1))
    done
  end;
  { list; g; prefix_best; suffix_best; idx_lt = 0; idx_le = 0 }

let med_options_at t anchor =
  let len = Array.length t.list in
  while t.idx_lt < len && t.list.(t.idx_lt).Match0.loc < anchor do
    t.idx_lt <- t.idx_lt + 1
  done;
  if t.idx_le < t.idx_lt then t.idx_le <- t.idx_lt;
  while t.idx_le < len && t.list.(t.idx_le).Match0.loc <= anchor do
    t.idx_le <- t.idx_le + 1
  done;
  let contribution i =
    t.g.(i) -. float_of_int (abs (t.list.(i).Match0.loc - anchor))
  in
  let left =
    if t.idx_lt = 0 then None
    else begin
      let i = t.prefix_best.(t.idx_lt - 1) in
      Some (contribution i, t.list.(i))
    end
  in
  let at =
    if t.idx_le = t.idx_lt then None
    else begin
      (* Best g among the (usually very short) run of matches exactly at
         the anchor. *)
      let best = ref t.idx_lt in
      for i = t.idx_lt + 1 to t.idx_le - 1 do
        if t.g.(i) >= t.g.(!best) then best := i
      done;
      Some (t.g.(!best), t.list.(!best))
    end
  in
  let right =
    if t.idx_le = len then None
    else begin
      let i = t.suffix_best.(t.idx_le) in
      Some (contribution i, t.list.(i))
    end
  in
  { Med_selection.left; at; right }

let med (d : Scoring.med) (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then []
  else begin
    let n = Array.length p in
    let tables = Array.mapi (fun j l -> med_tables d j l) p in
    let entries = ref [] in
    iter_location_groups p (fun l group ->
        let opts = Array.map (fun t -> med_options_at t l) tables in
        let best = ref None in
        List.iter
          (fun (term, m) ->
            let others =
              Array.of_list
                (List.filter_map
                   (fun j -> if j = term then None else Some opts.(j))
                   (List.init n (fun j -> j)))
            in
            match Med_selection.select n others with
            | None -> ()
            | Some picks ->
                let matchset = Array.make n m in
                let k = ref 0 in
                for j = 0 to n - 1 do
                  if j <> term then begin
                    matchset.(j) <- picks.(!k);
                    incr k
                  end
                done;
                let s = Scoring.score_med d matchset in
                (match !best with
                | Some (s', _) when s' >= s -> ()
                | _ -> best := Some (s, matchset)))
          group;
        match !best with
        | None -> ()
        | Some (score, matchset) ->
            entries := { anchor = l; matchset; score } :: !entries);
    List.rev !entries
  end

(* --- MAX: dominating matchset per location --------------------------- *)

let max_ (x : Scoring.max) (p : Match_list.problem) =
  Match_list.validate p;
  if Match_list.has_empty_list p then []
  else begin
    let n = Array.length p in
    let contribution ~term : Envelope.contribution =
     fun m l -> Scoring.max_contribution x ~term m ~at:l
    in
    let cursors =
      Array.init n (fun j ->
          Envelope.cursor (contribution ~term:j)
            (Envelope.dominating_list (contribution ~term:j) p.(j)))
    in
    let entries = ref [] in
    Array.iter
      (fun l ->
        let matchset = Array.make n (Match0.make ~loc:0 ~score:0. ()) in
        let total = ref 0. in
        let feasible = ref true in
        for j = 0 to n - 1 do
          match Envelope.query cursors.(j) l with
          | None -> feasible := false
          | Some pick ->
              matchset.(j) <- pick.Envelope.chosen;
              total := !total +. pick.Envelope.value
        done;
        if !feasible then
          entries :=
            { anchor = l; matchset; score = x.Scoring.max_f !total }
            :: !entries)
      (Match_list.locations p);
    List.rev !entries
  end
