type algorithm =
  | Fast
  | Naive_alg
  | Auto

let switch_to_naive (p : Match_list.problem) =
  let larger = Array.fold_left (fun n l -> if Array.length l > 1 then n + 1 else n) 0 p in
  larger <= 1

let fast_solver scoring =
  match scoring with
  | Scoring.Win w -> Win.best w
  | Scoring.Med d -> Med.best d
  | Scoring.Max x -> Max_join.best x

let pick_solver algorithm scoring p =
  match algorithm with
  | Fast -> fast_solver scoring
  | Naive_alg -> Naive.best scoring
  | Auto ->
      if switch_to_naive p then Naive.best scoring else fast_solver scoring

let solve ?(algorithm = Fast) ?(dedup = false) scoring p =
  let solver = pick_solver algorithm scoring p in
  if dedup then fst (Dedup.best_valid solver p) else solver p

let solve_with_stats ?(algorithm = Fast) scoring p =
  Dedup.best_valid (pick_solver algorithm scoring p) p

let by_location scoring p =
  match scoring with
  | Scoring.Win w -> By_location.win w p
  | Scoring.Med d -> By_location.med d p
  | Scoring.Max x -> By_location.max_ x p

let top_k ~k scoring p =
  if k < 0 then invalid_arg "Best_join.top_k: negative k";
  let entries = by_location scoring p in
  let sorted =
    List.sort
      (fun (a : By_location.entry) b ->
        let c = compare b.By_location.score a.By_location.score in
        if c <> 0 then c else compare a.By_location.anchor b.By_location.anchor)
      entries
  in
  List.filteri (fun i _ -> i < k) sorted
