(** Matchsets: one match per query term (Definition 1).

    A matchset for an n-term query is an array of n matches where index
    [j] holds the match for term [j]. *)

type t = Match0.t array

val window : t -> int
(** Length of the smallest window enclosing all matches:
    max location - min location (the WIN proximity measure). *)

val min_loc : t -> int
val max_loc : t -> int

val median_loc : t -> int
(** Median location per the paper's footnote 2: the floor((n+1)/2)-th
    ranked location when ranked by value with the 1st ranked element
    having the greatest value. For n = 2 this is the larger location. *)

val is_valid : t -> bool
(** True iff the matchset contains no duplicate matches, i.e. no two
    member locations coincide (Section VI validity). *)

val locations : t -> int array
(** Member locations in term order. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
