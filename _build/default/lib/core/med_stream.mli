(** Less-blocking best-matchset-by-location for MED scoring — the future
    work sketched at the end of Section VII.

    MED is fundamentally not streaming: a match arbitrarily far to the
    right can join the best matchset anchored at an old median if its
    score is high enough. But when individual g-contributions are
    bounded above by [g_bound] (e.g. scores lie in (0, 1], as in all the
    paper's experiments), a match at distance d from an anchor can
    contribute at most [g_bound - d], so once the scan has moved far
    enough past an anchor that no future match can beat the
    strictly-after candidates already seen for any term, the anchor's
    result is final and can be emitted. This operator emits each anchor
    at that earliest sound moment, holding only the unsettled anchors in
    memory, and degrades gracefully to end-of-stream emission when
    right-side candidates stay weak.

    Matches must be fed in non-decreasing location order and satisfy
    [med_g term score <= g_bound]. *)

type t

val create : Scoring.med -> n_terms:int -> g_bound:float -> t

val feed : t -> term:int -> Match0.t -> Anchored.entry list
(** Push the next match; returns the anchors settled by this advance, in
    increasing anchor order. Raises [Invalid_argument] on out-of-order
    locations, a bad term index, or a contribution above [g_bound]. *)

val finish : t -> Anchored.entry list
(** Close the stream, emitting every remaining anchor. The stream can no
    longer be fed. *)

val pending_count : t -> int
(** Number of anchors currently buffered (for observing how aggressively
    the bound prunes state). *)

val run :
  ?g_bound:float -> Scoring.med -> Match_list.problem -> Anchored.entry list
(** Drive a whole problem through a fresh stream. [g_bound] defaults to
    the largest g-contribution present in the problem. The result equals
    [By_location.med] on the same input. *)
