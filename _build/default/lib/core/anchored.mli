(** Anchored results: a best matchset per anchor location (the result
    shape of the Section VII best-matchset-by-location problem). *)

type entry = {
  anchor : int;            (** the anchor location *)
  matchset : Matchset.t;
  score : float;
      (** for WIN and MED: the definitional matchset score; for MAX: the
          score evaluated at the anchor *)
}

val filter_by_score : float -> entry list -> entry list
(** Keep the entries whose score reaches the threshold — the "good
    enough matchsets" filter for extraction applications. *)

val best_entry : entry list -> entry option
(** The highest-scoring entry. *)
