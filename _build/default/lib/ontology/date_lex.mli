(** Date lexicon: the simple date matcher of the paper's DBWorld
    experiment "looks for month names and numbers between 1990 and 2010;
    identified matches are scored 1". *)

val is_month : string -> bool
(** Full month names and common three-letter abbreviations. *)

val is_year : string -> bool
(** Numeric tokens between 1990 and 2010 inclusive. *)

val is_day_number : string -> bool
(** Numeric tokens between 1 and 31 (used to enrich generated CFPs). *)

val is_date_token : string -> bool
(** [is_month || is_year]: the paper's date-match predicate. *)

val months : unit -> string list
