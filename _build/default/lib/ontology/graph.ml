type t = {
  adjacency : (string, string list ref) Hashtbl.t;
  mutable edges : int;
}

let create () = { adjacency = Hashtbl.create 256; edges = 0 }

let add_node t v =
  if not (Hashtbl.mem t.adjacency v) then Hashtbl.add t.adjacency v (ref [])

let neighbors_ref t v =
  add_node t v;
  Hashtbl.find t.adjacency v

let add_edge t a b =
  if a <> b then begin
    let na = neighbors_ref t a in
    if not (List.mem b !na) then begin
      na := b :: !na;
      let nb = neighbors_ref t b in
      nb := a :: !nb;
      t.edges <- t.edges + 1
    end
  end

let mem t v = Hashtbl.mem t.adjacency v
let node_count t = Hashtbl.length t.adjacency
let edge_count t = t.edges

let neighbors t v =
  match Hashtbl.find_opt t.adjacency v with
  | None -> []
  | Some l -> !l

let bfs t src ~stop_at ~max_depth =
  (* Runs BFS from [src]; returns either the distance to [stop_at] (when
     given) or the full frontier map. *)
  let dist = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.add dist src 0;
  Queue.add src queue;
  let answer = ref None in
  let continue = ref true in
  (match stop_at with
  | Some target when target = src -> answer := Some 0
  | _ -> ());
  while !continue && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let d = Hashtbl.find dist v in
    if (match max_depth with Some m -> d >= m | None -> false) then ()
    else
      List.iter
        (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.add dist w (d + 1);
            (match stop_at with
            | Some target when target = w ->
                answer := Some (d + 1);
                continue := false
            | _ -> ());
            Queue.add w queue
          end)
        (neighbors t v)
  done;
  (!answer, dist)

let distance t ?max_depth a b =
  if not (mem t a && mem t b) then None
  else begin
    let answer, _ = bfs t a ~stop_at:(Some b) ~max_depth in
    answer
  end

let within t ~radius src =
  if not (mem t src) then []
  else begin
    let _, dist = bfs t src ~stop_at:None ~max_depth:(Some radius) in
    Hashtbl.fold (fun v d acc -> (v, d) :: acc) dist []
    |> List.sort compare
  end
