lib/ontology/graph.ml: Hashtbl List Queue
