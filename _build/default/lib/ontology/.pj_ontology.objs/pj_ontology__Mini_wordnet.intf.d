lib/ontology/mini_wordnet.mli: Graph
