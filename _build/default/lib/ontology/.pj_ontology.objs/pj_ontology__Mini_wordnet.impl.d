lib/ontology/mini_wordnet.ml: Graph List
