lib/ontology/graph.mli:
