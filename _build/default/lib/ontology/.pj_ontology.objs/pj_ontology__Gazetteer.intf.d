lib/ontology/gazetteer.mli:
