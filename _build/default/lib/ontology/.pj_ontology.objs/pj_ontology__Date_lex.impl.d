lib/ontology/date_lex.ml: Hashtbl List String
