lib/ontology/gazetteer.ml: Hashtbl List
