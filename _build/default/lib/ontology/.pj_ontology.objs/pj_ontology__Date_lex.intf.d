lib/ontology/date_lex.mli:
