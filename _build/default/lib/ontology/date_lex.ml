let month_names =
  [
    "january"; "february"; "march"; "april"; "may"; "june"; "july";
    "august"; "september"; "october"; "november"; "december";
  ]

let month_abbrevs =
  [ "jan"; "feb"; "mar"; "apr"; "jun"; "jul"; "aug"; "sep"; "sept";
    "oct"; "nov"; "dec" ]

let month_table =
  let h = Hashtbl.create 32 in
  List.iter (fun m -> Hashtbl.replace h m ()) month_names;
  List.iter (fun m -> Hashtbl.replace h m ()) month_abbrevs;
  h

let is_month w = Hashtbl.mem month_table w

let as_int w =
  if w <> "" && String.for_all (fun c -> c >= '0' && c <= '9') w then
    int_of_string_opt w
  else None

let is_year w =
  match as_int w with
  | Some n -> n >= 1990 && n <= 2010
  | None -> false

let is_day_number w =
  match as_int w with
  | Some n -> n >= 1 && n <= 31
  | None -> false

let is_date_token w = is_month w || is_year w

let months () = month_names
