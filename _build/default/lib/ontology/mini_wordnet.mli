(** A hand-built WordNet-style lemma graph.

    Substitute for the Princeton WordNet used in the paper's TREC and
    DBWorld experiments (Section VIII): an undirected graph of synonym /
    hypernym / instance edges covering the vocabulary of the simulated
    evaluation corpora — companies and PC makers, sports organizations,
    partnership language, question-answering nouns (school, city,
    country, year, birth, marriage...), and call-for-papers language
    (conference, workshop, deadline, university...).

    The matcher semantics on top of the graph are the paper's: terms
    within graph distance d <= 3 match with score 1 - 0.3 d. *)

val create : unit -> Graph.t
(** A fresh copy of the lexicon graph, so experiments can add their own
    edges — the paper added [conference -- workshop] and
    [university -- place] for the DBWorld experiment. *)

val concepts : unit -> string list
(** The distinguished concept lemmas that the evaluation queries use
    (e.g. "pc-maker", "sports", "partnership", "school", "place"). *)
