(** A place gazetteer, substituting for the GeoWorldMap database used by
    the paper's DBWorld experiment: a term found in the gazetteer is a
    place match with score 1. *)

val mem : string -> bool
(** Is the lowercase token a known place (city or country)? *)

val cities : unit -> string list
val countries : unit -> string list
val size : unit -> int
