(* Edges are grouped thematically; every pair is an undirected edge in
   the lemma graph. Lemmas are lowercase single tokens; multi-token
   names (e.g. "hewlett-packard") keep their internal hyphen, matching
   the tokenizer. *)

let company_edges =
  [
    (* PC makers: the intro's motivating example. *)
    ("pc-maker", "lenovo"); ("pc-maker", "dell"); ("pc-maker", "hewlett-packard");
    ("pc-maker", "acer"); ("pc-maker", "asus"); ("pc-maker", "toshiba");
    ("pc-maker", "ibm");
    ("pc-maker", "laptop-maker"); ("laptop-maker", "lenovo");
    ("pc-maker", "company"); ("company", "firm"); ("company", "corporation");
    ("company", "manufacturer"); ("manufacturer", "maker");
    ("company", "startup"); ("company", "vendor");
  ]

let sports_edges =
  [
    ("sports", "nba"); ("sports", "nfl"); ("sports", "fifa");
    ("sports", "olympics"); ("olympics", "olympic"); ("olympics", "games");
    ("sports", "basketball"); ("sports", "football"); ("sports", "soccer");
    ("nba", "basketball"); ("fifa", "soccer");
    ("sports", "league"); ("league", "tournament"); ("tournament", "championship");
    ("sports", "athletics"); ("athletics", "athlete");
  ]

let partnership_edges =
  [
    ("partnership", "partner"); ("partnership", "alliance");
    ("partnership", "collaboration"); ("collaboration", "cooperation");
    ("partnership", "deal"); ("deal", "agreement"); ("agreement", "contract");
    ("partnership", "sponsorship"); ("sponsorship", "sponsor");
    ("alliance", "coalition"); ("deal", "transaction");
  ]

let qa_edges =
  [
    (* people and life events *)
    ("person", "man"); ("person", "woman"); ("person", "people");
    ("born", "birth"); ("birth", "birthplace"); ("born", "native");
    ("marry", "marriage"); ("marriage", "wedding"); ("marry", "wed");
    ("marriage", "spouse"); ("spouse", "wife"); ("spouse", "husband");
    ("die", "death"); ("death", "deceased");
    ("graduate", "graduation"); ("graduate", "degree"); ("degree", "diploma");
    ("graduate", "alumnus");
    (* institutions *)
    ("school", "academy"); ("school", "college"); ("college", "university");
    ("school", "university"); ("school", "institution");
    ("university", "campus"); ("academy", "institute");
    ("parliament", "legislature"); ("legislature", "assembly");
    ("parliament", "congress"); ("congress", "senate");
    ("headquarters", "headquarter"); ("headquarters", "base");
    ("headquarters", "office"); ("office", "bureau");
    ("imf", "fund"); ("fund", "bank"); ("bank", "institution");
    (* places *)
    ("place", "location"); ("location", "site"); ("place", "area");
    ("place", "spot"); ("place", "venue");
    ("city", "town"); ("city", "metropolis"); ("town", "village");
    ("city", "capital"); ("city", "municipality"); ("city", "place");
    ("country", "nation"); ("country", "state"); ("nation", "land");
    ("country", "place"); ("country", "kingdom"); ("country", "republic");
    ("region", "province"); ("region", "area");
    (* time *)
    ("year", "date"); ("date", "day"); ("date", "time");
    ("year", "decade"); ("year", "annual"); ("month", "date");
    ("time", "period"); ("period", "era");
    (* construction and artifacts *)
    ("build", "construct"); ("construct", "construction");
    ("build", "built"); ("build", "erect"); ("construction", "building");
    ("tower", "structure"); ("structure", "building");
    ("tower", "monument"); ("monument", "landmark");
    ("begin", "start"); ("begin", "began"); ("start", "commence");
    ("begin", "begun"); ("start", "launch");
    (* porcelain example of Section VI *)
    ("porcelain", "ceramics"); ("ceramics", "pottery"); ("porcelain", "china");
    ("asia", "china"); ("asia", "jingdezhen"); ("china", "chinese");
    ("pottery", "earthenware");
  ]

let cfp_edges =
  [
    ("conference", "symposium"); ("conference", "meeting");
    ("conference", "congress"); ("meeting", "gathering");
    ("workshop", "seminar"); ("workshop", "tutorial");
    ("symposium", "colloquium"); ("seminar", "colloquium");
    ("conference", "convention"); ("meeting", "session");
    ("deadline", "date"); ("submission", "paper"); ("paper", "manuscript");
    ("proceedings", "publication"); ("publication", "journal");
    ("venue", "site"); ("venue", "location");
    ("university", "institution"); ("institute", "institution");
    ("laboratory", "lab"); ("department", "faculty");
  ]

let celebrity_edges =
  [
    (* Named entities used by the simulated TREC queries. These stand in
       for WordNet instance links. *)
    ("pisa", "tower"); ("pisa", "italy");
    ("stonehenge", "monument"); ("stonehenge", "england");
    ("chavez", "hugo"); ("chavez", "president");
    ("hitchcock", "alfred"); ("hitchcock", "director");
    ("edward", "prince"); ("prince", "royal"); ("royal", "king");
    ("shakespeare", "playwright"); ("playwright", "writer");
    ("lebanese", "lebanon"); ("lebanon", "beirut");
  ]

let technology_edges =
  [
    ("computer", "pc"); ("computer", "laptop"); ("laptop", "notebook");
    ("computer", "server"); ("server", "mainframe"); ("computer", "desktop");
    ("computer", "machine"); ("machine", "device"); ("device", "gadget");
    ("software", "program"); ("program", "application"); ("application", "app");
    ("software", "code"); ("code", "source"); ("software", "firmware");
    ("hardware", "chip"); ("chip", "processor"); ("processor", "cpu");
    ("chip", "semiconductor"); ("hardware", "motherboard");
    ("network", "internet"); ("internet", "web"); ("web", "website");
    ("network", "lan"); ("network", "ethernet");
    ("phone", "telephone"); ("phone", "smartphone"); ("phone", "mobile");
    ("storage", "disk"); ("disk", "drive"); ("storage", "memory");
    ("memory", "ram"); ("database", "datastore"); ("database", "index");
    ("algorithm", "procedure"); ("procedure", "method"); ("method", "technique");
    ("robot", "automaton"); ("robot", "android");
    ("screen", "display"); ("display", "monitor");
    ("keyboard", "keypad"); ("printer", "scanner");
  ]

let science_edges =
  [
    ("science", "physics"); ("science", "chemistry"); ("science", "biology");
    ("science", "research"); ("research", "study"); ("study", "experiment");
    ("experiment", "trial"); ("research", "investigation");
    ("physics", "mechanics"); ("physics", "optics"); ("physics", "quantum");
    ("chemistry", "molecule"); ("molecule", "atom"); ("atom", "particle");
    ("particle", "electron"); ("particle", "proton");
    ("biology", "cell"); ("cell", "gene"); ("gene", "dna"); ("gene", "genome");
    ("biology", "organism"); ("organism", "species"); ("species", "animal");
    ("animal", "mammal"); ("mammal", "primate"); ("animal", "bird");
    ("animal", "fish"); ("animal", "insect");
    ("mathematics", "algebra"); ("mathematics", "geometry");
    ("mathematics", "calculus"); ("mathematics", "statistics");
    ("statistics", "probability"); ("mathematics", "arithmetic");
    ("astronomy", "telescope"); ("astronomy", "star"); ("star", "sun");
    ("astronomy", "planet"); ("planet", "earth"); ("planet", "mars");
    ("medicine", "doctor"); ("doctor", "physician"); ("medicine", "drug");
    ("drug", "medication"); ("medication", "pill"); ("medicine", "therapy");
    ("therapy", "treatment"); ("disease", "illness"); ("illness", "sickness");
    ("disease", "infection"); ("infection", "virus"); ("virus", "bacteria");
    ("hospital", "clinic"); ("hospital", "infirmary");
    ("laboratory", "facility");
  ]

let economy_edges =
  [
    ("economy", "market"); ("market", "trade"); ("trade", "commerce");
    ("commerce", "business"); ("business", "enterprise");
    ("money", "cash"); ("cash", "currency"); ("currency", "dollar");
    ("currency", "euro"); ("currency", "yuan");
    ("money", "capital"); ("capital", "investment"); ("investment", "investor");
    ("stock", "share"); ("share", "equity"); ("stock", "exchange");
    ("profit", "earnings"); ("earnings", "revenue"); ("revenue", "income");
    ("income", "salary"); ("salary", "wage");
    ("price", "cost"); ("cost", "expense"); ("price", "value");
    ("tax", "levy"); ("tax", "tariff"); ("tariff", "duty");
    ("loan", "credit"); ("credit", "debt"); ("debt", "liability");
    ("budget", "spending"); ("inflation", "deflation");
    ("merger", "acquisition"); ("acquisition", "takeover");
    ("factory", "plant"); ("plant", "mill"); ("factory", "workshop");
  ]

let politics_edges =
  [
    ("government", "administration"); ("administration", "cabinet");
    ("government", "regime"); ("government", "authority");
    ("president", "leader"); ("leader", "chief"); ("chief", "head");
    ("minister", "secretary"); ("minister", "official");
    ("election", "vote"); ("vote", "ballot"); ("election", "poll");
    ("election", "campaign"); ("campaign", "candidate");
    ("law", "statute"); ("statute", "act"); ("law", "regulation");
    ("regulation", "rule"); ("law", "legislation");
    ("court", "tribunal"); ("court", "judiciary"); ("judge", "justice");
    ("police", "constabulary"); ("army", "military"); ("military", "forces");
    ("war", "conflict"); ("conflict", "battle"); ("battle", "combat");
    ("peace", "truce"); ("truce", "ceasefire");
    ("treaty", "accord"); ("accord", "pact"); ("pact", "agreement");
    ("embassy", "consulate"); ("diplomat", "envoy"); ("envoy", "ambassador");
  ]

let arts_edges =
  [
    ("music", "song"); ("song", "melody"); ("melody", "tune");
    ("music", "concert"); ("concert", "recital"); ("concert", "performance");
    ("musician", "artist"); ("artist", "performer"); ("performer", "entertainer");
    ("band", "orchestra"); ("orchestra", "ensemble");
    ("film", "movie"); ("movie", "picture"); ("film", "cinema");
    ("director", "filmmaker"); ("actor", "actress"); ("actor", "performer");
    ("book", "novel"); ("novel", "fiction"); ("book", "volume");
    ("writer", "author"); ("author", "novelist"); ("writer", "poet");
    ("poem", "verse"); ("verse", "stanza");
    ("painting", "portrait"); ("painting", "canvas"); ("painter", "artist");
    ("sculpture", "statue"); ("museum", "gallery");
    ("theater", "stage"); ("theater", "playhouse"); ("play", "drama");
    ("drama", "tragedy"); ("drama", "comedy");
    ("dance", "ballet"); ("opera", "operetta");
  ]

let everyday_edges =
  [
    ("food", "meal"); ("meal", "dinner"); ("meal", "lunch");
    ("meal", "breakfast"); ("food", "cuisine"); ("cuisine", "dish");
    ("bread", "loaf"); ("drink", "beverage"); ("beverage", "coffee");
    ("beverage", "tea"); ("beverage", "juice");
    ("house", "home"); ("home", "residence"); ("residence", "dwelling");
    ("house", "cottage"); ("building", "edifice");
    ("road", "street"); ("street", "avenue"); ("avenue", "boulevard");
    ("road", "highway"); ("highway", "motorway"); ("path", "trail");
    ("car", "automobile"); ("automobile", "vehicle"); ("vehicle", "truck");
    ("vehicle", "bus"); ("train", "railway"); ("railway", "railroad");
    ("ship", "boat"); ("boat", "vessel"); ("plane", "aircraft");
    ("aircraft", "airplane"); ("airport", "airfield");
    ("weather", "climate"); ("rain", "rainfall"); ("rainfall", "precipitation");
    ("storm", "tempest"); ("storm", "hurricane"); ("hurricane", "typhoon");
    ("snow", "frost"); ("wind", "breeze"); ("sun", "sunshine");
    ("river", "stream"); ("stream", "creek"); ("lake", "pond");
    ("mountain", "peak"); ("peak", "summit"); ("hill", "slope");
    ("forest", "woods"); ("woods", "woodland"); ("sea", "ocean");
    ("clothes", "clothing"); ("clothing", "garment"); ("garment", "apparel");
    ("shoe", "boot"); ("hat", "cap");
  ]

let all_edges =
  company_edges @ sports_edges @ partnership_edges @ qa_edges @ cfp_edges
  @ celebrity_edges @ technology_edges @ science_edges @ economy_edges
  @ politics_edges @ arts_edges @ everyday_edges

let create () =
  let g = Graph.create () in
  List.iter (fun (a, b) -> Graph.add_edge g a b) all_edges;
  g

let concepts () =
  [
    "pc-maker"; "sports"; "partnership"; "school"; "city"; "country";
    "year"; "date"; "place"; "conference"; "workshop"; "university";
    "parliament"; "headquarters"; "marry"; "born"; "graduate"; "build";
    "begin";
  ]
