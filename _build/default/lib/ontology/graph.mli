(** Undirected lemma graphs with breadth-first distances.

    The substrate for WordNet-style matching: the paper's TREC matcher
    considers two terms matching when their WordNet graph distance (in
    edges) is at most 3, scoring the match [1 - 0.3 d]. *)

type t

val create : unit -> t

val add_node : t -> string -> unit
(** Idempotent. *)

val add_edge : t -> string -> string -> unit
(** Adds both endpoints as needed; self-loops and duplicate edges are
    ignored. *)

val mem : t -> string -> bool
val node_count : t -> int
val edge_count : t -> int
val neighbors : t -> string -> string list

val distance : t -> ?max_depth:int -> string -> string -> int option
(** BFS distance in edges, or [None] when disconnected, beyond
    [max_depth] (default: unbounded), or when either node is absent.
    [distance g x x = Some 0] when [x] is present. *)

val within : t -> radius:int -> string -> (string * int) list
(** All nodes within the radius of a source, with their distances,
    including the source at distance 0. Empty when the source is
    absent. *)
