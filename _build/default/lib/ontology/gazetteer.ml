let city_list =
  [
    "amsterdam"; "athens"; "atlanta"; "auckland"; "austin"; "baltimore";
    "bangalore"; "bangkok"; "barcelona"; "beijing"; "beirut"; "berkeley";
    "berlin"; "bern"; "bologna"; "bordeaux"; "boston"; "brisbane";
    "brussels"; "bucharest"; "budapest"; "cairo"; "calgary"; "cambridge";
    "canberra"; "chicago"; "cleveland"; "copenhagen"; "dallas"; "delhi";
    "denver"; "detroit"; "dresden"; "dublin"; "edinburgh"; "edmonton";
    "eindhoven"; "florence"; "frankfurt"; "geneva"; "genoa"; "glasgow";
    "gothenburg"; "grenoble"; "hamburg"; "hanover"; "heidelberg";
    "helsinki"; "houston"; "istanbul"; "jerusalem"; "johannesburg";
    "karlsruhe"; "kyoto"; "lausanne"; "leipzig"; "lille"; "lisbon";
    "liverpool"; "ljubljana"; "london"; "lyon"; "madison"; "madrid";
    "manchester"; "marseille"; "melbourne"; "miami"; "milan"; "minneapolis";
    "montreal"; "moscow"; "mumbai"; "munich"; "nagoya"; "nairobi";
    "nanjing"; "naples"; "newcastle"; "nice"; "osaka"; "oslo"; "ottawa";
    "oxford"; "padua"; "paris"; "perth"; "philadelphia"; "phoenix";
    "pisa"; "pittsburgh"; "portland"; "prague"; "princeton"; "quebec";
    "riga"; "rome"; "rotterdam"; "salamanca"; "salerno"; "santiago";
    "sapporo"; "seattle"; "seoul"; "shanghai"; "sheffield"; "singapore";
    "sofia"; "stanford"; "stockholm"; "strasbourg"; "stuttgart"; "sydney";
    "taipei"; "tampere"; "tokyo"; "toronto"; "toulouse"; "trento";
    "trondheim"; "tucson"; "turin"; "uppsala"; "utrecht"; "valencia";
    "vancouver"; "venice"; "vienna"; "warsaw"; "washington"; "wellington";
    "zagreb"; "zurich";
    (* extended coverage *)
    "aarhus"; "adelaide"; "algiers"; "alicante"; "ankara"; "antwerp";
    "baltimore"; "basel"; "belfast"; "belgrade"; "bilbao"; "bratislava";
    "bremen"; "brno"; "caen"; "cardiff"; "casablanca"; "catania";
    "chengdu"; "cologne"; "cork"; "darmstadt"; "davis"; "dortmund";
    "duisburg"; "dundee"; "durham"; "essen"; "exeter"; "fukuoka";
    "galway"; "ghent"; "granada"; "graz"; "guangzhou"; "haifa"; "hangzhou";
    "hanoi"; "havana"; "hiroshima"; "hobart"; "innsbruck"; "izmir";
    "jakarta"; "kiel"; "kobe"; "krakow"; "lancaster"; "leeds"; "leicester";
    "leuven"; "lima"; "linz"; "lodz"; "lublin"; "lugano"; "malaga";
    "malmo"; "manila"; "mannheim"; "maribor"; "marrakesh"; "medellin";
    "messina"; "montevideo"; "montpellier"; "nantes"; "nottingham";
    "odense"; "orleans"; "palermo"; "pamplona"; "patras"; "pavia";
    "pecs"; "pilsen"; "poitiers"; "porto"; "potsdam"; "poznan"; "pretoria";
    "quito"; "reading"; "regensburg"; "rennes"; "reykjavik"; "rosario";
    "rouen"; "saarbrucken"; "salzburg"; "sendai"; "seville"; "sienna";
    "skopje"; "southampton"; "split"; "stirling"; "tallinn"; "tartu";
    "tbilisi"; "tehran"; "tirana"; "toledo"; "tromso"; "tsukuba"; "tubingen";
    "ulm"; "umea"; "vilnius"; "vitoria"; "wollongong"; "wuhan"; "york";
    "yokohama";
  ]

let country_list =
  [
    "argentina"; "australia"; "austria"; "belgium"; "brazil"; "bulgaria";
    "canada"; "chile"; "china"; "colombia"; "croatia"; "cyprus";
    "czechia"; "denmark"; "egypt"; "england"; "estonia"; "finland";
    "france"; "germany"; "greece"; "hungary"; "iceland"; "india";
    "indonesia"; "ireland"; "israel"; "italy"; "japan"; "kenya"; "korea";
    "latvia"; "lebanon"; "lithuania"; "luxembourg"; "malaysia"; "mexico";
    "morocco"; "netherlands"; "norway"; "pakistan"; "peru"; "philippines";
    "poland"; "portugal"; "romania"; "russia"; "scotland"; "serbia";
    "slovakia"; "slovenia"; "spain"; "sweden"; "switzerland"; "taiwan";
    "thailand"; "tunisia"; "turkey"; "ukraine"; "venezuela"; "vietnam";
    "wales";
  ]

let table =
  let h = Hashtbl.create 512 in
  List.iter (fun c -> Hashtbl.replace h c ()) city_list;
  List.iter (fun c -> Hashtbl.replace h c ()) country_list;
  h

let mem w = Hashtbl.mem table w
let cities () = city_list
let countries () = country_list
let size () = Hashtbl.length table
