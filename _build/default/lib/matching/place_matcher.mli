(** The paper's DBWorld place matcher: "if a term can be found in the
    GeoWorldMap database, we consider it a match with score 1. If
    GeoWorldMap does not have the term, we check if the term is directly
    connected to 'place' in WordNet; if yes, it is considered a match
    with score 0.7." The paper also added a [university -- place] edge
    to improve accuracy; callers do that on the graph they pass in. *)

val create : Pj_ontology.Graph.t -> Matcher.t
