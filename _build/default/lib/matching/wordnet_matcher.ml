let score_of_distance d = 1. -. (0.3 *. float_of_int d)

let expansion_scores ?(radius = 3) graph concept =
  let within = Pj_ontology.Graph.within graph ~radius concept in
  let expansions =
    List.map (fun (lemma, d) -> (lemma, score_of_distance d)) within
  in
  (* A concept outside the graph still matches itself. *)
  if expansions = [] then [ (concept, 1.) ] else expansions

let create ?(radius = 3) ?(use_stems = true) graph concept =
  let normalize w = if use_stems then Pj_text.Porter.stem w else w in
  let entries =
    List.map
      (fun (lemma, score) -> (normalize lemma, score))
      (expansion_scores ~radius graph concept)
  in
  let table = Matcher.of_table ~name:concept entries in
  {
    table with
    Matcher.score_token = (fun tok -> table.Matcher.score_token (normalize tok));
  }
