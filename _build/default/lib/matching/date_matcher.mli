(** The paper's DBWorld date matcher: "a simple matcher that looks for
    month names and numbers between 1990 and 2010; identified matches
    are scored 1". *)

val create : unit -> Matcher.t
