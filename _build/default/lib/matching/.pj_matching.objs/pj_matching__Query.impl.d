lib/matching/query.ml: Array Matcher
