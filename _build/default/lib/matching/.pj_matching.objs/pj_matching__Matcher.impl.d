lib/matching/matcher.ml: Float Hashtbl List Pj_text String
