lib/matching/query_parser.mli: Matcher Pj_ontology Query
