lib/matching/match_builder.ml: Array Hashtbl List Matcher Pj_core Pj_index Pj_text Pj_util Printf Query
