lib/matching/date_matcher.mli: Matcher
