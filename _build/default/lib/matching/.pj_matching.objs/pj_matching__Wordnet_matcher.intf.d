lib/matching/wordnet_matcher.mli: Matcher Pj_ontology
