lib/matching/query.mli: Matcher
