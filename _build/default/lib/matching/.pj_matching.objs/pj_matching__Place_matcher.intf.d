lib/matching/place_matcher.mli: Matcher Pj_ontology
