lib/matching/phrase.ml: Array List Match_builder Option Pj_core Pj_text Pj_util Query
