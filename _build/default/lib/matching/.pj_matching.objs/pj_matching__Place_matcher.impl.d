lib/matching/place_matcher.ml: List Matcher Pj_ontology
