lib/matching/phrase.mli: Pj_core Pj_text Query
