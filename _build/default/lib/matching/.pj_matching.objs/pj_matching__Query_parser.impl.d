lib/matching/query_parser.ml: Date_matcher List Matcher Pj_ontology Place_matcher Printf Query String Wordnet_matcher
