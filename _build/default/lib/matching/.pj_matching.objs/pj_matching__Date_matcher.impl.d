lib/matching/date_matcher.ml: List Matcher Pj_ontology
