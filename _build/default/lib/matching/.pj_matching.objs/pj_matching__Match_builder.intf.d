lib/matching/match_builder.mli: Pj_core Pj_index Pj_text Query
