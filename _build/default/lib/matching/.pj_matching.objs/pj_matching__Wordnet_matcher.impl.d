lib/matching/wordnet_matcher.ml: List Matcher Pj_ontology Pj_text
