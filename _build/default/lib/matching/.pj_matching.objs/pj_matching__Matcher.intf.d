lib/matching/matcher.mli:
