let find vocab (doc : Pj_text.Document.t) ~phrase ~score =
  if phrase = [] then invalid_arg "Phrase.find: empty phrase";
  (* Resolve the phrase's tokens to ids; an unknown token cannot occur. *)
  let ids = List.map (Pj_text.Vocab.find vocab) phrase in
  if List.exists Option.is_none ids then [||]
  else begin
    let ids = Array.of_list (List.map Option.get ids) in
    let k = Array.length ids in
    let n = Pj_text.Document.length doc in
    let out = Pj_util.Vec.create () in
    for start = 0 to n - k do
      let matches = ref true in
      for i = 0 to k - 1 do
        if Pj_text.Document.token_at doc (start + i) <> ids.(i) then
          matches := false
      done;
      if !matches then
        Pj_util.Vec.push out
          (Pj_core.Match0.make ~payload:ids.(0) ~loc:start ~score ())
    done;
    Pj_util.Vec.to_array out
  end

let find_all vocab doc phrases =
  List.fold_left
    (fun acc (phrase, score) ->
      Pj_core.Match_list.merge acc (find vocab doc ~phrase ~score))
    [||] phrases

let scan_with_phrases vocab doc (q : Query.t) ~phrases =
  let base = Match_builder.scan vocab doc q in
  if Array.length phrases <> Array.length base then
    invalid_arg "Phrase.scan_with_phrases: phrases array size mismatch";
  Array.mapi
    (fun j list -> Pj_core.Match_list.merge list (find_all vocab doc phrases.(j)))
    base
