type t = {
  label : string;
  matchers : Matcher.t array;
}

let make label matchers =
  if matchers = [] then invalid_arg "Query.make: no query term";
  { label; matchers = Array.of_list matchers }

let n_terms t = Array.length t.matchers

let term_names t = Array.map (fun m -> m.Matcher.name) t.matchers
