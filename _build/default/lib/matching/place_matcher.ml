let create graph =
  let neighbor_forms =
    ("place", 1.)
    :: List.map (fun w -> (w, 0.7)) (Pj_ontology.Graph.neighbors graph "place")
  in
  let gazetteer_forms =
    List.map
      (fun p -> (p, 1.))
      (Pj_ontology.Gazetteer.cities () @ Pj_ontology.Gazetteer.countries ())
  in
  let table =
    Matcher.of_table ~name:"place" (gazetteer_forms @ neighbor_forms)
  in
  {
    table with
    Matcher.score_token =
      (fun tok ->
        if Pj_ontology.Gazetteer.mem tok then Some 1.
        else table.Matcher.score_token tok);
  }
