type t = {
  name : string;
  score_token : string -> float option;
  expansions : (string * float) list option;
}

let exact ?(score = 1.) word =
  {
    name = word;
    score_token = (fun tok -> if String.equal tok word then Some score else None);
    expansions = Some [ (word, score) ];
  }

let stemmed_exact ?(score = 1.) word =
  let stem = Pj_text.Porter.stem word in
  {
    name = word;
    score_token =
      (fun tok ->
        if String.equal (Pj_text.Porter.stem tok) stem then Some score else None);
    expansions = Some [ (stem, score) ];
  }

let of_table ~name entries =
  let table = Hashtbl.create (List.length entries) in
  List.iter
    (fun (form, score) ->
      match Hashtbl.find_opt table form with
      | Some s when s >= score -> ()
      | _ -> Hashtbl.replace table form score)
    entries;
  {
    name;
    score_token = (fun tok -> Hashtbl.find_opt table tok);
    expansions = Some (Hashtbl.fold (fun f s acc -> (f, s) :: acc) table []);
  }

let disjunction ~name a b =
  {
    name;
    score_token =
      (fun tok ->
        match (a.score_token tok, b.score_token tok) with
        | None, r | r, None -> r
        | Some x, Some y -> Some (Float.max x y));
    expansions =
      (match (a.expansions, b.expansions) with
      | Some ea, Some eb ->
          (* Re-deduplicate through of_table's max-wins logic. *)
          (of_table ~name (ea @ eb)).expansions
      | _ -> None);
  }

let predicate ~name ?(score = 1.) p =
  {
    name;
    score_token = (fun tok -> if p tok then Some score else None);
    expansions = None;
  }

let stem_expansions m =
  match m.expansions with
  | None ->
      {
        m with
        score_token = (fun tok -> m.score_token (Pj_text.Porter.stem tok));
      }
  | Some expansions ->
      let stemmed =
        List.map (fun (form, s) -> (Pj_text.Porter.stem form, s)) expansions
      in
      let table = of_table ~name:m.name stemmed in
      {
        table with
        score_token = (fun tok -> table.score_token (Pj_text.Porter.stem tok));
      }
