let create () =
  let months =
    List.map (fun m -> (m, 1.)) (Pj_ontology.Date_lex.months ())
  in
  let years = List.init 21 (fun i -> (string_of_int (1990 + i), 1.)) in
  let table = Matcher.of_table ~name:"date" (months @ years) in
  {
    table with
    (* Accept abbreviations through the lexicon predicate as well. *)
    Matcher.score_token =
      (fun tok ->
        if Pj_ontology.Date_lex.is_date_token tok then Some 1. else None);
  }
