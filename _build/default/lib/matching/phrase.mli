(** Multi-token phrase matching.

    Query concepts like "Leaning Tower of Pisa" occur in documents as
    consecutive token sequences; a phrase occurrence becomes a single
    match located at the phrase's first token (its payload is that
    token's id). Phrase lists combine with token-level matcher lists via
    [Pj_core.Match_list.merge]. *)

val find :
  Pj_text.Vocab.t ->
  Pj_text.Document.t ->
  phrase:string list ->
  score:float ->
  Pj_core.Match_list.t
(** All occurrences of the consecutive (lowercase) token sequence.
    Raises [Invalid_argument] on an empty phrase. Overlapping
    occurrences are all reported. *)

val find_all :
  Pj_text.Vocab.t ->
  Pj_text.Document.t ->
  (string list * float) list ->
  Pj_core.Match_list.t
(** Occurrences of several scored phrases, merged into one list (best
    score per location). *)

val scan_with_phrases :
  Pj_text.Vocab.t ->
  Pj_text.Document.t ->
  Query.t ->
  phrases:(string list * float) list array ->
  Pj_core.Match_list.problem
(** [Match_builder.scan], with each term's token-level list merged with
    its phrase occurrences ([phrases] is indexed by term; use [[]] for
    terms without phrases). *)
