(** The paper's WordNet matcher (Section VIII, TREC experiment):
    "Two terms are considered to be matching if their WordNet graph
    distance d (in number of edges) is no more than 3; we score this
    match by (1 - 0.3 d). We use the stem of a word as returned by a
    standard Porter's stemmer in all our string comparisons." *)

val create :
  ?radius:int -> ?use_stems:bool -> Pj_ontology.Graph.t -> string -> Matcher.t
(** [create graph concept] expands the concept to every lemma within
    [radius] (default 3) edges, scoring lemma at distance d by
    [1 - 0.3 d], and matches document tokens against the expansion —
    comparing Porter stems when [use_stems] (default true). A concept
    absent from the graph still matches itself exactly (score 1). *)

val expansion_scores :
  ?radius:int -> Pj_ontology.Graph.t -> string -> (string * float) list
(** The raw (lemma, score) expansion before stemming, for inspection. *)
