(** Matchers: per-query-term scoring of document tokens.

    A matcher turns a raw lowercase token into an optional match score in
    (0, 1]. Matchers encapsulate the "fuzzy match" machinery of the
    paper's experiments (WordNet graph distance, gazetteer membership,
    date recognition) behind one interface, so the match-list builder and
    the join algorithms stay agnostic of where scores come from.

    A matcher may also expose its [expansions]: the finite list of
    (token form, score) pairs it accepts. When available, match lists
    can be derived from precomputed inverted lists by merging the
    expansion postings (the strategy of the paper's footnote 1). *)

type t = {
  name : string;
  score_token : string -> float option;
      (** Score of a token for this term, [None] when it does not match.
          Scores must lie in (0, 1]. *)
  expansions : (string * float) list option;
      (** All accepted forms with scores, when finitely enumerable. The
          forms are in the same normalization that [score_token] accepts
          directly (e.g. stems if the matcher stems). *)
}

val exact : ?score:float -> string -> t
(** Match exactly one token form (default score 1). *)

val stemmed_exact : ?score:float -> string -> t
(** Match any token whose Porter stem equals the stem of the given word. *)

val of_table : name:string -> (string * float) list -> t
(** Match any listed form at its listed score (highest wins on
    duplicates). *)

val disjunction : name:string -> t -> t -> t
(** Match when either matcher matches, keeping the higher score — e.g.
    the paper's [conference|workshop] query term. *)

val predicate : name:string -> ?score:float -> (string -> bool) -> t
(** Match every token satisfying the predicate (no expansions). *)

val stem_expansions : t -> t
(** Porter-stem the matcher's expansion forms (max score wins on stem
    collisions) and stem incoming tokens before scoring, so the matcher
    lines up with an index built over stemmed tokens. Matchers without
    expansions only gain the token stemming. *)
