let years = List.init 21 (fun i -> (string_of_int (1990 + i), 1.))

let parse_atom graph spec =
  match String.index_opt spec ':' with
  | Some i -> begin
      let kind = String.sub spec 0 i in
      let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
      if arg = "" then Error (Printf.sprintf "empty argument in %S" spec)
      else begin
        match kind with
        | "wordnet" -> Ok (Wordnet_matcher.create graph arg)
        | "stem" -> Ok (Matcher.stemmed_exact arg)
        | "exact" -> Ok (Matcher.exact arg)
        | _ -> Error (Printf.sprintf "unknown term kind %S in %S" kind spec)
      end
    end
  | None -> begin
      match spec with
      | "" -> Error "empty term spec"
      | "date" -> Ok (Date_matcher.create ())
      | "place" -> Ok (Place_matcher.create graph)
      | "city" ->
          Ok
            (Matcher.of_table ~name:"city"
               (List.map (fun c -> (c, 1.)) (Pj_ontology.Gazetteer.cities ())))
      | "country" ->
          Ok
            (Matcher.of_table ~name:"country"
               (List.map (fun c -> (c, 1.)) (Pj_ontology.Gazetteer.countries ())))
      | "year" -> Ok (Matcher.of_table ~name:"year" years)
      | w -> Ok (Wordnet_matcher.create graph w)
    end

let parse_term graph spec =
  let parts = String.split_on_char '|' spec in
  let rec build acc = function
    | [] -> begin
        match acc with
        | Some m -> Ok m
        | None -> Error "empty term spec"
      end
    | part :: rest -> begin
        match parse_atom graph (String.trim part) with
        | Error _ as e -> e
        | Ok m ->
            let combined =
              match acc with
              | None -> m
              | Some prev -> Matcher.disjunction ~name:spec prev m
            in
            build (Some combined) rest
      end
  in
  build None parts

let parse graph specs =
  if specs = [] then Error "at least one term is required"
  else begin
    let rec go acc = function
      | [] -> Ok (Query.make "cli" (List.rev acc))
      | spec :: rest -> begin
          match parse_term graph spec with
          | Ok m -> go (m :: acc) rest
          | Error _ as e -> e
        end
    in
    go [] specs
  end
