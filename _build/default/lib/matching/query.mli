(** Multi-term queries: a label plus one matcher per query term
    (Definition 1's query, with the match machinery attached). *)

type t = {
  label : string;
  matchers : Matcher.t array;
}

val make : string -> Matcher.t list -> t
(** Raises [Invalid_argument] on an empty term list. *)

val n_terms : t -> int
val term_names : t -> string array
