(** Textual query-term specifications, as used by the proxjoin CLI.

    Grammar (one spec per query term):
    - ["wordnet:CONCEPT"] — WordNet-style fuzzy matcher
      ([1 - 0.3 d], d <= 3) over a lemma graph;
    - ["stem:WORD"] — Porter-stem equality at score 1;
    - ["exact:WORD"] — literal token at score 1;
    - ["date"], ["place"], ["city"], ["country"], ["year"] — lexicon
      matchers;
    - a spec with a ["|"] separator builds the disjunction of its parts
      (e.g. ["exact:conference|exact:workshop"]);
    - any other bare word defaults to ["wordnet:WORD"]. *)

val parse_term :
  Pj_ontology.Graph.t -> string -> (Matcher.t, string) result
(** Parse one term spec against the given lemma graph. *)

val parse :
  Pj_ontology.Graph.t -> string list -> (Query.t, string) result
(** Parse a whole query (label "cli"); [Error] reports the first bad
    spec or an empty term list. *)
