lib/index/posting_list.mli: Posting
