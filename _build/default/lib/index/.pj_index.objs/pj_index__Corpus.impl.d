lib/index/corpus.ml: Pj_text Pj_util
