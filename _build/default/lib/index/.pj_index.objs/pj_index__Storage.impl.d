lib/index/storage.ml: Array Buffer Char Corpus Fun Inverted_index Pj_text Printf String
