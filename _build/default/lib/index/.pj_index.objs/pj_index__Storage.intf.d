lib/index/storage.mli: Buffer Corpus Inverted_index
