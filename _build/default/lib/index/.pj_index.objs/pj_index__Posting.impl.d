lib/index/posting.ml: Array Format
