lib/index/posting_list.ml: Array List Pj_util Posting
