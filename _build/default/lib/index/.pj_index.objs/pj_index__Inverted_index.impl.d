lib/index/inverted_index.ml: Array Corpus List Pj_text Pj_util Posting Posting_list
