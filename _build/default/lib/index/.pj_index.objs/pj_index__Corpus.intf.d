lib/index/corpus.mli: Pj_text
