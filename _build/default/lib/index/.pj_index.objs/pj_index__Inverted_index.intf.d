lib/index/inverted_index.mli: Corpus Posting_list
