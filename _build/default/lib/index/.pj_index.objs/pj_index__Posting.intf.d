lib/index/posting.mli: Format
