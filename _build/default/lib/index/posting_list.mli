(** Posting lists: all postings of one term, sorted by document id.

    Supports the operations the paper's footnote 1 relies on: deriving a
    match list for a concept by merging the posting lists of several
    specific terms (e.g. "PC maker" from "lenovo", "dell", ...). *)

type t

val empty : t
val of_postings : Posting.t list -> t
(** Builds a list from unordered postings; postings of the same document
    are merged (position arrays unioned). *)

val document_frequency : t -> int
(** Number of documents containing the term. *)

val collection_frequency : t -> int
(** Total number of occurrences across documents. *)

val find : t -> int -> Posting.t option
(** Posting for a document id (binary search). *)

val iter : (Posting.t -> unit) -> t -> unit
(** Visit postings in increasing document id. *)

val fold : ('acc -> Posting.t -> 'acc) -> 'acc -> t -> 'acc

val doc_ids : t -> int array

val union : t -> t -> t
(** Merge two posting lists (documents present in either; positions
    unioned) — the match-list merging primitive of footnote 1. *)

val to_list : t -> Posting.t list
