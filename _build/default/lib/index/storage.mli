(** Corpus persistence: a compact custom binary format, so an indexed
    collection can be built once and reopened without re-tokenizing.

    Layout: a magic header and version, the vocabulary as
    length-prefixed strings, then each document's token ids — integers
    throughout are LEB128 varints. The inverted index is rebuilt on
    load (it is a deterministic function of the corpus and loads at
    disk speed anyway). The format is independent of OCaml's [Marshal]
    so files are stable across compiler versions. *)

val save_corpus : Corpus.t -> string -> unit
(** Write the corpus (vocabulary + documents) to the path. Raises
    [Sys_error] on I/O failure. *)

val load_corpus : string -> Corpus.t
(** Read a corpus back. Raises [Failure] on a malformed or
    wrong-version file, [Sys_error] on I/O failure. *)

val save : Inverted_index.t -> string -> unit
(** [save idx path] persists the index's corpus. *)

val load : string -> Inverted_index.t
(** Load a corpus and rebuild its inverted index. *)

(** {1 Varint encoding (exposed for tests)} *)

val write_varint : Buffer.t -> int -> unit
(** LEB128 encoding of a non-negative integer. *)

val read_varint : string -> pos:int ref -> int
(** Decode at [!pos], advancing it. Raises [Failure] on truncation or
    overflow. *)
