(** Positional postings: the occurrences of one term in one document. *)

type t = {
  doc_id : int;
  positions : int array;  (** sorted token locations of the occurrences *)
}

val term_frequency : t -> int

val make : doc_id:int -> positions:int array -> t
(** Positions are sorted defensively. *)

val pp : Format.formatter -> t -> unit
