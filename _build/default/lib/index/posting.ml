type t = {
  doc_id : int;
  positions : int array;
}

let term_frequency t = Array.length t.positions

let make ~doc_id ~positions =
  let positions = Array.copy positions in
  Array.sort compare positions;
  { doc_id; positions }

let pp ppf t =
  Format.fprintf ppf "@[<h>doc %d: [%a]@]" t.doc_id
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Format.pp_print_int)
    t.positions
