(** Document collections sharing one vocabulary. *)

type t

val create : unit -> t

val vocab : t -> Pj_text.Vocab.t

val add_text : t -> string -> Pj_text.Document.t
(** Tokenize, intern and store a document; returns it with its assigned
    id (dense, starting at 0). *)

val add_tokens : t -> string array -> Pj_text.Document.t

val size : t -> int
val document : t -> int -> Pj_text.Document.t
val iter : (Pj_text.Document.t -> unit) -> t -> unit
val fold : ('acc -> Pj_text.Document.t -> 'acc) -> 'acc -> t -> 'acc

val total_tokens : t -> int
val average_length : t -> float
