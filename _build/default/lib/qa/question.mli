(** Factoid-question analysis: turning a natural-language wh-question
    into a multi-term proximity query (the paper's motivating use:
    "who invented dental floss" becomes a typed target term plus content
    terms).

    The analysis is deliberately simple — a template keyed on the
    wh-word plus WordNet matchers for the content words — mirroring the
    paper's "simple matcher" philosophy for the TREC experiment. *)

type target =
  | Person   (** who *)
  | Place    (** where; also "what city/country" *)
  | Time     (** when; also "what year" *)
  | Thing    (** what/which, untyped *)

type t = {
  text : string;           (** the original question *)
  target : target;
  content_words : string list;
      (** non-stopword question words, lowercase, in order *)
}

val analyze : string -> t
(** Classify the question's target type and extract its content words.
    Never fails; unknown shapes default to [Thing]. *)

val to_query : Pj_ontology.Graph.t -> t -> Pj_matching.Query.t
(** Build the proximity query: term 0 matches the target type (place
    names, dates, person-ish words, or a WordNet expansion of the first
    content word for [Thing]), the remaining terms are WordNet matchers
    for the content words. *)

val target_name : target -> string
