type target =
  | Person
  | Place
  | Time
  | Thing

type t = {
  text : string;
  target : target;
  content_words : string list;
}

let target_name = function
  | Person -> "person"
  | Place -> "place"
  | Time -> "time"
  | Thing -> "thing"

(* Words that define the question shape rather than its content. *)
let question_words =
  [ "who"; "whom"; "whose"; "where"; "when"; "what"; "which"; "how" ]

let classify tokens =
  match tokens with
  | "who" :: _ | "whom" :: _ | "whose" :: _ -> Person
  | "where" :: _ -> Place
  | "when" :: _ -> Time
  | ("what" | "which" | "in") :: rest -> begin
      (* "what year", "in what city", "which country"... *)
      let typed = [ "year"; "date"; "day"; "month" ] in
      let placey = [ "city"; "country"; "place"; "town"; "nation" ] in
      let rec scan = function
        | [] -> Thing
        | w :: _ when List.mem w typed -> Time
        | w :: _ when List.mem w placey -> Place
        | w :: rest when List.mem w question_words || Pj_text.Stopwords.mem w ->
            scan rest
        | _ -> Thing
      in
      scan rest
    end
  | _ -> Thing

let content_of tokens =
  let type_words =
    [ "year"; "date"; "day"; "month"; "city"; "country"; "place"; "town";
      "nation" ]
  in
  List.filter
    (fun w ->
      (not (List.mem w question_words))
      && (not (Pj_text.Stopwords.mem w))
      && not (List.mem w type_words))
    tokens

let analyze text =
  let tokens = Pj_text.Tokenizer.tokenize text in
  { text; target = classify tokens; content_words = content_of tokens }

let years = List.init 21 (fun i -> (string_of_int (1990 + i), 1.))

let target_matcher graph q =
  match q.target with
  | Place ->
      (* Gazetteer membership at 1, place-like words via WordNet. *)
      Pj_matching.Place_matcher.create graph
  | Time ->
      Pj_matching.Matcher.disjunction ~name:"time"
        (Pj_matching.Date_matcher.create ())
        (Pj_matching.Matcher.of_table ~name:"year" years)
  | Person ->
      (* Person-ish lemmas around "person" in the lexicon; real systems
         would plug in a named-entity recognizer here. *)
      Pj_matching.Wordnet_matcher.create graph "person"
  | Thing -> begin
      match q.content_words with
      | w :: _ -> Pj_matching.Wordnet_matcher.create graph w
      | [] -> Pj_matching.Matcher.exact "thing"
    end

(* Two content words whose WordNet expansions overlap (e.g. "alfred" and
   "hitchcock") would force every matchset to reuse one token and be
   killed by duplicate avoidance; keep only the first of any overlapping
   group. *)
let disjoint_matchers matchers =
  let module Sset = Set.Make (String) in
  let forms m =
    match m.Pj_matching.Matcher.expansions with
    | Some e -> Sset.of_list (List.map fst e)
    | None -> Sset.empty
  in
  let rec keep seen = function
    | [] -> []
    | m :: rest ->
        let f = forms m in
        if Sset.is_empty (Sset.inter f seen) then
          m :: keep (Sset.union seen f) rest
        else keep seen rest
  in
  keep Sset.empty matchers

let to_query graph q =
  let content =
    (* For Thing questions the first content word already serves as the
       target term. *)
    match q.target with
    | Thing -> (match q.content_words with [] -> [] | _ :: rest -> rest)
    | Person | Place | Time -> q.content_words
  in
  let terms =
    target_matcher graph q
    :: disjoint_matchers
         (List.map (Pj_matching.Wordnet_matcher.create graph) content)
  in
  Pj_matching.Query.make q.text terms
