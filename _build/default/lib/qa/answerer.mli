(** Answer extraction over a corpus: the full question-answering loop of
    the paper's introduction. For each document the weighted proximity
    best-join finds the best matchset; the target term's matched token is
    that document's answer candidate; candidates are aggregated across
    documents by summed matchset score, so an answer supported by several
    tight, high-quality contexts outranks a lucky singleton. *)

type answer = {
  answer_word : string;   (** the extracted token for the target term *)
  support : float;        (** summed best-matchset scores of supporters *)
  documents : int list;   (** supporting document ids, best first *)
}

type t

val create :
  ?graph:Pj_ontology.Graph.t -> Pj_index.Corpus.t -> t
(** Prepare an answerer over a corpus (default graph: the mini
    WordNet). Documents are scanned per question; see
    {!Pj_engine.Searcher} for the index-driven path. *)

val ask :
  ?scoring:Pj_core.Scoring.t -> ?k:int -> t -> string -> answer list
(** [ask t question] analyzes the question, runs the join on every
    document, and returns up to [k] (default 3) aggregated answers,
    best-supported first. Empty when no document matches every term.
    Default scoring: MED with the footnote-9 linear instance. *)

val question_of : t -> string -> Question.t * Pj_matching.Query.t
(** The analysis and query [ask] would use (for inspection). *)
