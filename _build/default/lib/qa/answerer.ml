type answer = {
  answer_word : string;
  support : float;
  documents : int list;
}

type t = {
  corpus : Pj_index.Corpus.t;
  graph : Pj_ontology.Graph.t;
}

let create ?graph corpus =
  let graph =
    match graph with
    | Some g -> g
    | None -> Pj_ontology.Mini_wordnet.create ()
  in
  { corpus; graph }

let question_of t text =
  let q = Question.analyze text in
  (q, Question.to_query t.graph q)

let default_scoring = Pj_core.Scoring.Med Pj_core.Scoring.med_linear

(* Documents rarely contain a match for every question word ("located",
   "exactly", ...), so per document the join runs over the target term
   plus the content terms that do match there; a document must match the
   target and at least one content term to vote. Votes count matched
   content terms first (a two-term context beats any one-term context)
   and break ties by a bounded monotone transform of the matchset
   score. *)
let vote ~matched_content score =
  float_of_int matched_content +. (1. /. (1. +. exp (-.score)))

let ask ?(scoring = default_scoring) ?(k = 3) t text =
  let _, query = question_of t text in
  let vocab = Pj_index.Corpus.vocab t.corpus in
  (* Per candidate answer word: accumulated votes and supporters. *)
  let table : (string, float ref * (float * int) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  Pj_index.Corpus.iter
    (fun doc ->
      let full = Pj_matching.Match_builder.scan vocab doc query in
      (* Keep the target list (index 0) plus non-empty content lists. *)
      if Array.length full.(0) > 0 then begin
        let kept =
          full.(0)
          :: List.filter_map
               (fun j -> if Array.length full.(j) > 0 then Some full.(j) else None)
               (List.init (Array.length full - 1) (fun j -> j + 1))
        in
        let matched_content = List.length kept - 1 in
        if matched_content >= 1 then begin
          let problem = Array.of_list kept in
          match Pj_core.Best_join.solve ~dedup:true scoring problem with
          | None -> ()
          | Some r ->
              (* Term 0 is the target; its payload is the answer token. *)
              let word =
                Pj_text.Vocab.word vocab
                  r.Pj_core.Naive.matchset.(0).Pj_core.Match0.payload
              in
              let score = r.Pj_core.Naive.score in
              let support = vote ~matched_content score in
              let sum, docs =
                match Hashtbl.find_opt table word with
                | Some entry -> entry
                | None ->
                    let entry = (ref 0., ref []) in
                    Hashtbl.add table word entry;
                    entry
              in
              sum := !sum +. support;
              docs := (score, doc.Pj_text.Document.id) :: !docs
        end
      end)
    t.corpus;
  Hashtbl.fold
    (fun word (sum, docs) acc ->
      let documents =
        List.sort (fun (a, _) (b, _) -> compare b a) !docs |> List.map snd
      in
      { answer_word = word; support = !sum; documents } :: acc)
    table []
  |> List.sort (fun a b ->
         let c = compare b.support a.support in
         if c <> 0 then c else compare a.answer_word b.answer_word)
  |> List.filteri (fun i _ -> i < k)
