lib/qa/answerer.mli: Pj_core Pj_index Pj_matching Pj_ontology Question
