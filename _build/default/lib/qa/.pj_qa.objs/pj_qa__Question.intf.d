lib/qa/question.mli: Pj_matching Pj_ontology
