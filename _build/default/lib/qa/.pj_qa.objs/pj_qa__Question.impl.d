lib/qa/question.ml: List Pj_matching Pj_text Set String
