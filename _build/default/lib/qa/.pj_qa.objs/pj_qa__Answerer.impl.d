lib/qa/answerer.ml: Array Hashtbl List Pj_core Pj_index Pj_matching Pj_ontology Pj_text Question
