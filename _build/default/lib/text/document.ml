type t = {
  id : int;
  tokens : int array;
}

let of_tokens vocab ~id tokens = { id; tokens = Vocab.intern_all vocab tokens }

let of_text vocab ~id text = of_tokens vocab ~id (Tokenizer.tokenize_array text)

let length d = Array.length d.tokens

let token_at d loc = d.tokens.(loc)

let words vocab d lo hi =
  let buf = Buffer.create 64 in
  for i = lo to hi do
    if i > lo then Buffer.add_char buf ' ';
    Buffer.add_string buf (Vocab.word vocab d.tokens.(i))
  done;
  Buffer.contents buf

let text vocab d = words vocab d 0 (length d - 1)

let slice vocab d ~lo ~hi =
  let lo = Stdlib.max 0 lo in
  let hi = Stdlib.min (length d - 1) hi in
  if lo > hi then "" else words vocab d lo hi
