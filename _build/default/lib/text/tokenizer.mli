(** Word tokenization.

    Splits raw text into lowercase word tokens. A token is a maximal run
    of ASCII letters, digits, or internal hyphens/apostrophes (trimmed at
    the edges); everything else separates tokens. Token positions are
    0-based indices into the token sequence — the location attribute of
    the paper's matches. *)

val tokenize : string -> string list
(** Tokens in document order, lowercased. *)

val tokenize_array : string -> string array

val is_word_char : char -> bool
(** Characters that may appear inside a token. *)
