(** English stopword list.

    Used by the matchers to skip function words when building match
    lists from documents (a stopword never produces a match unless the
    query term is itself that stopword, e.g. the "in" term of the
    paper's TREC queries Q3 and Q4). *)

val mem : string -> bool
(** Is the lowercase word a stopword? *)

val all : unit -> string list
(** The full list, for inspection. *)
