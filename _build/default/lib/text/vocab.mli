(** String interning: a bidirectional mapping between tokens and dense
    integer ids.

    The index and the matchers work on token ids; ids also ride in the
    [payload] field of core matches so that applications can print which
    token produced a match. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** The id of the token, allocating a fresh one on first sight. *)

val find : t -> string -> int option
(** The id of the token if it has been interned. *)

val word : t -> int -> string
(** The token of an id. Raises [Invalid_argument] for unknown ids. *)

val size : t -> int
(** Number of interned tokens. *)

val intern_all : t -> string array -> int array
