(* A faithful transcription of Porter's reference implementation (1980).
   The word lives in a byte buffer [b]; [k] is the index of its last
   character and [j] marks the start of a candidate suffix after a
   successful [ends]. All the classic predicates (cons, m, vowelinstem,
   doublec, cvc) follow the original definitions. *)

type state = {
  mutable b : Bytes.t;
  mutable k : int;  (* index of last character *)
  mutable j : int;  (* general offset set by [ends] *)
}

let is_alpha c = c >= 'a' && c <= 'z'

(* cons s i: is b.[i] a consonant? 'y' is a consonant when it starts the
   word or follows a vowel. *)
let rec cons s i =
  match Bytes.get s.b i with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (cons s (i - 1))
  | _ -> true

(* m s: the measure of b[0..j], the number of vowel-consonant sequences.
   <c>(VC){m}<v> in Porter's notation. *)
let m s =
  let n = ref 0 in
  let i = ref 0 in
  let result = ref (-1) in
  (* Skip initial consonants. *)
  while !result < 0 && !i <= s.j && cons s !i do
    incr i
  done;
  if !i > s.j then result := 0;
  while !result < 0 do
    (* Skip vowels. *)
    while !result < 0 && !i <= s.j && not (cons s !i) do
      incr i
    done;
    if !i > s.j then result := !n
    else begin
      incr n;
      (* Skip consonants. *)
      while !i <= s.j && cons s !i do
        incr i
      done;
      if !i > s.j then result := !n
    end
  done;
  !result

let vowel_in_stem s =
  let found = ref false in
  for i = 0 to s.j do
    if not (cons s i) then found := true
  done;
  !found

(* doublec s i: b[i-1..i] is a double consonant. *)
let doublec s i =
  i >= 1 && Bytes.get s.b i = Bytes.get s.b (i - 1) && cons s i

(* cvc s i: b[i-2..i] is consonant-vowel-consonant and the final
   consonant is not w, x or y (restores an e after e.g. cav(e), lov(e)). *)
let cvc s i =
  if i < 2 || not (cons s i) || cons s (i - 1) || not (cons s (i - 2)) then
    false
  else begin
    match Bytes.get s.b i with
    | 'w' | 'x' | 'y' -> false
    | _ -> true
  end

(* ends s suffix: b[0..k] ends with suffix; sets j on success. *)
let ends s suffix =
  let len = String.length suffix in
  if len > s.k + 1 then false
  else if
    String.equal (Bytes.sub_string s.b (s.k - len + 1) len) suffix
  then begin
    s.j <- s.k - len;
    true
  end
  else false

(* setto s str: replace b[j+1 .. k] with str. *)
let setto s str =
  let len = String.length str in
  Bytes.blit_string str 0 s.b (s.j + 1) len;
  s.k <- s.j + len

(* r s str: setto when the stem before the suffix has measure > 0. *)
let r s str = if m s > 0 then setto s str

(* Step 1a: plurals. caresses -> caress, ponies -> poni, cats -> cat. *)
let step1a s =
  if Bytes.get s.b s.k = 's' then begin
    if ends s "sses" then s.k <- s.k - 2
    else if ends s "ies" then setto s "i"
    else if s.k >= 1 && Bytes.get s.b (s.k - 1) <> 's' then s.k <- s.k - 1
  end

(* Step 1b: -eed, -ed, -ing. feed -> feed, agreed -> agree,
   plastered -> plaster, motoring -> motor, hopping -> hop (undouble),
   filing <- filed via the -e repair. *)
let step1b s =
  if ends s "eed" then begin
    if m s > 0 then s.k <- s.k - 1
  end
  else if (ends s "ed" || ends s "ing") && vowel_in_stem s then begin
    s.k <- s.j;
    if ends s "at" then setto s "ate"
    else if ends s "bl" then setto s "ble"
    else if ends s "iz" then setto s "ize"
    else if doublec s s.k then begin
      s.k <- s.k - 1;
      match Bytes.get s.b s.k with
      | 'l' | 's' | 'z' -> s.k <- s.k + 1
      | _ -> ()
    end
    else if m s = 1 && cvc s s.k then setto s "e"
  end

(* Step 1c: terminal y -> i when there is a vowel in the stem. *)
let step1c s =
  if ends s "y" && vowel_in_stem s then Bytes.set s.b s.k 'i'

(* Step 2: double to single suffixes, keyed on the penultimate letter. *)
let step2 s =
  if s.k >= 1 then begin
    match Bytes.get s.b (s.k - 1) with
    | 'a' ->
        if ends s "ational" then r s "ate"
        else if ends s "tional" then r s "tion"
    | 'c' ->
        if ends s "enci" then r s "ence"
        else if ends s "anci" then r s "ance"
    | 'e' -> if ends s "izer" then r s "ize"
    | 'l' ->
        if ends s "abli" then r s "able"
        else if ends s "alli" then r s "al"
        else if ends s "entli" then r s "ent"
        else if ends s "eli" then r s "e"
        else if ends s "ousli" then r s "ous"
    | 'o' ->
        if ends s "ization" then r s "ize"
        else if ends s "ation" then r s "ate"
        else if ends s "ator" then r s "ate"
    | 's' ->
        if ends s "alism" then r s "al"
        else if ends s "iveness" then r s "ive"
        else if ends s "fulness" then r s "ful"
        else if ends s "ousness" then r s "ous"
    | 't' ->
        if ends s "aliti" then r s "al"
        else if ends s "iviti" then r s "ive"
        else if ends s "biliti" then r s "ble"
    | _ -> ()
  end

(* Step 3: -ic-, -full, -ness etc. *)
let step3 s =
  match Bytes.get s.b s.k with
  | 'e' ->
      if ends s "icate" then r s "ic"
      else if ends s "ative" then r s ""
      else if ends s "alize" then r s "al"
  | 'i' -> if ends s "iciti" then r s "ic"
  | 'l' ->
      if ends s "ical" then r s "ic" else if ends s "ful" then r s ""
  | 's' -> if ends s "ness" then r s ""
  | _ -> ()

(* Step 4: strip -ant, -ence, etc. when the measure exceeds 1. *)
let step4 s =
  let matched =
    if s.k < 1 then false
    else begin
      match Bytes.get s.b (s.k - 1) with
      | 'a' -> ends s "al"
      | 'c' -> ends s "ance" || ends s "ence"
      | 'e' -> ends s "er"
      | 'i' -> ends s "ic"
      | 'l' -> ends s "able" || ends s "ible"
      | 'n' -> ends s "ant" || ends s "ement" || ends s "ment" || ends s "ent"
      | 'o' ->
          (ends s "ion"
          && s.j >= 0
          && (Bytes.get s.b s.j = 's' || Bytes.get s.b s.j = 't'))
          || ends s "ou"
      | 's' -> ends s "ism"
      | 't' -> ends s "ate" || ends s "iti"
      | 'u' -> ends s "ous"
      | 'v' -> ends s "ive"
      | 'z' -> ends s "ize"
      | _ -> false
    end
  in
  if matched && m s > 1 then s.k <- s.j

(* Step 5a: remove a final -e if the measure allows. *)
let step5a s =
  s.j <- s.k;
  if Bytes.get s.b s.k = 'e' then begin
    let a = m s in
    if a > 1 || (a = 1 && not (cvc s (s.k - 1))) then s.k <- s.k - 1
  end

(* Step 5b: -ll -> -l for words like controll. *)
let step5b s =
  if Bytes.get s.b s.k = 'l' && doublec s s.k && m s > 1 then
    s.k <- s.k - 1

let stem word =
  let n = String.length word in
  if n <= 2 then word
  else if not (String.for_all is_alpha word) then word
  else begin
    let s = { b = Bytes.of_string word; k = n - 1; j = 0 } in
    step1a s;
    if s.k > 0 then begin
      step1b s;
      step1c s;
      step2 s;
      step3 s;
      step4 s;
      step5a s;
      step5b s
    end;
    Bytes.sub_string s.b 0 (s.k + 1)
  end
