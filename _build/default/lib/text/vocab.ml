type t = {
  ids : (string, int) Hashtbl.t;
  words : string Pj_util.Vec.t;
}

let create () = { ids = Hashtbl.create 1024; words = Pj_util.Vec.create () }

let intern t w =
  match Hashtbl.find_opt t.ids w with
  | Some id -> id
  | None ->
      let id = Pj_util.Vec.length t.words in
      Hashtbl.add t.ids w id;
      Pj_util.Vec.push t.words w;
      id

let find t w = Hashtbl.find_opt t.ids w

let word t id =
  if id < 0 || id >= Pj_util.Vec.length t.words then
    invalid_arg "Vocab.word: unknown id";
  Pj_util.Vec.get t.words id

let size t = Pj_util.Vec.length t.words

let intern_all t ws = Array.map (intern t) ws
