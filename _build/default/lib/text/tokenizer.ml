let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_word_char c = is_letter c || is_digit c || c = '-' || c = '\''

let lowercase = String.lowercase_ascii

(* Trim hyphens/apostrophes from the token edges: "rock-'n'-roll" keeps
   internal punctuation, "--" disappears. *)
let trim_edges s =
  let n = String.length s in
  let is_edge c = c = '-' || c = '\'' in
  let i = ref 0 in
  while !i < n && is_edge s.[!i] do
    incr i
  done;
  let j = ref (n - 1) in
  while !j >= !i && is_edge s.[!j] do
    decr j
  done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let start = ref (-1) in
  let flush stop =
    if !start >= 0 then begin
      let raw = String.sub text !start (stop - !start) in
      let tok = trim_edges (lowercase raw) in
      if tok <> "" then tokens := tok :: !tokens;
      start := -1
    end
  in
  for i = 0 to n - 1 do
    if is_word_char text.[i] then begin
      if !start < 0 then start := i
    end
    else flush i
  done;
  flush n;
  List.rev !tokens

let tokenize_array text = Array.of_list (tokenize text)
