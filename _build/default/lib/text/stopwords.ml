let words =
  [
    "a"; "about"; "above"; "after"; "again"; "against"; "all"; "am"; "an";
    "and"; "any"; "are"; "as"; "at"; "be"; "because"; "been"; "before";
    "being"; "below"; "between"; "both"; "but"; "by"; "can"; "cannot";
    "could"; "did"; "do"; "does"; "doing"; "down"; "during"; "each"; "few";
    "for"; "from"; "further"; "had"; "has"; "have"; "having"; "he"; "her";
    "here"; "hers"; "herself"; "him"; "himself"; "his"; "how"; "i"; "if";
    "in"; "into"; "is"; "it"; "its"; "itself"; "me"; "more"; "most"; "my";
    "myself"; "no"; "nor"; "not"; "of"; "off"; "on"; "once"; "only"; "or";
    "other"; "ought"; "our"; "ours"; "ourselves"; "out"; "over"; "own";
    "same"; "she"; "should"; "so"; "some"; "such"; "than"; "that"; "the";
    "their"; "theirs"; "them"; "themselves"; "then"; "there"; "these";
    "they"; "this"; "those"; "through"; "to"; "too"; "under"; "until";
    "up"; "very"; "was"; "we"; "were"; "what"; "when"; "where"; "which";
    "while"; "who"; "whom"; "why"; "will"; "with"; "would"; "you"; "your";
    "yours"; "yourself"; "yourselves";
  ]

let table =
  let h = Hashtbl.create 64 in
  List.iter (fun w -> Hashtbl.replace h w ()) words;
  h

let mem w = Hashtbl.mem table w

let all () = words
