(** The Porter stemming algorithm (M. F. Porter, 1980), implemented in
    full: steps 1a, 1b (with its consonant-doubling and -e repair
    pass), 1c, 2, 3, 4 and 5a/5b.

    The paper's TREC experiment compares word stems "as returned by a
    standard Porter's stemmer"; this is that standard stemmer. *)

val stem : string -> string
(** Stem of a lowercase word. Words of length <= 2 are returned
    unchanged, as in the reference implementation. Non-alphabetic
    strings are returned unchanged. *)
