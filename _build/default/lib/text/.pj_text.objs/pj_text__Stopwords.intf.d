lib/text/stopwords.mli:
