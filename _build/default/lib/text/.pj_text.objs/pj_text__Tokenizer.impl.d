lib/text/tokenizer.ml: Array List String
