lib/text/tokenizer.mli:
