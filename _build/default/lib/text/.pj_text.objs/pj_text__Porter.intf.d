lib/text/porter.mli:
