lib/text/document.mli: Vocab
