lib/text/document.ml: Array Buffer Stdlib Tokenizer Vocab
