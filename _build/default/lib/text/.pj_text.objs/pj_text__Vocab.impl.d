lib/text/vocab.ml: Array Hashtbl Pj_util
