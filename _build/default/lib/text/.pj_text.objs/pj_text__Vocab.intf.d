lib/text/vocab.mli:
