(** Positional documents: a document id plus the sequence of token ids,
    where the array index of a token is its location. *)

type t = {
  id : int;
  tokens : int array;  (** token id at each location *)
}

val of_text : Vocab.t -> id:int -> string -> t
(** Tokenize raw text and intern the tokens. *)

val of_tokens : Vocab.t -> id:int -> string array -> t
(** Intern an already-tokenized sequence. *)

val length : t -> int

val token_at : t -> int -> int
(** Token id at a location. *)

val text : Vocab.t -> t -> string
(** Reconstructed space-joined text (for display). *)

val slice : Vocab.t -> t -> lo:int -> hi:int -> string
(** Space-joined tokens of locations [lo..hi] clamped to the document —
    used to show matchset windows in examples. *)
