(* Entity search over an indexed corpus, with duplicate avoidance.

   Demonstrates two more pieces of the paper:
   - deriving match lists from a precomputed positional inverted index
     by merging the posting lists of a concept's expansions (Section
     II, footnote 1), instead of scanning documents per query;
   - the Section VI duplicate problem: for the query {asia, porcelain}
     the single token "china" matches both terms and wins on proximity
     (distance 0!), but the valid best matchset must use two distinct
     tokens ("Jingdezhen" + "ceramics").

     dune exec examples/entity_search.exe *)

let texts =
  [
    "the imperial kilns of jingdezhen produced fine ceramics for the court";
    "china exported china to europe along the maritime silk road";
    "porcelain from asia reached amsterdam by ship";
    "the museum shows pottery and earthenware from japan and korea";
  ]

let () =
  (* Build and index the corpus once. *)
  let corpus = Pj_index.Corpus.create () in
  List.iter (fun t -> ignore (Pj_index.Corpus.add_text corpus t)) texts;
  let index = Pj_index.Inverted_index.build corpus in
  Printf.printf "indexed %d documents, %d distinct tokens\n\n"
    (Pj_index.Corpus.size corpus)
    (Pj_index.Inverted_index.vocabulary_size index);
  (* The query: both concepts expand through the lemma graph, and both
     expansions contain "china". *)
  let graph = Pj_ontology.Mini_wordnet.create () in
  let asia = Pj_matching.Wordnet_matcher.create ~use_stems:false graph "asia" in
  let porcelain =
    Pj_matching.Wordnet_matcher.create ~use_stems:false graph "porcelain"
  in
  let query = Pj_matching.Query.make "asia porcelain" [ asia; porcelain ] in
  let vocab = Pj_index.Corpus.vocab corpus in
  let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3) in
  let show label result =
    match result with
    | None -> Printf.printf "  %-18s none\n" label
    | Some (r : Pj_core.Naive.result) ->
        let words =
          Array.to_list r.Pj_core.Naive.matchset
          |> List.map (fun m ->
                 Printf.sprintf "%s@%d"
                   (Pj_text.Vocab.word vocab m.Pj_core.Match0.payload)
                   m.Pj_core.Match0.loc)
        in
        Printf.printf "  %-18s {%s}  score %.4f%s\n" label
          (String.concat ", " words)
          r.Pj_core.Naive.score
          (if Pj_core.Matchset.is_valid r.Pj_core.Naive.matchset then ""
           else "  <- reuses one token!")
  in
  for doc_id = 0 to Pj_index.Corpus.size corpus - 1 do
    (* Match lists come straight from the index: the posting lists of
       every expansion lemma, merged with their scores. *)
    let problem = Pj_matching.Match_builder.from_index index ~doc_id query in
    Printf.printf "doc %d: \"%s\"\n" doc_id (List.nth texts doc_id);
    if Pj_core.Match_list.has_empty_list problem then
      Printf.printf "  (no match for some term)\n"
    else begin
      show "duplicate-unaware" (Pj_core.Best_join.solve scoring problem);
      let result, stats = Pj_core.Best_join.solve_with_stats scoring problem in
      show
        (Printf.sprintf "valid (%d runs)" stats.Pj_core.Dedup.invocations)
        result
    end
  done
