(* Tiny helper shared by examples that write temporary files. *)

let with_file path f =
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) f
