(* Question answering over a document collection (the paper's TREC
   scenario, Section VIII).

   We generate a 200-document corpus for the factoid question "In what
   city is the Lebanese parliament located?", run the weighted proximity
   best-join on every document, rank documents by best-matchset score,
   and show the extracted answer from the top document.

     dune exec examples/question_answering.exe *)

open Pj_workload

let () =
  let spec = Trec_sim.find_spec "Q3" in
  Printf.printf "question: %s\n" spec.Trec_sim.question;
  let case = Trec_sim.generate ~seed:11 ~n_docs:200 spec in
  let vocab = Pj_index.Corpus.vocab case.Trec_sim.corpus in
  Printf.printf "corpus: %d documents, avg %.0f tokens\n"
    (Pj_index.Corpus.size case.Trec_sim.corpus)
    (Pj_index.Corpus.average_length case.Trec_sim.corpus);
  let sizes = Trec_sim.measured_list_sizes case in
  Printf.printf "avg match list sizes:";
  Array.iteri
    (fun j s ->
      Printf.printf " %s=%.1f" (Pj_matching.Query.term_names case.Trec_sim.query).(j) s)
    sizes;
  print_newline ();
  (* Rank documents under each scoring function; the answer document
     should surface at (or near) rank 1, as in Figure 12. *)
  List.iter
    (fun (name, scoring) ->
      let ranked = Ranker.rank scoring case.Trec_sim.problems in
      let top = ranked.(0) in
      (match top.Ranker.result with
      | Some r ->
          let words =
            Array.to_list r.Pj_core.Naive.matchset
            |> List.map (fun m ->
                   Pj_text.Vocab.word vocab m.Pj_core.Match0.payload)
          in
          Printf.printf "%-4s top doc %4d  answer: {%s}\n" name
            top.Ranker.doc_id
            (String.concat ", " words)
      | None -> Printf.printf "%-4s top doc has no matchset\n" name);
      match Ranker.answer_rank_of ranked ~doc_id:case.Trec_sim.answer_doc with
      | Some r ->
          Printf.printf "     planted answer doc %d ranks %s\n"
            case.Trec_sim.answer_doc
            (Format.asprintf "%a" Ranker.pp_answer_rank r)
      | None -> Printf.printf "     planted answer doc unranked\n")
    [
      ("MED", Pj_core.Scoring.Med Pj_core.Scoring.med_linear);
      ("MAX", Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.1));
      (* WIN and MED are identical scoring functions at <= 3 terms
         (Section VIII); shown anyway for comparison. *)
      ("WIN", Pj_core.Scoring.Win Pj_core.Scoring.win_linear);
    ]
