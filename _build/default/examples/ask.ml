(* Question answering end to end: the paper's motivating scenario.
   Natural-language factoid questions are analyzed into typed proximity
   queries, the weighted proximity best-join extracts answer candidates
   per document, and votes are aggregated across the corpus.

     dune exec examples/ask.exe *)

let articles =
  [
    "the lebanese parliament sits in beirut close to the harbour and has \
     one hundred and twenty eight members elected for four years";
    "beirut is the largest city of lebanon and its cultural capital";
    "alfred hitchcock the celebrated director was born in london in the \
     summer of 1899 and moved to america decades later";
    "a festival of hitchcock films opened in paris last week drawing \
     large crowds";
    "prince edward married in june 1999 at windsor after a long \
     engagement announced earlier that year";
    "the winter games began in turin with a ceremony watched worldwide";
    "lenovo announced a partnership with the nba making the pc maker its \
     official technology sponsor";
  ]

let questions =
  [
    "In what city is the lebanese parliament located?";
    "Where was Alfred Hitchcock born?";
    "When did Prince Edward marry?";
    "What partnership did Lenovo announce?";
  ]

let () =
  let corpus = Pj_index.Corpus.create () in
  List.iter (fun a -> ignore (Pj_index.Corpus.add_text corpus a)) articles;
  let answerer = Pj_qa.Answerer.create corpus in
  List.iter
    (fun question ->
      let analysis, query = Pj_qa.Answerer.question_of answerer question in
      Printf.printf "Q: %s\n   target type: %s, query terms: %s\n" question
        (Pj_qa.Question.target_name analysis.Pj_qa.Question.target)
        (String.concat ", "
           (Array.to_list (Pj_matching.Query.term_names query)));
      (match Pj_qa.Answerer.ask answerer question with
      | [] -> Printf.printf "   no answer found\n"
      | answers ->
          List.iteri
            (fun i a ->
              Printf.printf "   A%d: %-12s (support %.2f, docs %s)\n" (i + 1)
                a.Pj_qa.Answerer.answer_word a.Pj_qa.Answerer.support
                (String.concat ","
                   (List.map string_of_int a.Pj_qa.Answerer.documents)))
            answers);
      print_newline ())
    questions
