(* Information extraction from call-for-papers e-mails (the paper's
   DBWorld experiment, Section VIII).

   This is the use case that motivates the best-matchset-by-location
   problem (Section VII): a CFP mentions many dates (deadlines) and many
   places (PC affiliations); the query (conference-or-workshop, date,
   place) with proximity scoring digs out the meeting's own date and
   location, where the naive "first date in the message" heuristic is
   fooled by deadline extensions.

     dune exec examples/cfp_extraction.exe *)

open Pj_workload

let () =
  let case = Dbworld_sim.generate ~seed:624 () in
  let vocab = Pj_index.Corpus.vocab case.Dbworld_sim.corpus in
  let sizes = Dbworld_sim.average_list_sizes case in
  Printf.printf
    "25 CFP messages; avg matches per message: conference|workshop %.1f, date %.1f, place %.1f\n\n"
    sizes.(0) sizes.(1) sizes.(2);
  let scoring = Pj_core.Scoring.Win Pj_core.Scoring.win_linear in
  let solver p = Pj_core.Best_join.solve ~dedup:true scoring p in
  let results = Dbworld_sim.evaluate case solver in
  let full = ref 0 in
  Array.iteri
    (fun i ((msg : Dbworld_sim.message), ex) ->
      let _, problem = case.Dbworld_sim.problems.(i) in
      match (solver problem, ex) with
      | Some r, Some e ->
          let word j =
            Pj_text.Vocab.word vocab
              r.Pj_core.Naive.matchset.(j).Pj_core.Match0.payload
          in
          let ok = e.Dbworld_sim.date_correct && e.Dbworld_sim.place_correct in
          if ok then incr full;
          Printf.printf
            "cfp %2d%s extracted (%s, %s, %s)  truth (%s %s, %s %s)  %s\n" i
            (if msg.Dbworld_sim.is_extension then "*" else " ")
            (word 0) (word 1) (word 2)
            msg.Dbworld_sim.event_city msg.Dbworld_sim.event_country
            msg.Dbworld_sim.event_month msg.Dbworld_sim.event_year
            (if ok then "ok"
             else if
               e.Dbworld_sim.date_correct || e.Dbworld_sim.place_correct
             then "partial"
             else "WRONG")
      | _ -> Printf.printf "cfp %2d: no matchset\n" i)
    results;
  Printf.printf
    "\nfully correct: %d/25 (* marks deadline-extension messages, the first-date traps)\n"
    !full;
  (* Show the strawman for comparison. *)
  let heuristic = Dbworld_sim.first_date_heuristic case in
  let heuristic_ok =
    Array.fold_left (fun acc (_, ok) -> if ok then acc + 1 else acc) 0 heuristic
  in
  Printf.printf "first-date heuristic correct: %d/25\n" heuristic_ok;
  (* Section VII in action: all locally-best matchsets of one message,
     filtered by score — the extraction-style output. *)
  let doc_id, problem = case.Dbworld_sim.problems.(8) in
  let entries = Pj_core.Best_join.by_location scoring problem in
  let best =
    match Pj_core.By_location.best_entry entries with
    | Some e -> e.Pj_core.By_location.score
    | None -> 0.
  in
  let good = Pj_core.By_location.filter_by_score (best -. 3.) entries in
  Printf.printf
    "\nby-location view of cfp %d: %d anchors, %d within 3 of the best score\n"
    doc_id (List.length entries) (List.length good)
