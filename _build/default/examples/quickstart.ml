(* Quickstart: the paper's running example (Figure 1).

   We ask for partnerships between PC makers and sports organizations
   with the three-term query {"PC maker", "sports", "partnership"},
   build weighted match lists from a document with WordNet-style fuzzy
   matchers, and find the best matchset under all three scoring-function
   families.

     dune exec examples/quickstart.exe *)

let document_text =
  "As part of the new deal, Lenovo will become the official PC partner \
   of the NBA, and it will be marketing its NBA affiliation in the US \
   and in China. The laptop-maker has a similar marketing and technology \
   partnership with the Olympic Games. It provided all the computers for \
   the winter olympics in Turin, Italy, and will also provide equipment \
   for the summer olympics in Beijing in 2008. Lenovo competes in a \
   tough market against players such as Dell and Hewlett-Packard."

let () =
  (* 1. A lemma graph provides the fuzzy-match vocabulary: "Lenovo" is a
     PC maker, "NBA" is a sports organization, "deal" is (weaker)
     partnership language. *)
  let graph = Pj_ontology.Mini_wordnet.create () in
  let query =
    Pj_matching.Query.make "pc-maker sports partnership"
      [
        Pj_matching.Wordnet_matcher.create graph "pc-maker";
        Pj_matching.Wordnet_matcher.create graph "sports";
        Pj_matching.Wordnet_matcher.create graph "partnership";
      ]
  in
  (* 2. Scan the document into one match list per query term. *)
  let vocab = Pj_text.Vocab.create () in
  let doc = Pj_text.Document.of_text vocab ~id:0 document_text in
  let problem = Pj_matching.Match_builder.scan vocab doc query in
  Array.iteri
    (fun j list ->
      Printf.printf "match list %-12s: %d matches\n"
        (Pj_matching.Query.term_names query).(j)
        (Array.length list))
    problem;
  (* 3. Solve the weighted proximity best-join under each scoring
     family, with duplicate handling. *)
  let scorings =
    [
      Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.2);
      Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.2);
      Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.2);
    ]
  in
  List.iter
    (fun scoring ->
      match Pj_core.Best_join.solve ~dedup:true scoring problem with
      | None -> Printf.printf "%s: no matchset\n" (Pj_core.Scoring.name scoring)
      | Some r ->
          let words =
            Array.to_list r.Pj_core.Naive.matchset
            |> List.map (fun m ->
                   Printf.sprintf "%s@%d"
                     (Pj_text.Vocab.word vocab m.Pj_core.Match0.payload)
                     m.Pj_core.Match0.loc)
          in
          Printf.printf "%-14s score %8.5f  answer: {%s}\n"
            (Pj_core.Scoring.name scoring)
            r.Pj_core.Naive.score
            (String.concat ", " words);
          (* Show the answer in context. *)
          let lo = Pj_core.Matchset.min_loc r.Pj_core.Naive.matchset in
          let hi = Pj_core.Matchset.max_loc r.Pj_core.Naive.matchset in
          Printf.printf "               context: \"... %s ...\"\n"
            (Pj_text.Document.slice vocab doc ~lo:(lo - 2) ~hi:(hi + 2)))
    scorings
