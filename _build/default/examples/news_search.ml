(* A small news search engine: index once, persist, reopen, and answer
   entity-style queries with ranked, highlighted snippets — the
   downstream-system view of the weighted proximity best-join, built
   from the library's engine layer (IDF scoring, conjunctive candidate
   generation, snippets) over the index substrate.

     dune exec examples/news_search.exe *)

let articles =
  [
    "lenovo announced a marketing partnership with the nba on thursday \
     making the chinese pc maker the official technology provider of \
     the basketball league";
    "dell shares rose after the company reported strong laptop sales in \
     europe despite fierce competition from lenovo and hewlett-packard";
    "the olympic games organizing committee signed a sponsorship deal \
     with a major computer manufacturer covering the beijing events";
    "nba attendance reached a record high this season as the basketball \
     league expanded its international marketing programs";
    "a partnership between the university of toronto and a robotics \
     startup will fund new laboratories over the next five years";
    "lenovo quarterly profits beat expectations on strong server demand \
     while its partnership with the nba boosted brand recognition in \
     north america";
  ]

let () =
  (* 1. Build and persist the index, then reopen it — a deployment would
     index offline and search online. *)
  let corpus = Pj_index.Corpus.create () in
  List.iter (fun a -> ignore (Pj_index.Corpus.add_text corpus a)) articles;
  let path = Filename.temp_file "news" ".pjix" in
  Storage_cleanup.with_file path @@ fun () ->
  Pj_index.Storage.save_corpus corpus path;
  let index = Pj_index.Storage.load path in
  Printf.printf "reopened index: %d articles, %d distinct tokens\n\n"
    (Pj_index.Corpus.size (Pj_index.Inverted_index.corpus index))
    (Pj_index.Inverted_index.vocabulary_size index);
  (* 2. The query: company x sports x partnership, with the company and
     partnership vocabularies weighted by corpus IDF so that rare,
     specific tokens count more. *)
  let company =
    Pj_engine.Idf.weighted_matcher index
      (Pj_matching.Matcher.of_table ~name:"company"
         [ ("lenovo", 1.); ("dell", 1.); ("hewlett-packard", 1.) ])
  in
  let sports =
    Pj_matching.Matcher.of_table ~name:"sports"
      [ ("nba", 1.); ("olympic", 0.9); ("basketball", 0.8); ("league", 0.6) ]
  in
  let partnership =
    Pj_matching.Matcher.of_table ~name:"partnership"
      [ ("partnership", 1.); ("sponsorship", 0.9); ("deal", 0.7) ]
  in
  let query =
    Pj_matching.Query.make "company sports partnership"
      [ company; sports; partnership ]
  in
  (* 3. Search and render. *)
  let searcher = Pj_engine.Searcher.create index in
  let scoring = Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.15) in
  let hits = Pj_engine.Searcher.search ~k:3 searcher scoring query in
  let vocab = Pj_index.Corpus.vocab (Pj_index.Inverted_index.corpus index) in
  Printf.printf "query: company + sports + partnership (MED scoring)\n";
  List.iteri
    (fun i hit ->
      let doc =
        Pj_index.Corpus.document
          (Pj_index.Inverted_index.corpus index)
          hit.Pj_engine.Searcher.doc_id
      in
      Printf.printf "\n#%d article %d (score %.4f)\n" (i + 1)
        hit.Pj_engine.Searcher.doc_id hit.Pj_engine.Searcher.score;
      Printf.printf "   answer: %s\n"
        (String.concat " / "
           (Pj_engine.Snippet.answer_words vocab hit.Pj_engine.Searcher.matchset));
      Printf.printf "   %s\n"
        (Pj_engine.Snippet.render ~padding:4 vocab doc
           hit.Pj_engine.Searcher.matchset))
    hits
