examples/entity_search.ml: Array List Pj_core Pj_index Pj_matching Pj_ontology Pj_text Printf String
