examples/question_answering.ml: Array Format List Pj_core Pj_index Pj_matching Pj_text Pj_workload Printf Ranker String Trec_sim
