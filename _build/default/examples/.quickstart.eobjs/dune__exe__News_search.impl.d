examples/news_search.ml: Filename List Pj_core Pj_engine Pj_index Pj_matching Printf Storage_cleanup String
