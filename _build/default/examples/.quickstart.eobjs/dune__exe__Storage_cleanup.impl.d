examples/storage_cleanup.ml: Fun Sys
