examples/quickstart.ml: Array List Pj_core Pj_matching Pj_ontology Pj_text Printf String
