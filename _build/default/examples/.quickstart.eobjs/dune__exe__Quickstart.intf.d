examples/quickstart.mli:
