examples/question_answering.mli:
