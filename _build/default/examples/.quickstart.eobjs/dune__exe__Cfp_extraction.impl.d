examples/cfp_extraction.ml: Array Dbworld_sim List Pj_core Pj_index Pj_text Pj_workload Printf
