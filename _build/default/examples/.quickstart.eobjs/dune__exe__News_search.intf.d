examples/news_search.mli:
