examples/entity_search.mli:
