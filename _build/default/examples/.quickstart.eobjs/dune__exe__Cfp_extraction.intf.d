examples/cfp_extraction.mli:
