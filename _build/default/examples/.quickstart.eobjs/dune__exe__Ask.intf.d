examples/ask.mli:
