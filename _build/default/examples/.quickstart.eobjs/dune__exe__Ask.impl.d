examples/ask.ml: Array List Pj_index Pj_matching Pj_qa Printf String
