open Pj_text

let test_intern_roundtrip () =
  let v = Vocab.create () in
  let a = Vocab.intern v "lenovo" in
  let b = Vocab.intern v "nba" in
  let a' = Vocab.intern v "lenovo" in
  Alcotest.(check int) "stable id" a a';
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check string) "word of id" "lenovo" (Vocab.word v a);
  Alcotest.(check int) "size" 2 (Vocab.size v)

let test_find () =
  let v = Vocab.create () in
  ignore (Vocab.intern v "x");
  Alcotest.(check bool) "found" true (Vocab.find v "x" <> None);
  Alcotest.(check bool) "missing" true (Vocab.find v "y" = None)

let test_word_unknown () =
  let v = Vocab.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Vocab.word: unknown id")
    (fun () -> ignore (Vocab.word v 3))

let test_document_of_text () =
  let v = Vocab.create () in
  let d = Document.of_text v ~id:7 "Lenovo partners with NBA" in
  Alcotest.(check int) "id" 7 d.Document.id;
  Alcotest.(check int) "length" 4 (Document.length d);
  Alcotest.(check string) "token 0" "lenovo" (Vocab.word v (Document.token_at d 0));
  Alcotest.(check string) "round trip" "lenovo partners with nba"
    (Document.text v d)

let test_slice () =
  let v = Vocab.create () in
  let d = Document.of_text v ~id:0 "a b c d e" in
  Alcotest.(check string) "middle" "b c d" (Document.slice v d ~lo:1 ~hi:3);
  Alcotest.(check string) "clamped" "a b" (Document.slice v d ~lo:(-3) ~hi:1);
  Alcotest.(check string) "empty" "" (Document.slice v d ~lo:4 ~hi:2)

let test_stopwords () =
  Alcotest.(check bool) "the" true (Stopwords.mem "the");
  Alcotest.(check bool) "in" true (Stopwords.mem "in");
  Alcotest.(check bool) "lenovo" false (Stopwords.mem "lenovo");
  Alcotest.(check bool) "list non-trivial" true (List.length (Stopwords.all ()) > 100)

let suite =
  [
    ("vocab: intern round trip", `Quick, test_intern_roundtrip);
    ("vocab: find", `Quick, test_find);
    ("vocab: unknown id", `Quick, test_word_unknown);
    ("document: of_text", `Quick, test_document_of_text);
    ("document: slice", `Quick, test_slice);
    ("stopwords", `Quick, test_stopwords);
  ]
