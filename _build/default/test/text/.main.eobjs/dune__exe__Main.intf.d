test/text/main.mli:
