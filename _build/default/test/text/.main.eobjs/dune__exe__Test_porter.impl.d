test/text/test_porter.ml: Alcotest List Pj_text Porter String
