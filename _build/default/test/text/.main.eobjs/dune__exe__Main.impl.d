test/text/main.ml: Alcotest Test_fuzz Test_porter Test_tokenizer Test_vocab_document
