test/text/test_fuzz.ml: Fun List Pj_text QCheck QCheck_alcotest Stdlib String
