test/text/test_tokenizer.ml: Alcotest Array List Pj_text Tokenizer
