test/text/test_vocab_document.ml: Alcotest Document List Pj_text Stopwords Vocab
