open Pj_text

(* Expected stems from Porter's published sample vocabulary
   (tartarus.org voc.txt / output.txt) plus the step-by-step examples of
   the 1980 paper. *)
let cases =
  [
    (* step 1a *)
    ("caresses", "caress");
    ("ponies", "poni");
    ("ties", "ti");
    ("caress", "caress");
    ("cats", "cat");
    (* step 1b *)
    ("feed", "feed");
    ("agreed", "agre");
    ("plastered", "plaster");
    ("bled", "bled");
    ("motoring", "motor");
    ("sing", "sing");
    (* step 1b repair pass *)
    ("conflated", "conflat");
    ("troubled", "troubl");
    ("sized", "size");
    ("hopping", "hop");
    ("tanned", "tan");
    ("falling", "fall");
    ("hissing", "hiss");
    ("fizzed", "fizz");
    ("failing", "fail");
    ("filing", "file");
    (* step 1c *)
    ("happy", "happi");
    ("sky", "sky");
    (* step 2 *)
    ("relational", "relat");
    ("conditional", "condit");
    ("rational", "ration");
    ("valenci", "valenc");
    ("hesitanci", "hesit");
    ("digitizer", "digit");
    ("conformabli", "conform");
    ("radicalli", "radic");
    ("differentli", "differ");
    ("vileli", "vile");
    ("analogousli", "analog");
    ("vietnamization", "vietnam");
    ("predication", "predic");
    ("operator", "oper");
    ("feudalism", "feudal");
    ("decisiveness", "decis");
    ("hopefulness", "hope");
    ("callousness", "callous");
    ("formaliti", "formal");
    ("sensitiviti", "sensit");
    ("sensibiliti", "sensibl");
    (* step 3 *)
    ("triplicate", "triplic");
    ("formative", "form");
    ("formalize", "formal");
    ("electriciti", "electr");
    ("electrical", "electr");
    ("hopeful", "hope");
    ("goodness", "good");
    (* step 4 *)
    ("revival", "reviv");
    ("allowance", "allow");
    ("inference", "infer");
    ("airliner", "airlin");
    ("gyroscopic", "gyroscop");
    ("adjustable", "adjust");
    ("defensible", "defens");
    ("irritant", "irrit");
    ("replacement", "replac");
    ("adjustment", "adjust");
    ("dependent", "depend");
    ("adoption", "adopt");
    ("homologou", "homolog");
    ("communism", "commun");
    ("activate", "activ");
    ("angulariti", "angular");
    ("homologous", "homolog");
    ("effective", "effect");
    ("bowdlerize", "bowdler");
    (* step 5 *)
    ("probate", "probat");
    ("rate", "rate");
    ("cease", "ceas");
    ("controll", "control");
    ("roll", "roll");
    (* whole-pipeline words *)
    ("generalizations", "gener");
    ("oscillators", "oscil");
    ("partnership", "partnership");
    ("partner", "partner");
    ("computers", "comput");
    ("marketing", "market");
    ("university", "univers");
    ("graduate", "graduat");
    ("connected", "connect");
    ("connecting", "connect");
    ("connection", "connect");
    ("connections", "connect");
  ]

let test_known_stems () =
  List.iter
    (fun (word, expected) ->
      Alcotest.(check string) word expected (Porter.stem word))
    cases

let test_short_words_unchanged () =
  List.iter
    (fun w -> Alcotest.(check string) w w (Porter.stem w))
    [ "a"; "is"; "be"; "to"; "in" ]

let test_non_alpha_unchanged () =
  Alcotest.(check string) "number" "2008" (Porter.stem "2008");
  Alcotest.(check string) "hyphenated" "e-mail" (Porter.stem "e-mail")

let test_idempotent_on_sample () =
  (* Stemming a stem must not loop forever or crash; it is usually a
     fixpoint for these cases (not guaranteed in general by Porter, so we
     just require it terminates and stays non-empty). *)
  List.iter
    (fun (word, _) ->
      let s = Porter.stem word in
      Alcotest.(check bool) (word ^ " stem non-empty") true (String.length s > 0);
      ignore (Porter.stem s))
    cases

let suite =
  [
    ("porter: known stems", `Quick, test_known_stems);
    ("porter: short words", `Quick, test_short_words_unchanged);
    ("porter: non-alpha", `Quick, test_non_alpha_unchanged);
    ("porter: restemming terminates", `Quick, test_idempotent_on_sample);
  ]
