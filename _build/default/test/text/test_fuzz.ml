(* Robustness fuzzing for the text substrate. *)

let porter_never_crashes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:5000 ~name:"porter: arbitrary strings survive"
       QCheck.(string_of_size (QCheck.Gen.int_range 0 30))
       (fun s ->
         let r = Pj_text.Porter.stem s in
         String.length r <= Stdlib.max (String.length s) (String.length s)))

let porter_lowercase_words =
  let lower_gen =
    QCheck.Gen.(
      map
        (fun l -> String.concat "" (List.map (String.make 1) l))
        (list_size (int_range 1 15) (char_range 'a' 'z')))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:5000 ~name:"porter: stems are non-empty prefixesque"
       (QCheck.make ~print:Fun.id lower_gen)
       (fun w ->
         let s = Pj_text.Porter.stem w in
         String.length s > 0
         && String.length s <= String.length w
         && String.for_all (fun c -> c >= 'a' && c <= 'z') s))

let porter_never_grows_much =
  (* Steps 1b/1c can rewrite a suffix (e.g. -iz -> -ize adds a letter
     relative to the truncation point) but never beyond the original
     word plus one character. *)
  let lower_gen =
    QCheck.Gen.(
      map
        (fun l -> String.concat "" (List.map (String.make 1) l))
        (list_size (int_range 3 20) (char_range 'a' 'z')))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:5000 ~name:"porter: bounded output length"
       (QCheck.make ~print:Fun.id lower_gen)
       (fun w -> String.length (Pj_text.Porter.stem w) <= String.length w + 1))

let tokenizer_never_crashes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:5000 ~name:"tokenizer: arbitrary bytes survive"
       QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
       (fun s ->
         List.for_all
           (fun tok ->
             String.length tok > 0
             && String.for_all Pj_text.Tokenizer.is_word_char tok)
           (Pj_text.Tokenizer.tokenize s)))

let tokenizer_idempotent =
  (* Re-tokenizing the joined tokens yields the same tokens. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2000 ~name:"tokenizer: stable under rejoin"
       QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
       (fun s ->
         let toks = Pj_text.Tokenizer.tokenize s in
         Pj_text.Tokenizer.tokenize (String.concat " " toks) = toks))

let suite =
  [
    porter_never_crashes;
    porter_lowercase_words;
    porter_never_grows_much;
    tokenizer_never_crashes;
    tokenizer_idempotent;
  ]
