open Pj_text

let check_tokens name text expected =
  Alcotest.(check (list string)) name expected (Tokenizer.tokenize text)

let test_basic () =
  check_tokens "simple" "Lenovo partners with NBA"
    [ "lenovo"; "partners"; "with"; "nba" ]

let test_punctuation () =
  check_tokens "punctuation" "Hello, world! (Really?)"
    [ "hello"; "world"; "really" ]

let test_numbers () =
  check_tokens "numbers" "Beijing in 2008." [ "beijing"; "in"; "2008" ]

let test_hyphens () =
  check_tokens "internal hyphen kept" "state-of-the-art" [ "state-of-the-art" ];
  check_tokens "edge hyphens trimmed" "-- dash -- -x-" [ "dash"; "x" ]

let test_apostrophes () =
  check_tokens "apostrophe" "it's Porter's stemmer" [ "it's"; "porter's"; "stemmer" ]

let test_empty () =
  check_tokens "empty" "" [];
  check_tokens "whitespace only" "  \t\n " [];
  check_tokens "punct only" "?!..." []

let test_positions_are_dense () =
  let a = Tokenizer.tokenize_array "one two  three" in
  Alcotest.(check int) "array length" 3 (Array.length a);
  Alcotest.(check string) "index 2" "three" a.(2)

let test_unicode_bytes_split () =
  (* Non-ASCII bytes act as separators; the tokenizer never crashes. *)
  let toks = Tokenizer.tokenize "caf\xc3\xa9 bar" in
  Alcotest.(check bool) "bar present" true (List.mem "bar" toks)

let suite =
  [
    ("tokenizer: basic", `Quick, test_basic);
    ("tokenizer: punctuation", `Quick, test_punctuation);
    ("tokenizer: numbers", `Quick, test_numbers);
    ("tokenizer: hyphens", `Quick, test_hyphens);
    ("tokenizer: apostrophes", `Quick, test_apostrophes);
    ("tokenizer: empty inputs", `Quick, test_empty);
    ("tokenizer: dense positions", `Quick, test_positions_are_dense);
    ("tokenizer: non-ascii bytes", `Quick, test_unicode_bytes_split);
  ]
