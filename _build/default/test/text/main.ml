let () =
  Alcotest.run "proxjoin.text"
    [
      ("tokenizer", Test_tokenizer.suite);
      ("porter", Test_porter.suite);
      ("vocab_document", Test_vocab_document.suite);
      ("fuzz", Test_fuzz.suite);
    ]
