(* Property test: the engine's index-driven search must equal the naive
   oracle that scans every document and ranks by best-matchset score. *)

open Pj_engine

let alphabet = [| "aa"; "bb"; "cc"; "dd"; "ee" |]

let corpus_gen =
  QCheck.Gen.(
    let doc = list_size (int_range 1 12) (oneofa alphabet) in
    list_size (int_range 1 8) doc)

let corpus_print docs =
  String.concat " | " (List.map (String.concat " ") docs)

let corpus_arb = QCheck.make ~print:corpus_print corpus_gen

let query =
  Pj_matching.Query.make "ab"
    [ Pj_matching.Matcher.exact "aa"; Pj_matching.Matcher.exact "bb" ]

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3)

let oracle docs =
  (* Scan-based ranking over every document. *)
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun tokens -> ignore (Pj_index.Corpus.add_tokens corpus (Array.of_list tokens)))
    docs;
  let problems =
    Array.map
      (fun (d, p) -> (d.Pj_text.Document.id, p))
      (Pj_matching.Match_builder.scan_corpus corpus query)
  in
  Pj_workload.Ranker.rank scoring problems
  |> Array.to_list
  |> List.filter_map (fun r ->
         match r.Pj_workload.Ranker.result with
         | Some res -> Some (r.Pj_workload.Ranker.doc_id, res.Pj_core.Naive.score)
         | None -> None)

let engine docs =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun tokens -> ignore (Pj_index.Corpus.add_tokens corpus (Array.of_list tokens)))
    docs;
  let s = Searcher.create (Pj_index.Inverted_index.build corpus) in
  Searcher.search ~k:max_int s scoring query
  |> List.map (fun h -> (h.Searcher.doc_id, h.Searcher.score))

let close (a, sa) (b, sb) =
  a = b && Float.abs (sa -. sb) <= 1e-9 *. Float.max 1. (Float.abs sa)

let search_equals_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"Searcher.search = scan-and-rank oracle"
       corpus_arb
       (fun docs ->
         let a = engine docs and b = oracle docs in
         List.length a = List.length b && List.for_all2 close a b))

let suite = [ search_equals_oracle ]
