open Pj_engine

let index_of texts =
  let corpus = Pj_index.Corpus.create () in
  List.iter (fun t -> ignore (Pj_index.Corpus.add_text corpus t)) texts;
  Pj_index.Inverted_index.build corpus

let idx =
  lazy
    (index_of
       [
         "the cat sat on the mat";
         "the dog sat on the log";
         "the cat chased the dog";
         "a rare aardvark appeared";
       ])

let test_idf_ordering () =
  let idx = Lazy.force idx in
  (* "the" (3 docs) must score below "aardvark" (1 doc) and both below
     an unseen token. *)
  let common = Idf.idf idx "the" in
  let rare = Idf.idf idx "aardvark" in
  let unseen = Idf.idf idx "zzz" in
  Alcotest.(check bool) "rare > common" true (rare > common);
  Alcotest.(check bool) "unseen >= rare" true (unseen >= rare)

let test_normalized_range () =
  let idx = Lazy.force idx in
  List.iter
    (fun w ->
      let s = Idf.normalized_idf idx w in
      if s <= 0. || s > 1. then Alcotest.failf "%s: %f outside (0,1]" w s)
    [ "the"; "cat"; "aardvark"; "zzz" ];
  Alcotest.(check (float 1e-9)) "unseen = 1" 1. (Idf.normalized_idf idx "zzz")

let test_empty_corpus () =
  let idx = index_of [] in
  Alcotest.(check (float 1e-9)) "idf 0" 0. (Idf.idf idx "x");
  Alcotest.(check (float 1e-9)) "normalized 1" 1. (Idf.normalized_idf idx "x")

let test_matcher () =
  let idx = Lazy.force idx in
  let m = Idf.matcher idx "cat" in
  (match m.Pj_matching.Matcher.score_token "cat" with
  | Some s -> Alcotest.(check bool) "scored" true (s > 0. && s <= 1.)
  | None -> Alcotest.fail "expected a match");
  Alcotest.(check bool) "other token" true
    (m.Pj_matching.Matcher.score_token "dog" = None)

let test_weighted_matcher () =
  let idx = Lazy.force idx in
  let base =
    Pj_matching.Matcher.of_table ~name:"animals" [ ("cat", 1.0); ("the", 1.0) ]
  in
  let weighted = Idf.weighted_matcher idx base in
  let score w =
    Option.get (weighted.Pj_matching.Matcher.score_token w)
  in
  Alcotest.(check bool) "cat outranks the" true (score "cat" > score "the");
  (* Expansions rescaled consistently with score_token. *)
  match weighted.Pj_matching.Matcher.expansions with
  | Some e ->
      List.iter
        (fun (form, s) ->
          Alcotest.(check (float 1e-9)) ("expansion " ^ form) (score form) s)
        e
  | None -> Alcotest.fail "expansions lost"

let suite =
  [
    ("idf: ordering", `Quick, test_idf_ordering);
    ("idf: normalized range", `Quick, test_normalized_range);
    ("idf: empty corpus", `Quick, test_empty_corpus);
    ("idf: matcher", `Quick, test_matcher);
    ("idf: weighted matcher", `Quick, test_weighted_matcher);
  ]
