let () =
  Alcotest.run "proxjoin.engine"
    [
      ("idf", Test_idf.suite);
      ("searcher", Test_searcher.suite);
      ("search_oracle", Test_search_oracle.suite);
      ("snippet", Test_snippet.suite);
    ]
