open Pj_engine

let setup text =
  let vocab = Pj_text.Vocab.create () in
  let doc = Pj_text.Document.of_text vocab ~id:0 text in
  (vocab, doc)

let matchset_of vocab doc positions =
  Array.map
    (fun loc ->
      Pj_core.Match0.make
        ~payload:(Pj_text.Document.token_at doc loc)
        ~loc ~score:1. ()
      |> fun m ->
      ignore vocab;
      m)
    (Array.of_list positions)

let test_render_basic () =
  let vocab, doc = setup "a b c d e f g h i j" in
  let ms = matchset_of vocab doc [ 4; 6 ] in
  Alcotest.(check string) "window with padding"
    "... b c d [e] f [g] h i j" (Snippet.render ~padding:3 vocab doc ms)

let test_render_clipped_at_ends () =
  let vocab, doc = setup "a b c" in
  let ms = matchset_of vocab doc [ 0; 2 ] in
  Alcotest.(check string) "no ellipses" "[a] b [c]"
    (Snippet.render vocab doc ms)

let test_render_custom_style () =
  let vocab, doc = setup "x y z" in
  let ms = matchset_of vocab doc [ 1 ] in
  let style =
    { Snippet.open_mark = "<b>"; close_mark = "</b>"; ellipsis = "…" }
  in
  Alcotest.(check string) "html-ish" "x <b>y</b> z"
    (Snippet.render ~style vocab doc ms)

let test_answer_words () =
  let vocab, doc = setup "lenovo partners nba" in
  let ms = matchset_of vocab doc [ 0; 2 ] in
  Alcotest.(check (list string)) "words" [ "lenovo"; "nba" ]
    (Snippet.answer_words vocab ms)

let test_zero_padding () =
  let vocab, doc = setup "a b c d e" in
  let ms = matchset_of vocab doc [ 2 ] in
  Alcotest.(check string) "just the match" "... [c] ..."
    (Snippet.render ~padding:0 vocab doc ms)

let suite =
  [
    ("snippet: basic", `Quick, test_render_basic);
    ("snippet: clipped", `Quick, test_render_clipped_at_ends);
    ("snippet: custom style", `Quick, test_render_custom_style);
    ("snippet: answer words", `Quick, test_answer_words);
    ("snippet: zero padding", `Quick, test_zero_padding);
  ]
