test/engine/test_snippet.ml: Alcotest Array Pj_core Pj_engine Pj_text Snippet
