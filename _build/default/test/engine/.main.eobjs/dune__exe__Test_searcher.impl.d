test/engine/test_searcher.ml: Alcotest List Pj_core Pj_engine Pj_index Pj_matching Pj_util Printf Searcher String
