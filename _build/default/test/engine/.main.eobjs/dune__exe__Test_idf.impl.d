test/engine/test_idf.ml: Alcotest Idf Lazy List Option Pj_engine Pj_index Pj_matching
