test/engine/main.mli:
