test/engine/main.ml: Alcotest Test_idf Test_search_oracle Test_searcher Test_snippet
