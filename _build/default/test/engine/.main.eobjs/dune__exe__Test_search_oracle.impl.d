test/engine/test_search_oracle.ml: Array Float List Pj_core Pj_engine Pj_index Pj_matching Pj_text Pj_workload QCheck QCheck_alcotest Searcher String
