open Pj_matching

let intro_text =
  "As part of the new deal Lenovo will become the official PC partner of \
   the NBA and it will be marketing its NBA affiliation in the US and in \
   China The laptop-maker has a similar marketing and technology \
   partnership with the Olympic Games"

let intro_query g =
  Query.make "pc-maker sports partnership"
    [
      Wordnet_matcher.create g "pc-maker";
      Wordnet_matcher.create g "sports";
      Wordnet_matcher.create g "partnership";
    ]

let test_scan_intro_example () =
  let g = Pj_ontology.Mini_wordnet.create () in
  let vocab = Pj_text.Vocab.create () in
  let doc = Pj_text.Document.of_text vocab ~id:0 intro_text in
  let p = Match_builder.scan vocab doc (intro_query g) in
  Pj_core.Match_list.validate p;
  Alcotest.(check int) "three lists" 3 (Array.length p);
  (* pc-maker list: lenovo, laptop-maker (and pc? "pc" alone is not a
     node). sports: nba x2, olympic, games. partnership: deal, partner,
     partnership. *)
  Alcotest.(check bool) "pc-maker matches found" true (Array.length p.(0) >= 2);
  Alcotest.(check bool) "sports matches found" true (Array.length p.(1) >= 3);
  Alcotest.(check bool) "partnership matches found" true (Array.length p.(2) >= 3);
  (* The best WIN matchset must be a coherent answer: one of the two
     partnerships described by the text (Lenovo/NBA or the laptop
     maker's Olympic one), with a tight window — never a mix that pairs,
     say, Dell with the NBA across the document. *)
  let w = Pj_core.Scoring.win_exponential ~alpha:0.3 in
  match Pj_core.Win.best w p with
  | None -> Alcotest.fail "expected an answer"
  | Some r ->
      let words =
        Array.map
          (fun m -> Pj_text.Vocab.word vocab m.Pj_core.Match0.payload)
          r.Pj_core.Naive.matchset
      in
      let mem l x = List.mem x l in
      Alcotest.(check bool) "pc maker term" true
        (mem [ "lenovo"; "laptop-maker" ] words.(0));
      Alcotest.(check bool) "sports term" true
        (mem [ "nba"; "olympic"; "games" ] words.(1));
      Alcotest.(check bool) "partnership term" true
        (mem [ "deal"; "partner"; "partnership" ] words.(2));
      Alcotest.(check bool) "tight window" true
        (Pj_core.Matchset.window r.Pj_core.Naive.matchset <= 12)

let test_scan_locations_are_token_positions () =
  let vocab = Pj_text.Vocab.create () in
  let doc = Pj_text.Document.of_text vocab ~id:0 "x a x b" in
  let q = Query.make "ab" [ Matcher.exact "a"; Matcher.exact "b" ] in
  let p = Match_builder.scan vocab doc q in
  Alcotest.(check int) "a at 1" 1 p.(0).(0).Pj_core.Match0.loc;
  Alcotest.(check int) "b at 3" 3 p.(1).(0).Pj_core.Match0.loc

let test_scan_empty_lists_for_no_match () =
  let vocab = Pj_text.Vocab.create () in
  let doc = Pj_text.Document.of_text vocab ~id:0 "nothing here" in
  let q = Query.make "ab" [ Matcher.exact "a" ] in
  let p = Match_builder.scan vocab doc q in
  Alcotest.(check int) "empty list" 0 (Array.length p.(0))

let test_from_index_agrees_with_scan () =
  (* Build a corpus, index it, and check the index-derived match lists
     equal the scan-derived ones for expansion-based matchers. *)
  let corpus = Pj_index.Corpus.create () in
  let texts =
    [
      "lenovo partners with nba in beijing 2008";
      "dell and hewlett-packard sign a deal in june";
      "the olympic games partnership of lenovo";
    ]
  in
  List.iter (fun t -> ignore (Pj_index.Corpus.add_text corpus t)) texts;
  let idx = Pj_index.Inverted_index.build corpus in
  let q =
    Query.make "companies and dates"
      [
        Matcher.of_table ~name:"company"
          [ ("lenovo", 1.); ("dell", 0.9); ("hewlett-packard", 0.9) ];
        Date_matcher.create ();
      ]
  in
  let vocab = Pj_index.Corpus.vocab corpus in
  for doc_id = 0 to Pj_index.Corpus.size corpus - 1 do
    let doc = Pj_index.Corpus.document corpus doc_id in
    let by_scan = Match_builder.scan vocab doc q in
    let by_index = Match_builder.from_index idx ~doc_id q in
    Array.iteri
      (fun j scan_list ->
        let index_list = by_index.(j) in
        Alcotest.(check int)
          (Printf.sprintf "doc %d list %d size" doc_id j)
          (Array.length scan_list) (Array.length index_list);
        Array.iteri
          (fun i m ->
            Alcotest.(check bool)
              (Printf.sprintf "doc %d list %d match %d" doc_id j i)
              true
              (Pj_core.Match0.equal m index_list.(i)))
          scan_list)
      by_scan
  done

let test_from_index_rejects_non_enumerable () =
  let corpus = Pj_index.Corpus.create () in
  ignore (Pj_index.Corpus.add_text corpus "a b c");
  let idx = Pj_index.Inverted_index.build corpus in
  let q =
    Query.make "bad" [ Matcher.predicate ~name:"any" (fun _ -> true) ]
  in
  Alcotest.check_raises "no expansions"
    (Invalid_argument
       "Match_builder.from_index: matcher any has no finite expansions")
    (fun () -> ignore (Match_builder.from_index idx ~doc_id:0 q))

let test_scan_corpus () =
  let corpus = Pj_index.Corpus.create () in
  ignore (Pj_index.Corpus.add_text corpus "a b");
  ignore (Pj_index.Corpus.add_text corpus "b a");
  let q = Query.make "q" [ Matcher.exact "a" ] in
  let results = Match_builder.scan_corpus corpus q in
  Alcotest.(check int) "two docs" 2 (Array.length results);
  let _, p0 = results.(0) and _, p1 = results.(1) in
  Alcotest.(check int) "doc0 a at 0" 0 p0.(0).(0).Pj_core.Match0.loc;
  Alcotest.(check int) "doc1 a at 1" 1 p1.(0).(0).Pj_core.Match0.loc

let suite =
  [
    ("scan: intro example end-to-end", `Quick, test_scan_intro_example);
    ("scan: token positions", `Quick, test_scan_locations_are_token_positions);
    ("scan: empty lists", `Quick, test_scan_empty_lists_for_no_match);
    ("from_index: agrees with scan", `Quick, test_from_index_agrees_with_scan);
    ("from_index: rejects non-enumerable", `Quick, test_from_index_rejects_non_enumerable);
    ("scan_corpus", `Quick, test_scan_corpus);
  ]
