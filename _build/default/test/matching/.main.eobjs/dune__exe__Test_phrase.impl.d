test/matching/test_phrase.ml: Alcotest Array Matcher Phrase Pj_core Pj_matching Pj_text Query
