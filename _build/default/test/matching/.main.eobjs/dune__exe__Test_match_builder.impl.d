test/matching/test_match_builder.ml: Alcotest Array Date_matcher List Match_builder Matcher Pj_core Pj_index Pj_matching Pj_ontology Pj_text Printf Query Wordnet_matcher
