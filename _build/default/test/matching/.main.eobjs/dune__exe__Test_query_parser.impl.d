test/matching/test_query_parser.ml: Alcotest Lazy List Matcher Pj_matching Pj_ontology Query Query_parser
