test/matching/test_matcher.ml: Alcotest Date_matcher List Matcher Pj_matching Pj_ontology Place_matcher Query String Wordnet_matcher
