test/matching/main.ml: Alcotest Test_match_builder Test_matcher Test_phrase Test_query_parser
