test/matching/main.mli:
