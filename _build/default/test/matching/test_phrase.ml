open Pj_matching

let setup text =
  let vocab = Pj_text.Vocab.create () in
  let doc = Pj_text.Document.of_text vocab ~id:0 text in
  (vocab, doc)

let locs l = Array.to_list (Array.map (fun m -> m.Pj_core.Match0.loc) l)

let test_find_basic () =
  let vocab, doc = setup "the leaning tower of pisa began in the year" in
  let hits =
    Phrase.find vocab doc ~phrase:[ "leaning"; "tower"; "of"; "pisa" ] ~score:1.
  in
  Alcotest.(check (list int)) "one occurrence at 1" [ 1 ] (locs hits);
  Alcotest.(check (float 1e-9)) "score" 1. hits.(0).Pj_core.Match0.score

let test_find_repeated_and_overlapping () =
  let vocab, doc = setup "a a a b" in
  let hits = Phrase.find vocab doc ~phrase:[ "a"; "a" ] ~score:0.5 in
  Alcotest.(check (list int)) "overlapping occurrences" [ 0; 1 ] (locs hits)

let test_find_absent () =
  let vocab, doc = setup "x y z" in
  Alcotest.(check int) "unknown token" 0
    (Array.length (Phrase.find vocab doc ~phrase:[ "nope" ] ~score:1.));
  Alcotest.(check int) "sequence broken" 0
    (Array.length (Phrase.find vocab doc ~phrase:[ "x"; "z" ] ~score:1.))

let test_find_empty_phrase () =
  let vocab, doc = setup "x" in
  Alcotest.check_raises "empty" (Invalid_argument "Phrase.find: empty phrase")
    (fun () -> ignore (Phrase.find vocab doc ~phrase:[] ~score:1.))

let test_find_all_merges_best () =
  let vocab, doc = setup "winter olympics in turin" in
  let hits =
    Phrase.find_all vocab doc
      [ ([ "winter"; "olympics" ], 0.6); ([ "winter" ], 0.9) ]
  in
  (* Both phrases hit location 0; the higher score must survive. *)
  Alcotest.(check (list int)) "single merged match" [ 0 ] (locs hits);
  Alcotest.(check (float 1e-9)) "max score kept" 0.9
    hits.(0).Pj_core.Match0.score

let test_merge_core () =
  let m ?(score = 1.) loc = Pj_core.Match0.make ~loc ~score () in
  let a = [| m ~score:0.3 1; m 5 |] in
  let b = [| m ~score:0.8 1; m 9 |] in
  let merged = Pj_core.Match_list.merge a b in
  Alcotest.(check (list int)) "locations" [ 1; 5; 9 ] (locs merged);
  Alcotest.(check (float 1e-9)) "best per location" 0.8
    merged.(0).Pj_core.Match0.score

let test_scan_with_phrases () =
  let vocab, doc = setup "the leaning tower of pisa was built in 1173" in
  let q =
    Query.make "pisa build"
      [ Matcher.of_table ~name:"pisa" [ ("pisa", 0.4) ];
        Matcher.of_table ~name:"build" [ ("built", 1.0) ] ]
  in
  let phrases =
    [| [ ([ "leaning"; "tower"; "of"; "pisa" ], 1.0) ]; [] |]
  in
  let p = Phrase.scan_with_phrases vocab doc q ~phrases in
  Pj_core.Match_list.validate p;
  (* pisa list: token hit at 4 (0.4) plus phrase hit at 1 (1.0). *)
  Alcotest.(check (list int)) "pisa locations" [ 1; 4 ] (locs p.(0));
  Alcotest.(check (float 1e-9)) "phrase scored" 1.0 p.(0).(0).Pj_core.Match0.score;
  Alcotest.(check (list int)) "build locations" [ 6 ] (locs p.(1))

let test_scan_with_phrases_size_mismatch () =
  let vocab, doc = setup "x" in
  let q = Query.make "q" [ Matcher.exact "x" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Phrase.scan_with_phrases: phrases array size mismatch")
    (fun () -> ignore (Phrase.scan_with_phrases vocab doc q ~phrases:[||]))

let suite =
  [
    ("phrase: basic", `Quick, test_find_basic);
    ("phrase: overlapping", `Quick, test_find_repeated_and_overlapping);
    ("phrase: absent", `Quick, test_find_absent);
    ("phrase: empty rejected", `Quick, test_find_empty_phrase);
    ("phrase: find_all merges", `Quick, test_find_all_merges_best);
    ("match_list: merge", `Quick, test_merge_core);
    ("phrase: scan_with_phrases", `Quick, test_scan_with_phrases);
    ("phrase: size mismatch", `Quick, test_scan_with_phrases_size_mismatch);
  ]
