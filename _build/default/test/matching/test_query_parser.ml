open Pj_matching

let graph = lazy (Pj_ontology.Mini_wordnet.create ())

let parse_term spec = Query_parser.parse_term (Lazy.force graph) spec

let score m tok = m.Matcher.score_token tok

let test_wordnet_spec () =
  match parse_term "wordnet:pc-maker" with
  | Ok m ->
      Alcotest.(check (option (float 1e-9))) "lenovo at 0.7" (Some 0.7)
        (score m "lenovo")
  | Error e -> Alcotest.fail e

let test_bare_word_defaults_to_wordnet () =
  match parse_term "sports" with
  | Ok m ->
      Alcotest.(check (option (float 1e-9))) "nba at 0.7" (Some 0.7)
        (score m "nba")
  | Error e -> Alcotest.fail e

let test_exact_and_stem () =
  (match parse_term "exact:nba" with
  | Ok m ->
      Alcotest.(check (option (float 1e-9))) "exact hit" (Some 1.) (score m "nba");
      Alcotest.(check (option (float 1e-9))) "exact miss" None (score m "nbas")
  | Error e -> Alcotest.fail e);
  match parse_term "stem:partnership" with
  | Ok m ->
      Alcotest.(check (option (float 1e-9))) "stem hit" (Some 1.)
        (score m "partnerships")
  | Error e -> Alcotest.fail e

let test_lexicon_specs () =
  List.iter
    (fun (spec, tok) ->
      match parse_term spec with
      | Ok m ->
          Alcotest.(check bool) (spec ^ " matches " ^ tok) true
            (score m tok <> None)
      | Error e -> Alcotest.fail e)
    [
      ("date", "june"); ("year", "2005"); ("city", "beijing");
      ("country", "italy"); ("place", "beijing");
    ]

let test_disjunction_spec () =
  match parse_term "exact:conference|exact:workshop" with
  | Ok m ->
      Alcotest.(check bool) "left" true (score m "conference" <> None);
      Alcotest.(check bool) "right" true (score m "workshop" <> None);
      Alcotest.(check bool) "neither" true (score m "seminar" = None)
  | Error e -> Alcotest.fail e

let test_errors () =
  let fails spec =
    match parse_term spec with
    | Ok _ -> Alcotest.failf "%S should be rejected" spec
    | Error _ -> ()
  in
  fails "";
  fails "bogus:thing";
  fails "exact:";
  match Query_parser.parse (Lazy.force graph) [] with
  | Ok _ -> Alcotest.fail "empty query accepted"
  | Error _ -> ()

let test_parse_query () =
  match Query_parser.parse (Lazy.force graph) [ "pc-maker"; "date" ] with
  | Ok q -> Alcotest.(check int) "two terms" 2 (Query.n_terms q)
  | Error e -> Alcotest.fail e

let suite =
  [
    ("parser: wordnet spec", `Quick, test_wordnet_spec);
    ("parser: bare word", `Quick, test_bare_word_defaults_to_wordnet);
    ("parser: exact and stem", `Quick, test_exact_and_stem);
    ("parser: lexicons", `Quick, test_lexicon_specs);
    ("parser: disjunction", `Quick, test_disjunction_spec);
    ("parser: errors", `Quick, test_errors);
    ("parser: whole query", `Quick, test_parse_query);
  ]
