let () =
  Alcotest.run "proxjoin.matching"
    [
      ("matcher", Test_matcher.suite);
      ("match_builder", Test_match_builder.suite);
      ("phrase", Test_phrase.suite);
      ("query_parser", Test_query_parser.suite);
    ]
