open Pj_matching

let score = Alcotest.(option (float 1e-9))

let test_exact () =
  let m = Matcher.exact "nba" in
  Alcotest.check score "hit" (Some 1.) (m.Matcher.score_token "nba");
  Alcotest.check score "miss" None (m.Matcher.score_token "nfl");
  Alcotest.(check bool) "expansions" true
    (m.Matcher.expansions = Some [ ("nba", 1.) ])

let test_stemmed_exact () =
  let m = Matcher.stemmed_exact "partnership" in
  Alcotest.check score "same stem plural" (Some 1.)
    (m.Matcher.score_token "partnerships");
  Alcotest.check score "different word" None (m.Matcher.score_token "partner")

let test_of_table_max_wins () =
  let m = Matcher.of_table ~name:"t" [ ("x", 0.4); ("x", 0.9); ("y", 0.5) ] in
  Alcotest.check score "max kept" (Some 0.9) (m.Matcher.score_token "x");
  Alcotest.check score "other" (Some 0.5) (m.Matcher.score_token "y")

let test_disjunction () =
  let a = Matcher.exact ~score:0.8 "conference" in
  let b = Matcher.exact ~score:0.6 "workshop" in
  let d = Matcher.disjunction ~name:"conference|workshop" a b in
  Alcotest.check score "left" (Some 0.8) (d.Matcher.score_token "conference");
  Alcotest.check score "right" (Some 0.6) (d.Matcher.score_token "workshop");
  Alcotest.check score "neither" None (d.Matcher.score_token "seminar");
  let overlap =
    Matcher.disjunction ~name:"o" (Matcher.exact ~score:0.3 "x")
      (Matcher.exact ~score:0.9 "x")
  in
  Alcotest.check score "overlap keeps max" (Some 0.9)
    (overlap.Matcher.score_token "x")

let test_predicate () =
  let m = Matcher.predicate ~name:"digits" (fun t -> String.length t = 4) in
  Alcotest.check score "hit" (Some 1.) (m.Matcher.score_token "2008");
  Alcotest.(check bool) "no expansions" true (m.Matcher.expansions = None)

let test_wordnet_scoring () =
  let g = Pj_ontology.Mini_wordnet.create () in
  let m = Wordnet_matcher.create g "pc-maker" in
  Alcotest.check score "distance 0" (Some 1.) (m.Matcher.score_token "pc-maker");
  Alcotest.check score "distance 1" (Some 0.7) (m.Matcher.score_token "lenovo");
  Alcotest.check score "unrelated" None (m.Matcher.score_token "nba")

let test_wordnet_radius () =
  let g = Pj_ontology.Graph.create () in
  Pj_ontology.Graph.add_edge g "a" "b";
  Pj_ontology.Graph.add_edge g "b" "c";
  Pj_ontology.Graph.add_edge g "c" "d";
  Pj_ontology.Graph.add_edge g "d" "e";
  let m = Wordnet_matcher.create ~use_stems:false g "a" in
  Alcotest.check score "d=3" (Some 0.1) (m.Matcher.score_token "d");
  Alcotest.check score "d=4 outside radius" None (m.Matcher.score_token "e")

let test_wordnet_stemming () =
  let g = Pj_ontology.Mini_wordnet.create () in
  let m = Wordnet_matcher.create g "partnership" in
  (* Document token "partners" stems to "partner", distance 1. *)
  Alcotest.check score "stemmed form" (Some 0.7) (m.Matcher.score_token "partners")

let test_wordnet_unknown_concept () =
  let g = Pj_ontology.Mini_wordnet.create () in
  let m = Wordnet_matcher.create g "coriolanus" in
  Alcotest.check score "self-match" (Some 1.) (m.Matcher.score_token "coriolanus");
  Alcotest.check score "nothing else" None (m.Matcher.score_token "play")

let test_date_matcher () =
  let m = Date_matcher.create () in
  Alcotest.check score "month" (Some 1.) (m.Matcher.score_token "june");
  Alcotest.check score "year" (Some 1.) (m.Matcher.score_token "2008");
  Alcotest.check score "not date" None (m.Matcher.score_token "lenovo");
  Alcotest.(check bool) "has expansions" true (m.Matcher.expansions <> None)

let test_place_matcher () =
  let g = Pj_ontology.Mini_wordnet.create () in
  (* The paper's added edge. *)
  Pj_ontology.Graph.add_edge g "university" "place";
  let m = Place_matcher.create g in
  Alcotest.check score "gazetteer city" (Some 1.) (m.Matcher.score_token "beijing");
  Alcotest.check score "gazetteer country" (Some 1.) (m.Matcher.score_token "italy");
  Alcotest.check score "wordnet neighbor" (Some 0.7)
    (m.Matcher.score_token "university");
  Alcotest.check score "unrelated" None (m.Matcher.score_token "deadline")

let test_stem_expansions () =
  let m =
    Matcher.stem_expansions
      (Matcher.of_table ~name:"t" [ ("partnerships", 0.8); ("running", 0.5) ])
  in
  (* Forms stemmed: lookups accept any token with the same stem. *)
  Alcotest.check score "stemmed form hit" (Some 0.8)
    (m.Matcher.score_token "partnership");
  Alcotest.check score "other inflection" (Some 0.5) (m.Matcher.score_token "runs");
  (match m.Matcher.expansions with
  | Some e ->
      Alcotest.(check bool) "expansion forms stemmed" true
        (List.mem_assoc "partnership" e && List.mem_assoc "run" e)
  | None -> Alcotest.fail "expansions lost");
  (* Collisions keep the best score. *)
  let c =
    Matcher.stem_expansions
      (Matcher.of_table ~name:"c" [ ("connect", 0.3); ("connected", 0.9) ])
  in
  Alcotest.check score "collision max" (Some 0.9) (c.Matcher.score_token "connecting")

let test_query () =
  let q =
    Query.make "demo" [ Matcher.exact "a"; Matcher.exact "b" ]
  in
  Alcotest.(check int) "terms" 2 (Query.n_terms q);
  Alcotest.(check (array string)) "names" [| "a"; "b" |] (Query.term_names q);
  Alcotest.check_raises "empty rejected" (Invalid_argument "Query.make: no query term")
    (fun () -> ignore (Query.make "x" []))

let suite =
  [
    ("matcher: exact", `Quick, test_exact);
    ("matcher: stemmed exact", `Quick, test_stemmed_exact);
    ("matcher: of_table max wins", `Quick, test_of_table_max_wins);
    ("matcher: disjunction", `Quick, test_disjunction);
    ("matcher: predicate", `Quick, test_predicate);
    ("wordnet: 1 - 0.3d scoring", `Quick, test_wordnet_scoring);
    ("wordnet: radius 3 cutoff", `Quick, test_wordnet_radius);
    ("wordnet: stemming", `Quick, test_wordnet_stemming);
    ("wordnet: unknown concept", `Quick, test_wordnet_unknown_concept);
    ("date matcher", `Quick, test_date_matcher);
    ("place matcher", `Quick, test_place_matcher);
    ("matcher: stem expansions", `Quick, test_stem_expansions);
    ("query", `Quick, test_query);
  ]
