open Pj_workload

let case = lazy (Dbworld_sim.generate ~seed:624 ())

let test_structure () =
  let c = Lazy.force case in
  Alcotest.(check int) "38 messages" 38 (Array.length c.Dbworld_sim.messages);
  Alcotest.(check int) "25 CFP problems" 25 (Array.length c.Dbworld_sim.problems);
  let cfps =
    Array.to_list c.Dbworld_sim.messages
    |> List.filter (fun m -> m.Dbworld_sim.is_cfp)
  in
  Alcotest.(check int) "25 CFPs" 25 (List.length cfps);
  let extensions = List.filter (fun m -> m.Dbworld_sim.is_extension) cfps in
  Alcotest.(check int) "7 extension traps" 7 (List.length extensions);
  Array.iter (fun (_, p) -> Pj_core.Match_list.validate p) c.Dbworld_sim.problems

let test_list_sizes_shape () =
  (* Paper reports (13.2, 12.7, 73.5) for conference|workshop, date,
     place. We require the same shape: place-dominated, both others
     above ~8. *)
  let c = Lazy.force case in
  let sizes = Dbworld_sim.average_list_sizes c in
  Alcotest.(check int) "three terms" 3 (Array.length sizes);
  let conf = sizes.(0) and date = sizes.(1) and place = sizes.(2) in
  Alcotest.(check bool)
    (Printf.sprintf "conference ~13 (got %.1f)" conf)
    true
    (conf >= 8. && conf <= 20.);
  Alcotest.(check bool)
    (Printf.sprintf "date ~13 (got %.1f)" date)
    true
    (date >= 8. && date <= 20.);
  Alcotest.(check bool)
    (Printf.sprintf "place ~73 (got %.1f)" place)
    true
    (place >= 50. && place <= 100.)

let test_extraction_mostly_correct () =
  (* Paper: 18/25 fully correct with all scoring functions; most of the
     rest partially correct. Require >= 16 full and >= 22 at least
     partial for the WIN solver. *)
  let c = Lazy.force case in
  let w = Pj_core.Scoring.Win Pj_core.Scoring.win_linear in
  let solver p = Pj_core.Best_join.solve ~dedup:true w p in
  let results = Dbworld_sim.evaluate c solver in
  let full = ref 0 and partial = ref 0 in
  Array.iter
    (fun (_, ex) ->
      match ex with
      | Some e ->
          if e.Dbworld_sim.date_correct && e.Dbworld_sim.place_correct then
            incr full
          else if e.Dbworld_sim.date_correct || e.Dbworld_sim.place_correct then
            incr partial
      | None -> ())
    results;
  Alcotest.(check bool)
    (Printf.sprintf "full extractions (%d/25)" !full)
    true (!full >= 16);
  Alcotest.(check bool)
    (Printf.sprintf "at least partial (%d/25)" (!full + !partial))
    true
    (!full + !partial >= 22)

let test_first_date_heuristic_fails_on_traps () =
  (* Footnote 12: the heuristic is wrong exactly on the deadline
     extension messages. *)
  let c = Lazy.force case in
  let results = Dbworld_sim.first_date_heuristic c in
  Array.iter
    (fun ((msg : Dbworld_sim.message), correct) ->
      if msg.Dbworld_sim.is_extension then
        Alcotest.(check bool)
          (Printf.sprintf "doc %d trap defeats heuristic" msg.Dbworld_sim.doc_id)
          false correct
      else
        Alcotest.(check bool)
          (Printf.sprintf "doc %d heuristic fine" msg.Dbworld_sim.doc_id)
          true correct)
    results

let test_join_beats_heuristic_on_traps () =
  (* The algorithms recover the event date on most trap messages even
     though the first date is wrong (paper: 6 of 7). *)
  let c = Lazy.force case in
  let w = Pj_core.Scoring.Win Pj_core.Scoring.win_linear in
  let solver p = Pj_core.Best_join.solve ~dedup:true w p in
  let results = Dbworld_sim.evaluate c solver in
  let recovered = ref 0 in
  Array.iter
    (fun ((msg : Dbworld_sim.message), ex) ->
      match ex with
      | Some e when msg.Dbworld_sim.is_extension && e.Dbworld_sim.date_correct ->
          incr recovered
      | _ -> ())
    results;
  Alcotest.(check bool)
    (Printf.sprintf "traps recovered (%d/7)" !recovered)
    true (!recovered >= 5)

let test_deterministic () =
  let a = Dbworld_sim.generate ~seed:1 () in
  let b = Dbworld_sim.generate ~seed:1 () in
  let sa = Dbworld_sim.average_list_sizes a in
  let sb = Dbworld_sim.average_list_sizes b in
  Array.iteri (fun i x -> Alcotest.(check (float 1e-12)) "sizes" x sb.(i)) sa

let suite =
  [
    ("dbworld: structure", `Quick, test_structure);
    ("dbworld: list sizes shape", `Quick, test_list_sizes_shape);
    ("dbworld: extraction mostly correct", `Quick, test_extraction_mostly_correct);
    ("dbworld: first-date heuristic fails on traps", `Quick, test_first_date_heuristic_fails_on_traps);
    ("dbworld: join beats heuristic on traps", `Quick, test_join_beats_heuristic_on_traps);
    ("dbworld: deterministic", `Quick, test_deterministic);
  ]
