open Pj_workload

let scoring = Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.1)

let problems () =
  Synthetic.generate_batch ~seed:21 ~n_docs:40 Synthetic.default

let test_solve_all_matches_sequential () =
  let ps = problems () in
  let parallel = Batch.solve_all ~domains:4 scoring ps in
  Array.iteri
    (fun i p ->
      let expected = Pj_core.Best_join.solve ~dedup:true scoring p in
      match (parallel.(i), expected) with
      | None, None -> ()
      | Some a, Some b ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "doc %d score" i)
            b.Pj_core.Naive.score a.Pj_core.Naive.score
      | _ -> Alcotest.failf "doc %d presence mismatch" i)
    ps

let test_rank_matches_ranker () =
  let ps = problems () in
  let docs = Array.mapi (fun i p -> (i, p)) ps in
  let a = Batch.rank ~domains:3 scoring docs in
  let b = Ranker.rank scoring docs in
  Alcotest.(check int) "same length" (Array.length b) (Array.length a);
  Array.iteri
    (fun i r ->
      Alcotest.(check int)
        (Printf.sprintf "rank %d doc" i)
        b.(i).Ranker.doc_id r.Ranker.doc_id)
    a

let suite =
  [
    ("batch: solve_all = sequential", `Quick, test_solve_all_matches_sequential);
    ("batch: rank = Ranker.rank", `Quick, test_rank_matches_ranker);
  ]
