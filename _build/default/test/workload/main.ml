let () =
  Alcotest.run "proxjoin.workload"
    [
      ("synthetic", Test_synthetic.suite);
      ("ranker", Test_ranker.suite);
      ("trec_sim", Test_trec_sim.suite);
      ("dbworld_sim", Test_dbworld_sim.suite);
      ("batch", Test_batch.suite);
    ]
