open Pj_workload

(* Smaller corpora than the paper's for test speed; the bench harness
   uses the full 1000-document setting. *)
let small_case spec = Trec_sim.generate ~seed:7 ~n_docs:60 ~doc_length:200 spec

let test_specs_shape () =
  let specs = Trec_sim.specs () in
  Alcotest.(check int) "seven queries" 7 (List.length specs);
  List.iter
    (fun s ->
      let n = List.length s.Trec_sim.terms in
      Alcotest.(check bool)
        (s.Trec_sim.id ^ " has 3 or 4 terms")
        true
        (n = 3 || n = 4))
    specs;
  Alcotest.(check string) "find_spec" "Q3" (Trec_sim.find_spec "Q3").Trec_sim.id

let test_find_spec_missing () =
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (Trec_sim.find_spec "Q99"))

let test_case_structure () =
  let case = small_case (Trec_sim.find_spec "Q3") in
  Alcotest.(check int) "one problem per doc" 60
    (Array.length case.Trec_sim.problems);
  Alcotest.(check bool) "answer doc in range" true
    (case.Trec_sim.answer_doc >= 0 && case.Trec_sim.answer_doc < 60);
  Array.iter
    (fun (_, p) -> Pj_core.Match_list.validate p)
    case.Trec_sim.problems

let test_answer_doc_contains_cluster () =
  let spec = Trec_sim.find_spec "Q3" in
  let case = small_case spec in
  let _, p =
    case.Trec_sim.problems.(case.Trec_sim.answer_doc)
  in
  (* Every term list of the answer document is non-empty, and some
     matchset has a very tight window (the planted adjacent cluster). *)
  Alcotest.(check bool) "no empty list" false (Pj_core.Match_list.has_empty_list p);
  let w = Pj_core.Scoring.win_linear in
  match Pj_core.Win.best w p with
  | None -> Alcotest.fail "expected a matchset"
  | Some r ->
      Alcotest.(check bool) "tight cluster" true
        (Pj_core.Matchset.window r.Pj_core.Naive.matchset
         <= Pj_matching.Query.n_terms case.Trec_sim.query)

let test_list_sizes_track_rates () =
  let spec = Trec_sim.find_spec "Q5" in
  let case = small_case spec in
  let sizes = Trec_sim.measured_list_sizes case in
  List.iteri
    (fun j term ->
      let rate = term.Trec_sim.rate in
      let got = sizes.(j) in
      (* Scattering is approximate (stem overlaps inflate lists a bit);
         require the right order of magnitude. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.2f vs rate %.2f" term.Trec_sim.term_name got rate)
        true
        (got >= rate *. 0.5 && got <= (rate *. 2.) +. 1.))
    spec.Trec_sim.terms

let test_answer_ranks_near_top () =
  (* The planted answer document should rank at or near the top for all
     three scoring functions, reproducing Figure 12's behaviour. *)
  let spec = Trec_sim.find_spec "Q7" in
  let case = small_case spec in
  let scorings =
    [
      ("MED", Pj_core.Scoring.Med Pj_core.Scoring.med_linear);
      ("MAX", Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.1));
      ("WIN", Pj_core.Scoring.Win Pj_core.Scoring.win_linear);
    ]
  in
  List.iter
    (fun (name, scoring) ->
      let ranked = Ranker.rank scoring case.Trec_sim.problems in
      match Ranker.answer_rank_of ranked ~doc_id:case.Trec_sim.answer_doc with
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "%s answer rank %d" name r.Ranker.rank)
            true (r.Ranker.rank <= 3)
      | None -> Alcotest.failf "%s: answer doc unranked" name)
    scorings

let test_duplicates_measured () =
  let case = small_case (Trec_sim.find_spec "Q2") in
  let d = Trec_sim.measured_duplicates case in
  Alcotest.(check bool) (Printf.sprintf "non-negative (%f)" d) true (d >= 0.)

let test_deterministic () =
  let spec = Trec_sim.find_spec "Q6" in
  let a = Trec_sim.generate ~seed:3 ~n_docs:10 ~doc_length:100 spec in
  let b = Trec_sim.generate ~seed:3 ~n_docs:10 ~doc_length:100 spec in
  Alcotest.(check int) "same answer doc" a.Trec_sim.answer_doc b.Trec_sim.answer_doc;
  let sa = Trec_sim.measured_list_sizes a and sb = Trec_sim.measured_list_sizes b in
  Array.iteri
    (fun i x -> Alcotest.(check (float 1e-12)) "same sizes" x sb.(i))
    sa

let suite =
  [
    ("trec: specs shape", `Quick, test_specs_shape);
    ("trec: find_spec missing", `Quick, test_find_spec_missing);
    ("trec: case structure", `Quick, test_case_structure);
    ("trec: answer cluster planted", `Quick, test_answer_doc_contains_cluster);
    ("trec: list sizes track Fig 12 rates", `Quick, test_list_sizes_track_rates);
    ("trec: answer ranks near top", `Quick, test_answer_ranks_near_top);
    ("trec: duplicates measured", `Quick, test_duplicates_measured);
    ("trec: deterministic", `Quick, test_deterministic);
  ]
