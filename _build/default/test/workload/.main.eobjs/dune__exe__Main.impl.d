test/workload/main.ml: Alcotest Test_batch Test_dbworld_sim Test_ranker Test_synthetic Test_trec_sim
