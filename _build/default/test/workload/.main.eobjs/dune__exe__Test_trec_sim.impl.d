test/workload/test_trec_sim.ml: Alcotest Array List Pj_core Pj_matching Pj_workload Printf Ranker Trec_sim
