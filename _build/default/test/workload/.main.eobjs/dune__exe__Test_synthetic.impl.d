test/workload/test_synthetic.ml: Alcotest Array Float Pj_core Pj_util Pj_workload Printf Stdlib Synthetic
