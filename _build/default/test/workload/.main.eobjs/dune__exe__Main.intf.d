test/workload/main.mli:
