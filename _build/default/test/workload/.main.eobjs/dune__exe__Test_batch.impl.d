test/workload/test_batch.ml: Alcotest Array Batch Pj_core Pj_workload Printf Ranker Synthetic
