test/workload/test_ranker.ml: Alcotest Array Format Pj_core Pj_workload Ranker
