test/workload/test_dbworld_sim.ml: Alcotest Array Dbworld_sim Lazy List Pj_core Pj_workload Printf
