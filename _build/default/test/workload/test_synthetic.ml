open Pj_workload

let params ?(n_terms = 4) ?(total = 30) ?(lambda = 2.0) ?(s = 1.1)
    ?(len = 1000) () =
  {
    Synthetic.n_terms;
    total_matches = total;
    lambda;
    zipf_s = s;
    doc_length = len;
  }

let test_total_size_exact () =
  let rng = Pj_util.Prng.create 5 in
  for _ = 1 to 50 do
    let p = Synthetic.generate (params ()) rng in
    Alcotest.(check int) "total" 30 (Pj_core.Match_list.total_size p);
    Alcotest.(check int) "terms" 4 (Pj_core.Match_list.n_terms p);
    Pj_core.Match_list.validate p
  done

let test_scores_in_range () =
  let rng = Pj_util.Prng.create 6 in
  let p = Synthetic.generate (params ~total:100 ()) rng in
  Array.iter
    (Array.iter (fun m ->
         let s = m.Pj_core.Match0.score in
         if s <= 0. || s > 1. then Alcotest.failf "score %f outside (0,1]" s))
    p

let test_locations_in_range () =
  let rng = Pj_util.Prng.create 7 in
  let p = Synthetic.generate (params ~len:50 ~total:20 ()) rng in
  Array.iter
    (Array.iter (fun m ->
         let l = m.Pj_core.Match0.loc in
         if l < 0 || l >= 50 then Alcotest.failf "loc %d outside doc" l))
    p

let measured_duplicate_fraction lambda =
  let batch =
    Synthetic.generate_batch ~seed:11 ~n_docs:300 (params ~lambda ())
  in
  let dups =
    Array.fold_left
      (fun acc p -> acc + Pj_core.Match_list.duplicate_count p)
      0 batch
  in
  let total =
    Array.fold_left
      (fun acc p -> acc + Pj_core.Match_list.total_size p)
      0 batch
  in
  float_of_int dups /. float_of_int total

let test_lambda_controls_duplicates () =
  (* The paper: lambda from 1.0 to 3.0 moves duplicate frequency from
     about 60% down to about 10%; lambda = 2.0 is a little under 24%. *)
  let f1 = measured_duplicate_fraction 1.0 in
  let f2 = measured_duplicate_fraction 2.0 in
  let f3 = measured_duplicate_fraction 3.0 in
  Alcotest.(check bool) "monotone" true (f1 > f2 && f2 > f3);
  Alcotest.(check bool)
    (Printf.sprintf "lambda 1 near 60%% (got %.2f)" f1)
    true
    (Float.abs (f1 -. 0.60) < 0.08);
  Alcotest.(check bool)
    (Printf.sprintf "lambda 2 near 24%% (got %.2f)" f2)
    true
    (Float.abs (f2 -. 0.24) < 0.06);
  Alcotest.(check bool)
    (Printf.sprintf "lambda 3 near 10%% (got %.2f)" f3)
    true
    (Float.abs (f3 -. 0.10) < 0.05)

let test_analytic_duplicate_fraction () =
  let p = params () in
  let expected = Synthetic.expected_duplicate_fraction p in
  Alcotest.(check bool)
    (Printf.sprintf "analytic near 25%% (got %.3f)" expected)
    true
    (Float.abs (expected -. 0.25) < 0.02);
  let measured = measured_duplicate_fraction 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f matches analytic %.3f" measured expected)
    true
    (Float.abs (measured -. expected) < 0.05)

let list_size_spread s =
  let batch = Synthetic.generate_batch ~seed:3 ~n_docs:200 (params ~s ()) in
  let sums = Array.make 4 0 in
  Array.iter
    (fun p -> Array.iteri (fun j l -> sums.(j) <- sums.(j) + Array.length l) p)
    batch;
  let sizes = Array.map float_of_int sums in
  Array.sort compare sizes;
  sizes.(3) /. Float.max 1. sizes.(0)

let test_zipf_controls_skew () =
  let mild = list_size_spread 1.1 in
  let heavy = list_size_spread 4.0 in
  Alcotest.(check bool)
    (Printf.sprintf "s=4 more skewed than s=1.1 (%.1f vs %.1f)" heavy mild)
    true (heavy > 2. *. mild)

let popular_share s =
  let batch = Synthetic.generate_batch ~seed:9 ~n_docs:100 (params ~s ()) in
  let sums = Array.make 4 0 in
  Array.iter
    (fun p -> Array.iteri (fun j l -> sums.(j) <- sums.(j) + Array.length l) p)
    batch;
  let total = Array.fold_left ( + ) 0 sums in
  float_of_int (Array.fold_left Stdlib.max 0 sums) /. float_of_int total

let test_extreme_skew_shrinks_cross_product () =
  (* At s = 4 the paper notes that essentially all matches concentrate
     on the most popular term (all lists but one have size ~1; here
     duplicates force a floor on the unpopular lists). *)
  let share4 = popular_share 4.0 and share11 = popular_share 1.1 in
  Alcotest.(check bool)
    (Printf.sprintf "s=4 concentrates matches (%.2f vs %.2f)" share4 share11)
    true
    (share4 > 0.7 && share11 < 0.55)

let test_deterministic_by_seed () =
  let a = Synthetic.generate_batch ~seed:1 ~n_docs:5 (params ()) in
  let b = Synthetic.generate_batch ~seed:1 ~n_docs:5 (params ()) in
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun j l ->
          Array.iteri
            (fun k m ->
              Alcotest.(check bool)
                (Printf.sprintf "doc %d list %d match %d" i j k)
                true
                (Pj_core.Match0.equal m b.(i).(j).(k)))
            l)
        p)
    a

let test_rejects_impossible () =
  Alcotest.check_raises "too many matches"
    (Invalid_argument "Synthetic: more matches than available slots")
    (fun () ->
      ignore
        (Synthetic.generate
           (params ~len:5 ~total:100 ())
           (Pj_util.Prng.create 0)))

let suite =
  [
    ("synthetic: exact total size", `Quick, test_total_size_exact);
    ("synthetic: scores in (0,1]", `Quick, test_scores_in_range);
    ("synthetic: locations in range", `Quick, test_locations_in_range);
    ("synthetic: lambda vs duplicates (Fig 8 premise)", `Slow, test_lambda_controls_duplicates);
    ("synthetic: analytic duplicate fraction", `Slow, test_analytic_duplicate_fraction);
    ("synthetic: zipf skew (Fig 10 premise)", `Slow, test_zipf_controls_skew);
    ("synthetic: extreme skew", `Slow, test_extreme_skew_shrinks_cross_product);
    ("synthetic: deterministic", `Quick, test_deterministic_by_seed);
    ("synthetic: rejects impossible params", `Quick, test_rejects_impossible);
  ]
