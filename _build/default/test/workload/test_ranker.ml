open Pj_workload

let m ?(score = 1.) loc = Pj_core.Match0.make ~loc ~score ()

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.1)

(* Three documents: doc 0 with a tight pair, doc 1 with a loose pair,
   doc 2 with an empty list. *)
let docs () =
  [|
    (0, [| [| m 10 |]; [| m 11 |] |]);
    (1, [| [| m 10 |]; [| m 40 |] |]);
    (2, [| [| m 1 |]; [||] |]);
  |]

let test_rank_order () =
  let ranked = Ranker.rank scoring (docs ()) in
  Alcotest.(check int) "best first" 0 ranked.(0).Ranker.doc_id;
  Alcotest.(check int) "loose second" 1 ranked.(1).Ranker.doc_id;
  Alcotest.(check int) "empty last" 2 ranked.(2).Ranker.doc_id;
  Alcotest.(check bool) "no result for empty" true (ranked.(2).Ranker.result = None)

let test_answer_rank () =
  let ranked = Ranker.rank scoring (docs ()) in
  (match Ranker.answer_rank_of ranked ~doc_id:0 with
  | Some r ->
      Alcotest.(check int) "rank 1" 1 r.Ranker.rank;
      Alcotest.(check int) "no ties" 1 r.Ranker.ties
  | None -> Alcotest.fail "expected a rank");
  (match Ranker.answer_rank_of ranked ~doc_id:1 with
  | Some r -> Alcotest.(check int) "rank 2" 2 r.Ranker.rank
  | None -> Alcotest.fail "expected a rank");
  Alcotest.(check bool) "no rank for empty doc" true
    (Ranker.answer_rank_of ranked ~doc_id:2 = None);
  Alcotest.(check bool) "absent doc" true
    (Ranker.answer_rank_of ranked ~doc_id:99 = None)

let test_ties () =
  let tied =
    [|
      (0, [| [| m 10 |]; [| m 11 |] |]);
      (1, [| [| m 20 |]; [| m 21 |] |]);
    |]
  in
  let ranked = Ranker.rank scoring tied in
  match Ranker.answer_rank_of ranked ~doc_id:1 with
  | Some r ->
      Alcotest.(check int) "tied rank 1" 1 r.Ranker.rank;
      Alcotest.(check int) "two tied" 2 r.Ranker.ties;
      Alcotest.(check string) "pp" "1(2)"
        (Format.asprintf "%a" Ranker.pp_answer_rank r)
  | None -> Alcotest.fail "expected a rank"

let test_dedup_respected () =
  (* With dedup on (the default), a document whose only matchset reuses
     one token must rank below a valid-but-loose document. *)
  let docs =
    [|
      (0, [| [| m 5 |]; [| m 5 |] |]);
      (1, [| [| m 10 |]; [| m 30 |] |]);
    |]
  in
  let ranked = Ranker.rank scoring docs in
  Alcotest.(check int) "valid doc first" 1 ranked.(0).Ranker.doc_id;
  Alcotest.(check bool) "duplicate-only doc has no valid matchset" true
    (ranked.(1).Ranker.result = None)

let suite =
  [
    ("ranker: order", `Quick, test_rank_order);
    ("ranker: answer rank", `Quick, test_answer_rank);
    ("ranker: ties", `Quick, test_ties);
    ("ranker: dedup", `Quick, test_dedup_respected);
  ]
