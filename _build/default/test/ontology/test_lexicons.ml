open Pj_ontology

let test_wordnet_intro_example () =
  (* The intro's motivating matches: lenovo / dell / hewlett-packard are
     close to "pc-maker"; nba and olympics close to "sports"; partner and
     deal close to "partnership". *)
  let g = Mini_wordnet.create () in
  let close a b =
    match Graph.distance g ~max_depth:3 a b with
    | Some d -> d <= 3
    | None -> false
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (a ^ " ~ " ^ b) true (close a b))
    [
      ("pc-maker", "lenovo"); ("pc-maker", "dell");
      ("pc-maker", "hewlett-packard"); ("pc-maker", "laptop-maker");
      ("sports", "nba"); ("sports", "olympics");
      ("partnership", "partner"); ("partnership", "deal");
      ("asia", "china"); ("porcelain", "china"); ("porcelain", "ceramics");
      ("asia", "jingdezhen");
    ]

let test_wordnet_fresh_copies () =
  (* The paper added conference--workshop for DBWorld; mutations must not
     leak into later copies. *)
  let g1 = Mini_wordnet.create () in
  Graph.add_edge g1 "conference" "workshop";
  Alcotest.(check (option int)) "added edge" (Some 1)
    (Graph.distance g1 "conference" "workshop");
  let g2 = Mini_wordnet.create () in
  Alcotest.(check bool) "fresh copy lacks it" true
    (Graph.distance g2 ~max_depth:1 "conference" "workshop" <> Some 1)

let test_wordnet_concepts_present () =
  let g = Mini_wordnet.create () in
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " in graph") true (Graph.mem g c))
    (Mini_wordnet.concepts ())

let test_gazetteer () =
  Alcotest.(check bool) "beijing" true (Gazetteer.mem "beijing");
  Alcotest.(check bool) "italy" true (Gazetteer.mem "italy");
  Alcotest.(check bool) "lenovo" false (Gazetteer.mem "lenovo");
  Alcotest.(check bool) "rich enough" true (Gazetteer.size () > 150)

let test_date_lex () =
  Alcotest.(check bool) "june" true (Date_lex.is_month "june");
  Alcotest.(check bool) "sept abbrev" true (Date_lex.is_month "sept");
  Alcotest.(check bool) "not a month" false (Date_lex.is_month "lenovo");
  Alcotest.(check bool) "2008" true (Date_lex.is_year "2008");
  Alcotest.(check bool) "1989 outside range" false (Date_lex.is_year "1989");
  Alcotest.(check bool) "2011 outside range" false (Date_lex.is_year "2011");
  Alcotest.(check bool) "day number" true (Date_lex.is_day_number "26");
  Alcotest.(check bool) "32 not a day" false (Date_lex.is_day_number "32");
  Alcotest.(check bool) "date token month" true (Date_lex.is_date_token "may");
  Alcotest.(check bool) "date token year" true (Date_lex.is_date_token "1995");
  Alcotest.(check bool) "plain number not a date" false (Date_lex.is_date_token "42")

let suite =
  [
    ("wordnet: intro example distances", `Quick, test_wordnet_intro_example);
    ("wordnet: fresh copies", `Quick, test_wordnet_fresh_copies);
    ("wordnet: concepts present", `Quick, test_wordnet_concepts_present);
    ("gazetteer", `Quick, test_gazetteer);
    ("date lexicon", `Quick, test_date_lex);
  ]
