open Pj_ontology

let line_graph n =
  (* 0 - 1 - 2 - ... - (n-1) as strings *)
  let g = Graph.create () in
  for i = 0 to n - 2 do
    Graph.add_edge g (string_of_int i) (string_of_int (i + 1))
  done;
  g

let test_basic_distance () =
  let g = line_graph 6 in
  Alcotest.(check (option int)) "adjacent" (Some 1) (Graph.distance g "0" "1");
  Alcotest.(check (option int)) "far" (Some 5) (Graph.distance g "0" "5");
  Alcotest.(check (option int)) "self" (Some 0) (Graph.distance g "3" "3")

let test_max_depth () =
  let g = line_graph 6 in
  Alcotest.(check (option int)) "within depth" (Some 3)
    (Graph.distance g ~max_depth:3 "0" "3");
  Alcotest.(check (option int)) "beyond depth" None
    (Graph.distance g ~max_depth:3 "0" "4")

let test_disconnected () =
  let g = Graph.create () in
  Graph.add_edge g "a" "b";
  Graph.add_node g "z";
  Alcotest.(check (option int)) "disconnected" None (Graph.distance g "a" "z");
  Alcotest.(check (option int)) "absent" None (Graph.distance g "a" "nope")

let test_undirected () =
  let g = line_graph 4 in
  Alcotest.(check (option int)) "forward" (Graph.distance g "0" "3")
    (Graph.distance g "3" "0")

let test_duplicate_edges_and_self_loops () =
  let g = Graph.create () in
  Graph.add_edge g "a" "b";
  Graph.add_edge g "a" "b";
  Graph.add_edge g "b" "a";
  Graph.add_edge g "a" "a";
  Alcotest.(check int) "one edge" 1 (Graph.edge_count g);
  Alcotest.(check int) "two nodes" 2 (Graph.node_count g);
  Alcotest.(check (list string)) "neighbors" [ "b" ] (Graph.neighbors g "a")

let test_within () =
  let g = line_graph 6 in
  let w = Graph.within g ~radius:2 "2" in
  Alcotest.(check (list (pair string int)))
    "radius 2 around node 2"
    [ ("0", 2); ("1", 1); ("2", 0); ("3", 1); ("4", 2) ]
    w;
  Alcotest.(check (list (pair string int))) "absent source" []
    (Graph.within g ~radius:2 "zzz")

let test_branching () =
  let g = Graph.create () in
  Graph.add_edge g "hub" "a";
  Graph.add_edge g "hub" "b";
  Graph.add_edge g "a" "leaf";
  Alcotest.(check (option int)) "through hub" (Some 3) (Graph.distance g "b" "leaf" ~max_depth:5)

let suite =
  [
    ("graph: distances", `Quick, test_basic_distance);
    ("graph: max depth", `Quick, test_max_depth);
    ("graph: disconnected", `Quick, test_disconnected);
    ("graph: undirected", `Quick, test_undirected);
    ("graph: dedup edges", `Quick, test_duplicate_edges_and_self_loops);
    ("graph: within radius", `Quick, test_within);
    ("graph: branching", `Quick, test_branching);
  ]
