test/ontology/test_graph.ml: Alcotest Graph Pj_ontology
