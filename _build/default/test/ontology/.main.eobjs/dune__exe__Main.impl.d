test/ontology/main.ml: Alcotest Test_graph Test_lexicons
