test/ontology/test_lexicons.ml: Alcotest Date_lex Gazetteer Graph List Mini_wordnet Pj_ontology
