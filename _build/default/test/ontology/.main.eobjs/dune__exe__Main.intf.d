test/ontology/main.mli:
