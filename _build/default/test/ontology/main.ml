let () =
  Alcotest.run "proxjoin.ontology"
    [ ("graph", Test_graph.suite); ("lexicons", Test_lexicons.suite) ]
