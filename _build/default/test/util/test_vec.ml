open Pj_util

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v)

let test_pop () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "length after" 2 (Vec.length v)

let test_pop_empty () =
  let v : int Vec.t = Vec.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop v))

let test_bounds () =
  let v = Vec.of_array [| 1 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1))

let test_set () =
  let v = Vec.of_array [| 1; 2 |] in
  Vec.set v 0 9;
  Alcotest.(check int) "set" 9 (Vec.get v 0)

let test_clear_reuse () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Vec.clear v;
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  Vec.push v 7;
  Alcotest.(check int) "reusable" 7 (Vec.get v 0)

let test_conversions () =
  let v = Vec.of_array [| 3; 1; 2 |] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 2 ] (Vec.to_list v);
  Alcotest.(check (array int)) "to_array" [| 3; 1; 2 |] (Vec.to_array v)

let test_iterators () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check int) "fold" 6 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 3 (List.length !acc)

let test_sort () =
  let v = Vec.of_array [| 3; 1; 2 |] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

let test_growth_stress () =
  let v = Vec.create () in
  for i = 0 to 100_000 do
    Vec.push v i
  done;
  Alcotest.(check int) "stress length" 100_001 (Vec.length v);
  Alcotest.(check int) "stress content" 50_000 (Vec.get v 50_000)

let suite =
  [
    ("vec: push/get", `Quick, test_push_get);
    ("vec: pop", `Quick, test_pop);
    ("vec: pop empty", `Quick, test_pop_empty);
    ("vec: bounds", `Quick, test_bounds);
    ("vec: set", `Quick, test_set);
    ("vec: clear and reuse", `Quick, test_clear_reuse);
    ("vec: conversions", `Quick, test_conversions);
    ("vec: iterators", `Quick, test_iterators);
    ("vec: sort", `Quick, test_sort);
    ("vec: growth stress", `Quick, test_growth_stress);
  ]
