open Pj_util

let int_heap () = Heap.create ~leq:(fun (a : int) b -> a <= b)

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_order () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check int) "length" 8 (Heap.length h);
  Alcotest.(check (option int)) "peek max" (Some 9) (Heap.peek h);
  let out = List.init 8 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "descending" [ 9; 6; 5; 4; 3; 2; 1; 1 ] out

let test_interleaved () =
  let h = int_heap () in
  Heap.push h 5;
  Heap.push h 1;
  Alcotest.(check (option int)) "pop 5" (Some 5) (Heap.pop h);
  Heap.push h 7;
  Heap.push h 3;
  Alcotest.(check (option int)) "pop 7" (Some 7) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_random_against_sort () =
  let rng = Prng.create 31 in
  for _ = 1 to 50 do
    let n = 1 + Prng.int rng 100 in
    let values = Array.init n (fun _ -> Prng.int rng 1000) in
    let h = int_heap () in
    Array.iter (Heap.push h) values;
    let out = Array.init n (fun _ -> Option.get (Heap.pop h)) in
    let expected = Array.copy values in
    Array.sort (fun a b -> compare b a) expected;
    Alcotest.(check (array int)) "heap sort" expected out
  done

let suite =
  [
    ("heap: empty", `Quick, test_empty);
    ("heap: order", `Quick, test_order);
    ("heap: interleaved", `Quick, test_interleaved);
    ("heap: random vs sort", `Quick, test_random_against_sort);
  ]
