open Pj_util

let check_float = Alcotest.(check (float 1e-9))

let test_mean () = check_float "mean" 2. (Stats.mean [| 1.; 2.; 3. |])

let test_variance () =
  check_float "variance" 1. (Stats.variance [| 1.; 2.; 3. |]);
  check_float "singleton" 0. (Stats.variance [| 5. |])

let test_stdev () = check_float "stdev" 1. (Stats.stdev [| 1.; 2.; 3. |])

let test_cov () =
  (* [1; 3]: mean 2, sample stdev sqrt 2, cov = sqrt 2 / 2. *)
  check_float "cov" (Float.sqrt 2. /. 2.)
    (Stats.coefficient_of_variation [| 1.; 3. |]);
  check_float "cov zero mean" 0. (Stats.coefficient_of_variation [| 0.; 0. |])

let test_median () =
  check_float "odd" 2. (Stats.median [| 3.; 1.; 2. |]);
  check_float "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  let a = [| 3.; 1.; 2. |] in
  ignore (Stats.median a);
  Alcotest.(check (array (float 0.))) "input untouched" [| 3.; 1.; 2. |] a

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 2. |] in
  check_float "min" (-1.) lo;
  check_float "max" 3. hi

let test_percentile () =
  let a = [| 10.; 20.; 30.; 40.; 50. |] in
  check_float "p0" 10. (Stats.percentile a 0.);
  check_float "p50" 30. (Stats.percentile a 50.);
  check_float "p100" 50. (Stats.percentile a 100.);
  check_float "p25" 20. (Stats.percentile a 25.)

let test_histogram () =
  let h = Stats.histogram [| 0.; 1.; 2.; 3. |] ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "first count" 2 (snd h.(0));
  Alcotest.(check int) "second count" 2 (snd h.(1))

let suite =
  [
    ("stats: mean", `Quick, test_mean);
    ("stats: variance", `Quick, test_variance);
    ("stats: stdev", `Quick, test_stdev);
    ("stats: cov", `Quick, test_cov);
    ("stats: median", `Quick, test_median);
    ("stats: min/max", `Quick, test_min_max);
    ("stats: percentile", `Quick, test_percentile);
    ("stats: histogram", `Quick, test_histogram);
  ]
