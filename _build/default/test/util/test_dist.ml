open Pj_util

let test_of_weights_normalizes () =
  let d = Dist.of_weights [| 1.; 3. |] in
  Alcotest.(check (float 1e-9)) "p0" 0.25 (Dist.probability d 0);
  Alcotest.(check (float 1e-9)) "p1" 0.75 (Dist.probability d 1);
  Alcotest.(check int) "support" 2 (Dist.support d)

let test_sample_frequencies () =
  let d = Dist.of_weights [| 1.; 3. |] in
  let rng = Prng.create 17 in
  let n = 50_000 in
  let c = Array.make 2 0 in
  for _ = 1 to n do
    let i = Dist.sample d rng in
    c.(i) <- c.(i) + 1
  done;
  let f1 = float_of_int c.(1) /. float_of_int n in
  Alcotest.(check bool) "frequency close to 0.75" true (Float.abs (f1 -. 0.75) < 0.02)

let test_zipf_shape () =
  let d = Dist.zipf ~n:5 ~s:1. in
  (* P(k) proportional to 1/k: p0/p1 = 2. *)
  Alcotest.(check (float 1e-9)) "ratio" 2.
    (Dist.probability d 0 /. Dist.probability d 1)

let test_zipf_more_skew () =
  let mild = Dist.zipf ~n:10 ~s:1.1 in
  let heavy = Dist.zipf ~n:10 ~s:4. in
  Alcotest.(check bool) "higher s concentrates mass" true
    (Dist.probability heavy 0 > Dist.probability mild 0)

let test_truncated_exponential_shape () =
  let d = Dist.truncated_exponential ~n:4 ~lambda:2. in
  (* P(tau) proportional to exp (-lambda tau): successive ratio e^-2. *)
  Alcotest.(check (float 1e-9)) "ratio" (exp 2.)
    (Dist.probability d 0 /. Dist.probability d 1)

let test_larger_lambda_prefers_smaller () =
  let low = Dist.truncated_exponential ~n:4 ~lambda:1. in
  let high = Dist.truncated_exponential ~n:4 ~lambda:3. in
  Alcotest.(check bool) "lambda raises P(1)" true
    (Dist.probability high 0 > Dist.probability low 0)

let test_expectation () =
  let d = Dist.of_weights [| 1.; 1. |] in
  Alcotest.(check (float 1e-9)) "mean index" 0.5
    (Dist.categorical_expectation d float_of_int)

let test_degenerate () =
  let d = Dist.of_weights [| 0.; 5.; 0. |] in
  let rng = Prng.create 4 in
  for _ = 1 to 100 do
    Alcotest.(check int) "always the only outcome" 1 (Dist.sample d rng)
  done

let suite =
  [
    ("dist: normalization", `Quick, test_of_weights_normalizes);
    ("dist: sample frequencies", `Quick, test_sample_frequencies);
    ("dist: zipf shape", `Quick, test_zipf_shape);
    ("dist: zipf skew ordering", `Quick, test_zipf_more_skew);
    ("dist: truncated exponential shape", `Quick, test_truncated_exponential_shape);
    ("dist: lambda ordering", `Quick, test_larger_lambda_prefers_smaller);
    ("dist: expectation", `Quick, test_expectation);
    ("dist: degenerate weights", `Quick, test_degenerate);
  ]
