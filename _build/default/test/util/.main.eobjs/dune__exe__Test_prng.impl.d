test/util/test_prng.ml: Alcotest Array Fun Pj_util Prng
