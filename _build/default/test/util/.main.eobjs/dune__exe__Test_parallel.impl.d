test/util/test_parallel.ml: Alcotest Array Fun Parallel Pj_util
