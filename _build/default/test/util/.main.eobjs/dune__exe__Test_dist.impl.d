test/util/test_dist.ml: Alcotest Array Dist Float Pj_util Prng
