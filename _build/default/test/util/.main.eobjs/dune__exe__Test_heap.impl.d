test/util/test_heap.ml: Alcotest Array Heap List Option Pj_util Prng
