test/util/test_vec.ml: Alcotest List Pj_util Vec
