test/util/test_stats.ml: Alcotest Array Float Pj_util Stats
