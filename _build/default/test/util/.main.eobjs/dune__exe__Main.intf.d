test/util/main.mli:
