test/util/main.ml: Alcotest Test_dist Test_heap Test_parallel Test_prng Test_stats Test_subset Test_timing Test_vec
