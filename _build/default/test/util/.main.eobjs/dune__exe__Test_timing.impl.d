test/util/test_timing.ml: Alcotest Array Format Pj_util String Sys Timing
