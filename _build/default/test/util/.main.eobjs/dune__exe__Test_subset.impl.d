test/util/test_subset.ml: Alcotest List Pj_util Subset
