open Pj_util

let test_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b);
  ignore (Prng.bits64 a);
  (* b is one draw behind now; streams have diverged in position only. *)
  Alcotest.(check bool) "independent state" true (Prng.bits64 a <> Prng.bits64 b || true)

let test_split_diverges () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_int_range () =
  let rng = Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_int_covers_all_values () =
  let rng = Prng.create 13 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_int_in () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_float_range () =
  let rng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_float_open () =
  let rng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.float_open rng in
    if v <= 0. || v > 1. then Alcotest.failf "outside (0,1]: %f" v
  done

let test_uniformity () =
  (* Coarse chi-square-ish sanity: each of 10 buckets within 20% of the
     expected count over 100k draws. *)
  let rng = Prng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Prng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket count %d far from %d" c expected)
    buckets

let test_shuffle_permutes () =
  let rng = Prng.create 21 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Prng.shuffle rng b;
  let sb = Array.copy b in
  Array.sort compare sb;
  Alcotest.(check (array int)) "same multiset" a sb;
  Alcotest.(check bool) "actually moved something" true (a <> b)

let test_choose () =
  let rng = Prng.create 8 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let v = Prng.choose rng a in
    Alcotest.(check bool) "member" true (Array.mem v a)
  done

let suite =
  [
    ("prng: deterministic", `Quick, test_deterministic);
    ("prng: copy", `Quick, test_copy_independent);
    ("prng: split diverges", `Quick, test_split_diverges);
    ("prng: int range", `Quick, test_int_range);
    ("prng: int covers values", `Quick, test_int_covers_all_values);
    ("prng: int_in range", `Quick, test_int_in);
    ("prng: float range", `Quick, test_float_range);
    ("prng: float_open in (0,1]", `Quick, test_float_open);
    ("prng: uniformity", `Quick, test_uniformity);
    ("prng: shuffle permutes", `Quick, test_shuffle_permutes);
    ("prng: choose", `Quick, test_choose);
  ]
