open Pj_util

let test_time_returns_result () =
  let r, dt = Timing.time (fun () -> 21 * 2) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "non-negative" true (dt >= 0.)

let test_measure () =
  let m = Timing.measure ~repetitions:5 (fun () -> ignore (Sys.opaque_identity (Array.make 100 0))) in
  Alcotest.(check int) "repetitions" 5 m.Timing.repetitions;
  Alcotest.(check bool) "mean non-negative" true (m.Timing.mean_s >= 0.);
  Alcotest.(check bool) "cov non-negative" true (m.Timing.cov >= 0.)

let test_pp () =
  let m = Timing.measure ~repetitions:2 (fun () -> ()) in
  let s = Format.asprintf "%a" Timing.pp_measurement m in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let suite =
  [
    ("timing: time", `Quick, test_time_returns_result);
    ("timing: measure", `Quick, test_measure);
    ("timing: pp", `Quick, test_pp);
  ]
