open Pj_util

let test_membership () =
  let s = Subset.add 3 (Subset.add 0 Subset.empty) in
  Alcotest.(check bool) "mem 0" true (Subset.mem 0 s);
  Alcotest.(check bool) "mem 3" true (Subset.mem 3 s);
  Alcotest.(check bool) "mem 1" false (Subset.mem 1 s)

let test_remove () =
  let s = Subset.full 4 in
  let s' = Subset.remove 2 s in
  Alcotest.(check bool) "removed" false (Subset.mem 2 s');
  Alcotest.(check int) "cardinal" 3 (Subset.cardinal s')

let test_full () =
  Alcotest.(check int) "full cardinal" 5 (Subset.cardinal (Subset.full 5));
  Alcotest.(check bool) "empty is empty" true (Subset.is_empty (Subset.full 0))

let test_elements () =
  let s = Subset.add 4 (Subset.add 1 Subset.empty) in
  Alcotest.(check (list int)) "elements sorted" [ 1; 4 ] (Subset.elements s)

let test_iter_nonempty_count () =
  let count = ref 0 in
  Subset.iter_nonempty 4 (fun _ -> incr count);
  Alcotest.(check int) "2^4 - 1 subsets" 15 !count

let test_iter_by_decreasing_size () =
  let sizes = ref [] in
  Subset.iter_by_decreasing_size 3 (fun s -> sizes := Subset.cardinal s :: !sizes);
  let sizes = List.rev !sizes in
  Alcotest.(check int) "count" 7 (List.length sizes);
  (* Non-increasing cardinalities. *)
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "decreasing sizes" true (non_increasing sizes)

let test_singleton () =
  Alcotest.(check int) "cardinal" 1 (Subset.cardinal (Subset.singleton 7));
  Alcotest.(check bool) "mem" true (Subset.mem 7 (Subset.singleton 7))

let suite =
  [
    ("subset: membership", `Quick, test_membership);
    ("subset: remove", `Quick, test_remove);
    ("subset: full", `Quick, test_full);
    ("subset: elements", `Quick, test_elements);
    ("subset: iter_nonempty count", `Quick, test_iter_nonempty_count);
    ("subset: decreasing-size order", `Quick, test_iter_by_decreasing_size);
    ("subset: singleton", `Quick, test_singleton);
  ]
