open Pj_qa

let corpus_of texts =
  let c = Pj_index.Corpus.create () in
  List.iter (fun t -> ignore (Pj_index.Corpus.add_text c t)) texts;
  c

let test_simple_place_answer () =
  let corpus =
    corpus_of
      [
        "the lebanese parliament sits in beirut near the waterfront";
        "lebanon has many cities and a parliament with many members";
        "the parliament of another nation is in vienna";
        "beirut is a port city";
      ]
  in
  let t = Answerer.create corpus in
  match Answerer.ask t "In what city is the lebanese parliament located?" with
  | best :: _ ->
      Alcotest.(check string) "beirut extracted" "beirut"
        best.Answerer.answer_word;
      Alcotest.(check bool) "doc 0 supports" true
        (List.mem 0 best.Answerer.documents)
  | [] -> Alcotest.fail "no answer"

let test_aggregation_prefers_repeated_answer () =
  (* "london" is supported by two tight contexts, "paris" by one. *)
  let corpus =
    corpus_of
      [
        "hitchcock was born in london in a small flat";
        "alfred hitchcock the director born and raised in london";
        "some say hitchcock was born in paris but that is wrong";
      ]
  in
  let t = Answerer.create corpus in
  match Answerer.ask t "Where was Alfred Hitchcock born?" with
  | best :: _ ->
      Alcotest.(check string) "london wins" "london" best.Answerer.answer_word;
      Alcotest.(check int) "two supporters" 2
        (List.length best.Answerer.documents)
  | [] -> Alcotest.fail "no answer"

let test_time_answer () =
  let corpus =
    corpus_of
      [
        "prince edward married in june 1999 at windsor";
        "the prince attended a sports event in 2003";
      ]
  in
  let t = Answerer.create corpus in
  match Answerer.ask t "When did Prince Edward marry?" with
  | best :: _ ->
      Alcotest.(check bool)
        ("answer is a date: " ^ best.Answerer.answer_word)
        true
        (List.mem best.Answerer.answer_word [ "june"; "1999" ])
  | [] -> Alcotest.fail "no answer"

let test_no_answer () =
  let corpus = corpus_of [ "nothing about the topic here" ] in
  let t = Answerer.create corpus in
  Alcotest.(check int) "no answers" 0
    (List.length (Answerer.ask t "Where was Alfred Hitchcock born?"))

let test_k_limits () =
  let corpus =
    corpus_of
      [
        "hitchcock born in london";
        "hitchcock born in paris";
        "hitchcock born in vienna";
      ]
  in
  let t = Answerer.create corpus in
  Alcotest.(check int) "k=2" 2
    (List.length (Answerer.ask ~k:2 t "Where was Alfred Hitchcock born?"))

let test_question_of_inspection () =
  let t = Answerer.create (corpus_of [ "x" ]) in
  let q, query = Answerer.question_of t "Where was Hitchcock born?" in
  Alcotest.(check string) "target" "place" (Question.target_name q.Question.target);
  Alcotest.(check bool) "query built" true (Pj_matching.Query.n_terms query >= 2)

let suite =
  [
    ("answerer: place answer", `Quick, test_simple_place_answer);
    ("answerer: aggregation", `Quick, test_aggregation_prefers_repeated_answer);
    ("answerer: time answer", `Quick, test_time_answer);
    ("answerer: no answer", `Quick, test_no_answer);
    ("answerer: k limit", `Quick, test_k_limits);
    ("answerer: question_of", `Quick, test_question_of_inspection);
  ]
