open Pj_qa

let check_target name text expected =
  Alcotest.(check string)
    name
    (Question.target_name expected)
    (Question.target_name (Question.analyze text).Question.target)

let test_classification () =
  check_target "who" "Who invented dental floss?" Question.Person;
  check_target "where" "Where was Alfred Hitchcock born?" Question.Place;
  check_target "when" "When did Prince Edward marry?" Question.Time;
  check_target "what year" "What year did the games begin?" Question.Time;
  check_target "what city" "In what city is the parliament located?"
    Question.Place;
  check_target "which country" "Which country built Stonehenge?" Question.Place;
  check_target "what plain" "What does Lenovo sell?" Question.Thing

let test_content_words () =
  let q = Question.analyze "Where was Alfred Hitchcock born?" in
  Alcotest.(check (list string)) "content" [ "alfred"; "hitchcock"; "born" ]
    q.Question.content_words;
  let q2 = Question.analyze "In what city is the Lebanese parliament located?" in
  Alcotest.(check bool) "type word removed" true
    (not (List.mem "city" q2.Question.content_words));
  Alcotest.(check bool) "content kept" true
    (List.mem "parliament" q2.Question.content_words)

let test_to_query_shapes () =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let q = Question.analyze "Where was Hitchcock born?" in
  let query = Question.to_query graph q in
  (* Target + hitchcock + born. *)
  Alcotest.(check int) "terms" 3 (Pj_matching.Query.n_terms query);
  let target = query.Pj_matching.Query.matchers.(0) in
  Alcotest.(check bool) "target matches a city" true
    (target.Pj_matching.Matcher.score_token "london" <> None)

let test_time_target_matches_dates_and_years () =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let q = Question.analyze "When did Prince Edward marry?" in
  let query = Question.to_query graph q in
  let target = query.Pj_matching.Query.matchers.(0) in
  Alcotest.(check bool) "month" true
    (target.Pj_matching.Matcher.score_token "june" <> None);
  Alcotest.(check bool) "year" true
    (target.Pj_matching.Matcher.score_token "1999" <> None)

let test_thing_uses_first_content_word () =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let q = Question.analyze "What partnership did Lenovo announce?" in
  let query = Question.to_query graph q in
  let target = query.Pj_matching.Query.matchers.(0) in
  Alcotest.(check bool) "partnership expansion" true
    (target.Pj_matching.Matcher.score_token "deal" <> None)

let suite =
  [
    ("question: classification", `Quick, test_classification);
    ("question: content words", `Quick, test_content_words);
    ("question: query shape", `Quick, test_to_query_shapes);
    ("question: time target", `Quick, test_time_target_matches_dates_and_years);
    ("question: thing target", `Quick, test_thing_uses_first_content_word);
  ]
