test/qa/test_answerer.ml: Alcotest Answerer List Pj_index Pj_matching Pj_qa Question
