test/qa/main.ml: Alcotest Test_answerer Test_question
