test/qa/test_question.ml: Alcotest Array List Pj_matching Pj_ontology Pj_qa Question
