test/qa/main.mli:
