let () =
  Alcotest.run "proxjoin.qa"
    [ ("question", Test_question.suite); ("answerer", Test_answerer.suite) ]
