open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let check_float = Alcotest.(check (float 1e-9))

let test_window () =
  Alcotest.(check int) "window" 7 (Matchset.window [| m 3; m 10; m 5 |]);
  Alcotest.(check int) "window singleton" 0 (Matchset.window [| m 4 |])

let test_median_odd () =
  (* floor((3+1)/2) = 2nd greatest of {3,10,5} = 5 *)
  Alcotest.(check int) "median odd" 5 (Matchset.median_loc [| m 3; m 10; m 5 |])

let test_median_even () =
  (* floor((4+1)/2) = 2nd greatest of {1,9,4,6} = 6 *)
  Alcotest.(check int) "median even" 6
    (Matchset.median_loc [| m 1; m 9; m 4; m 6 |])

let test_median_pair () =
  (* floor((2+1)/2) = 1st greatest = the larger location *)
  Alcotest.(check int) "median pair" 9 (Matchset.median_loc [| m 2; m 9 |])

let test_median_ties () =
  Alcotest.(check int) "median ties" 5 (Matchset.median_loc [| m 5; m 5; m 2 |])

let test_validity () =
  Alcotest.(check bool) "valid" true (Matchset.is_valid [| m 1; m 2 |]);
  Alcotest.(check bool) "duplicate" false
    (Matchset.is_valid [| m ~score:0.4 3; m ~score:0.9 3 |])

let test_win_exponential () =
  (* Eq. (1): (prod scores) * exp (-alpha * window). *)
  let w = Scoring.win_exponential ~alpha:0.1 in
  let ms = [| m ~score:0.5 0; m ~score:0.8 4 |] in
  check_float "win exp" (0.5 *. 0.8 *. exp (-0.4)) (Scoring.score_win w ms)

let test_win_linear () =
  let ms = [| m ~score:0.3 2; m ~score:0.6 7 |] in
  check_float "win linear"
    ((0.3 /. 0.3) +. (0.6 /. 0.3) -. 5.)
    (Scoring.score_win Scoring.win_linear ms)

let test_med_exponential () =
  (* Eq. (3): prod (score_j * exp (-alpha |loc_j - median|)). *)
  let d = Scoring.med_exponential ~alpha:0.2 in
  let ms = [| m ~score:0.5 0; m ~score:0.8 4; m ~score:1.0 6 |] in
  (* median = 4; distances 4, 0, 2. *)
  let expected =
    0.5 *. exp (-0.2 *. 4.) *. (0.8 *. exp 0.) *. (1.0 *. exp (-0.2 *. 2.))
  in
  check_float "med exp" expected (Scoring.score_med d ms)

let test_med_linear () =
  let ms = [| m ~score:0.3 1; m ~score:0.9 5; m ~score:0.6 8 |] in
  (* median = 5; contributions: 1 - 4, 3 - 0, 2 - 3. *)
  check_float "med linear" (1. -. 4. +. 3. +. (2. -. 3.))
    (Scoring.score_med Scoring.med_linear ms)

let test_max_sum () =
  (* Eq. (5) on a pair: best reference point is a member location. *)
  let x = Scoring.max_sum ~alpha:0.1 in
  let ms = [| m ~score:0.9 0; m ~score:0.2 10 |] in
  let at0 = 0.9 +. (0.2 *. exp (-1.)) in
  let at10 = (0.9 *. exp (-1.)) +. 0.2 in
  check_float "max sum at 0" at0 (Scoring.score_max_at x ms ~at:0);
  check_float "max sum" (Float.max at0 at10) (Scoring.score_max x ms)

let test_max_product () =
  let x = Scoring.max_product ~alpha:0.1 in
  let ms = [| m ~score:0.9 0; m ~score:0.2 10 |] in
  (* Under the product form, any l between the two matches gives the same
     score exp (ln 0.9 + ln 0.2 - alpha * 10): the total distance to the
     two ends is constant inside the window. *)
  let expected = 0.9 *. 0.2 *. exp (-1.) in
  check_float "max product" expected (Scoring.score_max x ms)

let test_max_anchor_prefers_heavy () =
  (* MAX anchors near the high-scoring match: with a heavy match at 0,
     the score at 0 beats the score at the light match. *)
  let x = Scoring.max_sum ~alpha:0.5 in
  let ms = [| m ~score:1.0 0; m ~score:0.1 6 |] in
  let at_heavy = Scoring.score_max_at x ms ~at:0 in
  let at_light = Scoring.score_max_at x ms ~at:6 in
  Alcotest.(check bool) "anchored at heavy" true (at_heavy > at_light)

let test_fig2_med_distinguishes () =
  (* Figure 2: equal windows, different clusteredness. WIN cannot tell
     the two matchsets apart; MED scores the clustered one higher. *)
  let spread = [| m 0; m 4; m 8; m 12 |] in
  let clustered = [| m 0; m 10; m 11; m 12 |] in
  let w = Scoring.win_exponential ~alpha:0.1 in
  let d = Scoring.med_exponential ~alpha:0.1 in
  Alcotest.(check bool) "same window" true
    (Matchset.window spread = Matchset.window clustered);
  check_float "win equal" (Scoring.score_win w spread)
    (Scoring.score_win w clustered);
  Alcotest.(check bool) "med prefers clustered" true
    (Scoring.score_med d clustered > Scoring.score_med d spread)

let suite =
  [
    ("matchset: window", `Quick, test_window);
    ("matchset: median odd", `Quick, test_median_odd);
    ("matchset: median even", `Quick, test_median_even);
    ("matchset: median pair", `Quick, test_median_pair);
    ("matchset: median ties", `Quick, test_median_ties);
    ("matchset: validity", `Quick, test_validity);
    ("scoring: WIN exponential (Eq 1)", `Quick, test_win_exponential);
    ("scoring: WIN linear (footnote 9)", `Quick, test_win_linear);
    ("scoring: MED exponential (Eq 3)", `Quick, test_med_exponential);
    ("scoring: MED linear (footnote 9)", `Quick, test_med_linear);
    ("scoring: MAX sum (Eq 5)", `Quick, test_max_sum);
    ("scoring: MAX product (Eq 4)", `Quick, test_max_product);
    ("scoring: MAX anchors near heavy match", `Quick, test_max_anchor_prefers_heavy);
    ("scoring: Fig 2 MED vs WIN", `Quick, test_fig2_med_distinguishes);
  ]
