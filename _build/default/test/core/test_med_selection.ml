open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let opt c loc = Some (c, m loc)

let test_singleton_query () =
  (* n = 1: no other terms, trivially feasible. *)
  match Med_selection.select 1 [||] with
  | Some picks -> Alcotest.(check int) "no picks" 0 (Array.length picks)
  | None -> Alcotest.fail "expected feasibility"

let test_pair_needs_left () =
  (* n = 2: the median is the larger location, so the anchor member must
     be last — the other term can only sit at or before the anchor. *)
  let only_right =
    { Med_selection.left = None; at = None; right = opt 5. 9 }
  in
  Alcotest.(check bool) "right-only infeasible" true
    (Med_selection.select 2 [| only_right |] = None);
  let only_left =
    { Med_selection.left = opt 2. 1; at = None; right = None }
  in
  (match Med_selection.select 2 [| only_left |] with
  | Some picks -> Alcotest.(check int) "left pick" 1 picks.(0).Match0.loc
  | None -> Alcotest.fail "left-only must be feasible");
  let at_option = { Med_selection.left = None; at = opt 3. 4; right = None } in
  match Med_selection.select 2 [| at_option |] with
  | Some _ -> ()
  | None -> Alcotest.fail "at-anchor must be feasible"

let test_three_terms_needs_structure () =
  (* n = 3, mr = 2: exactly one of the two others strictly after, or an
     at-anchor member filling the upper rank. *)
  let left = { Med_selection.left = opt 1. 0; at = None; right = None } in
  let right = { Med_selection.left = None; at = None; right = opt 1. 9 } in
  (match Med_selection.select 3 [| left; right |] with
  | Some picks ->
      Alcotest.(check int) "left pick" 0 picks.(0).Match0.loc;
      Alcotest.(check int) "right pick" 9 picks.(1).Match0.loc
  | None -> Alcotest.fail "left+right must be feasible");
  (* Two left-only options: 0 rights, 0 ats + anchor = rank 1 < mr 2:
     infeasible. *)
  Alcotest.(check bool) "two lefts infeasible" true
    (Med_selection.select 3 [| left; left |] = None)

let test_maximizes_contribution () =
  (* Both assignments feasible; the bigger total must win. *)
  let both_small =
    { Med_selection.left = opt 1. 0; at = None; right = opt 0.5 9 }
  in
  let both_big =
    { Med_selection.left = opt 0.2 1; at = None; right = opt 4. 8 }
  in
  match Med_selection.select 3 [| both_small; both_big |] with
  | Some picks ->
      (* Optimal: term0 left (1.0) + term1 right (4.0) = 5.0. *)
      Alcotest.(check int) "term0 left" 0 picks.(0).Match0.loc;
      Alcotest.(check int) "term1 right" 8 picks.(1).Match0.loc
  | None -> Alcotest.fail "expected feasibility"

let test_at_counts_toward_upper_ranks () =
  (* n = 4, mr = 2: one strict right OR one at-anchor plus anchor. *)
  let at_opt = { Med_selection.left = None; at = opt 1. 5; right = None } in
  let left = { Med_selection.left = opt 1. 2; at = None; right = None } in
  match Med_selection.select 4 [| at_opt; left; left |] with
  | Some _ -> ()
  | None -> Alcotest.fail "at-anchor member should satisfy the rank condition"

let suite =
  [
    ("med_selection: singleton", `Quick, test_singleton_query);
    ("med_selection: pair sides", `Quick, test_pair_needs_left);
    ("med_selection: three terms", `Quick, test_three_terms_needs_structure);
    ("med_selection: maximizes", `Quick, test_maximizes_contribution);
    ("med_selection: at ranks", `Quick, test_at_counts_toward_upper_ranks);
  ]
