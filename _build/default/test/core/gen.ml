(* Random problem generators and comparison helpers shared by the core
   test suites. Scores are drawn from a small grid of multiples of 0.05
   so that score ties actually occur and exercise the tie-breaking
   logic. *)

open Pj_core

let score_grid = Array.init 20 (fun i -> 0.05 *. float_of_int (i + 1))

let match_gen ~max_loc =
  QCheck.Gen.(
    map2
      (fun loc si -> Match0.make ~loc ~score:score_grid.(si) ())
      (int_range 0 max_loc)
      (int_range 0 (Array.length score_grid - 1)))

let list_gen ~max_len ~max_loc =
  QCheck.Gen.(
    map
      (fun ms -> Match_list.of_unsorted (Array.of_list ms))
      (list_size (int_range 0 max_len) (match_gen ~max_loc)))

let nonempty_list_gen ~max_len ~max_loc =
  QCheck.Gen.(
    map
      (fun ms -> Match_list.of_unsorted (Array.of_list ms))
      (list_size (int_range 1 max_len) (match_gen ~max_loc)))

let problem_gen ?(min_terms = 1) ?(max_terms = 4) ?(max_len = 6) ?(max_loc = 25)
    ?(allow_empty = true) () =
  QCheck.Gen.(
    int_range min_terms max_terms >>= fun n ->
    let lg =
      if allow_empty then list_gen ~max_len ~max_loc
      else nonempty_list_gen ~max_len ~max_loc
    in
    map Array.of_list (list_repeat n lg))

let pp_problem p = Format.asprintf "%a" Match_list.pp p

let problem_arb ?min_terms ?max_terms ?max_len ?max_loc ?allow_empty () =
  QCheck.make ~print:pp_problem
    (problem_gen ?min_terms ?max_terms ?max_len ?max_loc ?allow_empty ())

let float_close ?(tol = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tol *. scale

(* Compare an optional fast result against the naive oracle on the score
   (matchsets may differ when several attain the optimum) and check that
   the reported score is the definitional score of the reported
   matchset. *)
let agree_with_oracle scoring fast oracle =
  match (fast, oracle) with
  | None, None -> true
  | Some _, None | None, Some _ -> false
  | Some (f : Naive.result), Some (o : Naive.result) ->
      float_close f.score o.score
      && float_close f.score (Scoring.score scoring f.matchset)

let qtest ?(count = 500) ~name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)
