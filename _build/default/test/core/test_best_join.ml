open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let test_switch_heuristic () =
  Alcotest.(check bool) "skewed input switches" true
    (Best_join.switch_to_naive [| [| m 1; m 2; m 3 |]; [| m 4 |]; [| m 5 |] |]);
  Alcotest.(check bool) "two fat lists do not" false
    (Best_join.switch_to_naive [| [| m 1; m 2 |]; [| m 4; m 6 |] |])

let scorings =
  [
    Scoring.Win (Scoring.win_exponential ~alpha:0.1);
    Scoring.Med (Scoring.med_exponential ~alpha:0.2);
    Scoring.Max (Scoring.max_sum ~alpha:0.1);
  ]

let solve_agrees_across_algorithms scoring =
  Gen.qtest ~count:200
    ~name:
      (Printf.sprintf "solve Fast = Naive_alg = Auto [%s]" (Scoring.name scoring))
    (Gen.problem_arb ~max_terms:3 ~max_len:5 ())
    (fun p ->
      let get a = Best_join.solve ~algorithm:a scoring p in
      match (get Best_join.Fast, get Best_join.Naive_alg, get Best_join.Auto) with
      | None, None, None -> true
      | Some a, Some b, Some c ->
          Gen.float_close a.Naive.score b.Naive.score
          && Gen.float_close b.Naive.score c.Naive.score
      | _ -> false)

let dedup_flag_gives_valid scoring =
  Gen.qtest ~count:200
    ~name:(Printf.sprintf "solve ~dedup returns valid [%s]" (Scoring.name scoring))
    (Gen.problem_arb ~min_terms:2 ~max_terms:3 ~max_len:4 ~max_loc:5 ())
    (fun p ->
      match Best_join.solve ~dedup:true scoring p with
      | None -> true
      | Some r -> Matchset.is_valid r.Naive.matchset)

let test_stats_exposed () =
  let scoring = Scoring.Win (Scoring.win_exponential ~alpha:0.1) in
  let p = [| [| m 3; m ~score:0.2 9 |]; [| m 3; m ~score:0.2 10 |]; [| m 3; m ~score:0.2 8 |] |] in
  let _, stats = Best_join.solve_with_stats scoring p in
  Alcotest.(check bool) "reran" true (stats.Dedup.invocations >= 2)

let test_by_location_dispatch () =
  let p = [| [| m 1; m 5 |]; [| m 2 |] |] in
  List.iter
    (fun scoring ->
      Alcotest.(check bool)
        (Printf.sprintf "by_location non-empty [%s]" (Scoring.name scoring))
        true
        (Best_join.by_location scoring p <> []))
    scorings

let suite =
  [
    ("best_join: switch heuristic", `Quick, test_switch_heuristic);
    ("best_join: dedup stats exposed", `Quick, test_stats_exposed);
    ("best_join: by_location dispatch", `Quick, test_by_location_dispatch);
  ]
  @ List.map solve_agrees_across_algorithms scorings
  @ List.map dedup_flag_gives_valid scorings
