open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let instances = [ Scoring.win_exponential ~alpha:0.1; Scoring.win_linear ]

(* Oracle: enumerate the cross product, dedupe by matchset membership
   (a list can contain two identical matches, which denote the same
   matchset), and take the k best scores. *)
let oracle_scores ~k w p =
  let seen = Hashtbl.create 64 in
  Naive.iter_matchsets p (fun ms ->
      let key =
        Array.to_list ms
        |> List.map (fun x -> (x.Match0.loc, x.Match0.score, x.Match0.payload))
        |> List.sort compare
      in
      if not (Hashtbl.mem seen key) then
        Hashtbl.add seen key (Scoring.score_win w ms));
  Hashtbl.fold (fun _ s acc -> s :: acc) seen []
  |> List.sort (fun a b -> compare b a)
  |> List.filteri (fun i _ -> i < k)

let topk_matches_oracle w =
  Gen.qtest ~count:400
    ~name:(Printf.sprintf "best_k = oracle top-k [%s]" w.Scoring.win_name)
    (QCheck.pair (QCheck.int_range 1 6)
       (Gen.problem_arb ~max_terms:3 ~max_len:4 ~max_loc:15 ()))
    (fun (k, p) ->
      let got = Win_topk.best_k ~k w p in
      let expected = oracle_scores ~k w p in
      List.length got = List.length expected
      && List.for_all2
           (fun (r : Naive.result) s -> Gen.float_close r.Naive.score s)
           got expected
      (* Results are distinct matchsets. *)
      && begin
           let keys =
             List.map
               (fun (r : Naive.result) ->
                 Array.to_list r.Naive.matchset
                 |> List.map (fun x -> (x.Match0.loc, x.Match0.score))
                 |> List.sort compare)
               got
           in
           List.length (List.sort_uniq compare keys) = List.length keys
         end)

let top1_equals_best w =
  Gen.qtest ~count:300
    ~name:(Printf.sprintf "best_k 1 = Win.best [%s]" w.Scoring.win_name)
    (Gen.problem_arb ~max_terms:4 ~max_len:5 ())
    (fun p ->
      match (Win_topk.best_k ~k:1 w p, Win.best w p) with
      | [], None -> true
      | [ r ], Some b -> Gen.float_close r.Naive.score b.Naive.score
      | _ -> false)

let test_fewer_than_k () =
  let w = Scoring.win_linear in
  let p = [| [| m 1; m 4 |]; [| m 2 |] |] in
  (* Only two matchsets exist. *)
  Alcotest.(check int) "all returned" 2 (List.length (Win_topk.best_k ~k:10 w p))

let test_k_zero_and_negative () =
  let w = Scoring.win_linear in
  let p = [| [| m 1 |] |] in
  Alcotest.(check int) "k=0" 0 (List.length (Win_topk.best_k ~k:0 w p));
  Alcotest.check_raises "negative" (Invalid_argument "Win_topk.best_k: negative k")
    (fun () -> ignore (Win_topk.best_k ~k:(-2) w p))

let test_descending_order () =
  let w = Scoring.win_exponential ~alpha:0.2 in
  let p = [| [| m 0; m 5; m 9 |]; [| m 1; m 6 |] |] in
  let results = Win_topk.best_k ~k:6 w p in
  let rec desc = function
    | (a : Naive.result) :: (b :: _ as rest) ->
        a.Naive.score >= b.Naive.score && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (desc results)

let suite =
  [
    ("win_topk: fewer than k", `Quick, test_fewer_than_k);
    ("win_topk: edge k", `Quick, test_k_zero_and_negative);
    ("win_topk: descending", `Quick, test_descending_order);
  ]
  @ List.map topk_matches_oracle instances
  @ List.map top1_equals_best instances
