open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let test_of_unsorted () =
  let l = Match_list.of_unsorted [| m 9; m 2; m 5 |] in
  Alcotest.(check bool) "sorted" true (Match_list.is_sorted l);
  Alcotest.(check int) "first" 2 l.(0).Match0.loc

let test_validate_rejects_unsorted () =
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Match_list.validate: list 0 unsorted") (fun () ->
      Match_list.validate [| [| m 5; m 2 |] |])

let test_validate_rejects_empty_problem () =
  Alcotest.check_raises "no term rejected"
    (Invalid_argument "Match_list.validate: no query term") (fun () ->
      Match_list.validate [||])

let test_total_size () =
  Alcotest.(check int) "total" 3
    (Match_list.total_size [| [| m 1; m 2 |]; [| m 3 |] |])

let test_duplicates () =
  let p = [| [| m 1; m 4 |]; [| m 4; m 9 |]; [| m 2 |] |] in
  Alcotest.(check int) "duplicate count" 2 (Match_list.duplicate_count p);
  Alcotest.(check (float 1e-9)) "duplicate frequency" 0.4
    (Match_list.duplicate_frequency p)

let test_no_duplicates_within_one_list () =
  (* Two matches at the same location in the same list are not
     duplicates in the Section VI sense. *)
  let p = [| [| m 4; m 4 |]; [| m 9 |] |] in
  Alcotest.(check int) "same-list collision not counted" 0
    (Match_list.duplicate_count p)

let test_iter_in_location_order () =
  let p = [| [| m 1; m 7 |]; [| m 3 |]; [| m 2; m 9 |] |] in
  let seen = ref [] in
  Match_list.iter_in_location_order p (fun ~term:_ x ->
      seen := x.Match0.loc :: !seen);
  Alcotest.(check (list int)) "merged order" [ 1; 2; 3; 7; 9 ] (List.rev !seen)

let test_iter_colocated_deterministic () =
  let p = [| [| m ~score:0.5 4 |]; [| m ~score:0.2 4 |] |] in
  let seen = ref [] in
  Match_list.iter_in_location_order p (fun ~term x ->
      seen := (term, x.Match0.score) :: !seen);
  (* Lower score first; term index breaks exact ties. *)
  Alcotest.(check (list (pair int (float 0.)))) "deterministic tie order"
    [ (1, 0.2); (0, 0.5) ]
    (List.rev !seen)

let test_locations () =
  let p = [| [| m 1; m 7 |]; [| m 7 |]; [| m 2 |] |] in
  Alcotest.(check (array int)) "distinct sorted" [| 1; 2; 7 |]
    (Match_list.locations p)

let test_remove_match () =
  let a = m ~score:0.5 4 in
  let p = [| [| m 1; a; m 9 |]; [| m 2 |] |] in
  let p' = Match_list.remove_match p ~term:0 a in
  Alcotest.(check int) "one removed" 3 (Match_list.total_size p');
  Alcotest.(check int) "other list untouched" 1 (Array.length p'.(1));
  Alcotest.(check bool) "original unchanged" true (Array.length p.(0) = 3)

let test_remove_match_missing () =
  let p = [| [| m 1 |] |] in
  Alcotest.check_raises "missing match rejected"
    (Invalid_argument "Match_list.remove_match: match not present") (fun () ->
      ignore (Match_list.remove_match p ~term:0 (m 5)))

let merged_order_is_sorted =
  Gen.qtest ~count:300 ~name:"merged iteration is location-sorted and complete"
    (Gen.problem_arb ())
    (fun p ->
      let count = ref 0 in
      let last = ref min_int in
      let ok = ref true in
      Match_list.iter_in_location_order p (fun ~term:_ x ->
          incr count;
          if x.Match0.loc < !last then ok := false;
          last := x.Match0.loc);
      !ok && !count = Match_list.total_size p)

let suite =
  [
    ("match_list: of_unsorted", `Quick, test_of_unsorted);
    ("match_list: validate unsorted", `Quick, test_validate_rejects_unsorted);
    ("match_list: validate empty problem", `Quick, test_validate_rejects_empty_problem);
    ("match_list: total size", `Quick, test_total_size);
    ("match_list: duplicates", `Quick, test_duplicates);
    ("match_list: same-list collisions", `Quick, test_no_duplicates_within_one_list);
    ("match_list: merged iteration", `Quick, test_iter_in_location_order);
    ("match_list: co-located tie order", `Quick, test_iter_colocated_deterministic);
    ("match_list: locations", `Quick, test_locations);
    ("match_list: remove match", `Quick, test_remove_match);
    ("match_list: remove missing", `Quick, test_remove_match_missing);
    merged_order_is_sorted;
  ]
