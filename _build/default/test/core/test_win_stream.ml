open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let w = Scoring.win_exponential ~alpha:0.2

let test_incremental_emission () =
  (* Results must appear as soon as their location closes, one per
     location that anchors a matchset. *)
  let t = Win_stream.create w ~n_terms:2 in
  Alcotest.(check bool) "nothing yet" true (Win_stream.feed t ~term:0 (m 1) = None);
  Alcotest.(check bool) "still nothing (no full matchset before 1)" true
    (Win_stream.feed t ~term:1 (m 3) = None);
  (match Win_stream.feed t ~term:0 (m 5) with
  | Some e ->
      Alcotest.(check int) "anchor 3 emitted" 3 e.Anchored.anchor;
      Alcotest.(check int) "window 2" 2 (Matchset.window e.Anchored.matchset)
  | None -> Alcotest.fail "expected emission when location 3 closed");
  match Win_stream.finish t with
  | Some e -> Alcotest.(check int) "final anchor" 5 e.Anchored.anchor
  | None -> Alcotest.fail "expected final emission"

let test_colocated_group_buffered () =
  (* Two matches at the same location must be combined before emission:
     the matchset {a@4, b@4} has window 0. *)
  let t = Win_stream.create w ~n_terms:2 in
  ignore (Win_stream.feed t ~term:0 (m 4));
  ignore (Win_stream.feed t ~term:1 (m 4));
  match Win_stream.finish t with
  | Some e ->
      Alcotest.(check int) "anchor" 4 e.Anchored.anchor;
      Alcotest.(check int) "window 0" 0 (Matchset.window e.Anchored.matchset)
  | None -> Alcotest.fail "expected emission"

let test_out_of_order_rejected () =
  let t = Win_stream.create w ~n_terms:1 in
  ignore (Win_stream.feed t ~term:0 (m 5));
  Alcotest.check_raises "regression rejected"
    (Invalid_argument "Win_stream.feed: locations must be non-decreasing")
    (fun () -> ignore (Win_stream.feed t ~term:0 (m 4)))

let test_bad_term_rejected () =
  let t = Win_stream.create w ~n_terms:2 in
  Alcotest.check_raises "bad term"
    (Invalid_argument "Win_stream.feed: bad term index") (fun () ->
      ignore (Win_stream.feed t ~term:2 (m 1)))

let test_finish_twice_rejected () =
  let t = Win_stream.create w ~n_terms:1 in
  ignore (Win_stream.finish t);
  Alcotest.check_raises "finished stream"
    (Invalid_argument "Win_stream.finish: stream is finished") (fun () ->
      ignore (Win_stream.finish t))

let run_equals_by_location =
  Gen.qtest ~count:400 ~name:"Win_stream.run = By_location.win"
    (Gen.problem_arb ~max_terms:3 ~max_len:5 ~max_loc:12 ())
    (fun p ->
      let a = Win_stream.run w p and b = By_location.win w p in
      List.length a = List.length b
      && List.for_all2
           (fun (x : Anchored.entry) (y : Anchored.entry) ->
             x.Anchored.anchor = y.Anchored.anchor
             && Gen.float_close x.Anchored.score y.Anchored.score)
           a b)

let state_size_is_input_independent () =
  (* Streaming claim: state does not grow with the input. We approximate
     this by feeding a long stream and checking emissions stay timely
     (every location < current is already emitted). *)
  let t = Win_stream.create w ~n_terms:2 in
  let emitted = ref 0 in
  for l = 0 to 4999 do
    let term = l mod 2 in
    match Win_stream.feed t ~term (m l) with
    | Some _ -> incr emitted
    | None -> ()
  done;
  ignore (Win_stream.finish t);
  (* Every location from 1 on anchors a matchset (both lists populated
     below it); the first can not. *)
  Alcotest.(check bool)
    (Printf.sprintf "emitted %d of 5000" !emitted)
    true
    (!emitted >= 4998)

let suite =
  [
    ("win_stream: incremental emission", `Quick, test_incremental_emission);
    ("win_stream: co-located group", `Quick, test_colocated_group_buffered);
    ("win_stream: out of order", `Quick, test_out_of_order_rejected);
    ("win_stream: bad term", `Quick, test_bad_term_rejected);
    ("win_stream: finish twice", `Quick, test_finish_twice_rejected);
    run_equals_by_location;
    ("win_stream: long stream emits timely", `Quick, state_size_is_input_independent);
  ]
