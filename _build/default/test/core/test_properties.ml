open Pj_core

(* Structural properties the paper relies on, checked by qcheck. *)

let matchset_gen ~n ~max_loc =
  QCheck.Gen.(
    map Array.of_list (list_repeat n (Gen.match_gen ~max_loc)))

let matchset_arb ~n ~max_loc =
  QCheck.make
    ~print:(fun m -> Format.asprintf "%a" Matchset.pp m)
    (matchset_gen ~n ~max_loc)

(* Section VIII: "for queries with three terms or less, the scoring
   functions WIN and MED are actually identical" — for the footnote-9
   instances, whose g's agree and whose f's are both linear. *)
let win_equals_med_small n =
  Gen.qtest ~count:500
    ~name:(Printf.sprintf "WIN-linear = MED-linear at %d terms" n)
    (matchset_arb ~n ~max_loc:30)
    (fun m ->
      Gen.float_close
        (Scoring.score_win Scoring.win_linear m)
        (Scoring.score_med Scoring.med_linear m))

let win_differs_from_med_at_four =
  (* At 4+ terms the equality genuinely breaks (Figure 2's point). *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000
       ~name:"WIN-linear <> MED-linear somewhere at 4 terms"
       (QCheck.make (QCheck.Gen.return ()))
       (fun () ->
         let m =
           [|
             Match0.make ~loc:0 ~score:1. ();
             Match0.make ~loc:10 ~score:1. ();
             Match0.make ~loc:11 ~score:1. ();
             Match0.make ~loc:12 ~score:1. ();
           |]
         in
         not
           (Gen.float_close
              (Scoring.score_win Scoring.win_linear m)
              (Scoring.score_med Scoring.med_linear m))))

(* Definition 3's required properties of the shipped WIN instances. *)
let win_instance_properties w =
  Gen.qtest ~count:500
    ~name:(Printf.sprintf "WIN instance properties [%s]" w.Scoring.win_name)
    QCheck.(
      quad (float_bound_exclusive 1.) (float_bound_exclusive 1.)
        (int_bound 40) (int_bound 40))
    (fun (s1, s2, y1, y2) ->
      let s1 = Float.max 0.01 s1 and s2 = Float.max 0.01 s2 in
      let x1 = w.Scoring.win_g 0 s1 and x2 = w.Scoring.win_g 0 s2 in
      let lo_x = Float.min x1 x2 and hi_x = Float.max x1 x2 in
      let lo_y = Stdlib.min y1 y2 and hi_y = Stdlib.max y1 y2 in
      let f = w.Scoring.win_f in
      (* monotone in x, antitone in y *)
      f hi_x lo_y >= f lo_x lo_y
      && f lo_x hi_y <= f lo_x lo_y
      (* optimal substructure: adding the same delta preserves order *)
      && begin
           let delta = 0.25 in
           let a = f lo_x lo_y and b = f hi_x hi_y in
           if a >= b then
             f (lo_x +. delta) lo_y >= f (hi_x +. delta) hi_y
             && f lo_x (lo_y + 3) >= f hi_x (hi_y + 3)
           else true
         end
      (* the comparison key orders pairs exactly like f *)
      && begin
           let k = w.Scoring.win_key in
           compare (f lo_x lo_y) (f hi_x hi_y)
           = compare (k lo_x lo_y) (k hi_x hi_y)
         end)

(* Definition 8: at-most-one-crossing for the shipped MAX instances —
   the contribution difference of two matches changes sign at most once
   over the location axis. *)
let at_most_one_crossing x =
  Gen.qtest ~count:500
    ~name:
      (Printf.sprintf "at-most-one-crossing [%s]" x.Scoring.max_name)
    (QCheck.make
       QCheck.Gen.(pair (Gen.match_gen ~max_loc:30) (Gen.match_gen ~max_loc:30)))
    (fun (m1, m2) ->
      let sign_changes = ref 0 in
      let last_sign = ref 0 in
      for l = -10 to 40 do
        let d =
          Scoring.max_contribution x ~term:0 m1 ~at:l
          -. Scoring.max_contribution x ~term:0 m2 ~at:l
        in
        let s = if d > 1e-12 then 1 else if d < -1e-12 then -1 else 0 in
        if s <> 0 then begin
          if !last_sign <> 0 && s <> !last_sign then incr sign_changes;
          last_sign := s
        end
      done;
      !sign_changes <= 1)

(* Definition 8: maximized-at-match — the continuous maximum over
   reference points is attained at some member location. *)
let maximized_at_match x =
  Gen.qtest ~count:300
    ~name:(Printf.sprintf "maximized-at-match [%s]" x.Scoring.max_name)
    (matchset_arb ~n:3 ~max_loc:25)
    (fun m ->
      let at_members = Scoring.score_max x m in
      let everywhere = ref neg_infinity in
      for l = -5 to 30 do
        everywhere := Float.max !everywhere (Scoring.score_max_at x m ~at:l)
      done;
      Gen.float_close at_members !everywhere || at_members >= !everywhere)

(* MED's reference point: the definitional median minimizes the total
   distance, hence maximizes the contribution sum (the fact our
   simplified Algorithm 2 rests on). *)
let median_maximizes_med_sum =
  let d = Scoring.med_linear in
  Gen.qtest ~count:500 ~name:"median maximizes the MED contribution sum"
    (matchset_arb ~n:4 ~max_loc:25)
    (fun m ->
      let sum_at l =
        let acc = ref 0. in
        Array.iteri
          (fun j x -> acc := !acc +. Scoring.med_contribution d ~term:j x ~at:l)
          m;
        !acc
      in
      let at_median = sum_at (Matchset.median_loc m) in
      let ok = ref true in
      for l = 0 to 25 do
        if sum_at l > at_median +. 1e-9 then ok := false
      done;
      !ok)

(* Definition 8's maximized-at-match requirement is necessary: Gaussian
   decay is at-most-one-crossing yet peaks between two equal matches, so
   the member-location scan underestimates the continuous maximum and
   the general envelope approach must be used instead. *)
let gaussian_breaks_maximized_at_match () =
  let x = Scoring.max_gaussian_sum ~alpha:0.5 in
  let ms = [| Match0.make ~loc:0 ~score:1. (); Match0.make ~loc:2 ~score:1. () |] in
  let at_members = Scoring.score_max x ms in
  let in_range = Scoring.score_max_in_range x ms ~lo:(-2) ~hi:4 in
  Alcotest.(check bool) "midpoint beats member locations" true
    (in_range > at_members +. 1e-6);
  Alcotest.(check (float 1e-9)) "midpoint value" (2. *. exp (-0.5))
    (Scoring.score_max_at x ms ~at:1)

let gaussian_is_one_crossing =
  let x = Scoring.max_gaussian_sum ~alpha:0.3 in
  Gen.qtest ~count:500 ~name:"gaussian decay is still at-most-one-crossing"
    (QCheck.make
       QCheck.Gen.(pair (Gen.match_gen ~max_loc:30) (Gen.match_gen ~max_loc:30)))
    (fun (m1, m2) ->
      let sign_changes = ref 0 in
      let last_sign = ref 0 in
      for l = -10 to 40 do
        let d =
          Scoring.max_contribution x ~term:0 m1 ~at:l
          -. Scoring.max_contribution x ~term:0 m2 ~at:l
        in
        let s = if d > 1e-12 then 1 else if d < -1e-12 then -1 else 0 in
        if s <> 0 then begin
          if !last_sign <> 0 && s <> !last_sign then incr sign_changes;
          last_sign := s
        end
      done;
      !sign_changes <= 1)

let general_handles_gaussian () =
  (* On the counterexample instance, only the general approach finds the
     midpoint optimum. *)
  let x = Scoring.max_gaussian_sum ~alpha:0.5 in
  let p =
    [| [| Match0.make ~loc:0 ~score:1. () |];
       [| Match0.make ~loc:2 ~score:1. () |] |]
  in
  match (Max_join.best_general x p, Max_join.best x p) with
  | Some g, Some s ->
      Alcotest.(check (float 1e-9)) "general finds the midpoint" (2. *. exp (-0.5))
        g.Naive.score;
      Alcotest.(check bool) "specialized underestimates here" true
        (s.Naive.score < g.Naive.score)
  | _ -> Alcotest.fail "expected results"

(* Scoring.upper_bound must dominate every matchset's score (the search
   pruning soundness condition). *)
let upper_bound_dominates scoring =
  Gen.qtest ~count:400
    ~name:
      (Printf.sprintf "upper_bound dominates all matchsets [%s]"
         (Scoring.name scoring))
    (Gen.problem_arb ~max_terms:3 ~max_len:4 ~allow_empty:false ())
    (fun p ->
      let best_scores =
        Array.map
          (fun l ->
            Array.fold_left (fun acc m -> Float.max acc m.Match0.score) 0. l)
          p
      in
      let bound = Scoring.upper_bound scoring best_scores in
      let ok = ref true in
      Naive.iter_matchsets p (fun ms ->
          if Scoring.score scoring ms > bound +. 1e-9 then ok := false);
      !ok)

(* The duplicate handler must not re-run on duplicate-free problems. *)
let dedup_single_run_when_clean =
  let w = Scoring.win_exponential ~alpha:0.1 in
  Gen.qtest ~count:400 ~name:"dedup runs once on duplicate-free input"
    (Gen.problem_arb ~max_terms:3 ~max_len:5 ~allow_empty:false ())
    (fun p ->
      Match_list.duplicate_count p > 0
      ||
      let _, stats = Dedup.best_valid (Win.best w) p in
      stats.Dedup.invocations = 1)

let count_matchsets_test () =
  let mk n = Array.init n (fun i -> Match0.make ~loc:i ~score:1. ()) in
  Alcotest.(check int) "3*2*4" 24
    (Naive.count_matchsets [| mk 3; mk 2; mk 4 |]);
  Alcotest.(check int) "empty list" 0 (Naive.count_matchsets [| mk 3; mk 0 |])

let suite =
  [
    win_equals_med_small 2;
    win_equals_med_small 3;
    win_differs_from_med_at_four;
    win_instance_properties (Scoring.win_exponential ~alpha:0.1);
    win_instance_properties Scoring.win_linear;
    at_most_one_crossing (Scoring.max_product ~alpha:0.1);
    at_most_one_crossing (Scoring.max_sum ~alpha:0.1);
    maximized_at_match (Scoring.max_product ~alpha:0.1);
    maximized_at_match (Scoring.max_sum ~alpha:0.1);
    median_maximizes_med_sum;
    ("gaussian: breaks maximized-at-match", `Quick, gaussian_breaks_maximized_at_match);
    gaussian_is_one_crossing;
    ("gaussian: general approach handles it", `Quick, general_handles_gaussian);
    upper_bound_dominates (Scoring.Win (Scoring.win_exponential ~alpha:0.1));
    upper_bound_dominates (Scoring.Med Scoring.med_linear);
    upper_bound_dominates (Scoring.Max (Scoring.max_sum ~alpha:0.1));
    dedup_single_run_when_clean;
    ("naive: count matchsets", `Quick, count_matchsets_test);
  ]
