open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let x = Scoring.max_sum ~alpha:0.2
(* Eq. (5) with scores in (0,1]: contribution at distance d is at most
   exp (-alpha d). *)
let decay d = exp (-0.2 *. float_of_int d)

let entries_agree a b =
  List.length a = List.length b
  && List.for_all2
       (fun (p : Anchored.entry) (q : Anchored.entry) ->
         p.Anchored.anchor = q.Anchored.anchor
         && Gen.float_close p.Anchored.score q.Anchored.score)
       a b

let stream_equals_by_location instance name =
  Gen.qtest ~count:500
    ~name:(Printf.sprintf "Max_stream.run = By_location.max_ [%s]" name)
    (Gen.problem_arb ~max_terms:4 ~max_len:5 ~max_loc:15 ())
    (fun p ->
      if Match_list.has_empty_list p then Max_stream.run instance p = []
      else
        entries_agree (Max_stream.run instance p) (By_location.max_ instance p))

let test_early_emission () =
  let t = Max_stream.create x ~n_terms:2 ~decay in
  let emitted = ref [] in
  let collect es = List.iter (fun e -> emitted := e :: !emitted) es in
  collect (Max_stream.feed t ~term:0 (m 0));
  collect (Max_stream.feed t ~term:1 (m 1));
  Alcotest.(check int) "nothing emitted yet" 0 (List.length !emitted);
  (* Score-1 matches at distance 1/0 from anchor 0 give best >= e^-1;
     settled once decay (pos) <= that, i.e. within a few positions. *)
  let pos = ref 2 in
  while !emitted = [] && !pos < 60 do
    collect (Max_stream.feed t ~term:(!pos mod 2) (m ~score:0.05 !pos));
    incr pos
  done;
  (match List.rev !emitted with
  | e :: _ ->
      Alcotest.(check int) "first anchor" 0 e.Anchored.anchor;
      Alcotest.(check bool)
        (Printf.sprintf "emitted by position %d" !pos)
        true (!pos <= 20)
  | [] -> Alcotest.fail "nothing emitted mid-stream");
  ignore (Max_stream.finish t)

let test_pending_bounded () =
  let t = Max_stream.create x ~n_terms:2 ~decay in
  let max_pending = ref 0 in
  for l = 0 to 499 do
    ignore (Max_stream.feed t ~term:(l mod 2) (m l));
    max_pending := Stdlib.max !max_pending (Max_stream.pending_count t)
  done;
  ignore (Max_stream.finish t);
  (* decay d falls below the worst per-term best (~e^-0.4) within ~3
     positions; allow generous slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "pending bounded (max %d)" !max_pending)
    true (!max_pending <= 12)

let test_incomplete_anchor_dropped () =
  (* A term with no match at all: anchors are dropped, like
     By_location.max_ on a problem with an empty list. *)
  let t = Max_stream.create x ~n_terms:2 ~decay in
  ignore (Max_stream.feed t ~term:0 (m 0));
  ignore (Max_stream.feed t ~term:0 (m 5));
  Alcotest.(check int) "nothing emitted" 0 (List.length (Max_stream.finish t))

let test_errors () =
  let t = Max_stream.create x ~n_terms:1 ~decay in
  Alcotest.check_raises "bad term"
    (Invalid_argument "Max_stream.feed: bad term index") (fun () ->
      ignore (Max_stream.feed t ~term:1 (m 0)));
  ignore (Max_stream.feed t ~term:0 (m 5));
  Alcotest.check_raises "out of order"
    (Invalid_argument "Max_stream.feed: locations must be non-decreasing")
    (fun () -> ignore (Max_stream.feed t ~term:0 (m 1)))

let suite =
  [
    stream_equals_by_location (Scoring.max_sum ~alpha:0.1) "MAX-sum";
    stream_equals_by_location (Scoring.max_product ~alpha:0.1) "MAX-prod";
    ("max_stream: early emission", `Quick, test_early_emission);
    ("max_stream: pending bounded", `Quick, test_pending_bounded);
    ("max_stream: incomplete anchors dropped", `Quick, test_incomplete_anchor_dropped);
    ("max_stream: errors", `Quick, test_errors);
  ]
