open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let scoring = Scoring.Win (Scoring.win_exponential ~alpha:0.2)

let problem =
  [|
    Match_list.of_unsorted [| m 0; m 10; m 30 |];
    Match_list.of_unsorted [| m 1; m 14; m 31 |];
  |]

let test_ordering_and_limit () =
  let top2 = Best_join.top_k ~k:2 scoring problem in
  Alcotest.(check int) "two entries" 2 (List.length top2);
  (match top2 with
  | a :: b :: _ ->
      Alcotest.(check bool) "descending" true
        (a.By_location.score >= b.By_location.score);
      (* The tightest clusters are at anchors 1 and 31 (gap 1). *)
      Alcotest.(check bool) "best anchors" true
        (List.for_all
           (fun e -> List.mem e.By_location.anchor [ 1; 31 ])
           top2)
  | _ -> Alcotest.fail "expected two entries")

let test_k_larger_than_entries () =
  let all = Best_join.top_k ~k:100 scoring problem in
  let by_loc = Best_join.by_location scoring problem in
  Alcotest.(check int) "everything returned" (List.length by_loc)
    (List.length all)

let test_k_zero_and_negative () =
  Alcotest.(check int) "k=0" 0 (List.length (Best_join.top_k ~k:0 scoring problem));
  Alcotest.check_raises "negative" (Invalid_argument "Best_join.top_k: negative k")
    (fun () -> ignore (Best_join.top_k ~k:(-1) scoring problem))

let top1_equals_best scoring =
  Gen.qtest ~count:300
    ~name:(Printf.sprintf "top_k 1 = overall best [%s]" (Scoring.name scoring))
    (Gen.problem_arb ~max_terms:3 ~max_len:5 ~allow_empty:false ())
    (fun p ->
      match (Best_join.top_k ~k:1 scoring p, Best_join.solve scoring p) with
      | [ e ], Some r -> Gen.float_close e.By_location.score r.Naive.score
      | [], None -> true
      | _ -> false)

let suite =
  [
    ("top_k: ordering and limit", `Quick, test_ordering_and_limit);
    ("top_k: k beyond entries", `Quick, test_k_larger_than_entries);
    ("top_k: edge k", `Quick, test_k_zero_and_negative);
    top1_equals_best (Scoring.Win (Scoring.win_exponential ~alpha:0.1));
    top1_equals_best (Scoring.Med (Scoring.med_exponential ~alpha:0.2));
  ]
