test/core/test_win_stream.ml: Alcotest Anchored By_location Gen List Match0 Matchset Pj_core Printf Scoring Win_stream
