test/core/test_max_stream.ml: Alcotest Anchored By_location Gen List Match0 Match_list Max_stream Pj_core Printf Scoring Stdlib
