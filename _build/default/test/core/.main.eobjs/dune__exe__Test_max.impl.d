test/core/test_max.ml: Alcotest Array Gen List Match0 Max_join Naive Pj_core Printf Scoring
