test/core/test_properties.ml: Alcotest Array Dedup Float Format Gen Match0 Match_list Matchset Max_join Naive Pj_core Printf QCheck QCheck_alcotest Scoring Stdlib Win
