test/core/test_med_selection.ml: Alcotest Array Match0 Med_selection Pj_core
