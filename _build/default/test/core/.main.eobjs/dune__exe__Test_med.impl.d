test/core/test_med.ml: Alcotest Array Gen List Match0 Match_list Med Naive Pj_core Printf Scoring
