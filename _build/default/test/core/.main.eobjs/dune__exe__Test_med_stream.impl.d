test/core/test_med_stream.ml: Alcotest Anchored By_location Gen List Match0 Match_list Med_stream Pj_core Printf Scoring Stdlib
