test/core/test_dedup.ml: Alcotest Dedup Gen Match0 Matchset Max_join Med Naive Pj_core Printf Scoring Win
