test/core/test_scoring.ml: Alcotest Float Match0 Matchset Pj_core Scoring
