test/core/test_top_k.ml: Alcotest Best_join By_location Gen List Match0 Match_list Naive Pj_core Printf Scoring
