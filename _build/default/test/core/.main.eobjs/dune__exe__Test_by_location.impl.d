test/core/test_by_location.ml: Alcotest Array By_location Gen Hashtbl List Match0 Match_list Matchset Max_join Med Naive Pj_core Pj_util Printf Scoring Win Win_topk
