test/core/test_match_list.ml: Alcotest Array Gen List Match0 Match_list Pj_core
