test/core/gen.ml: Array Float Format Match0 Match_list Naive Pj_core QCheck QCheck_alcotest Scoring
