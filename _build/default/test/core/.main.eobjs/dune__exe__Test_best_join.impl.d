test/core/test_best_join.ml: Alcotest Best_join Dedup Gen List Match0 Matchset Naive Pj_core Printf Scoring
