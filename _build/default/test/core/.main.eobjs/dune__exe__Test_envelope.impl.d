test/core/test_envelope.ml: Alcotest Array Envelope Gen List Match0 Pj_core Printf QCheck
