test/core/main.mli:
