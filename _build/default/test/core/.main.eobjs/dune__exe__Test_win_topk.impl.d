test/core/test_win_topk.ml: Alcotest Array Gen Hashtbl List Match0 Naive Pj_core Printf QCheck Scoring Win Win_topk
