test/core/test_win.ml: Alcotest Array Dedup Gen List Match0 Matchset Naive Pj_core Printf Scoring Win
