let () =
  Alcotest.run "proxjoin.core"
    [
      ("scoring", Test_scoring.suite);
      ("properties", Test_properties.suite);
      ("match_list", Test_match_list.suite);
      ("envelope", Test_envelope.suite);
      ("med_selection", Test_med_selection.suite);
      ("win", Test_win.suite);
      ("med", Test_med.suite);
      ("max", Test_max.suite);
      ("dedup", Test_dedup.suite);
      ("by_location", Test_by_location.suite);
      ("win_stream", Test_win_stream.suite);
      ("med_stream", Test_med_stream.suite);
      ("max_stream", Test_max_stream.suite);
      ("top_k", Test_top_k.suite);
      ("win_topk", Test_win_topk.suite);
      ("best_join", Test_best_join.suite);
    ]
