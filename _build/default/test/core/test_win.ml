open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let instances =
  [ Scoring.win_exponential ~alpha:0.1; Scoring.win_linear ]

let test_hand_example () =
  (* Two terms: the tight low-score pair beats the distant high-score
     pair under strong decay. *)
  let w = Scoring.win_exponential ~alpha:1.0 in
  let p =
    [|
      [| m ~score:0.9 0; m ~score:0.5 10 |];
      [| m ~score:0.5 11; m ~score:0.9 30 |];
    |]
  in
  match Win.best w p with
  | None -> Alcotest.fail "expected a matchset"
  | Some r ->
      Alcotest.(check int) "first member" 10 r.Naive.matchset.(0).Match0.loc;
      Alcotest.(check int) "second member" 11 r.Naive.matchset.(1).Match0.loc

let test_empty_list () =
  let p = [| [| m 1 |]; [||] |] in
  Alcotest.(check bool) "no matchset" true
    (Win.best (Scoring.win_exponential ~alpha:0.1) p = None)

let test_single_term () =
  let w = Scoring.win_linear in
  let p = [| [| m ~score:0.2 3; m ~score:0.8 7; m ~score:0.5 9 |] |] in
  match Win.best w p with
  | None -> Alcotest.fail "expected a matchset"
  | Some r ->
      Alcotest.(check int) "picks max score" 7 r.Naive.matchset.(0).Match0.loc

let test_colocated () =
  (* All matches at one location: window 0, best is the max-score pick
     per list. *)
  let w = Scoring.win_exponential ~alpha:0.5 in
  let p =
    [| [| m ~score:0.3 5; m ~score:0.7 5 |]; [| m ~score:0.4 5 |] |]
  in
  match Win.best w p with
  | None -> Alcotest.fail "expected a matchset"
  | Some r ->
      Alcotest.(check (float 1e-9)) "score" (0.7 *. 0.4) r.Naive.score

let equiv_test w =
  Gen.qtest
    ~name:(Printf.sprintf "WIN (Alg 1) = NWIN [%s]" w.Scoring.win_name)
    (Gen.problem_arb ())
    (fun p ->
      Gen.agree_with_oracle (Scoring.Win w) (Win.best w p)
        (Naive.best (Scoring.Win w) p))

let equiv_large_terms =
  (* More terms but tiny lists: exercises the 2^|Q| subset loop. *)
  let w = Scoring.win_exponential ~alpha:0.2 in
  Gen.qtest ~count:200 ~name:"WIN = NWIN with up to 6 terms"
    (Gen.problem_arb ~min_terms:5 ~max_terms:6 ~max_len:3 ())
    (fun p ->
      Gen.agree_with_oracle (Scoring.Win w) (Win.best w p)
        (Naive.best (Scoring.Win w) p))

(* The duplicate-aware DP must agree with the exhaustive valid-best
   oracle; duplicates are made frequent with a tiny location range. *)
let valid_equiv_test w =
  Gen.qtest ~count:600
    ~name:
      (Printf.sprintf "WIN best_valid = naive valid best [%s]" w.Scoring.win_name)
    (Gen.problem_arb ~max_terms:3 ~max_len:4 ~max_loc:5 ())
    (fun p ->
      match (Win.best_valid w p, Naive.best_valid (Scoring.Win w) p) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some f, Some o ->
          Gen.float_close f.Naive.score o.Naive.score
          && Matchset.is_valid f.Naive.matchset)

let valid_agrees_with_wrapper =
  let w = Scoring.win_exponential ~alpha:0.3 in
  Gen.qtest ~count:400 ~name:"WIN best_valid = Section VI wrapper"
    (Gen.problem_arb ~max_terms:4 ~max_len:4 ~max_loc:6 ())
    (fun p ->
      let direct = Win.best_valid w p in
      let wrapped, _ = Dedup.best_valid (Win.best w) p in
      match (direct, wrapped) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some a, Some b -> Gen.float_close a.Naive.score b.Naive.score)

(* Oracle for the order-constrained variant: exhaustive search over
   matchsets whose locations are non-decreasing in term order. *)
let ordered_oracle w p =
  let is_ordered (ms : Matchset.t) =
    let ok = ref true in
    for j = 1 to Array.length ms - 1 do
      if ms.(j).Match0.loc < ms.(j - 1).Match0.loc then ok := false
    done;
    !ok
  in
  let best = ref None in
  Naive.iter_matchsets p (fun ms ->
      if is_ordered ms then begin
        let s = Scoring.score_win w ms in
        match !best with
        | Some s' when s' >= s -> ()
        | _ -> best := Some s
      end);
  !best

let ordered_equiv_test w =
  Gen.qtest ~count:500
    ~name:
      (Printf.sprintf "WIN best_ordered = ordered oracle [%s]" w.Scoring.win_name)
    (Gen.problem_arb ~max_terms:4 ~max_len:5 ~max_loc:12 ())
    (fun p ->
      match (Win.best_ordered w p, ordered_oracle w p) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some r, Some s ->
          Gen.float_close r.Naive.score s
          && begin
               let ms = r.Naive.matchset in
               let ok = ref true in
               for j = 1 to Array.length ms - 1 do
                 if ms.(j).Match0.loc < ms.(j - 1).Match0.loc then ok := false
               done;
               !ok
             end)

let test_ordered_rejects_inverted () =
  (* Only the inverted arrangement exists: no ordered matchset. *)
  let w = Scoring.win_linear in
  let p = [| [| m 9 |]; [| m 2 |] |] in
  Alcotest.(check bool) "no ordered matchset" true (Win.best_ordered w p = None);
  Alcotest.(check bool) "unordered solver still finds it" true
    (Win.best w p <> None)

let test_best_valid_no_valid () =
  let w = Scoring.win_linear in
  let p = [| [| m 3 |]; [| m 3 |] |] in
  Alcotest.(check bool) "no valid matchset" true (Win.best_valid w p = None)

let suite =
  [
    ("WIN: hand example", `Quick, test_hand_example);
    ("WIN: empty list", `Quick, test_empty_list);
    ("WIN: single term", `Quick, test_single_term);
    ("WIN: co-located matches", `Quick, test_colocated);
    ("WIN: best_valid with no valid matchset", `Quick, test_best_valid_no_valid);
  ]
  @ [ ("WIN: ordered rejects inverted", `Quick, test_ordered_rejects_inverted) ]
  @ List.map equiv_test instances
  @ [ equiv_large_terms ]
  @ List.map valid_equiv_test instances
  @ [ valid_agrees_with_wrapper ]
  @ List.map ordered_equiv_test instances
