open Pj_core

(* Naive oracles for Definition 10: enumerate the cross product and keep
   the best matchset per anchor location. *)

let oracle_by group_of score (p : Match_list.problem) =
  let table : (int, float) Hashtbl.t = Hashtbl.create 16 in
  Naive.iter_matchsets p (fun ms ->
      let anchor = group_of ms in
      let s = score ms in
      match Hashtbl.find_opt table anchor with
      | Some s' when s' >= s -> ()
      | _ -> Hashtbl.replace table anchor s);
  table

let entries_match_oracle entries table =
  let sorted_anchors tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
  in
  let anchors = List.map (fun e -> e.By_location.anchor) entries in
  anchors = sorted_anchors table
  && List.for_all
       (fun e ->
         match Hashtbl.find_opt table e.By_location.anchor with
         | None -> false
         | Some s -> Gen.float_close s e.By_location.score)
       entries

let win_by_location_exact w =
  Gen.qtest ~count:400
    ~name:
      (Printf.sprintf "by-location WIN = oracle [%s]" w.Scoring.win_name)
    (Gen.problem_arb ~max_terms:3 ~max_len:5 ~max_loc:12 ())
    (fun p ->
      if Match_list.has_empty_list p then By_location.win w p = []
      else begin
        let table = oracle_by Matchset.max_loc (Scoring.score_win w) p in
        entries_match_oracle (By_location.win w p) table
      end)

let med_by_location_exact d =
  Gen.qtest ~count:400
    ~name:
      (Printf.sprintf "by-location MED = oracle [%s]" d.Scoring.med_name)
    (Gen.problem_arb ~max_terms:4 ~max_len:4 ~max_loc:10 ())
    (fun p ->
      if Match_list.has_empty_list p then By_location.med d p = []
      else begin
        let table = oracle_by Matchset.median_loc (Scoring.score_med d) p in
        entries_match_oracle (By_location.med d p) table
      end)

let max_by_location_exact x =
  Gen.qtest ~count:400
    ~name:
      (Printf.sprintf "by-location MAX = oracle [%s]" x.Scoring.max_name)
    (Gen.problem_arb ~max_terms:3 ~max_len:4 ~max_loc:10 ())
    (fun p ->
      if Match_list.has_empty_list p then By_location.max_ x p = []
      else begin
        (* For MAX the oracle is: for each match location l, the best
           score evaluated at reference point l. *)
        let locs = Match_list.locations p in
        let entries = By_location.max_ x p in
        Array.length locs = List.length entries
        && List.for_all
             (fun e ->
               let best = ref neg_infinity in
               Naive.iter_matchsets p (fun ms ->
                   let s = Scoring.score_max_at x ms ~at:e.By_location.anchor in
                   if s > !best then best := s);
               Gen.float_close !best e.By_location.score)
             entries
      end)

let med_by_location_five_terms =
  (* Five terms stress the (R, A) rank constraints of the selection DP;
     lists are kept tiny so the oracle's cross product stays feasible. *)
  let d = Scoring.med_linear in
  Gen.qtest ~count:150 ~name:"by-location MED = oracle at 5 terms"
    (Gen.problem_arb ~min_terms:5 ~max_terms:5 ~max_len:3 ~max_loc:8 ())
    (fun p ->
      if Match_list.has_empty_list p then By_location.med d p = []
      else begin
        let table = oracle_by Matchset.median_loc (Scoring.score_med d) p in
        entries_match_oracle (By_location.med d p) table
      end)

let large_input_smoke () =
  (* All solvers stay fast and consistent on a 4x2000-match problem. *)
  let rng = Pj_util.Prng.create 99 in
  let p =
    Array.init 4 (fun _ ->
        Match_list.of_unsorted
          (Array.init 2000 (fun _ ->
               Match0.make
                 ~loc:(Pj_util.Prng.int rng 100_000)
                 ~score:(Pj_util.Prng.float_open rng)
                 ())))
  in
  let w = Scoring.win_exponential ~alpha:0.01 in
  let d = Scoring.med_exponential ~alpha:0.01 in
  let x = Scoring.max_sum ~alpha:0.01 in
  let (_, dt) =
    Pj_util.Timing.time (fun () ->
        ignore (Win.best w p);
        ignore (Med.best d p);
        ignore (Max_join.best x p);
        ignore (By_location.med d p);
        ignore (By_location.max_ x p))
  in
  Alcotest.(check bool)
    (Printf.sprintf "8000 matches solved in %.2fs" dt)
    true (dt < 5.);
  (* Sanity: WIN top-1 equals Win.best on the big instance. *)
  match (Win_topk.best_k ~k:1 w p, Win.best w p) with
  | [ a ], Some b ->
      Alcotest.(check (float 1e-9)) "topk consistent" b.Naive.score a.Naive.score
  | _ -> Alcotest.fail "expected results"

let best_entry_consistent_with_overall () =
  (* The best by-location WIN entry must equal the overall best. *)
  let w = Scoring.win_exponential ~alpha:0.15 in
  let rng = Pj_util.Prng.create 42 in
  for _ = 1 to 50 do
    let n = 1 + Pj_util.Prng.int rng 3 in
    let p =
      Array.init n (fun _ ->
          let len = 1 + Pj_util.Prng.int rng 5 in
          Match_list.of_unsorted
            (Array.init len (fun _ ->
                 Match0.make
                   ~loc:(Pj_util.Prng.int rng 20)
                   ~score:(Pj_util.Prng.float_open rng)
                   ())))
    in
    match (By_location.best_entry (By_location.win w p), Win.best w p) with
    | Some e, Some r ->
        if not (Gen.float_close e.By_location.score r.Naive.score) then
          Alcotest.failf "best entry %.9f <> overall %.9f" e.By_location.score
            r.Naive.score
    | None, None -> ()
    | _ -> Alcotest.fail "presence mismatch"
  done

let test_filter_by_score () =
  let entries =
    [
      { By_location.anchor = 1; matchset = [||]; score = 0.2 };
      { By_location.anchor = 2; matchset = [||]; score = 0.9 };
    ]
  in
  Alcotest.(check int) "filtered" 1
    (List.length (By_location.filter_by_score 0.5 entries))

let suite =
  [
    win_by_location_exact (Scoring.win_exponential ~alpha:0.1);
    win_by_location_exact Scoring.win_linear;
    med_by_location_exact (Scoring.med_exponential ~alpha:0.2);
    med_by_location_exact Scoring.med_linear;
    max_by_location_exact (Scoring.max_product ~alpha:0.1);
    max_by_location_exact (Scoring.max_sum ~alpha:0.1);
    med_by_location_five_terms;
    ("by-location: large-input smoke", `Slow, large_input_smoke);
    ( "by-location: best entry = overall best",
      `Quick,
      best_entry_consistent_with_overall );
    ("by-location: filter by score", `Quick, test_filter_by_score);
  ]
