open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let d = Scoring.med_linear
(* med_linear: g (x) = x / 0.3, so scores in (0,1] give g <= 10/3. *)
let g_bound = 1. /. 0.3

let entries_agree a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Anchored.entry) (y : Anchored.entry) ->
         x.Anchored.anchor = y.Anchored.anchor
         && Gen.float_close x.Anchored.score y.Anchored.score)
       a b

let stream_equals_by_location instance name =
  Gen.qtest ~count:500
    ~name:(Printf.sprintf "Med_stream.run = By_location.med [%s]" name)
    (Gen.problem_arb ~max_terms:4 ~max_len:5 ~max_loc:15 ())
    (fun p ->
      if Match_list.has_empty_list p then Med_stream.run instance p = []
      else entries_agree (Med_stream.run instance p) (By_location.med instance p))

let test_early_emission () =
  (* Once every term has a strong right candidate just past the anchor,
     the anchor must be emitted long before the stream ends. *)
  let t = Med_stream.create d ~n_terms:2 ~g_bound in
  let emitted = ref [] in
  let collect es = List.iter (fun e -> emitted := e :: !emitted) es in
  collect (Med_stream.feed t ~term:0 (m 0));
  collect (Med_stream.feed t ~term:1 (m 1));
  Alcotest.(check int) "nothing emitted yet" 0 (List.length !emitted);
  (* With two terms the median of a pair is its larger location, so the
     first possible anchor is location 1 ({m0, m1}). Strong candidates
     at 4/5 settle it as soon as the scan is g_bound (~3.3) past the
     point where their contribution dominates any future match's. *)
  collect (Med_stream.feed t ~term:0 (m 4));
  collect (Med_stream.feed t ~term:1 (m 5));
  let pos = ref 6 in
  let anchor1_at = ref None in
  while !anchor1_at = None && !pos < 50 do
    collect (Med_stream.feed t ~term:0 (m ~score:0.01 !pos));
    if List.exists (fun e -> e.Anchored.anchor = 1) !emitted then
      anchor1_at := Some !pos;
    incr pos
  done;
  (match !anchor1_at with
  | Some p ->
      Alcotest.(check bool)
        (Printf.sprintf "anchor 1 emitted by position %d" p)
        true (p <= 10)
  | None -> Alcotest.fail "anchor 1 never emitted mid-stream");
  ignore (Med_stream.finish t)

let test_pending_shrinks () =
  (* With strong candidates everywhere, the pending set stays bounded
     instead of growing with the stream. *)
  let t = Med_stream.create d ~n_terms:2 ~g_bound in
  let max_pending = ref 0 in
  for l = 0 to 499 do
    ignore (Med_stream.feed t ~term:(l mod 2) (m l));
    max_pending := Stdlib.max !max_pending (Med_stream.pending_count t)
  done;
  ignore (Med_stream.finish t);
  Alcotest.(check bool)
    (Printf.sprintf "pending bounded (max %d)" !max_pending)
    true
    (!max_pending <= int_of_float g_bound + 3)

let test_finish_emits_rest () =
  let t = Med_stream.create d ~n_terms:1 ~g_bound in
  ignore (Med_stream.feed t ~term:0 (m 3));
  ignore (Med_stream.feed t ~term:0 (m 9));
  let entries = Med_stream.finish t in
  Alcotest.(check (list int)) "both anchors" [ 3; 9 ]
    (List.map (fun e -> e.Anchored.anchor) entries)

let test_bound_violation_rejected () =
  let t = Med_stream.create d ~n_terms:1 ~g_bound:0.5 in
  Alcotest.check_raises "g above bound"
    (Invalid_argument "Med_stream.feed: contribution above g_bound")
    (fun () -> ignore (Med_stream.feed t ~term:0 (m ~score:1.0 0)))

let test_out_of_order_rejected () =
  let t = Med_stream.create d ~n_terms:1 ~g_bound in
  ignore (Med_stream.feed t ~term:0 (m 5));
  Alcotest.check_raises "regression"
    (Invalid_argument "Med_stream.feed: locations must be non-decreasing")
    (fun () -> ignore (Med_stream.feed t ~term:0 (m 4)))

let test_loose_bound_still_correct () =
  (* A bound far above the true maximum only delays emission, never
     changes the result. *)
  let p =
    [|
      Match_list.of_unsorted [| m 1; m ~score:0.4 7 |];
      Match_list.of_unsorted [| m 2; m ~score:0.2 9 |];
    |]
  in
  Alcotest.(check bool) "same entries" true
    (entries_agree
       (Med_stream.run ~g_bound:1000. d p)
       (By_location.med d p))

let suite =
  [
    stream_equals_by_location d "MED-linear";
    stream_equals_by_location (Scoring.med_exponential ~alpha:0.2) "MED-exp";
    ("med_stream: early emission", `Quick, test_early_emission);
    ("med_stream: pending bounded", `Quick, test_pending_shrinks);
    ("med_stream: finish emits rest", `Quick, test_finish_emits_rest);
    ("med_stream: bound violation", `Quick, test_bound_violation_rejected);
    ("med_stream: out of order", `Quick, test_out_of_order_rejected);
    ("med_stream: loose bound", `Quick, test_loose_bound_still_correct);
  ]
