open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let instances = [ Scoring.med_exponential ~alpha:0.2; Scoring.med_linear ]

let test_prefers_clustered () =
  (* Figure 2 as a join problem: the solver must return the clustered
     matchset even though both candidates have equal windows. *)
  let d = Scoring.med_exponential ~alpha:0.3 in
  let p =
    [|
      [| m 0 |];
      [| m 4; m 10 |];
      [| m 8; m 11 |];
      [| m 12 |];
    |]
  in
  match Med.best d p with
  | None -> Alcotest.fail "expected a matchset"
  | Some r ->
      Alcotest.(check int) "clustered member 1" 10 r.Naive.matchset.(1).Match0.loc;
      Alcotest.(check int) "clustered member 2" 11 r.Naive.matchset.(2).Match0.loc

let test_empty_list () =
  let p = [| [||]; [| m 1 |] |] in
  Alcotest.(check bool) "no matchset" true
    (Med.best (Scoring.med_linear) p = None)

let test_single_term () =
  let d = Scoring.med_linear in
  let p = [| Match_list.of_unsorted [| m ~score:0.2 3; m ~score:0.9 70; m ~score:0.5 9 |] |] in
  match Med.best d p with
  | None -> Alcotest.fail "expected a matchset"
  | Some r ->
      Alcotest.(check int) "picks max score" 70 r.Naive.matchset.(0).Match0.loc

let test_dominating_lists_sorted () =
  let d = Scoring.med_linear in
  let p = [| Match_list.of_unsorted [| m 3; m ~score:0.1 5; m 9; m ~score:0.4 9 |] |] in
  let doms = Med.dominating_lists d p in
  Array.iter
    (fun v ->
      let sorted = ref true in
      for i = 1 to Array.length v - 1 do
        if v.(i - 1).Match0.loc > v.(i).Match0.loc then sorted := false
      done;
      Alcotest.(check bool) "V_j sorted by location" true !sorted)
    doms

let equiv_test d =
  Gen.qtest
    ~name:(Printf.sprintf "MED (Alg 2) = NMED [%s]" d.Scoring.med_name)
    (Gen.problem_arb ())
    (fun p ->
      Gen.agree_with_oracle (Scoring.Med d) (Med.best d p)
        (Naive.best (Scoring.Med d) p))

let equiv_dense =
  (* Few locations, many collisions: stresses median ties. *)
  let d = Scoring.med_linear in
  Gen.qtest ~count:1000 ~name:"MED = NMED under heavy location ties"
    (Gen.problem_arb ~max_terms:4 ~max_len:5 ~max_loc:6 ())
    (fun p ->
      Gen.agree_with_oracle (Scoring.Med d) (Med.best d p)
        (Naive.best (Scoring.Med d) p))

let equiv_five_terms =
  let d = Scoring.med_exponential ~alpha:0.15 in
  Gen.qtest ~count:200 ~name:"MED = NMED with 5 terms"
    (Gen.problem_arb ~min_terms:5 ~max_terms:5 ~max_len:4 ())
    (fun p ->
      Gen.agree_with_oracle (Scoring.Med d) (Med.best d p)
        (Naive.best (Scoring.Med d) p))

let suite =
  [
    ("MED: prefers clustered (Fig 2)", `Quick, test_prefers_clustered);
    ("MED: empty list", `Quick, test_empty_list);
    ("MED: single term", `Quick, test_single_term);
    ("MED: dominating lists sorted", `Quick, test_dominating_lists_sorted);
  ]
  @ List.map equiv_test instances
  @ [ equiv_dense; equiv_five_terms ]
