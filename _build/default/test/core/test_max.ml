open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

let instances = [ Scoring.max_product ~alpha:0.1; Scoring.max_sum ~alpha:0.1 ]

let test_anchors_near_heavy () =
  (* A very high-scoring match should pull the best matchset toward it
     rather than toward a tighter but lighter cluster. *)
  let x = Scoring.max_sum ~alpha:1.0 in
  let p =
    [|
      [| m ~score:1.0 0; m ~score:0.05 100 |];
      [| m ~score:0.04 1; m ~score:0.05 100 |];
    |]
  in
  match Max_join.best x p with
  | None -> Alcotest.fail "expected a matchset"
  | Some r ->
      Alcotest.(check int) "heavy member kept" 0 r.Naive.matchset.(0).Match0.loc

let test_empty_list () =
  let p = [| [| m 1 |]; [||] |] in
  Alcotest.(check bool) "no matchset" true
    (Max_join.best (Scoring.max_sum ~alpha:0.1) p = None)

let equiv_test x =
  Gen.qtest
    ~name:(Printf.sprintf "MAX (specialized) = NMAX [%s]" x.Scoring.max_name)
    (Gen.problem_arb ())
    (fun p ->
      Gen.agree_with_oracle (Scoring.Max x) (Max_join.best x p)
        (Naive.best (Scoring.Max x) p))

let general_equiv_test x =
  Gen.qtest ~count:200
    ~name:
      (Printf.sprintf "MAX (general envelope) = NMAX [%s]" x.Scoring.max_name)
    (Gen.problem_arb ~max_len:4 ~max_loc:15 ())
    (fun p ->
      match (Max_join.best_general x p, Naive.best (Scoring.Max x) p) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some g, Some o -> Gen.float_close g.Naive.score o.Naive.score)

let specialized_vs_general x =
  Gen.qtest ~count:200
    ~name:
      (Printf.sprintf "MAX specialized = general [%s]" x.Scoring.max_name)
    (Gen.problem_arb ~max_len:4 ~max_loc:15 ())
    (fun p ->
      match (Max_join.best x p, Max_join.best_general x p) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some a, Some b -> Gen.float_close a.Naive.score b.Naive.score)

(* Oracle for the type-anchored variant: enumerate the cross product and
   score each matchset at the anchor term's match location. *)
let anchored_oracle ~anchor_term x p =
  let best = ref None in
  Naive.iter_matchsets p (fun ms ->
      let l = ms.(anchor_term).Match0.loc in
      let s = Scoring.score_max_at x ms ~at:l in
      match !best with
      | Some s' when s' >= s -> ()
      | _ -> best := Some s);
  !best

let anchored_equiv_test x =
  Gen.qtest ~count:400
    ~name:
      (Printf.sprintf "MAX best_anchored = oracle [%s]" x.Scoring.max_name)
    (Gen.problem_arb ~min_terms:2 ~max_terms:3 ~max_len:5 ())
    (fun p ->
      let anchor_term = 0 in
      match (Max_join.best_anchored ~anchor_term x p, anchored_oracle ~anchor_term x p) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some r, Some s ->
          Gen.float_close r.Naive.score s
          && Gen.float_close r.Naive.score
               (Scoring.score_max_at x r.Naive.matchset
                  ~at:r.Naive.matchset.(anchor_term).Match0.loc))

let test_anchored_bad_term () =
  Alcotest.check_raises "bad anchor"
    (Invalid_argument "Max_join.best_anchored: bad anchor term") (fun () ->
      ignore
        (Max_join.best_anchored ~anchor_term:5
           (Scoring.max_sum ~alpha:0.1)
           [| [| m 1 |] |]))

let suite =
  [
    ("MAX: anchors near heavy match", `Quick, test_anchors_near_heavy);
    ("MAX: empty list", `Quick, test_empty_list);
    ("MAX: best_anchored bad term", `Quick, test_anchored_bad_term);
  ]
  @ List.map equiv_test instances
  @ List.map general_equiv_test instances
  @ List.map specialized_vs_general instances
  @ List.map anchored_equiv_test instances
