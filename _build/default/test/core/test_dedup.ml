open Pj_core

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

(* A problem generator biased toward duplicates: locations are drawn
   from a tiny range so cross-list collisions are frequent. *)
let dup_problem_arb =
  Gen.problem_arb ~min_terms:2 ~max_terms:3 ~max_len:4 ~max_loc:5 ()

let test_china_example () =
  (* Section VI's {asia, porcelain} example in miniature: a single token
     matching both terms at location 5 scores best when duplicates are
     allowed, but the valid best must use two distinct tokens. *)
  let w = Scoring.win_exponential ~alpha:0.1 in
  let china_asia = m ~score:1.0 5 in
  let china_porcelain = m ~score:1.0 5 in
  let jingdezhen = m ~score:0.7 20 in
  let ceramics = m ~score:0.9 22 in
  let p = [| [| china_asia; jingdezhen |]; [| china_porcelain; ceramics |] |] in
  (match Win.best w p with
  | Some r ->
      Alcotest.(check bool) "duplicate wins without handling" false
        (Matchset.is_valid r.Naive.matchset)
  | None -> Alcotest.fail "expected a matchset");
  match Dedup.best_valid (Win.best w) p with
  | Some r, stats ->
      Alcotest.(check bool) "valid" true (Matchset.is_valid r.Naive.matchset);
      Alcotest.(check bool) "reran the solver" true (stats.Dedup.invocations > 1);
      Alcotest.(check int) "jingdezhen or ceramics" 20
        (Matchset.min_loc r.Naive.matchset)
  | None, _ -> Alcotest.fail "expected a valid matchset"

let test_no_duplicates_single_invocation () =
  let w = Scoring.win_linear in
  let p = [| [| m 1; m 4 |]; [| m 2; m 7 |] |] in
  let _, stats = Dedup.best_valid (Win.best w) p in
  Alcotest.(check int) "single run" 1 stats.Dedup.invocations

let test_no_valid_matchset () =
  (* Both lists contain only the same single token. *)
  let w = Scoring.win_linear in
  let p = [| [| m 3 |]; [| m 3 |] |] in
  let r, _ = Dedup.best_valid (Win.best w) p in
  Alcotest.(check bool) "no valid matchset" true (r = None)

let dedup_exact scoring solver name =
  Gen.qtest ~count:400 ~name:(Printf.sprintf "dedup(%s) = naive valid best" name)
    dup_problem_arb
    (fun p ->
      let fast, _ = Dedup.best_valid solver p in
      let oracle = Naive.best_valid scoring p in
      match (fast, oracle) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some f, Some o ->
          Gen.float_close f.Naive.score o.Naive.score
          && Matchset.is_valid f.Naive.matchset)

let suite =
  let win = Scoring.win_exponential ~alpha:0.1 in
  let med = Scoring.med_exponential ~alpha:0.2 in
  let max = Scoring.max_sum ~alpha:0.1 in
  [
    ("dedup: china example (Sec VI)", `Quick, test_china_example);
    ("dedup: clean input needs one run", `Quick, test_no_duplicates_single_invocation);
    ("dedup: no valid matchset", `Quick, test_no_valid_matchset);
    dedup_exact (Scoring.Win win) (Win.best win) "WIN";
    dedup_exact (Scoring.Med med) (Med.best med) "MED";
    dedup_exact (Scoring.Max max) (Max_join.best max) "MAX";
  ]
