open Pj_core

(* The envelope is checked against the brute-force pointwise maximum for
   both contribution shapes used in the paper: the MED tent (slope 1)
   and the MAX exponential-decay contributions of Eq. (4) and Eq. (5). *)

let med_contribution : Envelope.contribution =
 fun m l -> m.Match0.score -. float_of_int (abs (m.Match0.loc - l))

let max_sum_contribution : Envelope.contribution =
 fun m l -> m.Match0.score *. exp (-0.1 *. float_of_int (abs (m.Match0.loc - l)))

let max_prod_contribution : Envelope.contribution =
 fun m l -> log m.Match0.score -. (0.1 *. float_of_int (abs (m.Match0.loc - l)))

let contributions =
  [
    ("MED tent", med_contribution);
    ("MAX sum", max_sum_contribution);
    ("MAX product", max_prod_contribution);
  ]

let envelope_matches_pointwise (name, c) =
  Gen.qtest ~count:500
    ~name:(Printf.sprintf "envelope cursor = pointwise max [%s]" name)
    (QCheck.make
       ~print:(fun l -> Gen.pp_problem [| l |])
       (Gen.nonempty_list_gen ~max_len:8 ~max_loc:20))
    (fun lst ->
      let doms = Envelope.dominating_list c lst in
      let cur = Envelope.cursor c doms in
      let ok = ref true in
      for l = 0 to 20 do
        match Envelope.query cur l with
        | None -> ok := false
        | Some pick ->
            if not (Gen.float_close pick.Envelope.value (Envelope.pointwise_max c lst l))
            then ok := false
      done;
      !ok)

let dominating_list_is_subsequence (name, c) =
  Gen.qtest ~count:300
    ~name:(Printf.sprintf "dominating list is a location-sorted subset [%s]" name)
    (QCheck.make
       ~print:(fun l -> Gen.pp_problem [| l |])
       (Gen.nonempty_list_gen ~max_len:8 ~max_loc:20))
    (fun lst ->
      let doms = Envelope.dominating_list c lst in
      let sorted = ref true in
      for i = 1 to Array.length doms - 1 do
        if doms.(i - 1).Match0.loc > doms.(i).Match0.loc then sorted := false
      done;
      let member m = Array.exists (fun x -> Match0.equal x m) lst in
      !sorted && Array.for_all member doms)

let interval_pairs_cover (name, c) =
  Gen.qtest ~count:200
    ~name:(Printf.sprintf "interval pairs attain the envelope [%s]" name)
    (QCheck.make
       ~print:(fun l -> Gen.pp_problem [| l |])
       (Gen.nonempty_list_gen ~max_len:6 ~max_loc:15))
    (fun lst ->
      let pairs = Envelope.interval_pairs c lst ~lo:0 ~hi:15 in
      (* Segments tile [0, 15] in order and each segment's match attains
         the pointwise maximum throughout the segment. *)
      let expected_start = ref 0 in
      List.for_all
        (fun (a, b, m) ->
          let tiles = a = !expected_start && b >= a in
          expected_start := b + 1;
          let attains = ref true in
          for l = a to b do
            if not (Gen.float_close (c m l) (Envelope.pointwise_max c lst l))
            then attains := false
          done;
          tiles && !attains)
        pairs
      && !expected_start = 16)

let test_empty_list () =
  let doms = Envelope.dominating_list med_contribution [||] in
  Alcotest.(check int) "empty dominating list" 0 (Array.length doms);
  let cur = Envelope.cursor med_contribution doms in
  Alcotest.(check bool) "query on empty" true (Envelope.query cur 3 = None)

let test_tie_prefers_successor () =
  (* Two identical-score matches equidistant from the query location:
     the later one must be chosen (footnote 3). *)
  let a = Match0.make ~loc:0 ~score:1. () in
  let b = Match0.make ~loc:10 ~score:1. () in
  let doms = Envelope.dominating_list med_contribution [| a; b |] in
  let cur = Envelope.cursor med_contribution doms in
  match Envelope.query cur 5 with
  | Some pick ->
      Alcotest.(check int) "successor chosen" 10 pick.Envelope.chosen.Match0.loc;
      Alcotest.(check bool) "flagged as succeeding" true pick.Envelope.succeeds
  | None -> Alcotest.fail "expected a pick"

let suite =
  [
    ("envelope: empty list", `Quick, test_empty_list);
    ("envelope: tie prefers successor", `Quick, test_tie_prefers_successor);
  ]
  @ List.map envelope_matches_pointwise contributions
  @ List.map dominating_list_is_subsequence contributions
  @ List.map interval_pairs_cover contributions
