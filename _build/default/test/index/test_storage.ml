open Pj_index

let temp_path () = Filename.temp_file "proxjoin_test" ".pjix"

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 16 in
      Storage.write_varint buf n;
      let pos = ref 0 in
      Alcotest.(check int)
        (Printf.sprintf "varint %d" n)
        n
        (Storage.read_varint (Buffer.contents buf) ~pos);
      Alcotest.(check int) "fully consumed" (Buffer.length buf) !pos)
    [ 0; 1; 127; 128; 300; 16_383; 16_384; 1_000_000; max_int / 4 ]

let test_varint_random_roundtrip () =
  let rng = Pj_util.Prng.create 77 in
  let buf = Buffer.create 4096 in
  let values = Array.init 500 (fun _ -> Pj_util.Prng.int rng 10_000_000) in
  Array.iter (Storage.write_varint buf) values;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  Array.iter
    (fun expected ->
      Alcotest.(check int) "sequence value" expected (Storage.read_varint s ~pos))
    values;
  Alcotest.(check int) "consumed" (String.length s) !pos

let test_varint_truncation () =
  Alcotest.check_raises "truncated" (Failure "Storage: truncated varint")
    (fun () -> ignore (Storage.read_varint "\x80" ~pos:(ref 0)))

let sample_corpus () =
  let c = Corpus.create () in
  ignore (Corpus.add_text c "lenovo partners with nba lenovo wins");
  ignore (Corpus.add_text c "dell and lenovo compete");
  ignore (Corpus.add_text c "");
  ignore (Corpus.add_text c "the olympic games in beijing 2008");
  c

let corpora_equal a b =
  Corpus.size a = Corpus.size b
  && begin
       let ok = ref true in
       for i = 0 to Corpus.size a - 1 do
         let da = Corpus.document a i and db = Corpus.document b i in
         if
           Pj_text.Document.text (Corpus.vocab a) da
           <> Pj_text.Document.text (Corpus.vocab b) db
         then ok := false
       done;
       !ok
     end

let test_corpus_roundtrip () =
  let c = sample_corpus () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      let c' = Storage.load_corpus path in
      Alcotest.(check bool) "documents identical" true (corpora_equal c c'))

let test_index_roundtrip () =
  let c = sample_corpus () in
  let idx = Inverted_index.build c in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save idx path;
      let idx' = Storage.load path in
      (* Same posting statistics for every word of the original vocab. *)
      let vocab = Corpus.vocab c in
      for tok = 0 to Pj_text.Vocab.size vocab - 1 do
        let w = Pj_text.Vocab.word vocab tok in
        Alcotest.(check int)
          ("df of " ^ w)
          (Posting_list.document_frequency (Inverted_index.postings_of_word idx w))
          (Posting_list.document_frequency (Inverted_index.postings_of_word idx' w))
      done)

let test_empty_corpus_roundtrip () =
  let c = Corpus.create () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      Alcotest.(check int) "empty" 0 (Corpus.size (Storage.load_corpus path)))

let test_bad_magic () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOPE whatever";
      close_out oc;
      Alcotest.check_raises "rejected"
        (Failure "Storage: not a proxjoin corpus file") (fun () ->
          ignore (Storage.load_corpus path)))

let test_trailing_bytes () =
  let c = sample_corpus () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "junk";
      close_out oc;
      Alcotest.check_raises "rejected" (Failure "Storage: trailing bytes")
        (fun () -> ignore (Storage.load_corpus path)))

let suite =
  [
    ("storage: varint roundtrip", `Quick, test_varint_roundtrip);
    ("storage: varint sequence", `Quick, test_varint_random_roundtrip);
    ("storage: varint truncation", `Quick, test_varint_truncation);
    ("storage: corpus roundtrip", `Quick, test_corpus_roundtrip);
    ("storage: index roundtrip", `Quick, test_index_roundtrip);
    ("storage: empty corpus", `Quick, test_empty_corpus_roundtrip);
    ("storage: bad magic", `Quick, test_bad_magic);
    ("storage: trailing bytes", `Quick, test_trailing_bytes);
  ]
