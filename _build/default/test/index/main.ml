let () =
  Alcotest.run "proxjoin.index"
    [
      ("posting", Test_posting.suite);
      ("inverted_index", Test_inverted_index.suite);
      ("storage", Test_storage.suite);
    ]
