open Pj_index

let test_make_sorts () =
  let p = Posting.make ~doc_id:3 ~positions:[| 9; 1; 4 |] in
  Alcotest.(check (array int)) "sorted" [| 1; 4; 9 |] p.Posting.positions;
  Alcotest.(check int) "tf" 3 (Posting.term_frequency p)

let test_of_postings_merges_same_doc () =
  let pl =
    Posting_list.of_postings
      [
        Posting.make ~doc_id:2 ~positions:[| 5 |];
        Posting.make ~doc_id:1 ~positions:[| 3 |];
        Posting.make ~doc_id:2 ~positions:[| 1; 5 |];
      ]
  in
  Alcotest.(check int) "df" 2 (Posting_list.document_frequency pl);
  Alcotest.(check (array int)) "doc ids sorted" [| 1; 2 |] (Posting_list.doc_ids pl);
  (match Posting_list.find pl 2 with
  | Some p ->
      Alcotest.(check (array int)) "positions unioned" [| 1; 5 |] p.Posting.positions
  | None -> Alcotest.fail "doc 2 missing");
  Alcotest.(check int) "cf" 3 (Posting_list.collection_frequency pl)

let test_find_missing () =
  let pl = Posting_list.of_postings [ Posting.make ~doc_id:4 ~positions:[| 0 |] ] in
  Alcotest.(check bool) "missing doc" true (Posting_list.find pl 5 = None);
  Alcotest.(check bool) "empty list" true (Posting_list.find Posting_list.empty 4 = None)

let test_union () =
  let a = Posting_list.of_postings [ Posting.make ~doc_id:1 ~positions:[| 2 |] ] in
  let b =
    Posting_list.of_postings
      [
        Posting.make ~doc_id:1 ~positions:[| 7 |];
        Posting.make ~doc_id:3 ~positions:[| 0 |];
      ]
  in
  let u = Posting_list.union a b in
  Alcotest.(check int) "df" 2 (Posting_list.document_frequency u);
  match Posting_list.find u 1 with
  | Some p -> Alcotest.(check (array int)) "merged" [| 2; 7 |] p.Posting.positions
  | None -> Alcotest.fail "doc 1 missing"

let test_iter_order () =
  let pl =
    Posting_list.of_postings
      [
        Posting.make ~doc_id:9 ~positions:[| 0 |];
        Posting.make ~doc_id:2 ~positions:[| 0 |];
      ]
  in
  let ids = ref [] in
  Posting_list.iter (fun p -> ids := p.Posting.doc_id :: !ids) pl;
  Alcotest.(check (list int)) "in doc order" [ 2; 9 ] (List.rev !ids)

let suite =
  [
    ("posting: make sorts", `Quick, test_make_sorts);
    ("posting_list: merges same doc", `Quick, test_of_postings_merges_same_doc);
    ("posting_list: find missing", `Quick, test_find_missing);
    ("posting_list: union", `Quick, test_union);
    ("posting_list: iteration order", `Quick, test_iter_order);
  ]
