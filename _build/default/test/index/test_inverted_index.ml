open Pj_index

let sample_corpus () =
  let c = Corpus.create () in
  ignore (Corpus.add_text c "lenovo partners with nba lenovo wins");
  ignore (Corpus.add_text c "dell and lenovo compete");
  ignore (Corpus.add_text c "the olympic games in beijing");
  c

let test_corpus_basics () =
  let c = sample_corpus () in
  Alcotest.(check int) "size" 3 (Corpus.size c);
  Alcotest.(check int) "doc 1 id" 1 (Corpus.document c 1).Pj_text.Document.id;
  Alcotest.(check int) "total tokens" 15 (Corpus.total_tokens c);
  Alcotest.(check (float 1e-9)) "average length" 5. (Corpus.average_length c)

let test_positions () =
  let c = sample_corpus () in
  let idx = Inverted_index.build c in
  let pl = Inverted_index.postings_of_word idx "lenovo" in
  Alcotest.(check int) "df lenovo" 2 (Posting_list.document_frequency pl);
  (match Posting_list.find pl 0 with
  | Some p ->
      Alcotest.(check (array int)) "positions in doc 0" [| 0; 4 |]
        p.Posting.positions
  | None -> Alcotest.fail "doc 0 missing");
  Alcotest.(check (array int)) "positions_in helper" [| 2 |]
    (let v = Corpus.vocab c in
     match Pj_text.Vocab.find v "lenovo" with
     | Some tok -> Inverted_index.positions_in idx ~token:tok ~doc_id:1
     | None -> [||])

let test_missing_word () =
  let c = sample_corpus () in
  let idx = Inverted_index.build c in
  Alcotest.(check int) "unknown word df" 0
    (Posting_list.document_frequency (Inverted_index.postings_of_word idx "zzz"));
  Alcotest.(check (array int)) "positions of unknown token" [||]
    (Inverted_index.positions_in idx ~token:9999 ~doc_id:0)

let test_document_frequencies_consistent () =
  (* Every token's collection frequency equals its total occurrence
     count in the corpus. *)
  let c = sample_corpus () in
  let idx = Inverted_index.build c in
  let vocab_size = Inverted_index.vocabulary_size idx in
  let counts = Array.make vocab_size 0 in
  Corpus.iter
    (fun d ->
      Array.iter
        (fun tok -> counts.(tok) <- counts.(tok) + 1)
        d.Pj_text.Document.tokens)
    c;
  for tok = 0 to vocab_size - 1 do
    Alcotest.(check int)
      (Printf.sprintf "cf of token %d" tok)
      counts.(tok)
      (Posting_list.collection_frequency (Inverted_index.postings idx tok))
  done

let test_empty_corpus () =
  let c = Corpus.create () in
  let idx = Inverted_index.build c in
  Alcotest.(check int) "no tokens" 0 (Inverted_index.vocabulary_size idx);
  Alcotest.(check (float 1e-9)) "avg length" 0. (Corpus.average_length c)

let suite =
  [
    ("corpus: basics", `Quick, test_corpus_basics);
    ("index: positions", `Quick, test_positions);
    ("index: missing word", `Quick, test_missing_word);
    ("index: frequencies consistent", `Quick, test_document_frequencies_consistent);
    ("index: empty corpus", `Quick, test_empty_corpus);
  ]
