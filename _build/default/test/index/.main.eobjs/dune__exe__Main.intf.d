test/index/main.mli:
