test/index/test_storage.ml: Alcotest Array Buffer Corpus Filename Fun Inverted_index List Pj_index Pj_text Pj_util Posting_list Printf Storage String Sys
