test/index/test_inverted_index.ml: Alcotest Array Corpus Inverted_index Pj_index Pj_text Posting Posting_list Printf
