test/index/main.ml: Alcotest Test_inverted_index Test_posting Test_storage
