test/index/test_posting.ml: Alcotest List Pj_index Posting Posting_list
