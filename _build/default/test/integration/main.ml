let () = Alcotest.run "proxjoin.integration" [ ("pipeline", Test_pipeline.suite) ]
