test/integration/test_pipeline.ml: Alcotest Array Filename Float Fun List Pj_core Pj_engine Pj_index Pj_matching Pj_ontology Pj_text Pj_workload String Sys
