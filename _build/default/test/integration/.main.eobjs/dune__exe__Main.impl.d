test/integration/main.ml: Alcotest Test_pipeline
