test/integration/main.mli:
