(* End-to-end pipelines across all layers: text -> index -> matching ->
   core -> engine, exercised together the way a downstream application
   would use them. *)

let figure1_text =
  "As part of the new deal, Lenovo will become the official PC partner \
   of the NBA, and it will be marketing its NBA affiliation in the US \
   and in China. The laptop-maker has a similar marketing and technology \
   partnership with the Olympic Games."

let build_figure1 () =
  let graph = Pj_ontology.Mini_wordnet.create () in
  let query =
    Pj_matching.Query.make "figure 1"
      [
        Pj_matching.Wordnet_matcher.create graph "pc-maker";
        Pj_matching.Wordnet_matcher.create graph "sports";
        Pj_matching.Wordnet_matcher.create graph "partnership";
      ]
  in
  let vocab = Pj_text.Vocab.create () in
  let doc = Pj_text.Document.of_text vocab ~id:0 figure1_text in
  (vocab, doc, query)

let test_figure1_all_scorings_agree_on_answerability () =
  let vocab, doc, query = build_figure1 () in
  let problem = Pj_matching.Match_builder.scan vocab doc query in
  List.iter
    (fun scoring ->
      match Pj_core.Best_join.solve ~dedup:true scoring problem with
      | None ->
          Alcotest.failf "%s found nothing" (Pj_core.Scoring.name scoring)
      | Some r ->
          Alcotest.(check bool) "valid" true
            (Pj_core.Matchset.is_valid r.Pj_core.Naive.matchset);
          (* Render a snippet: must contain all three marked answers. *)
          let snippet =
            Pj_engine.Snippet.render vocab doc r.Pj_core.Naive.matchset
          in
          let brackets =
            String.fold_left
              (fun n c -> if c = '[' then n + 1 else n)
              0 snippet
          in
          Alcotest.(check int)
            (Pj_core.Scoring.name scoring ^ " snippet marks")
            3 brackets)
    [
      Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.2);
      Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.2);
      Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.2);
    ]

let test_figure1_phrase_upgrade () =
  (* Adding an "olympic games" phrase raises the sports match at that
     location above the single-token expansion score. *)
  let vocab, doc, query = build_figure1 () in
  let base = Pj_matching.Match_builder.scan vocab doc query in
  let phrases = [| []; [ ([ "olympic"; "games" ], 1.0) ]; [] |] in
  let upgraded =
    Pj_matching.Phrase.scan_with_phrases vocab doc query ~phrases
  in
  let find_at list loc =
    Array.to_list list
    |> List.find_opt (fun m -> m.Pj_core.Match0.loc = loc)
  in
  (* Locate the "olympic" token. *)
  let olympic_loc = ref (-1) in
  Array.iteri
    (fun i tok ->
      if Pj_text.Vocab.word vocab tok = "olympic" then olympic_loc := i)
    doc.Pj_text.Document.tokens;
  Alcotest.(check bool) "olympic present" true (!olympic_loc >= 0);
  let base_score =
    match find_at base.(1) !olympic_loc with
    | Some m -> m.Pj_core.Match0.score
    | None -> 0.
  in
  match find_at upgraded.(1) !olympic_loc with
  | Some m ->
      Alcotest.(check (float 1e-9)) "phrase score" 1.0 m.Pj_core.Match0.score;
      Alcotest.(check bool) "upgraded" true (m.Pj_core.Match0.score > base_score)
  | None -> Alcotest.fail "phrase match missing"

let test_persistence_preserves_search () =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun t -> ignore (Pj_index.Corpus.add_text corpus t))
    [
      "lenovo nba partnership in beijing";
      "dell olympic sponsorship in turin";
      "nothing relevant here at all";
    ];
  let q =
    Pj_matching.Query.make "q"
      [
        Pj_matching.Matcher.of_table ~name:"company"
          [ ("lenovo", 1.); ("dell", 0.8) ];
        Pj_matching.Matcher.of_table ~name:"sports"
          [ ("nba", 1.); ("olympic", 0.9) ];
      ]
  in
  let scoring = Pj_core.Scoring.Win Pj_core.Scoring.win_linear in
  let search corpus =
    let s = Pj_engine.Searcher.create (Pj_index.Inverted_index.build corpus) in
    Pj_engine.Searcher.search s scoring q
    |> List.map (fun h -> (h.Pj_engine.Searcher.doc_id, h.Pj_engine.Searcher.score))
  in
  let before = search corpus in
  let path = Filename.temp_file "pj_integration" ".pjix" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pj_index.Storage.save_corpus corpus path;
      let after = search (Pj_index.Storage.load_corpus path) in
      Alcotest.(check (list (pair int (float 1e-9)))) "hits stable" before after)

let test_streams_match_batch_on_real_matchlists () =
  (* The streaming operators must agree with the batch solvers on match
     lists produced by the real matchers over a generated corpus. *)
  let spec = Pj_workload.Trec_sim.find_spec "Q7" in
  let case = Pj_workload.Trec_sim.generate ~seed:5 ~n_docs:30 ~doc_length:150 spec in
  let med = Pj_core.Scoring.med_linear in
  let max_ = Pj_core.Scoring.max_sum ~alpha:0.1 in
  Array.iter
    (fun (_, p) ->
      if not (Pj_core.Match_list.has_empty_list p) then begin
        let agree a b =
          List.length a = List.length b
          && List.for_all2
               (fun (x : Pj_core.Anchored.entry) (y : Pj_core.Anchored.entry) ->
                 x.Pj_core.Anchored.anchor = y.Pj_core.Anchored.anchor
                 && Float.abs (x.Pj_core.Anchored.score -. y.Pj_core.Anchored.score)
                    <= 1e-9)
               a b
        in
        Alcotest.(check bool) "med stream agrees" true
          (agree (Pj_core.Med_stream.run med p) (Pj_core.By_location.med med p));
        Alcotest.(check bool) "max stream agrees" true
          (agree (Pj_core.Max_stream.run max_ p) (Pj_core.By_location.max_ max_ p))
      end)
    case.Pj_workload.Trec_sim.problems

let test_parser_to_extraction_flow () =
  (* The CLI flow: parse term specs, scan documents, extract by
     location, keep high scorers. *)
  let graph = Pj_ontology.Mini_wordnet.create () in
  let query =
    match
      Pj_matching.Query_parser.parse graph
        [ "exact:conference|exact:workshop"; "date"; "city" ]
    with
    | Ok q -> q
    | Error e -> Alcotest.fail e
  in
  let vocab = Pj_text.Vocab.create () in
  let doc =
    Pj_text.Document.of_text vocab ~id:0
      "the workshop will be held in vienna on 12 june 2008 with a paper \
       deadline of 1 march 2008"
  in
  let problem = Pj_matching.Match_builder.scan vocab doc query in
  let entries =
    Pj_core.Best_join.by_location
      (Pj_core.Scoring.Win Pj_core.Scoring.win_linear)
      problem
  in
  Alcotest.(check bool) "entries found" true (entries <> []);
  match Pj_core.By_location.best_entry entries with
  | Some e ->
      let words =
        Array.to_list e.Pj_core.By_location.matchset
        |> List.map (fun m -> Pj_text.Vocab.word vocab m.Pj_core.Match0.payload)
      in
      Alcotest.(check bool) "workshop extracted" true (List.mem "workshop" words);
      Alcotest.(check bool) "vienna extracted" true (List.mem "vienna" words);
      Alcotest.(check bool) "event date extracted" true
        (List.mem "june" words || List.mem "2008" words)
  | None -> Alcotest.fail "no best entry"

let test_win_stream_over_live_scan () =
  (* Feed a live document scan into the streaming WIN operator. *)
  let vocab, doc, query = build_figure1 () in
  let problem = Pj_matching.Match_builder.scan vocab doc query in
  let w = Pj_core.Scoring.win_exponential ~alpha:0.2 in
  let streamed = Pj_core.Win_stream.run w problem in
  let batch = Pj_core.By_location.win w problem in
  Alcotest.(check int) "same entry count" (List.length batch)
    (List.length streamed)

let suite =
  [
    ("pipeline: figure 1 all scorings", `Quick, test_figure1_all_scorings_agree_on_answerability);
    ("pipeline: phrase upgrade", `Quick, test_figure1_phrase_upgrade);
    ("pipeline: persistence preserves search", `Quick, test_persistence_preserves_search);
    ("pipeline: streams on real match lists", `Quick, test_streams_match_batch_on_real_matchlists);
    ("pipeline: parser to extraction", `Quick, test_parser_to_extraction_flow);
    ("pipeline: win stream over live scan", `Quick, test_win_stream_over_live_scan);
  ]
