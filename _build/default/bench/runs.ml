(* Algorithm registry and timing helpers shared by the figure benches.

   Following Section VIII: the proposed algorithms run with the Section
   VI duplicate-handling wrapper; the naive baselines enumerate the
   cross product and keep the best valid matchset. We measure the
   wall-clock time to process a whole document batch, excluding
   match-list generation, and repeat runs to report dispersion. *)

open Pj_core

type algorithm = {
  name : string;
  solve : Match_list.problem -> Naive.result option;
}

(* The exponential scoring family used by the synthetic experiments:
   Eq. (1), Eq. (3) and Eq. (5). The paper does not state its decay
   rate; alpha = 0.01 is calibrated so that the duplicate-handler rerun
   counts at lambda = 1.0 reproduce the paper's reported "10 to 12 on
   average" (see ablation A10 for the alpha sweep). *)
let alpha = 0.01
let win_scoring = Scoring.win_exponential ~alpha
let med_scoring = Scoring.med_exponential ~alpha
let max_scoring = Scoring.max_sum ~alpha

let with_dedup solver p = fst (Dedup.best_valid solver p)

let fast_algorithms ?(win = win_scoring) ?(med = med_scoring)
    ?(max = max_scoring) () =
  [
    { name = "WIN"; solve = with_dedup (Win.best win) };
    { name = "MED"; solve = with_dedup (Med.best med) };
    { name = "MAX"; solve = with_dedup (Max_join.best max) };
  ]

let naive_algorithms ?(win = win_scoring) ?(med = med_scoring)
    ?(max = max_scoring) () =
  [
    { name = "NWIN"; solve = Naive.best_valid (Scoring.Win win) };
    { name = "NMED"; solve = Naive.best_valid (Scoring.Med med) };
    { name = "NMAX"; solve = Naive.best_valid (Scoring.Max max) };
  ]

let all_algorithms ?win ?med ?max () =
  fast_algorithms ?win ?med ?max () @ naive_algorithms ?win ?med ?max ()

(* Wall-clock seconds to solve every problem in the batch once. *)
let time_batch algorithm problems ~repetitions =
  let run () =
    Array.iter (fun p -> ignore (Sys.opaque_identity (algorithm.solve p))) problems
  in
  Pj_util.Timing.measure ~repetitions run

(* --- table printing --------------------------------------------------- *)

(* Tables go to stdout and, when --csv DIR is given, to one CSV file per
   table (named from a slug of the title). *)
let csv_dir : string option ref = ref None
let csv_channel : out_channel option ref = ref None

let close_csv () =
  match !csv_channel with
  | Some oc ->
      close_out oc;
      csv_channel := None
  | None -> ()

let set_csv_dir dir =
  close_csv ();
  csv_dir := dir

let slug_of_title title =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c
      else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
      else '_')
    (String.concat "" (String.split_on_char ' ' (List.hd (String.split_on_char ':' title))))

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv_line cells =
  match !csv_channel with
  | None -> ()
  | Some oc ->
      output_string oc (String.concat "," (List.map csv_escape cells));
      output_char oc '\n'

let print_header title columns =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-10s" "x";
  List.iter (fun c -> Printf.printf " %12s" c) columns;
  print_newline ();
  Printf.printf "%s\n" (String.make (10 + (13 * List.length columns)) '-');
  (match !csv_dir with
  | None -> ()
  | Some dir ->
      close_csv ();
      let path = Filename.concat dir (slug_of_title title ^ ".csv") in
      csv_channel := Some (open_out path));
  csv_line ("x" :: columns)

let print_row label cells =
  Printf.printf "%-10s" label;
  List.iter (fun c -> Printf.printf " %12s" c) cells;
  print_newline ();
  csv_line (label :: cells)

let seconds s = Printf.sprintf "%.4f" s

(* Track the coefficients of variation across all timed points, to
   report the dispersion figure the paper quotes (5.7% average). *)
let cov_log : float list ref = ref []

let log_cov (m : Pj_util.Timing.measurement) =
  cov_log := m.Pj_util.Timing.cov :: !cov_log;
  m

let report_cov_summary () =
  match !cov_log with
  | [] -> ()
  | covs ->
      let a = Array.of_list covs in
      Printf.printf
        "\n[timing dispersion] mean coefficient of variation over %d points: %.1f%% (max %.1f%%)\n"
        (Array.length a)
        (100. *. Pj_util.Stats.mean a)
        (100. *. snd (Pj_util.Stats.min_max a))
