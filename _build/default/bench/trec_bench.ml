(* Figures 11 and 12: the simulated TREC 2006 QA experiment.

   For each query Q1-Q7 we generate 1000 short documents (one holding
   the planted answer), build match lists with the WordNet/gazetteer
   matchers, and (a) time every algorithm over the 1000 documents,
   (b) tabulate match-list sizes, duplicates and answer ranks.

   Scoring functions follow footnote 9: WIN with g(x) = x/0.3 and
   f(x,y) = x - y; MED with g(x) = x/0.3 and f(x) = x; MAX is Eq. (5)
   with alpha = 0.1. For queries of three terms or less, WIN and MED
   are identical scoring functions, so the WIN column is omitted and
   MED used instead (as in the paper). *)

open Pj_core
open Pj_workload

let win = Scoring.win_linear
let med = Scoring.med_linear
let max_ = Scoring.max_sum ~alpha:0.1

type prepared = {
  case : Trec_sim.case;
  problems : Match_list.problem array;
}

let prepare ?(n_docs = 1000) spec =
  let case = Trec_sim.generate ~seed:42 ~n_docs spec in
  { case; problems = Array.map snd case.Trec_sim.problems }

let algorithms_for n_terms =
  let fast = Runs.fast_algorithms ~win ~med ~max:max_ () in
  let naive = Runs.naive_algorithms ~win ~med ~max:max_ () in
  let keep a = n_terms > 3 || a.Runs.name <> "WIN" in
  List.filter keep (fast @ naive)

let fig11 ~n_docs ~repetitions =
  Runs.print_header
    "Figure 11: time (s) over the TREC corpus, per query"
    [ "WIN"; "MED"; "MAX"; "NWIN"; "NMED"; "NMAX" ];
  List.iter
    (fun spec ->
      let p = prepare ~n_docs spec in
      let n_terms = List.length spec.Trec_sim.terms in
      let algs = algorithms_for n_terms in
      let time name =
        match List.find_opt (fun a -> a.Runs.name = name) algs with
        | None -> "-" (* WIN omitted: identical to MED at <= 3 terms *)
        | Some alg ->
            let m =
              Runs.log_cov (Runs.time_batch alg p.problems ~repetitions)
            in
            Runs.seconds m.Pj_util.Timing.mean_s
      in
      Runs.print_row spec.Trec_sim.id
        (List.map time [ "WIN"; "MED"; "MAX"; "NWIN"; "NMED"; "NMAX" ]))
    (Trec_sim.specs ())

let answer_rank_cell scoring case =
  let ranked = Ranker.rank scoring case.Trec_sim.problems in
  match Ranker.answer_rank_of ranked ~doc_id:case.Trec_sim.answer_doc with
  | Some r -> Format.asprintf "%a" Ranker.pp_answer_rank r
  | None -> "-"

let fig12 ~n_docs =
  Runs.print_header
    "Figure 12: match-list sizes, duplicates and answer ranks"
    [ "sizes"; "#dups"; "MED"; "MAX"; "WIN" ];
  List.iter
    (fun spec ->
      let p = prepare ~n_docs spec in
      let sizes = Trec_sim.measured_list_sizes p.case in
      let sizes_str =
        "("
        ^ String.concat ","
            (Array.to_list (Array.map (fun s -> Printf.sprintf "%.1f" s) sizes))
        ^ ")"
      in
      let dups = Printf.sprintf "%.1f" (Trec_sim.measured_duplicates p.case) in
      let n_terms = List.length spec.Trec_sim.terms in
      let med_rank = answer_rank_cell (Scoring.Med med) p.case in
      let max_rank = answer_rank_cell (Scoring.Max max_) p.case in
      let win_rank =
        if n_terms <= 3 then med_rank (* identical functions *)
        else answer_rank_cell (Scoring.Win win) p.case
      in
      Runs.print_row spec.Trec_sim.id
        [ sizes_str; dups; med_rank; max_rank; win_rank ])
    (Trec_sim.specs ())
