(* The DBWorld CFP experiment of Section VIII: match-list statistics,
   execution times per algorithm over the 25 CFPs, extraction accuracy
   per scoring function, and the first-date heuristic comparison of
   footnote 12. *)

open Pj_core
open Pj_workload

let win = Scoring.win_linear
let med = Scoring.med_linear
let max_ = Scoring.max_sum ~alpha:0.1

let run ~repetitions =
  let case = Dbworld_sim.generate ~seed:624 () in
  let problems = Array.map snd case.Dbworld_sim.problems in
  let sizes = Dbworld_sim.average_list_sizes case in
  Printf.printf
    "\n== DBWorld CFP experiment ==\navg match list sizes: conference|workshop %.1f, date %.1f, place %.1f\n"
    sizes.(0) sizes.(1) sizes.(2);
  let dups =
    Array.fold_left
      (fun acc p -> acc + Match_list.duplicate_count p)
      0 problems
  in
  Printf.printf "duplicates per doc: %.1f\n"
    (float_of_int dups /. float_of_int (Array.length problems));
  (* Times: the paper's table reports WIN, MAX and the three naives
     (MED is identical to WIN at three terms). We print all six. *)
  Runs.print_header "time (s) over the 25 CFPs"
    [ "WIN"; "MED"; "MAX"; "NWIN"; "NMED"; "NMAX" ];
  let algs = Runs.all_algorithms ~win ~med ~max:max_ () in
  Runs.print_row "cfps"
    (List.map
       (fun alg ->
         let m = Runs.log_cov (Runs.time_batch alg problems ~repetitions) in
         Runs.seconds m.Pj_util.Timing.mean_s)
       algs);
  (* Extraction accuracy per scoring function. *)
  Runs.print_header "extraction accuracy (25 CFPs)"
    [ "full"; "partial"; "traps rec." ];
  List.iter
    (fun (name, scoring) ->
      let solver p = Best_join.solve ~dedup:true scoring p in
      let results = Dbworld_sim.evaluate case solver in
      let full = ref 0 and partial = ref 0 and traps = ref 0 in
      Array.iter
        (fun ((msg : Dbworld_sim.message), ex) ->
          match ex with
          | Some e ->
              let d = e.Dbworld_sim.date_correct
              and pl = e.Dbworld_sim.place_correct in
              if d && pl then incr full else if d || pl then incr partial;
              if msg.Dbworld_sim.is_extension && d then incr traps
          | None -> ())
        results;
      Runs.print_row name
        [
          Printf.sprintf "%d/25" !full;
          Printf.sprintf "%d/25" !partial;
          Printf.sprintf "%d/7" !traps;
        ])
    [
      ("WIN", Scoring.Win win);
      ("MED", Scoring.Med med);
      ("MAX", Scoring.Max max_);
    ];
  (* Footnote 12: the first-date strawman. *)
  let heuristic = Dbworld_sim.first_date_heuristic case in
  let wrong =
    Array.fold_left (fun acc (_, ok) -> if ok then acc else acc + 1) 0 heuristic
  in
  Printf.printf
    "first-date heuristic: wrong on %d of 25 CFPs (the %d deadline-extension messages)\n"
    wrong
    (Array.fold_left
       (fun acc ((m : Dbworld_sim.message), _) ->
         if m.Dbworld_sim.is_extension then acc + 1 else acc)
       0 heuristic)
