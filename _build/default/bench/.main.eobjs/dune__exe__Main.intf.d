bench/main.mli:
