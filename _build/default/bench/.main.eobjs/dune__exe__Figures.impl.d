bench/figures.ml: Array List Pj_core Pj_util Pj_workload Printf Runs Synthetic
