bench/main.ml: Ablations Arg Bechamel_suite Cmd Cmdliner Dbworld_bench Figures List Printf Runs String Sys Term Trec_bench Unix
