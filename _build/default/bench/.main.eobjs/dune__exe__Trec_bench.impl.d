bench/trec_bench.ml: Array Format List Match_list Pj_core Pj_util Pj_workload Printf Ranker Runs Scoring String Trec_sim
