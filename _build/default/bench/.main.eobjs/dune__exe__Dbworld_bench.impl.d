bench/dbworld_bench.ml: Array Best_join Dbworld_sim List Match_list Pj_core Pj_util Pj_workload Printf Runs Scoring
