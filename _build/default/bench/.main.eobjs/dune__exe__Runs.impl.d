bench/runs.ml: Array Char Dedup Filename List Match_list Max_join Med Naive Pj_core Pj_util Printf Scoring String Sys Win
