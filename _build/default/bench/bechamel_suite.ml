(* Statistically robust micro-benchmarks: one Bechamel test group per
   paper table/figure, each benchmarking one representative workload
   cell (a single synthetic or corpus document), so the per-document
   costs underlying the wall-clock sweeps can be examined with OLS
   estimates rather than raw timings. *)

open Bechamel
open Toolkit
open Pj_core
open Pj_workload

let problem_of params seed =
  Synthetic.generate params (Pj_util.Prng.create seed)

let solve_test name solve problem =
  Test.make ~name (Staged.stage (fun () -> Sys.opaque_identity (solve problem)))

let synthetic_group ~group_name params =
  let problem = problem_of params 77 in
  Test.make_grouped ~name:group_name
    (List.map
       (fun alg -> solve_test alg.Runs.name alg.Runs.solve problem)
       (Runs.all_algorithms ()))

(* Fig 6 cell: |Q| = 6 (deep subset DP vs big cross product). *)
let fig6_tests =
  synthetic_group ~group_name:"fig6(|Q|=6)"
    { Synthetic.default with Synthetic.n_terms = 6 }

(* Fig 7 cell: 40 matches per document. *)
let fig7_tests =
  synthetic_group ~group_name:"fig7(total=40)"
    { Synthetic.default with Synthetic.total_matches = 40 }

(* Fig 8/9 cell: lambda = 1.0 (60% duplicates). *)
let fig9_tests =
  synthetic_group ~group_name:"fig9(lambda=1)"
    { Synthetic.default with Synthetic.lambda = 1.0 }

(* Fig 10 cell: s = 4 (extreme skew; naives catch up). *)
let fig10_tests =
  synthetic_group ~group_name:"fig10(s=4)"
    { Synthetic.default with Synthetic.zipf_s = 4.0 }

(* Fig 11 cell: one Q2 TREC document (4 terms, the hardest query). *)
let fig11_tests =
  let case =
    Trec_sim.generate ~seed:5 ~n_docs:40 ~doc_length:475
      (Trec_sim.find_spec "Q2")
  in
  (* Pick the document with the largest total match count: the most
     interesting one for the solvers. *)
  let _, problem =
    Array.fold_left
      (fun (best_n, best) (_, p) ->
        let n = Match_list.total_size p in
        if n > best_n then (n, p) else (best_n, best))
      (-1, [||])
      case.Trec_sim.problems
  in
  Test.make_grouped ~name:"fig11(TREC Q2 doc)"
    (List.map
       (fun alg -> solve_test alg.Runs.name alg.Runs.solve problem)
       (Runs.all_algorithms ~win:Scoring.win_linear ~med:Scoring.med_linear
          ~max:(Scoring.max_sum ~alpha:0.1) ()))

(* DBWorld cell: one CFP message (73-entry place list). *)
let dbworld_tests =
  let case = Dbworld_sim.generate ~seed:624 () in
  let _, problem = case.Dbworld_sim.problems.(8) in
  Test.make_grouped ~name:"dbworld(CFP doc)"
    (List.map
       (fun alg -> solve_test alg.Runs.name alg.Runs.solve problem)
       (Runs.all_algorithms ~win:Scoring.win_linear ~med:Scoring.med_linear
          ~max:(Scoring.max_sum ~alpha:0.1) ()))

let all_tests =
  Test.make_grouped ~name:"proxjoin"
    [
      fig6_tests; fig7_tests; fig9_tests; fig10_tests; fig11_tests;
      dbworld_tests;
    ]

let run ~quota_s =
  Printf.printf
    "\n== Bechamel micro-benchmarks (ns per document, OLS estimate) ==\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-40s %14.0f ns/run\n" name est)
    rows
