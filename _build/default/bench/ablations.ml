(* Ablation benches for the design choices called out in DESIGN.md. *)

open Pj_core
open Pj_workload

let m ?(score = 1.) loc = Match0.make ~loc ~score ()

(* A1: WIN vs MED on the Figure 2 scenario — equal enclosing windows,
   different clusteredness. WIN cannot separate the two matchsets; MED
   prefers the clustered one. *)
let fig2_ablation () =
  Printf.printf "\n== A1: Figure 2 scenario (equal windows) ==\n";
  let spread = [| m 0; m 4; m 8; m 12 |] in
  let clustered = [| m 0; m 10; m 11; m 12 |] in
  let w = Scoring.win_exponential ~alpha:0.1 in
  let d = Scoring.med_exponential ~alpha:0.1 in
  Printf.printf "window: spread %d, clustered %d\n" (Matchset.window spread)
    (Matchset.window clustered);
  Printf.printf "WIN score: spread %.4f, clustered %.4f (indistinguishable)\n"
    (Scoring.score_win w spread)
    (Scoring.score_win w clustered);
  Printf.printf "MED score: spread %.4f, clustered %.4f (clustered preferred)\n"
    (Scoring.score_med d spread)
    (Scoring.score_med d clustered)

(* A2: the specialized MAX algorithm vs the general interval-pair
   envelope approach of Section V. *)
let max_ablation ~n_docs ~repetitions =
  Printf.printf "\n== A2: specialized vs general MAX algorithm ==\n";
  let params = { Synthetic.default with Synthetic.doc_length = 200 } in
  let problems = Synthetic.generate_batch ~seed:7 ~n_docs params in
  let time name solve =
    let mes =
      Runs.log_cov
        (Runs.time_batch { Runs.name; solve } problems ~repetitions)
    in
    Printf.printf "%-24s %.4fs\n" name mes.Pj_util.Timing.mean_s
  in
  time "MAX specialized" (Max_join.best Runs.max_scoring);
  time "MAX general envelope" (Max_join.best_general Runs.max_scoring)

(* A3: cost of the duplicate handler when duplicates are rare or
   frequent. *)
let dedup_ablation ~n_docs ~repetitions =
  Printf.printf "\n== A3: duplicate-handler overhead ==\n";
  List.iter
    (fun lambda ->
      let params = { Synthetic.default with Synthetic.lambda } in
      let problems = Synthetic.generate_batch ~seed:8 ~n_docs params in
      let raw =
        Runs.log_cov
          (Runs.time_batch
             { Runs.name = "raw"; solve = Win.best Runs.win_scoring }
             problems ~repetitions)
      in
      let wrapped =
        Runs.log_cov
          (Runs.time_batch
             {
               Runs.name = "dedup";
               solve = Runs.with_dedup (Win.best Runs.win_scoring);
             }
             problems ~repetitions)
      in
      Printf.printf
        "lambda %.1f: WIN without dedup %.4fs, with dedup %.4fs (x%.2f)\n"
        lambda raw.Pj_util.Timing.mean_s wrapped.Pj_util.Timing.mean_s
        (wrapped.Pj_util.Timing.mean_s /. Float.max 1e-9 raw.Pj_util.Timing.mean_s))
    [ 1.0; 2.0; 3.0 ]

(* A4: best-matchset-by-location (Section VII) vs overall best. *)
let byloc_ablation ~n_docs ~repetitions =
  Printf.printf "\n== A4: by-location vs overall-best runtimes ==\n";
  let problems = Synthetic.generate_batch ~seed:9 ~n_docs Synthetic.default in
  let time name f =
    let run () = Array.iter (fun p -> ignore (Sys.opaque_identity (f p))) problems in
    let mes = Runs.log_cov (Pj_util.Timing.measure ~repetitions run) in
    Printf.printf "%-24s %.4fs\n" name mes.Pj_util.Timing.mean_s
  in
  time "WIN overall" (fun p -> ignore (Win.best Runs.win_scoring p));
  time "WIN by-location" (fun p -> ignore (By_location.win Runs.win_scoring p));
  time "MED overall" (fun p -> ignore (Med.best Runs.med_scoring p));
  time "MED by-location" (fun p -> ignore (By_location.med Runs.med_scoring p));
  time "MAX overall" (fun p -> ignore (Max_join.best Runs.max_scoring p));
  time "MAX by-location" (fun p -> ignore (By_location.max_ Runs.max_scoring p))

(* A6: the duplicate-aware WIN dynamic program (our extension) vs the
   paper's generic Section VI wrapper, across duplicate frequencies. *)
let winvalid_ablation ~n_docs ~repetitions =
  Printf.printf
    "\n== A6: duplicate-aware WIN DP vs Section VI wrapper ==\n";
  List.iter
    (fun lambda ->
      let params = { Synthetic.default with Synthetic.lambda } in
      let problems = Synthetic.generate_batch ~seed:12 ~n_docs params in
      let wrapper =
        Runs.log_cov
          (Runs.time_batch
             {
               Runs.name = "wrapper";
               solve = Runs.with_dedup (Win.best Runs.win_scoring);
             }
             problems ~repetitions)
      in
      let direct =
        Runs.log_cov
          (Runs.time_batch
             { Runs.name = "direct"; solve = Win.best_valid Runs.win_scoring }
             problems ~repetitions)
      in
      Printf.printf
        "lambda %.1f: wrapper %.4fs, duplicate-aware DP %.4fs (x%.1f)\n"
        lambda wrapper.Pj_util.Timing.mean_s direct.Pj_util.Timing.mean_s
        (wrapper.Pj_util.Timing.mean_s
        /. Float.max 1e-9 direct.Pj_util.Timing.mean_s))
    [ 1.0; 2.0; 3.0 ]

(* A7: the bounded-score streaming operators (Section VII future work)
   vs the batch by-location solvers: equal results; the interesting
   numbers are the buffered-state high-water marks, which stay far below
   the input size. *)
let stream_ablation ~n_docs ~repetitions =
  Printf.printf
    "\n== A7: streaming by-location operators (bounded-score emission) ==\n";
  let problems = Synthetic.generate_batch ~seed:13 ~n_docs Synthetic.default in
  let time name f =
    let run () = Array.iter (fun p -> ignore (Sys.opaque_identity (f p))) problems in
    let mes = Runs.log_cov (Pj_util.Timing.measure ~repetitions run) in
    Printf.printf "%-26s %.4fs\n" name mes.Pj_util.Timing.mean_s
  in
  time "MED by-location (batch)" (fun p -> By_location.med Runs.med_scoring p);
  time "MED stream" (fun p -> Med_stream.run Runs.med_scoring p);
  time "MAX by-location (batch)" (fun p -> By_location.max_ Runs.max_scoring p);
  time "MAX stream" (fun p -> Max_stream.run Runs.max_scoring p);
  (* Pending-state high-water mark on one representative document. *)
  let p = problems.(0) in
  let med_peak =
    let g_bound =
      Array.to_list p
      |> List.concat_map Array.to_list
      |> List.fold_left
           (fun acc m ->
             Float.max acc (Runs.med_scoring.Scoring.med_g 0 m.Match0.score))
           neg_infinity
    in
    let t = Med_stream.create Runs.med_scoring ~n_terms:(Array.length p) ~g_bound in
    let peak = ref 0 in
    Match_list.iter_in_location_order p (fun ~term m ->
        ignore (Med_stream.feed t ~term m);
        peak := Stdlib.max !peak (Med_stream.pending_count t));
    ignore (Med_stream.finish t);
    !peak
  in
  Printf.printf
    "MED stream pending high-water mark: %d anchors (of %d matches)\n" med_peak
    (Match_list.total_size p)

(* A8: search-engine candidate pruning via Scoring.upper_bound. *)
let search_ablation ~repetitions =
  Printf.printf
    "\n== A8: top-k search with and without upper-bound pruning ==\n";
  (* A corpus where most documents contain many weak matches (expensive
     to solve, low upper bound) and a few contain one strong tight
     cluster: the shape where pruning pays. *)
  let rng = Pj_util.Prng.create 14 in
  let corpus = Pj_index.Corpus.create () in
  let n_docs = 400 in
  for d = 0 to n_docs - 1 do
    let strong = d mod 10 = 0 in
    let vec = Pj_util.Vec.create () in
    for _ = 1 to 300 do
      Pj_util.Vec.push vec (Pj_workload.Textgen.random_filler rng)
    done;
    let place k tok = Pj_util.Vec.set vec k tok in
    if strong then begin
      place 10 "alpha";
      place 11 "beta"
    end
    else
      (* weak: many scattered low-scoring variants *)
      for _ = 1 to 40 do
        place (Pj_util.Prng.int rng 300)
          (if Pj_util.Prng.bool rng then "alphaweak" else "betaweak")
      done;
    ignore (Pj_index.Corpus.add_tokens corpus (Pj_util.Vec.to_array vec))
  done;
  let searcher =
    Pj_engine.Searcher.create (Pj_index.Inverted_index.build corpus)
  in
  let q =
    Pj_matching.Query.make "ab"
      [
        Pj_matching.Matcher.of_table ~name:"a"
          [ ("alpha", 1.); ("alphaweak", 0.3) ];
        Pj_matching.Matcher.of_table ~name:"b"
          [ ("beta", 1.); ("betaweak", 0.3) ];
      ]
  in
  let scoring = Scoring.Win (Scoring.win_exponential ~alpha:0.3) in
  let time name prune =
    let run () =
      ignore
        (Sys.opaque_identity
           (Pj_engine.Searcher.search ~k:10 ~prune searcher scoring q))
    in
    let mes = Runs.log_cov (Pj_util.Timing.measure ~repetitions run) in
    Printf.printf "%-26s %.4fs\n" name mes.Pj_util.Timing.mean_s
  in
  time "search without pruning" false;
  time "search with pruning" true

(* A10: sensitivity of the Section VI rerun counts to the distance-decay
   rate alpha. Our Figure 8 counts at lambda = 1.0 exceed the paper's
   10-12; the hypothesis recorded in EXPERIMENTS.md is that stronger
   decay makes co-located (duplicate) matchsets dominate the
   unconstrained optimum, forcing more branch-and-bound work. *)
let alpha_ablation ~n_docs =
  Printf.printf
    "\n== A10: dedup reruns vs decay rate alpha (lambda = 1.0, 60%% dups) ==\n";
  let params = { Synthetic.default with Synthetic.lambda = 1.0 } in
  let problems = Synthetic.generate_batch ~seed:16 ~n_docs params in
  List.iter
    (fun alpha ->
      let invocations solver =
        let total =
          Array.fold_left
            (fun acc p ->
              let _, stats = Dedup.best_valid solver p in
              acc + stats.Dedup.invocations)
            0 problems
        in
        float_of_int total /. float_of_int (Array.length problems)
      in
      Printf.printf
        "alpha %5.2f: WIN %7.2f  MED %7.2f  MAX %7.2f runs/doc\n" alpha
        (invocations (Win.best (Scoring.win_exponential ~alpha)))
        (invocations (Med.best (Scoring.med_exponential ~alpha)))
        (invocations (Max_join.best (Scoring.max_sum ~alpha))))
    [ 0.01; 0.05; 0.1; 0.5; 1.0 ]

(* A9: multicore batch solving. *)
let parallel_ablation ~n_docs ~repetitions =
  Printf.printf "\n== A9: multicore batch solving (OCaml 5 domains) ==\n";
  let problems =
    Synthetic.generate_batch ~seed:15 ~n_docs:(4 * n_docs) Synthetic.default
  in
  let scoring = Scoring.Med Runs.med_scoring in
  let time name domains =
    let run () =
      ignore (Sys.opaque_identity (Batch.solve_all ~domains scoring problems))
    in
    let mes = Runs.log_cov (Pj_util.Timing.measure ~repetitions run) in
    Printf.printf "%-26s %.4fs\n" name mes.Pj_util.Timing.mean_s;
    mes.Pj_util.Timing.mean_s
  in
  let seq = time "1 domain" 1 in
  let par =
    time
      (Printf.sprintf "%d domains" (Pj_util.Parallel.recommended_domains ()))
      (Pj_util.Parallel.recommended_domains ())
  in
  Printf.printf "speedup: x%.2f over %d documents\n" (seq /. Float.max 1e-9 par)
    (Array.length problems)

(* A5: the Section VIII naive-switch heuristic on a skewed workload. *)
let switch_ablation ~n_docs ~repetitions =
  Printf.printf "\n== A5: naive-switch heuristic at extreme skew (s = 4) ==\n";
  let params = { Synthetic.default with Synthetic.zipf_s = 4.0 } in
  let problems = Synthetic.generate_batch ~seed:10 ~n_docs params in
  let scoring = Scoring.Med Runs.med_scoring in
  let time name algorithm =
    let solve p = Best_join.solve ~algorithm scoring p in
    let mes =
      Runs.log_cov (Runs.time_batch { Runs.name = name; solve } problems ~repetitions)
    in
    Printf.printf "%-24s %.4fs\n" name mes.Pj_util.Timing.mean_s
  in
  let switched =
    Array.fold_left
      (fun acc p -> if Best_join.switch_to_naive p then acc + 1 else acc)
      0 problems
  in
  Printf.printf "documents eligible for the switch: %d/%d\n" switched
    (Array.length problems);
  time "MED always fast" Best_join.Fast;
  time "MED always naive" Best_join.Naive_alg;
  time "MED auto (switch)" Best_join.Auto
