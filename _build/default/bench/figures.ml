(* Figures 6-10: the synthetic experiments of Section VIII.

   Defaults follow the paper: 500 documents, 4 query terms, 30 matches
   per document, lambda = 2.0, Zipf s = 1.1, 1000-word documents.
   [scale] shrinks the document count for quick runs. *)

open Pj_workload

type config = {
  n_docs : int;
  repetitions : int;
  seed : int;
}

let default_config = { n_docs = 500; repetitions = 3; seed = 2009 }

let base_params = Synthetic.default

let batch cfg params =
  Synthetic.generate_batch ~seed:cfg.seed ~n_docs:cfg.n_docs params

let time_all cfg problems =
  List.map
    (fun alg ->
      let m = Runs.log_cov (Runs.time_batch alg problems ~repetitions:cfg.repetitions) in
      (alg.Runs.name, m.Pj_util.Timing.mean_s))
    (Runs.all_algorithms ())

let algorithm_columns =
  List.map (fun a -> a.Runs.name) (Runs.all_algorithms ())

(* Figure 6: execution time vs number of query terms (2..7). *)
let fig6 cfg =
  Runs.print_header
    "Figure 6: time (s) vs number of query terms (500 docs, 30 matches/doc)"
    algorithm_columns;
  List.iter
    (fun n_terms ->
      let problems = batch cfg { base_params with Synthetic.n_terms } in
      let times = time_all cfg problems in
      Runs.print_row (string_of_int n_terms)
        (List.map (fun (_, t) -> Runs.seconds t) times))
    [ 2; 3; 4; 5; 6; 7 ]

(* Figure 7: execution time vs total match-list size per document. *)
let fig7 cfg =
  Runs.print_header
    "Figure 7: time (s) vs total size of match lists per document (|Q| = 4)"
    algorithm_columns;
  List.iter
    (fun total_matches ->
      let problems = batch cfg { base_params with Synthetic.total_matches } in
      let times = time_all cfg problems in
      Runs.print_row (string_of_int total_matches)
        (List.map (fun (_, t) -> Runs.seconds t) times))
    [ 10; 20; 30; 40 ]

let lambdas = [ 1.0; 1.5; 2.0; 2.5; 3.0 ]

(* Figure 8: duplicate-unaware solver invocations per document vs
   lambda (the duplicate-frequency control). *)
let fig8 cfg =
  Runs.print_header
    "Figure 8: duplicate-unaware runs per document vs lambda"
    ([ "dup freq" ] @ [ "WIN"; "MED"; "MAX" ]);
  List.iter
    (fun lambda ->
      let problems = batch cfg { base_params with Synthetic.lambda } in
      let dup_freq =
        let d =
          Array.fold_left
            (fun acc p -> acc + Pj_core.Match_list.duplicate_count p)
            0 problems
        and t =
          Array.fold_left
            (fun acc p -> acc + Pj_core.Match_list.total_size p)
            0 problems
        in
        float_of_int d /. float_of_int t
      in
      let invocations solver =
        let total =
          Array.fold_left
            (fun acc p ->
              let _, stats = Pj_core.Dedup.best_valid solver p in
              acc + stats.Pj_core.Dedup.invocations)
            0 problems
        in
        float_of_int total /. float_of_int (Array.length problems)
      in
      let cells =
        [
          Printf.sprintf "%.1f%%" (100. *. dup_freq);
          Printf.sprintf "%.2f" (invocations (Pj_core.Win.best Runs.win_scoring));
          Printf.sprintf "%.2f" (invocations (Pj_core.Med.best Runs.med_scoring));
          Printf.sprintf "%.2f"
            (invocations (Pj_core.Max_join.best Runs.max_scoring));
        ]
      in
      Runs.print_row (Printf.sprintf "%.1f" lambda) cells)
    lambdas

(* Figure 9: execution time vs lambda. *)
let fig9 cfg =
  Runs.print_header "Figure 9: time (s) vs lambda (duplicate frequency)"
    algorithm_columns;
  List.iter
    (fun lambda ->
      let problems = batch cfg { base_params with Synthetic.lambda } in
      let times = time_all cfg problems in
      Runs.print_row (Printf.sprintf "%.1f" lambda)
        (List.map (fun (_, t) -> Runs.seconds t) times))
    lambdas

(* Figure 10: execution time vs Zipf skewness s. *)
let fig10 cfg =
  Runs.print_header
    "Figure 10: time (s) vs skewness s of query-term popularities"
    algorithm_columns;
  List.iter
    (fun zipf_s ->
      let problems = batch cfg { base_params with Synthetic.zipf_s } in
      let times = time_all cfg problems in
      Runs.print_row (Printf.sprintf "%.1f" zipf_s)
        (List.map (fun (_, t) -> Runs.seconds t) times))
    [ 1.1; 2.0; 3.0; 4.0 ]
