let add_u64le buf n = Buffer.add_int64_le buf (Int64.of_int n)

(* Core writer, parameterized on how to fetch one term's postings so
   [write_sharded] can concatenate per-shard lists without rebuilding
   a monolithic index first. *)
let write_with ~corpus ~counts ~postings_of path =
  let vocab = Pj_index.Corpus.vocab corpus in
  let n_docs = Pj_index.Corpus.size corpus in
  let n_words = Pj_text.Vocab.size vocab in
  if
    Array.length counts = 0
    || Array.exists (fun c -> c < 0) counts
    || Array.fold_left ( + ) 0 counts <> n_docs
  then invalid_arg "Ondisk.Writer: shard layout does not cover the corpus";
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf File_format.magic;
  Buffer.add_char buf (Char.chr File_format.version);
  (* Vocabulary: words in id order, so the reader re-interns to the
     same ids. *)
  let vocab_off = Buffer.length buf in
  Pj_index.Storage.write_varint buf n_words;
  for id = 0 to n_words - 1 do
    Pj_index.Storage.write_string buf (Pj_text.Vocab.word vocab id)
  done;
  (* Shard layout: contiguous doc-id range sizes, as in format v3. *)
  let layout_off = Buffer.length buf in
  Pj_index.Storage.write_varint buf (Array.length counts);
  Array.iter (Pj_index.Storage.write_varint buf) counts;
  (* Documents: a fixed-width offset index (random access by doc id in
     one u64 read), then the varint token runs. *)
  let doc_index_off = Buffer.length buf in
  let doc_data_off = doc_index_off + (8 * n_docs) in
  let docs = Buffer.create (1 lsl 20) in
  let total_tokens = ref 0 in
  for i = 0 to n_docs - 1 do
    add_u64le buf (doc_data_off + Buffer.length docs);
    let d = Pj_index.Corpus.document corpus i in
    let len = Pj_text.Document.length d in
    total_tokens := !total_tokens + len;
    Pj_index.Storage.write_varint docs len;
    Array.iter (Pj_index.Storage.write_varint docs) d.Pj_text.Document.tokens
  done;
  Buffer.add_buffer buf docs;
  (* Term dictionary (fixed-width: u64 blob offset + u32 df per token
     id; offset 0 = no postings) and the block-compressed blobs. *)
  let dict_off = Buffer.length buf in
  let blobs_off = dict_off + (File_format.dict_entry_size * n_words) in
  let blobs = Buffer.create (1 lsl 20) in
  let n_postings = ref 0 and n_positions = ref 0 in
  for tok = 0 to n_words - 1 do
    let posts =
      Array.of_list (Pj_index.Posting_list.to_list (postings_of tok))
    in
    let df = Array.length posts in
    if df = 0 then begin
      add_u64le buf 0;
      Buffer.add_int32_le buf 0l
    end
    else begin
      add_u64le buf (blobs_off + Buffer.length blobs);
      Buffer.add_int32_le buf (Int32.of_int df);
      Codec.encode blobs posts;
      n_postings := !n_postings + df;
      Array.iter
        (fun p ->
          n_positions :=
            !n_positions + Array.length p.Pj_index.Posting.positions)
        posts
    end
  done;
  Buffer.add_buffer buf blobs;
  (* Trailer: section offsets and totals (CRC-protected), then the
     CRC-32 of everything since the header, then the end magic. *)
  List.iter (add_u64le buf)
    [
      vocab_off;
      layout_off;
      doc_index_off;
      doc_data_off;
      dict_off;
      blobs_off;
      n_docs;
      n_words;
      !total_tokens;
      !n_postings;
      !n_positions;
    ];
  let contents = Buffer.contents buf in
  let crc =
    Pj_index.Storage.crc32 ~pos:File_format.header_size
      ~len:(String.length contents - File_format.header_size)
      contents
  in
  let footer = Bytes.create 4 in
  Bytes.set_int32_le footer 0 crc;
  Buffer.add_bytes buf footer;
  Buffer.add_string buf File_format.end_magic;
  Pj_index.Storage.write_file_atomic ~fp_write:"ondisk.save.write"
    ~fp_rename:"ondisk.save.rename" path buf

let write ?counts idx path =
  let corpus = Pj_index.Inverted_index.corpus idx in
  let counts =
    match counts with
    | Some c -> c
    | None -> [| Pj_index.Corpus.size corpus |]
  in
  write_with ~corpus ~counts
    ~postings_of:(Pj_index.Inverted_index.postings idx)
    path

let write_sharded sharded path =
  let corpus = Pj_index.Sharded_index.corpus sharded in
  let n = Pj_index.Sharded_index.n_shards sharded in
  (* Shard postings carry global doc ids over disjoint increasing
     ranges, so per-term concatenation in shard order is already the
     monolithic sorted list. *)
  let postings_of tok =
    let lists = ref [] in
    for i = n - 1 downto 0 do
      let pl =
        Pj_index.Inverted_index.postings (Pj_index.Sharded_index.shard sharded i) tok
      in
      if Pj_index.Posting_list.document_frequency pl > 0 then
        lists := Pj_index.Posting_list.to_list pl :: !lists
    done;
    Pj_index.Posting_list.of_postings (List.concat !lists)
  in
  write_with ~corpus ~counts:(Pj_index.Sharded_index.counts sharded)
    ~postings_of path
