let block_size = 128
let n_blocks ~df = (df + block_size - 1) / block_size

(* One skip entry: u32le last doc id, u32le block offset (relative to
   the end of the skip table), u8 quantized block-max impact. *)
let skip_entry_size = 9

(* --- impact quantization ----------------------------------------------- *)

let levels = 255.

let clamp_u8 q = if q < 0 then 0 else if q > 255 then 255 else q
let quantize v = clamp_u8 (int_of_float (Float.round (v *. levels)))
let quantize_up v = clamp_u8 (int_of_float (Float.ceil (v *. levels)))
let dequantize q = float_of_int q /. levels
let quantization_error_bound = 0.5 /. levels

(* --- encoding ---------------------------------------------------------- *)

let u32_max = 0xFFFFFFFF

let add_u32le buf n = Buffer.add_int32_le buf (Int32.of_int n)

let encode out (posts : Pj_index.Posting.t array) =
  let df = Array.length posts in
  if df > 0 then begin
    let nb = n_blocks ~df in
    let blocks = Buffer.create 256 in
    let skip = Array.make nb (0, 0, 0) in
    let prev_doc = ref (-1) in
    for b = 0 to nb - 1 do
      let off = Buffer.length blocks in
      if off > u32_max then
        invalid_arg "Ondisk.Codec.encode: term blob exceeds 4 GiB";
      let lo = b * block_size and hi = Stdlib.min df ((b + 1) * block_size) in
      let qmax = ref 0 in
      for i = lo to hi - 1 do
        let p = posts.(i) in
        if p.Pj_index.Posting.doc_id <= !prev_doc then
          invalid_arg "Ondisk.Codec.encode: doc ids not strictly increasing";
        if p.Pj_index.Posting.doc_id > u32_max then
          invalid_arg "Ondisk.Codec.encode: doc id exceeds u32";
        Pj_index.Storage.write_varint blocks
          (p.Pj_index.Posting.doc_id - !prev_doc);
        prev_doc := p.Pj_index.Posting.doc_id;
        let tf = Array.length p.Pj_index.Posting.positions in
        let impact = Pj_index.Posting_list.impact ~tf in
        Buffer.add_char blocks (Char.chr (quantize impact));
        qmax := Stdlib.max !qmax (quantize_up impact);
        Pj_index.Storage.write_varint blocks tf;
        let prev_pos = ref (-1) in
        Array.iter
          (fun pos ->
            Pj_index.Storage.write_varint blocks (pos - !prev_pos);
            prev_pos := pos)
          p.Pj_index.Posting.positions
      done;
      skip.(b) <- (!prev_doc, off, !qmax)
    done;
    Array.iter
      (fun (last, off, qmax) ->
        add_u32le out last;
        add_u32le out off;
        Buffer.add_char out (Char.chr qmax))
      skip;
    Buffer.add_buffer out blocks
  end

(* --- decoding ---------------------------------------------------------- *)

type reader = { buf : Layout.buf; blob : int; df : int }

let skip_last r b = Layout.u32le r.buf (r.blob + (b * skip_entry_size))
let skip_off r b = Layout.u32le r.buf (r.blob + (b * skip_entry_size) + 4)
let skip_qmax r b = Layout.u8 r.buf (r.blob + (b * skip_entry_size) + 8)
let blocks_start r = r.blob + (n_blocks ~df:r.df * skip_entry_size)

let block_doc_count r b =
  Stdlib.min block_size (r.df - (b * block_size))

type state = {
  r : reader;
  nb : int;
  mutable block : int;  (* current block; [nb] once exhausted *)
  mutable remaining : int;  (* postings after the current one in this block *)
  mutable off : int;  (* absolute offset of the next unread posting *)
  mutable doc : int;  (* current doc id; -1 exhausted *)
  mutable qscore : int;
  mutable tf : int;
  mutable pos_off : int;  (* absolute offset of the current positions run *)
}

(* Decode the posting at [c.off] into the cursor fields; positions are
   only located (their offset recorded), not decoded. *)
let read_posting c =
  let pos = ref c.off in
  let delta = Layout.read_varint c.r.buf ~pos in
  if delta <= 0 then failwith "Ondisk: corrupt posting block (zero doc delta)";
  c.doc <- c.doc + delta;
  c.qscore <- Layout.u8 c.r.buf !pos;
  incr pos;
  c.tf <- Layout.read_varint c.r.buf ~pos;
  c.pos_off <- !pos;
  for _ = 1 to c.tf do
    ignore (Layout.read_varint c.r.buf ~pos)
  done;
  c.off <- !pos;
  c.remaining <- c.remaining - 1

let exhaust c =
  c.block <- c.nb;
  c.doc <- -1

(* Jump straight to block [b]: the skip table supplies both the byte
   offset and the doc-id delta seed (block [b-1]'s last document). *)
let enter_block c b =
  if b >= c.nb then exhaust c
  else begin
    c.block <- b;
    c.off <- blocks_start c.r + skip_off c.r b;
    c.remaining <- block_doc_count c.r b;
    c.doc <- (if b = 0 then -1 else skip_last c.r (b - 1));
    read_posting c
  end

let state_create r =
  let c =
    {
      r;
      nb = n_blocks ~df:r.df;
      block = 0;
      remaining = 0;
      off = 0;
      doc = -1;
      qscore = 0;
      tf = 0;
      pos_off = 0;
    }
  in
  if c.nb = 0 then exhaust c else enter_block c 0;
  c

let state_next c =
  if c.doc >= 0 then
    if c.remaining > 0 then read_posting c else enter_block c (c.block + 1)

let state_positions c =
  let pos = ref c.pos_off in
  let prev = ref (-1) in
  Array.init c.tf (fun _ ->
      let p = !prev + Layout.read_varint c.r.buf ~pos in
      prev := p;
      p)

let state_current c =
  if c.doc < 0 then None
  else
    Some (Pj_index.Posting.make ~doc_id:c.doc ~positions:(state_positions c))

(* First block in [from, nb) whose last doc id reaches [target]:
   gallop to bracket it, then binary-search the bracket — O(log
   distance) skip-entry probes, never a block decode. *)
let find_block c ~from target =
  if from >= c.nb then c.nb
  else begin
    let step = ref 1 and hi = ref from in
    while !hi < c.nb && skip_last c.r !hi < target do
      hi := !hi + !step;
      step := !step * 2
    done;
    let lo = ref (Stdlib.max from (!hi - (!step / 2))) and hi = ref (Stdlib.min !hi (c.nb - 1)) in
    if skip_last c.r !hi < target then c.nb
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if skip_last c.r mid < target then lo := mid + 1 else hi := mid
      done;
      !lo
    end
  end

let state_seek c target =
  if c.doc >= 0 && c.doc < target then
    if target <= skip_last c.r c.block then
      (* The target lives in the current block: linear within it. *)
      while c.doc >= 0 && c.doc < target do
        state_next c
      done
    else begin
      let b = find_block c ~from:(c.block + 1) target in
      if b >= c.nb then exhaust c
      else begin
        enter_block c b;
        (* Guaranteed to stop: this block's last doc id >= target. *)
        while c.doc < target do
          read_posting c
        done
      end
    end

let state_block_max c = if c.doc < 0 then 0. else dequantize (skip_qmax c.r c.block)
let state_block_last c = if c.doc < 0 then -1 else skip_last c.r c.block

let cursor r =
  let c = state_create r in
  Pj_index.Posting_list.custom
    ~current:(fun () -> state_current c)
    ~current_doc:(fun () -> c.doc)
    ~next:(fun () -> state_next c)
    ~seek:(fun target -> state_seek c target)
    ~block_max_score:(fun () -> state_block_max c)
    ~block_last_doc:(fun () -> state_block_last c)

(* Range restriction for shard views: start at [lo], report exhaustion
   at the first document >= [hi]. The underlying state still sits on
   that document, but every accessor masks it, so the shard behaves
   exactly like an index built over the sub-corpus. *)
let cursor_in_range r ~lo ~hi =
  let c = state_create r in
  state_seek c lo;
  let live () = c.doc >= 0 && c.doc < hi in
  (* Block-max for the range view: a block straddling [lo, hi) may owe
     its recorded ceiling to postings the view masks, so its ceiling is
     recomputed over just the visible postings — walked with a
     throwaway state (the serving cursor never moves) and cached per
     block, one O(block) walk however often the bound is consulted.
     Interior blocks keep the O(1) skip-entry answer. Either way the
     round-up quantization never under-reports a visible posting. *)
  let qb = ref (-1) and qmax = ref 0. in
  let range_block_max () =
    let b = c.block in
    if !qb = b then !qmax
    else begin
      let first_floor = if b = 0 then 0 else skip_last c.r (b - 1) + 1 in
      let v =
        if first_floor >= lo && skip_last c.r b < hi then state_block_max c
        else begin
          let w = state_create c.r in
          enter_block w b;
          let m = ref 0 in
          let visit () =
            if w.doc >= lo && w.doc < hi then
              m :=
                Stdlib.max !m
                  (quantize_up (Pj_index.Posting_list.impact ~tf:w.tf))
          in
          visit ();
          while w.remaining > 0 && w.doc < hi do
            read_posting w;
            visit ()
          done;
          dequantize !m
        end
      in
      qb := b;
      qmax := v;
      v
    end
  in
  Pj_index.Posting_list.custom
    ~current:(fun () -> if live () then state_current c else None)
    ~current_doc:(fun () -> if live () then c.doc else -1)
    ~next:(fun () -> if live () then state_next c)
    ~seek:(fun target -> if live () then state_seek c target)
    ~block_max_score:(fun () -> if live () then range_block_max () else 0.)
    ~block_last_doc:(fun () ->
      if live () then Stdlib.min (state_block_last c) (hi - 1) else -1)

let decode r =
  let c = state_create r in
  let out = ref [] in
  while c.doc >= 0 do
    (match state_current c with Some p -> out := p :: !out | None -> ());
    state_next c
  done;
  Pj_index.Posting_list.of_postings (List.rev !out)

let count_in_range r ~lo ~hi =
  if lo >= hi then 0
  else begin
    let nb = n_blocks ~df:r.df in
    let count = ref 0 and b = ref 0 and stop = ref false in
    while (not !stop) && !b < nb do
      let last = skip_last r !b in
      (* The block's first document is at least [prev_last + 1]. *)
      let first_floor = if !b = 0 then 0 else skip_last r (!b - 1) + 1 in
      if last < lo then () (* wholly before the range *)
      else if first_floor >= hi then stop := true
      else if first_floor >= lo && last < hi then
        (* wholly inside: the skip table already knows its size *)
        count := !count + block_doc_count r !b
      else begin
        (* straddles a boundary: walk it *)
        let c = state_create r in
        enter_block c !b;
        let continue = ref true in
        while !continue && c.doc >= 0 && c.block = !b do
          if c.doc >= hi then continue := false
          else begin
            if c.doc >= lo then incr count;
            if c.remaining > 0 then read_posting c else continue := false
          end
        done
      end;
      incr b
    done;
    !count
  end

let blob_length r =
  let nb = n_blocks ~df:r.df in
  if nb = 0 then 0
  else begin
    (* Walk the last block to find where its bytes end. *)
    let c = state_create r in
    enter_block c (nb - 1);
    while c.remaining > 0 do
      read_posting c
    done;
    c.off - r.blob
  end

let iter_blocks r f =
  for b = 0 to n_blocks ~df:r.df - 1 do
    f ~block:b ~last_doc:(skip_last r b) ~doc_count:(block_doc_count r b)
      ~qmax:(skip_qmax r b)
  done

let check_blob r =
  let nb = n_blocks ~df:r.df in
  let expected_off = ref 0 in
  for b = 0 to nb - 1 do
    if skip_off r b <> !expected_off then
      failwith
        (Printf.sprintf "Ondisk: skip entry %d offset %d, expected %d" b
           (skip_off r b) !expected_off);
    let c = state_create r in
    enter_block c b;
    let qmax = skip_qmax r b and seen_max = ref 0 in
    let prev = ref (if b = 0 then -1 else skip_last r (b - 1)) in
    let walk () =
      if c.doc <= !prev then
        failwith "Ondisk: doc ids not strictly increasing in block";
      prev := c.doc;
      ignore (state_positions c);
      seen_max :=
        Stdlib.max !seen_max
          (quantize_up (Pj_index.Posting_list.impact ~tf:c.tf))
    in
    walk ();
    while c.remaining > 0 do
      read_posting c;
      walk ()
    done;
    if c.doc <> skip_last r b then
      failwith
        (Printf.sprintf "Ondisk: block %d last doc %d, skip entry says %d" b
           c.doc (skip_last r b));
    if !seen_max > qmax then
      failwith
        (Printf.sprintf "Ondisk: block %d max impact %d above skip ceiling %d"
           b !seen_max qmax);
    expected_off := c.off - blocks_start r
  done
