(* v2 of the live segment format ("PJSG"): the v1 sections — base,
   file-local string table, per-document token runs, dead ids — plus a
   precomputed postings section in the same block-compressed layout as
   the v4 corpus format (Codec): a fixed-width dictionary keyed by
   local string-table ids, then one term blob per word. Doc ids inside
   the blobs are ABSOLUTE (global corpus ids, as every fragment
   searcher expects); token ids are LOCAL (the global vocabulary keeps
   growing after a segment seals, so global ids are not reproducible
   at write time). A mapped segment resolves a query token by word
   through the string table, so sealed segments serve straight off
   disk and a recovery no longer rebuilds their inverted indexes. *)

let magic = "PJSG"
let version = 2

module Storage = Pj_index.Storage

(* dict entry: u64le absolute blob offset (0 = no postings) | u32le df *)
let dict_entry_size = 12

(* --- writing ------------------------------------------------------------ *)

(* Per local word, the postings over [docs] — absolute doc ids
   [base+i], positions = token indexes; a dead (or genuinely empty)
   document is an empty token run and contributes nothing, exactly
   like [Inverted_index.build_docs ~skip]. *)
let build_postings ~base ~n_words table (docs : string array array) =
  let acc = Array.make n_words [] in
  Array.iteri
    (fun i doc ->
      let occ = Hashtbl.create 16 in
      Array.iteri
        (fun pos w ->
          let id = Hashtbl.find table w in
          match Hashtbl.find_opt occ id with
          | Some l -> l := pos :: !l
          | None -> Hashtbl.add occ id (ref [ pos ]))
        doc;
      Hashtbl.iter
        (fun id l ->
          let positions = Array.of_list (List.rev !l) in
          acc.(id) <-
            Pj_index.Posting.make ~doc_id:(base + i) ~positions :: acc.(id))
        occ)
    docs;
  Array.map (fun l -> Array.of_list (List.rev l)) acc

let write ~failpoint path ~base ~(docs : string array array) ~dead =
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf magic;
  Storage.write_varint buf version;
  let payload_start = Buffer.length buf in
  Storage.write_varint buf base;
  let table = Hashtbl.create 1024 in
  let words = ref [] and n_words = ref 0 in
  Array.iter
    (Array.iter (fun w ->
         if not (Hashtbl.mem table w) then begin
           Hashtbl.add table w !n_words;
           words := w :: !words;
           incr n_words
         end))
    docs;
  Storage.write_varint buf !n_words;
  List.iter (Storage.write_string buf) (List.rev !words);
  Storage.write_varint buf (Array.length docs);
  Array.iter
    (fun doc ->
      Storage.write_varint buf (Array.length doc);
      Array.iter (fun w -> Storage.write_varint buf (Hashtbl.find table w)) doc)
    docs;
  Storage.write_varint buf (List.length dead);
  List.iter (Storage.write_varint buf) dead;
  (* Postings: dict then blobs, blob offsets absolute in the file. *)
  let postings = build_postings ~base ~n_words:!n_words table docs in
  let blobs = Buffer.create (64 * 1024) in
  let dict_off = Buffer.length buf in
  let blobs_off = dict_off + (dict_entry_size * !n_words) in
  let n_postings = ref 0 and n_positions = ref 0 in
  Array.iter
    (fun posts ->
      let df = Array.length posts in
      if df = 0 then begin
        Buffer.add_int64_le buf 0L;
        Buffer.add_int32_le buf 0l
      end
      else begin
        Buffer.add_int64_le buf (Int64.of_int (blobs_off + Buffer.length blobs));
        Buffer.add_int32_le buf (Int32.of_int df);
        n_postings := !n_postings + df;
        Array.iter
          (fun p ->
            n_positions :=
              !n_positions + Array.length p.Pj_index.Posting.positions)
          posts;
        Codec.encode blobs posts
      end)
    postings;
  Buffer.add_buffer buf blobs;
  Buffer.add_int64_le buf (Int64.of_int !n_postings);
  Buffer.add_int64_le buf (Int64.of_int !n_positions);
  let contents = Buffer.contents buf in
  let crc =
    Storage.crc32 ~pos:payload_start
      ~len:(String.length contents - payload_start)
      contents
  in
  let footer = Bytes.create 4 in
  Bytes.set_int32_le footer 0 crc;
  Buffer.add_bytes buf footer;
  Storage.write_file_atomic ~fp_write:failpoint ~fp_rename:failpoint path buf

(* --- reading ------------------------------------------------------------ *)

type t = {
  buf : Layout.buf;
  base : int;
  n_docs : int;
  docs_off : int; (* start of the token-run section *)
  dead : int list;
  words : string array; (* local string table, id order *)
  local : (string, int) Hashtbl.t; (* word -> local id *)
  dict_off : int;
  blobs_off : int;
  n_postings : int;
  n_positions : int;
}

let parse buf =
  let size = Layout.length buf in
  if size < 4 || Layout.sub_string buf ~pos:0 ~len:4 <> magic then
    failwith "Ondisk: not a proxjoin segment file";
  let pos = ref 4 in
  let v = Layout.read_varint buf ~pos in
  if v <> version then
    failwith (Printf.sprintf "Ondisk: unsupported segment version %d" v);
  let payload_start = !pos in
  if size < payload_start + 4 then
    failwith "Ondisk: truncated segment file (missing CRC footer)";
  let payload_len = size - payload_start - 4 in
  let stored = Int32.of_int (Layout.u32le buf (payload_start + payload_len)) in
  let computed = Layout.crc32 buf ~pos:payload_start ~len:payload_len in
  if stored <> computed then
    failwith
      (Printf.sprintf
         "Ondisk: segment CRC mismatch (stored %08lx, computed %08lx) — file \
          truncated or corrupted"
         stored computed);
  let limit = payload_start + payload_len in
  let base = Layout.read_varint buf ~pos in
  let n_words = Layout.read_varint buf ~pos in
  let words =
    Array.init n_words (fun _ ->
        let len = Layout.read_varint buf ~pos in
        if !pos + len > limit then
          failwith "Ondisk: segment string table overruns the file";
        let w = Layout.sub_string buf ~pos:!pos ~len in
        pos := !pos + len;
        w)
  in
  let local = Hashtbl.create (2 * n_words) in
  Array.iteri (fun i w -> Hashtbl.replace local w i) words;
  let n_docs = Layout.read_varint buf ~pos in
  let docs_off = !pos in
  for _ = 1 to n_docs do
    let len = Layout.read_varint buf ~pos in
    for _ = 1 to len do
      if Layout.read_varint buf ~pos >= n_words then
        failwith "Ondisk: segment word id out of range"
    done
  done;
  let n_dead = Layout.read_varint buf ~pos in
  let dead = List.init n_dead (fun _ -> Layout.read_varint buf ~pos) in
  List.iter
    (fun id ->
      if id < base || id >= base + n_docs then
        failwith "Ondisk: segment dead id outside its range")
    dead;
  let dict_off = !pos in
  let blobs_off = dict_off + (dict_entry_size * n_words) in
  if limit < blobs_off + 16 then
    failwith "Ondisk: segment postings section overruns the file";
  let n_postings = Layout.u64le buf (limit - 16) in
  let n_positions = Layout.u64le buf (limit - 8) in
  {
    buf;
    base;
    n_docs;
    docs_off;
    dead;
    words;
    local;
    dict_off;
    blobs_off;
    n_postings;
    n_positions;
  }

let open_file path =
  let buf = Layout.map_file path in
  try parse buf with
  | Failure _ as e -> raise e
  | e ->
      failwith
        (Printf.sprintf "Ondisk: %s: corrupt segment file (%s)" path
           (Printexc.to_string e))

let of_string s =
  try parse (Layout.of_string s)
  with
  | Failure _ as e -> raise e
  | e ->
      failwith
        (Printf.sprintf "Ondisk: corrupt segment (%s)" (Printexc.to_string e))

let base t = t.base
let n_docs t = t.n_docs
let dead t = t.dead

let docs t =
  let pos = ref t.docs_off in
  Array.init t.n_docs (fun _ ->
      let len = Layout.read_varint t.buf ~pos in
      Array.init len (fun _ -> t.words.(Layout.read_varint t.buf ~pos)))

(* --- serving ------------------------------------------------------------ *)

let reader_of_local t w =
  let off = t.dict_off + (dict_entry_size * w) in
  let blob = Layout.u64le t.buf off in
  if blob = 0 then None
  else Some { Codec.buf = t.buf; blob; df = Layout.u32le t.buf (off + 8) }

let reader_of_word t word =
  match Hashtbl.find_opt t.local word with
  | None -> None
  | Some w -> reader_of_local t w

(* Provider keyed by GLOBAL token ids: each lookup goes token -> word
   (global vocabulary) -> local id (string table) -> dictionary entry.
   The vocabulary may have grown past the segment's words — unknown
   words simply have no postings here, exactly as in a
   [build_docs]-built fragment index. *)
let index t corpus =
  let vocab = Pj_index.Corpus.vocab corpus in
  let reader tok =
    if tok < 0 || tok >= Pj_text.Vocab.size vocab then None
    else reader_of_word t (Pj_text.Vocab.word vocab tok)
  in
  let positions_at r ~doc_id =
    let c = Codec.cursor r in
    Pj_index.Posting_list.seek c doc_id;
    match Pj_index.Posting_list.current c with
    | Some p when p.Pj_index.Posting.doc_id = doc_id ->
        p.Pj_index.Posting.positions
    | Some _ | None -> [||]
  in
  Pj_index.Inverted_index.of_provider corpus
    {
      Pj_index.Inverted_index.pr_postings =
        (fun tok ->
          match reader tok with
          | None -> Pj_index.Posting_list.empty
          | Some r -> Codec.decode r);
      pr_cursor =
        (fun tok ->
          match reader tok with
          | None -> Pj_index.Posting_list.cursor Pj_index.Posting_list.empty
          | Some r -> Codec.cursor r);
      pr_positions =
        (fun ~token ~doc_id ->
          match reader token with
          | None -> [||]
          | Some r -> positions_at r ~doc_id);
      pr_document_frequency =
        (fun tok -> match reader tok with None -> 0 | Some r -> r.Codec.df);
      pr_n_tokens = Array.length t.words;
      pr_stats =
        (fun () ->
          {
            Pj_index.Inverted_index.n_tokens = Array.length t.words;
            n_postings = t.n_postings;
            n_positions = t.n_positions;
          });
      (* Segment-merge enumeration: each local word decoded once and
         mapped through the global vocabulary, so [concat_adjacent] can
         splice this segment's postings into a merge instead of forcing
         a full re-tokenization rebuild. A word the vocabulary does not
         know is unreachable by any query here and is skipped — exactly
         the terms [reader] above would answer empty for. *)
      pr_iter =
        Some
          (fun f ->
            Array.iteri
              (fun w word ->
                match Pj_text.Vocab.find vocab word with
                | None -> ()
                | Some tok -> (
                    match reader_of_local t w with
                    | None -> ()
                    | Some r -> f tok (Codec.decode r)))
              t.words);
    }

let check t =
  (* Every dictionary entry chains to a well-formed blob, and the blob
     totals agree with the trailer counters. *)
  let n_postings = ref 0 and n_positions = ref 0 in
  Array.iteri
    (fun w _word ->
      match reader_of_local t w with
      | None -> ()
      | Some r ->
          if r.Codec.blob < t.blobs_off then
            failwith "Ondisk: segment blob offset before the blobs section";
          Codec.check_blob r;
          n_postings := !n_postings + r.Codec.df;
          let c = Codec.cursor r in
          let rec walk () =
            match Pj_index.Posting_list.current c with
            | None -> ()
            | Some p ->
                n_positions :=
                  !n_positions + Array.length p.Pj_index.Posting.positions;
                Pj_index.Posting_list.next c;
                walk ()
          in
          walk ())
    t.words;
  if !n_postings <> t.n_postings || !n_positions <> t.n_positions then
    failwith "Ondisk: segment posting totals disagree with the trailer"
