(* Shared constants of the v4 on-disk index format. See DESIGN.md §11
   for the byte-layout diagram.

   File =
     magic "PJX4" | u8 version (4)
     payload:
       vocab    : varint n_words, then per word varint length + bytes
       layout   : varint n_shards, then per shard varint doc count
       doc index: n_docs × u64le absolute offset of the doc record
       doc data : per doc, varint length + length × varint token id
       dict     : n_words × 12 bytes (u64le blob offset | u32le df);
                  offset 0 = no postings
       blobs    : per term with df > 0, a [Codec] term blob
     trailer:
       11 × u64le (section offsets and totals, see [Trailer])
       u32le CRC-32 of payload + the 11 trailer words
       end magic "4XJP"

   The trailer is fixed-size and lives at the end, so opening reads
   O(1) bytes plus the vocabulary — never the postings or documents. *)

let magic = "PJX4"
let end_magic = "4XJP"
let version = 4
let header_size = 5 (* magic + version byte: payload starts here *)
let dict_entry_size = 12
let trailer_words = 11
let trailer_size = (trailer_words * 8) + 4 + 4 (* words + CRC + end magic *)
