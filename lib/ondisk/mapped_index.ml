type t = {
  path : string;
  buf : Layout.buf;
  vocab : Pj_text.Vocab.t;
  counts : int array;
  (* trailer *)
  vocab_off : int;
  layout_off : int;
  doc_index_off : int;
  doc_data_off : int;
  dict_off : int;
  blobs_off : int;
  trailer_off : int;
  n_docs : int;
  n_words : int;
  total_tokens : int;
  n_postings : int;
  n_positions : int;
  corpus : Pj_index.Corpus.t Lazy.t;
}

let fail t fmt =
  Printf.ksprintf (fun m -> failwith (Printf.sprintf "Ondisk: %s: %s" t m)) fmt

(* --- open -------------------------------------------------------------- *)

let fetch_doc buf ~doc_index_off ~doc_data_off ~dict_off ~n_words i =
  let off = Layout.u64le buf (doc_index_off + (8 * i)) in
  if off < doc_data_off || off >= dict_off then
    failwith (Printf.sprintf "Ondisk: document %d offset out of bounds" i);
  let pos = ref off in
  let len = Layout.read_varint buf ~pos in
  let tokens =
    Array.init len (fun _ ->
        let tok = Layout.read_varint buf ~pos in
        if tok >= n_words then
          failwith
            (Printf.sprintf "Ondisk: document %d token id out of range" i);
        tok)
  in
  { Pj_text.Document.id = i; tokens }

let parse path buf =
  let size = Layout.length buf in
  if size < File_format.header_size + File_format.trailer_size then
    fail path "file too small for a v4 index (%d bytes)" size;
  if Layout.sub_string buf ~pos:0 ~len:4 <> File_format.magic then
    fail path "not a v4 proxjoin index (bad magic)";
  let v = Layout.u8 buf 4 in
  if v <> File_format.version then fail path "unsupported version %d" v;
  if
    Layout.sub_string buf ~pos:(size - 4) ~len:4 <> File_format.end_magic
  then fail path "truncated file (missing end magic)";
  let trailer_off = size - File_format.trailer_size in
  let word i = Layout.u64le buf (trailer_off + (8 * i)) in
  let vocab_off = word 0
  and layout_off = word 1
  and doc_index_off = word 2
  and doc_data_off = word 3
  and dict_off = word 4
  and blobs_off = word 5
  and n_docs = word 6
  and n_words = word 7
  and total_tokens = word 8
  and n_postings = word 9
  and n_positions = word 10 in
  if vocab_off <> File_format.header_size then fail path "bad vocabulary offset";
  if
    layout_off < vocab_off || doc_index_off < layout_off
    || doc_data_off <> doc_index_off + (8 * n_docs)
    || dict_off < doc_data_off
    || blobs_off <> dict_off + (File_format.dict_entry_size * n_words)
    || blobs_off > trailer_off
  then fail path "section offsets out of order";
  (* Vocabulary: eager — the word <-> id mapping must live on the heap
     for query-time lookups; it is tiny next to postings. Re-interning
     in file order reproduces the writer's ids. *)
  let pos = ref vocab_off in
  let n = Layout.read_varint buf ~pos in
  if n <> n_words then fail path "vocabulary count disagrees with trailer";
  let vocab = Pj_text.Vocab.create () in
  for _ = 1 to n_words do
    let len = Layout.read_varint buf ~pos in
    if !pos + len > layout_off then fail path "vocabulary overruns its section";
    ignore (Pj_text.Vocab.intern vocab (Layout.sub_string buf ~pos:!pos ~len));
    pos := !pos + len
  done;
  (* Shard layout. *)
  let pos = ref layout_off in
  let n_shards = Layout.read_varint buf ~pos in
  if n_shards < 1 then fail path "shard layout with no shards";
  let counts = Array.init n_shards (fun _ -> Layout.read_varint buf ~pos) in
  if Array.fold_left ( + ) 0 counts <> n_docs then
    fail path "shard layout does not cover the documents";
  let corpus =
    lazy
      (Pj_index.Corpus.of_paged ~vocab ~count:n_docs ~total_tokens
         (fetch_doc buf ~doc_index_off ~doc_data_off ~dict_off ~n_words))
  in
  {
    path;
    buf;
    vocab;
    counts;
    vocab_off;
    layout_off;
    doc_index_off;
    doc_data_off;
    dict_off;
    blobs_off;
    trailer_off;
    n_docs;
    n_words;
    total_tokens;
    n_postings;
    n_positions;
    corpus;
  }

let open_file path =
  let buf = Layout.map_file path in
  (* Every malformation is a deterministic [Failure "Ondisk: ..."]; no
     raw decoding exception escapes. *)
  try parse path buf with
  | Failure _ as e -> raise e
  | e ->
      failwith
        (Printf.sprintf "Ondisk: %s: corrupt index file (%s)" path
           (Printexc.to_string e))

let path t = t.path
let counts t = Array.copy t.counts
let corpus t = Lazy.force t.corpus

(* --- dictionary -------------------------------------------------------- *)

let dict_entry t tok =
  if tok < 0 || tok >= t.n_words then None
  else begin
    let off = t.dict_off + (File_format.dict_entry_size * tok) in
    let blob = Layout.u64le t.buf off in
    if blob = 0 then None
    else begin
      let df = Layout.u32le t.buf (off + 8) in
      Some { Codec.buf = t.buf; blob; df }
    end
  end

let vocab t = t.vocab
let term_reader = dict_entry

(* --- providers --------------------------------------------------------- *)

let stats t =
  {
    Pj_index.Inverted_index.n_tokens = t.n_words;
    n_postings = t.n_postings;
    n_positions = t.n_positions;
  }

let positions_of_cursor c ~doc_id =
  Pj_index.Posting_list.seek c doc_id;
  match Pj_index.Posting_list.current c with
  | Some p when p.Pj_index.Posting.doc_id = doc_id ->
      p.Pj_index.Posting.positions
  | Some _ | None -> [||]

let full_provider t =
  {
    Pj_index.Inverted_index.pr_postings =
      (fun tok ->
        match dict_entry t tok with
        | None -> Pj_index.Posting_list.empty
        | Some r -> Codec.decode r);
    pr_cursor =
      (fun tok ->
        match dict_entry t tok with
        | None -> Pj_index.Posting_list.cursor Pj_index.Posting_list.empty
        | Some r -> Codec.cursor r);
    pr_positions =
      (fun ~token ~doc_id ->
        match dict_entry t token with
        | None -> [||]
        | Some r -> positions_of_cursor (Codec.cursor r) ~doc_id);
    pr_document_frequency =
      (fun tok -> match dict_entry t tok with None -> 0 | Some r -> r.Codec.df);
    pr_n_tokens = t.n_words;
    pr_stats = (fun () -> stats t);
    pr_iter =
      (* Segment-merge enumeration: one term at a time, decoded off the
         dictionary in token order — never the whole index at once, so
         [concat_adjacent] can splice an mmap-backed segment into a
         merge instead of forcing a full re-tokenization rebuild. *)
      Some
        (fun f ->
          for tok = 0 to t.n_words - 1 do
            match dict_entry t tok with
            | None -> ()
            | Some r -> f tok (Codec.decode r)
          done);
  }

let range_provider t ~lo ~hi =
  let range_stats () =
    (* Cold path (size accounting): count each term's postings and
       positions inside the range. *)
    let n_postings = ref 0 and n_positions = ref 0 in
    for tok = 0 to t.n_words - 1 do
      match dict_entry t tok with
      | None -> ()
      | Some r ->
          n_postings := !n_postings + Codec.count_in_range r ~lo ~hi;
          let c = Codec.cursor_in_range r ~lo ~hi in
          let rec walk () =
            match Pj_index.Posting_list.current c with
            | None -> ()
            | Some p ->
                n_positions :=
                  !n_positions + Array.length p.Pj_index.Posting.positions;
                Pj_index.Posting_list.next c;
                walk ()
          in
          walk ()
    done;
    {
      Pj_index.Inverted_index.n_tokens = t.n_words;
      n_postings = !n_postings;
      n_positions = !n_positions;
    }
  in
  {
    Pj_index.Inverted_index.pr_postings =
      (fun tok ->
        match dict_entry t tok with
        | None -> Pj_index.Posting_list.empty
        | Some r ->
            let c = Codec.cursor_in_range r ~lo ~hi in
            let out = ref [] in
            let rec walk () =
              match Pj_index.Posting_list.current c with
              | None -> ()
              | Some p ->
                  out := p :: !out;
                  Pj_index.Posting_list.next c;
                  walk ()
            in
            walk ();
            Pj_index.Posting_list.of_postings (List.rev !out));
    pr_cursor =
      (fun tok ->
        match dict_entry t tok with
        | None -> Pj_index.Posting_list.cursor Pj_index.Posting_list.empty
        | Some r -> Codec.cursor_in_range r ~lo ~hi);
    pr_positions =
      (fun ~token ~doc_id ->
        if doc_id < lo || doc_id >= hi then [||]
        else
          match dict_entry t token with
          | None -> [||]
          | Some r -> positions_of_cursor (Codec.cursor r) ~doc_id);
    pr_document_frequency =
      (fun tok ->
        match dict_entry t tok with
        | None -> 0
        | Some r -> Codec.count_in_range r ~lo ~hi);
    pr_n_tokens = t.n_words;
    pr_stats = range_stats;
    pr_iter = None (* postings stay on disk; no whole-index decode *);
  }

let index t = Pj_index.Inverted_index.of_provider (corpus t) (full_provider t)

let shard_index t ~pos ~len =
  Pj_index.Inverted_index.of_provider (corpus t)
    (range_provider t ~lo:pos ~hi:(pos + len))

let sharded t =
  Pj_index.Sharded_index.of_prebuilt (corpus t) ~counts:t.counts
    ~shard_of:(fun _ ~pos ~len -> shard_index t ~pos ~len)

(* --- integrity --------------------------------------------------------- *)

let verify t =
  let payload_len = t.trailer_off + (8 * File_format.trailer_words) in
  let stored = Int32.of_int (Layout.u32le t.buf payload_len) in
  let computed =
    Layout.crc32 t.buf ~pos:File_format.header_size
      ~len:(payload_len - File_format.header_size)
  in
  if stored <> computed then
    fail t.path
      "CRC mismatch (stored %08lx, computed %08lx) — file truncated or \
       corrupted"
      stored computed

let check t =
  verify t;
  for i = 0 to t.n_docs - 1 do
    ignore
      (fetch_doc t.buf ~doc_index_off:t.doc_index_off
         ~doc_data_off:t.doc_data_off ~dict_off:t.dict_off ~n_words:t.n_words
         i)
  done;
  let df_sum = ref 0 and pos_sum = ref 0 in
  for tok = 0 to t.n_words - 1 do
    match dict_entry t tok with
    | None -> ()
    | Some r ->
        if r.Codec.blob < t.blobs_off || r.Codec.blob >= t.trailer_off then
          fail t.path "term %d blob offset out of bounds" tok;
        Codec.check_blob r;
        df_sum := !df_sum + r.Codec.df;
        let c = Codec.cursor r in
        let rec walk () =
          match Pj_index.Posting_list.current c with
          | None -> ()
          | Some p ->
              pos_sum := !pos_sum + Array.length p.Pj_index.Posting.positions;
              Pj_index.Posting_list.next c;
              walk ()
        in
        walk ()
  done;
  if !df_sum <> t.n_postings then
    fail t.path "dictionary df sum %d disagrees with trailer %d" !df_sum
      t.n_postings;
  if !pos_sum <> t.n_positions then
    fail t.path "stored positions %d disagree with trailer %d" !pos_sum
      t.n_positions

(* --- inspection -------------------------------------------------------- *)

type info = {
  version : int;
  n_docs : int;
  n_shards : int;
  n_words : int;
  total_tokens : int;
  n_postings : int;
  n_positions : int;
  n_blocks : int;
  file_bytes : int;
  vocab_bytes : int;
  docs_bytes : int;
  dict_bytes : int;
  postings_bytes : int;
  mem_postings_bytes : int;
}

let info (t : t) =
  let n_blocks = ref 0 and n_lists = ref 0 in
  for tok = 0 to t.n_words - 1 do
    match dict_entry t tok with
    | None -> ()
    | Some r ->
        incr n_lists;
        n_blocks := !n_blocks + Codec.n_blocks ~df:r.Codec.df
  done;
  (* Heap cost of the same postings as in-memory arrays, in 8-byte
     words: one array-spine slot + a 3-word posting record + a
     positions array (header + tf slots) per posting. *)
  let mem_postings_bytes =
    8 * ((5 * t.n_postings) + t.n_positions + !n_lists)
  in
  {
    version = File_format.version;
    n_docs = t.n_docs;
    n_shards = Array.length t.counts;
    n_words = t.n_words;
    total_tokens = t.total_tokens;
    n_postings = t.n_postings;
    n_positions = t.n_positions;
    n_blocks = !n_blocks;
    file_bytes = Layout.length t.buf;
    vocab_bytes = t.layout_off - t.vocab_off;
    docs_bytes = t.dict_off - t.doc_index_off;
    dict_bytes = t.blobs_off - t.dict_off;
    postings_bytes = t.trailer_off - t.blobs_off;
    mem_postings_bytes;
  }
