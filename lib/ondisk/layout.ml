type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let map_file path : buf =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size = 0 then
        failwith (Printf.sprintf "Ondisk: %s is empty" path);
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]))

let of_string s : buf =
  Bigarray.Array1.init Bigarray.char Bigarray.c_layout (String.length s)
    (String.get s)

let length (b : buf) = Bigarray.Array1.dim b

let check b pos len what =
  if pos < 0 || len < 0 || pos + len > length b then
    failwith
      (Printf.sprintf
         "Ondisk: truncated file (%s at offset %d needs %d bytes of %d)" what
         pos len (length b))

let u8 b pos =
  check b pos 1 "byte";
  Char.code (Bigarray.Array1.unsafe_get b pos)

let u32le b pos =
  check b pos 4 "u32";
  let g i = Char.code (Bigarray.Array1.unsafe_get b (pos + i)) in
  g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24)

let u64le b pos =
  check b pos 8 "u64";
  let g i = Char.code (Bigarray.Array1.unsafe_get b (pos + i)) in
  if g 7 land 0xc0 <> 0 then failwith "Ondisk: u64 overflows OCaml int";
  g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24) lor (g 4 lsl 32)
  lor (g 5 lsl 40) lor (g 6 lsl 48) lor (g 7 lsl 56)

let read_varint b ~pos =
  let value = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= length b then failwith "Ondisk: truncated varint";
    if !shift > 56 then failwith "Ondisk: varint overflow";
    let byte = Char.code (Bigarray.Array1.unsafe_get b !pos) in
    incr pos;
    value := !value lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  !value

let sub_string b ~pos ~len =
  check b pos len "string";
  String.init len (fun i -> Bigarray.Array1.unsafe_get b (pos + i))

(* Same polynomial/table as [Pj_index.Storage.crc32]; reimplemented so
   checksumming a mapped region never copies it onto the heap. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 b ~pos ~len =
  check b pos len "crc range";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bigarray.Array1.unsafe_get b i) in
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int byte)) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl
