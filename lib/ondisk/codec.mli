(** Block compression of posting lists — the v4 postings codec.

    One term's postings are packed into a {e term blob}: a skip table
    of fixed-width entries (one per block) followed by the blocks
    themselves, each holding up to {!block_size} documents as
    delta-varint doc ids, a quantized impact byte, the term frequency
    and delta-varint occurrence positions. The skip entry carries the
    block's last document id, its byte offset and a quantized ceiling
    of the block's best impact — everything a cursor needs to leap
    whole blocks during a galloping seek and everything a block-max
    traversal needs to prune them.

    Doc-id deltas chain {e across} blocks: the first delta of block
    [b] is relative to block [b-1]'s last document id, which the skip
    table provides, so a seek can land in the middle of the blob
    without decoding what precedes it. *)

val block_size : int
(** Documents per block (128; the final block may be short). *)

val n_blocks : df:int -> int
(** Number of blocks of a list with [df] postings —
    [ceil (df / block_size)]; the blob stores no explicit count. *)

(** {1 Impact quantization}

    Impacts ([Posting_list.impact], in [0, 1)) are stored as one byte
    in 255 levels. Per-posting bytes round to nearest, so the decoded
    impact is within [1. /. 510.] of the true value; block maxima
    round {e up}, so a decoded block ceiling is never below the true
    maximum and block-max pruning stays lossless. *)

val quantize : float -> int
(** Round to nearest level; clamped to [0, 255]. *)

val quantize_up : float -> int
(** Round up — for block maxima. *)

val dequantize : int -> float

val quantization_error_bound : float
(** [1. /. 510.]: the worst-case absolute error of
    [dequantize (quantize v)] for [v] in [0, 1]. *)

(** {1 Encoding} *)

val encode : Buffer.t -> Pj_index.Posting.t array -> unit
(** Append the term blob of the postings, which must be sorted by
    strictly increasing non-negative document id with ids at most
    [0xFFFFFFFF] (the skip table stores them as u32). Raises
    [Invalid_argument] otherwise. [df = 0] appends nothing. *)

(** {1 Decoding} *)

type reader = {
  buf : Layout.buf;
  blob : int;  (** file offset of the term blob (its skip table) *)
  df : int;
}
(** A term blob in a mapped file. All decoding is lazy: constructing a
    reader or cursor touches only skip entries, never whole blocks. *)

val cursor : reader -> Pj_index.Posting_list.cursor
(** A fresh streaming cursor over the blob, positioned on the first
    posting (exhausted when [df = 0]). Decoding failures — a truncated
    or corrupt blob — raise [Failure "Ondisk: ..."]. *)

val cursor_in_range : reader -> lo:int -> hi:int -> Pj_index.Posting_list.cursor
(** The blob restricted to documents [lo, hi) — the per-shard view of
    a monolithic postings section. Seeks to [lo] on creation; reports
    exhaustion at the first document [>= hi]. *)

val decode : reader -> Pj_index.Posting_list.t
(** Materialize the whole list (for [Inverted_index.postings]). *)

val count_in_range : reader -> lo:int -> hi:int -> int
(** Documents of the blob in [lo, hi) — a per-shard document
    frequency. Uses the skip table to count interior blocks without
    decoding them; only blocks straddling a boundary are walked. *)

val blob_length : reader -> int
(** Total byte length of the blob (skip table + blocks), recomputed
    from the last skip entry — for inspection and stats. *)

val iter_blocks :
  reader -> (block:int -> last_doc:int -> doc_count:int -> qmax:int -> unit) -> unit
(** Visit every skip entry in order — O(1) per block, no block
    decoding. The substrate for [inspect]'s per-block summaries. *)

val check_blob : reader -> unit
(** Decode every block completely and verify the skip table against
    it (offsets, last doc ids, doc counts, maxima, monotone ids).
    Raises [Failure "Ondisk: ..."] on any inconsistency — the
    deep-verification path behind [inspect] and the fuzz tests. *)
