(** v2 of the live segment format ("PJSG"): v1's recovery sections —
    base, file-local string table, per-document token runs, dead ids —
    plus a precomputed postings section in the v4 block-compressed
    layout ({!Codec}), so a sealed segment can serve queries straight
    off an [mmap] instead of rebuilding its inverted index on the
    heap. Posting doc ids are absolute (global corpus ids); dictionary
    keys are local string-table ids, resolved per query through the
    growing global vocabulary by word. Written crash-safely with the
    same CRC-32 footer discipline as v1. *)

val magic : string
val version : int

val write :
  failpoint:string ->
  string ->
  base:int ->
  docs:string array array ->
  dead:int list ->
  unit
(** Write a v2 segment crash-safely ([Storage.write_file_atomic]).
    [docs] holds each document's token words in id order starting at
    [base]; dead (and genuinely empty) documents are [[||]] and
    contribute no postings. Raises [Sys_error] on I/O failure,
    [Pj_util.Failpoint.Injected] / [Panicked] under fault injection. *)

type t

val open_file : string -> t
(** Map a v2 segment and validate it: magic, version, CRC-32 of the
    whole payload, then every recovery section. Raises
    [Failure "Ondisk: ..."] on any malformed, truncated or
    wrong-version file. *)

val of_string : string -> t
(** Same validation over bytes already read conventionally. *)

val base : t -> int
val n_docs : t -> int
val dead : t -> int list

val docs : t -> string array array
(** Decode every document's token words — the recovery path
    (re-interning into the global corpus in document order). *)

val index : t -> Pj_index.Corpus.t -> Pj_index.Inverted_index.t
(** A provider-backed index over the mapped postings, keyed by the
    {e global} token ids of [corpus]'s vocabulary — observationally an
    [Inverted_index.build_docs ~skip:dead] over the segment's
    documents, with postings decoding from the page cache per query.
    The vocabulary may keep growing (and the file may even be
    unlinked by a later compaction) while the index is in use. *)

val check : t -> unit
(** Deep structural audit of the postings section (every blob
    well-formed, totals match the trailer). Raises [Failure]. *)
