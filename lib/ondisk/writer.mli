(** Producing v4 index files.

    [write idx path] persists the index's corpus, vocabulary and
    block-compressed postings in the mmap-servable v4 format (see
    [Format] / DESIGN.md §11). The write is crash-safe — bytes land in
    [path.tmp], are fsynced and atomically renamed over [path]
    ([Pj_index.Storage.write_file_atomic], failpoints
    ["ondisk.save.write"] / ["ondisk.save.rename"]).

    [counts] records a shard layout (contiguous doc-id ranges, as in
    [Storage.save_sharded]); it defaults to one shard. Raises
    [Invalid_argument] when [counts] does not cover the corpus,
    [Sys_error] on I/O failure. *)

val write : ?counts:int array -> Pj_index.Inverted_index.t -> string -> unit

val write_sharded : Pj_index.Sharded_index.t -> string -> unit
(** Persist a sharded index with its layout. Postings are written once
    from a merged traversal (they are global-doc-id lists, so the
    monolithic section serves every shard through range cursors). *)
