(** Serving a v4 index file in place, zero-copy.

    [open_file] maps the file and reads only its fixed-size trailer,
    the vocabulary and the shard layout — O(1) in the number of
    documents and postings, milliseconds for a file that takes seconds
    to load into the heap. Everything else (documents, dictionary,
    posting blocks) stays on disk and is decoded on demand through the
    page cache: {!index} and {!sharded} wrap the mapping in
    provider-backed [Pj_index.Inverted_index] values, so the DAAT
    searcher, scatter-gather sharding and the server run on it
    unchanged and return byte-identical results to an in-memory index
    over the same corpus.

    Integrity: opening validates magics, the format version and the
    section-offset chain; it does {e not} checksum the payload (that
    would cost a full-file scan). Call {!verify} for the CRC and
    {!check} for a deep structural audit. A file truncated or
    corrupted anywhere fails these — and every lazy read is
    bounds-checked, so even an unverified corrupt file raises
    [Failure "Ondisk: ..."] rather than anything undefined. *)

type t

val open_file : string -> t
(** Raises [Failure "Ondisk: ..."] on malformed files, [Sys_error] /
    [Unix.Unix_error] on I/O failure. *)

val path : t -> string

val corpus : t -> Pj_index.Corpus.t
(** Paged corpus: the vocabulary lives on the heap, documents decode
    from the mapping on each access. *)

val index : t -> Pj_index.Inverted_index.t
(** The whole file as one provider-backed index. *)

val counts : t -> int array
(** The persisted shard layout (defaults to one shard). *)

val sharded : t -> Pj_index.Sharded_index.t
(** The persisted layout as a sharded index whose shards are
    range-restricted views of the one mapping — nothing is rebuilt. *)

val shard_index : t -> pos:int -> len:int -> Pj_index.Inverted_index.t
(** A provider-backed index over documents [pos, pos + len) only —
    observationally an [Inverted_index.build] over [Corpus.sub]. *)

val stats : t -> Pj_index.Inverted_index.stats
(** From the trailer; O(1). *)

val vocab : t -> Pj_text.Vocab.t

val term_reader : t -> int -> Codec.reader option
(** The raw term blob of a token id ([None] when it has no postings) —
    the inspection hook for per-block summaries via
    [Codec.iter_blocks]. *)

val verify : t -> unit
(** CRC-32 of the payload against the footer. O(file size). Raises
    [Failure] on mismatch. *)

val check : t -> unit
(** [verify] plus a full structural audit: every document decodes,
    every dictionary entry chains to a well-formed blob, every skip
    table matches its blocks. Raises [Failure] on any defect. *)

type info = {
  version : int;
  n_docs : int;
  n_shards : int;
  n_words : int;
  total_tokens : int;
  n_postings : int;
  n_positions : int;
  n_blocks : int;  (** across all term blobs *)
  file_bytes : int;
  vocab_bytes : int;
  docs_bytes : int;  (** doc offset index + token runs *)
  dict_bytes : int;
  postings_bytes : int;  (** all term blobs (skip tables + blocks) *)
  mem_postings_bytes : int;
      (** estimated heap footprint of the same postings as in-memory
          [Posting_list] arrays — the denominator of the on-disk
          compression ratio *)
}

val info : t -> info
(** Section sizes and totals; O(vocabulary) (it scans the dictionary
    to count blocks), touches no posting blocks. *)
