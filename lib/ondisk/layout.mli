(** Zero-copy byte access to a mapped index file.

    An opened file is a read-only [Bigarray] over the kernel page
    cache ([Unix.map_file]): opening costs one [mmap] syscall
    regardless of file size, bytes are faulted in on first touch, and
    the OCaml heap never holds a copy. Every accessor is
    bounds-checked and fails with a descriptive [Failure "Ondisk:
    ..."] — a truncated or corrupt file can never surface a raw
    [Invalid_argument] from the underlying array. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val map_file : string -> buf
(** Map a whole file read-only. O(1) in the file size. Raises
    [Failure] on an empty file (nothing to map), [Sys_error] /
    [Unix.Unix_error] on I/O failure. *)

val of_string : string -> buf
(** Copy a string onto a buffer — for decoding a format through the
    same accessors when the bytes were read conventionally rather than
    mapped. Fine for an empty string (unlike {!map_file}). *)

val length : buf -> int

val u8 : buf -> int -> int
(** Byte at an offset. Raises [Failure "Ondisk: ..."] out of bounds. *)

val u32le : buf -> int -> int
(** Little-endian unsigned 32-bit word (fits an OCaml [int]). *)

val u64le : buf -> int -> int
(** Little-endian 64-bit word; raises [Failure] when the value
    overflows a 63-bit OCaml [int] (no real file is that large — such
    a word is corruption). *)

val read_varint : buf -> pos:int ref -> int
(** LEB128 at [!pos], advancing it — same encoding as
    [Pj_index.Storage.read_varint]. Raises [Failure] on truncation or
    overflow. *)

val sub_string : buf -> pos:int -> len:int -> string
(** Copy a range onto the heap (for vocabulary words). *)

val crc32 : buf -> pos:int -> len:int -> int32
(** Standard CRC-32 (zlib polynomial) of a range — bit-identical to
    [Pj_index.Storage.crc32] on the same bytes, computed without
    copying the range to a string. *)
