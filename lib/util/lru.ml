(* Classic hash-table + doubly-linked-list LRU. The list is threaded
   through the nodes stored in the table, so both lookup and eviction
   are O(1). Sentinel-free: [first] is the most recent, [last] the
   eviction candidate. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;
  mutable last : ('k, 'v) node option;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (2 * capacity); first = None; last = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let mem t k = Hashtbl.mem t.table k

let evict_last t =
  match t.last with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key

let add t k v =
  (match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_last t;
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node)

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go ((node.key, node.value) :: acc) node.next
  in
  go [] t.first
