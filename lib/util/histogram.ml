(* Log-spaced buckets: bucket i covers [lo * growth^i, lo * growth^(i+1)).
   With lo = 1e-6 and growth = 1.15, 250 buckets span a microsecond to
   well past an hour at <= 15% relative error per quantile — plenty for
   latency reporting, in a few kilobytes of constant state. *)

let lo = 1e-6
let growth = 1.15
let n_buckets = 250
let log_growth = Float.log growth

type t = {
  counts : int array; (* [0]: underflow; [n_buckets + 1]: overflow *)
  mutable n : int;
  mutable sum : float;
  mutable max : float;
}

let create () =
  { counts = Array.make (n_buckets + 2) 0; n = 0; sum = 0.; max = 0. }

let bucket_of v =
  if v < lo then 0
  else
    let i = int_of_float (Float.log (v /. lo) /. log_growth) in
    if i >= n_buckets then n_buckets + 1 else i + 1

(* Upper bound of a bucket: a conservative (pessimistic) quantile
   estimate. Underflow reports [lo]; overflow reports the last finite
   boundary. *)
let bucket_upper i =
  if i = 0 then lo
  else lo *. Float.pow growth (float_of_int (Stdlib.min i n_buckets))

let observe t v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  (* [+infinity] survives the clamp above, and [bucket_of] would feed
     it through [int_of_float] — an unspecified conversion that lands
     on [min_int] and indexes the array negatively. Pin every
     non-finite value to the overflow bucket (and to its boundary for
     [sum]/[max], so [mean]/[percentile] stay finite). *)
  let finite = Float.is_finite v in
  let v = if finite then v else bucket_upper (n_buckets + 1) in
  let i = if finite then bucket_of v else n_buckets + 1 in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v > t.max then t.max <- v

let count t = t.n
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
let max_value t = t.max

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p outside [0,100]";
  if t.n = 0 then 0.
  else begin
    (* Nearest-rank over the cumulative bucket counts. *)
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (p /. 100. *. float_of_int t.n)))
    in
    let acc = ref 0 and result = ref (bucket_upper (n_buckets + 1)) in
    (try
       for i = 0 to n_buckets + 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           result := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    Stdlib.min !result t.max
  end

let merge_into ~src ~dst =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.max > dst.max then dst.max <- src.max

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.;
  t.max <- 0.
