/* Monotonic clock for deadline bookkeeping.

   CLOCK_MONOTONIC is immune to wall-clock steps (NTP corrections,
   manual date changes), which matters for per-query deadlines: a
   backwards step under gettimeofday would let queries run unbounded,
   and a forwards step would spuriously time out every in-flight
   query. Falls back to gettimeofday only where no monotonic clock
   exists. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <time.h>

#ifdef CLOCK_MONOTONIC

CAMLprim value pj_monotonic_now(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  CAMLreturn(caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec));
}

#else

#include <sys/time.h>

CAMLprim value pj_monotonic_now(value unit)
{
  CAMLparam1(unit);
  struct timeval tv;
  gettimeofday(&tv, NULL);
  CAMLreturn(caml_copy_double((double)tv.tv_sec + 1e-6 * (double)tv.tv_usec));
}

#endif
