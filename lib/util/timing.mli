(** Wall-clock measurement for the experiment harness.

    The paper measures wall-clock time of each algorithm over a document
    set, excluding match-list generation, and reports coefficients of
    variation over repetitions; this module provides exactly that
    protocol. *)

val now : unit -> float
(** Wall clock in seconds since the epoch ([Unix.gettimeofday]).
    Subject to NTP steps; use only for timestamps, never for deadlines
    or elapsed-time measurement. *)

val monotonic_now : unit -> float
(** Monotonic clock in seconds from an arbitrary origin
    ([CLOCK_MONOTONIC]). Immune to wall-clock adjustments — the time
    source for per-query deadlines ([Pj_engine.Searcher.search_within],
    the server's deadline bookkeeping) and for all elapsed-time
    measurement in this module. Values are only comparable within one
    process. *)

val time : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result together with the elapsed seconds
    (measured on the monotonic clock). *)

type measurement = {
  mean_s : float;       (** mean elapsed seconds over repetitions *)
  stdev_s : float;
  cov : float;          (** coefficient of variation, as in Section VIII *)
  repetitions : int;
}

val measure : ?repetitions:int -> (unit -> unit) -> measurement
(** Run the thunk [repetitions] times (default 3) and summarize. *)

val pp_measurement : Format.formatter -> measurement -> unit
