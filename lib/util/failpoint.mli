(** Deterministic fault injection for robustness testing.

    A {e failpoint} is a named site compiled into production code —
    [Failpoint.hit "storage.save"] — that does nothing until a rule is
    armed for it, and then injects one of three faults:

    - [Fail]: raise {!Injected} (an "expected" error a layer should
      absorb or translate),
    - [Delay s]: sleep [s] seconds (deadline pressure, slow disks,
      scheduling hiccups),
    - [Panic]: raise {!Panicked} (an "impossible" crash that must not
      be converted into an ordinary error — worker supervision and
      crash-safety paths key off this exception specifically).

    Rules are armed programmatically ({!configure}, {!arm}) or from
    [$PROXJOIN_FAILPOINTS] ({!init_from_env}) using the grammar

    {[ spec    ::= rule ("," rule)*
       rule    ::= site "=" action ("@" probability)?
       action  ::= "error" | "delay:" milliseconds | "panic"
       site    ::= exact name, or a prefix ending in "*" ]}

    e.g. [PROXJOIN_FAILPOINTS='shard.0=error,worker.job=panic@0.05,
    storage.save=delay:250'].

    Sites wired into serving code: [storage.load],
    [storage.save.write], [storage.save.rename], [shard.N] (per
    scatter-gather leg), [worker.job], [server.conn], [live.flush],
    [live.merge], [live.manifest], [live.wal.append],
    [live.wal.fsync], [live.wal.rotate], and the router tier's
    [router.connect] (before every backend (re)connect),
    [router.leg.N] (before leg [N]'s scatter submit) and
    [router.retry] (before each failover attempt to a replica).

    Probabilistic rules draw from one {!Prng} stream seeded at
    {!configure} time (or [$PROXJOIN_FAILPOINT_SEED]), so a whole
    chaos run is reproducible from its seed. All state is
    process-global and thread/domain-safe: the single fast-path check
    is one [Atomic.get] of a [bool], so a disabled site costs a
    function call and one atomic load — nothing is allocated and no
    lock is taken until some rule is armed. *)

exception Injected of string
(** Raised by a site armed with [Fail]; the payload is the site name. *)

exception Panicked of string
(** Raised by a site armed with [Panic]. By convention this exception
    is {e not} caught by ordinary per-request error handling — it
    models a crash, and only crash-recovery layers (worker
    supervision, process exit) may observe it. *)

type action =
  | Fail  (** raise [Injected site] *)
  | Delay of float  (** sleep this many seconds, then continue *)
  | Panic  (** raise [Panicked site] *)

type rule = {
  site : string;  (** exact site name, or a prefix ending in ["*"] *)
  action : action;
  prob : float;  (** firing probability in (0, 1]; 1 = every hit *)
}

val parse : string -> (rule list, string) result
(** Parse a [$PROXJOIN_FAILPOINTS]-style spec. Errors name the
    offending rule. The empty string parses to no rules. *)

val configure : ?seed:int -> rule list -> unit
(** Replace every armed rule (atomically with respect to {!hit}) and
    reseed the probability stream. An empty list disables injection
    entirely — equivalent to {!clear}. *)

val arm : ?prob:float -> string -> action -> unit
(** Arm (or replace) a single rule, keeping the others and the PRNG
    state. [prob] defaults to 1. *)

val clear : unit -> unit
(** Disarm everything and reset per-site fire counts. After [clear],
    {!hit} is back to its zero-cost disabled path. *)

val init_from_env : unit -> (unit, string) result
(** Arm from [$PROXJOIN_FAILPOINTS] (no-op when unset or empty),
    seeding from [$PROXJOIN_FAILPOINT_SEED] when present. Returns the
    parse error rather than raising so CLIs can fail with a usage
    message. *)

val active : unit -> bool
(** Whether any rule is currently armed. *)

val hit : string -> unit
(** Evaluate a site. Disabled path: one atomic load, no allocation —
    callers in steady-state code paths should pass a pre-built
    constant string rather than building names per call. May raise
    {!Injected} or {!Panicked}, or sleep, when an armed rule matches
    (exact name first, then the longest armed ["*"]-prefix) and its
    probability coin comes up. *)

val fired : string -> int
(** How many times the named site actually injected (or slept) since
    the last {!clear}/{!configure} — for assertions in tests. *)

val fired_total : unit -> int
(** Total injections across all sites since the last reset. *)
