(** Streaming latency histogram with constant memory.

    Observations (seconds) land in log-spaced buckets (growth factor
    1.15 from one microsecond), so quantile estimates carry at most
    ~15% relative error regardless of how many observations arrive —
    unlike [Stats.percentile], which needs every sample retained. This
    backs the server's p50/p95/p99 reporting. Not thread-safe. *)

type t

val create : unit -> t
val observe : t -> float -> unit
(** Record one observation. Negative and NaN values count as 0;
    [+infinity] counts in the overflow bucket at its (finite)
    boundary, so [mean], [max_value] and every percentile stay
    finite. *)

val count : t -> int
val mean : t -> float
(** Exact mean of all observations (0 when empty). *)

val max_value : t -> float
(** Exact maximum observation (0 when empty). *)

val percentile : t -> float -> float
(** [percentile t p] for p in [0,100]: nearest-rank estimate, reported
    as the matching bucket's upper bound clamped to the true maximum
    (0 when empty). Raises [Invalid_argument] outside [0,100]. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s observations into [dst] (for aggregating per-worker
    histograms). *)

val reset : t -> unit
