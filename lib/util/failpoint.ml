exception Injected of string
exception Panicked of string

type action = Fail | Delay of float | Panic
type rule = { site : string; action : action; prob : float }

(* Fast-path gate: [hit] reads only this atomic when nothing is armed,
   so production binaries pay one load per site. Everything behind it
   is guarded by [m]. *)
let armed = Atomic.make false
let m = Mutex.create ()
let rules : rule list ref = ref []
let counts : (string, int) Hashtbl.t = Hashtbl.create 16
let default_seed = 0x5EED
let rng = ref (Prng.create default_seed)

let with_lock f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let active () = Atomic.get armed

let set_rules rs =
  with_lock (fun () ->
      rules := rs;
      Hashtbl.reset counts;
      Atomic.set armed (rs <> []))

let configure ?(seed = default_seed) rs =
  with_lock (fun () -> rng := Prng.create seed);
  set_rules rs

let clear () = set_rules []

let arm ?(prob = 1.0) site action =
  with_lock (fun () ->
      rules := { site; action; prob } :: List.filter (fun r -> r.site <> site) !rules;
      Atomic.set armed true)

(* Exact site name wins; otherwise the longest armed "*"-prefix, so
   ["shard.*"] can cover every shard while ["shard.0"] overrides one. *)
let find_rule name =
  let exact = List.find_opt (fun r -> r.site = name) !rules in
  match exact with
  | Some _ -> exact
  | None ->
      List.fold_left
        (fun best r ->
          let n = String.length r.site in
          if
            n > 0
            && r.site.[n - 1] = '*'
            && String.length name >= n - 1
            && String.sub name 0 (n - 1) = String.sub r.site 0 (n - 1)
          then
            match best with
            | Some b when String.length b.site >= n -> best
            | _ -> Some r
          else best)
        None !rules

(* Decide under the lock (the PRNG draw must be serialized for
   reproducibility), act outside it (a delay must not block every
   other site, and raising with a mutex held would poison it). *)
let decide name =
  with_lock (fun () ->
      match find_rule name with
      | None -> None
      | Some r ->
          let fires = r.prob >= 1.0 || Prng.float !rng 1.0 < r.prob in
          if fires then begin
            Hashtbl.replace counts name
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
            Some r.action
          end
          else None)

let hit name =
  if Atomic.get armed then
    match decide name with
    | None -> ()
    | Some Fail -> raise (Injected name)
    | Some Panic -> raise (Panicked name)
    | Some (Delay s) -> if s > 0. then Unix.sleepf s

let fired name =
  with_lock (fun () -> Option.value ~default:0 (Hashtbl.find_opt counts name))

let fired_total () =
  with_lock (fun () -> Hashtbl.fold (fun _ n acc -> n + acc) counts 0)

(* --- spec grammar: site=error|delay:ms|panic[@p][,...] ----------------- *)

let parse_action rule_str s =
  if s = "error" then Ok Fail
  else if s = "panic" then Ok Panic
  else if String.length s > 6 && String.sub s 0 6 = "delay:" then
    let ms = String.sub s 6 (String.length s - 6) in
    match float_of_string_opt ms with
    | Some v when Float.is_finite v && v >= 0. -> Ok (Delay (v /. 1000.))
    | Some _ | None ->
        Error
          (Printf.sprintf "failpoint %S: bad delay %S (want milliseconds >= 0)"
             rule_str ms)
  else
    Error
      (Printf.sprintf "failpoint %S: unknown action %S (want error|delay:ms|panic)"
         rule_str s)

let parse_rule rule_str =
  match String.index_opt rule_str '=' with
  | None ->
      Error
        (Printf.sprintf "failpoint %S: missing '=' (want site=action[@prob])"
           rule_str)
  | Some i ->
      let site = String.trim (String.sub rule_str 0 i) in
      let rhs =
        String.trim (String.sub rule_str (i + 1) (String.length rule_str - i - 1))
      in
      if site = "" then
        Error (Printf.sprintf "failpoint %S: empty site name" rule_str)
      else begin
        let action_str, prob_str =
          match String.index_opt rhs '@' with
          | None -> (rhs, None)
          | Some j ->
              ( String.sub rhs 0 j,
                Some (String.sub rhs (j + 1) (String.length rhs - j - 1)) )
        in
        match parse_action rule_str action_str with
        | Error _ as e -> e
        | Ok action -> begin
            match prob_str with
            | None -> Ok { site; action; prob = 1.0 }
            | Some p -> begin
                match float_of_string_opt p with
                | Some v when Float.is_finite v && v > 0. && v <= 1. ->
                    Ok { site; action; prob = v }
                | Some _ | None ->
                    Error
                      (Printf.sprintf
                         "failpoint %S: bad probability %S (want 0 < p <= 1)"
                         rule_str p)
              end
          end
      end

let parse spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc item ->
      match acc with
      | Error _ as e -> e
      | Ok rs -> (
          match parse_rule item with Ok r -> Ok (r :: rs) | Error _ as e -> e))
    (Ok []) items
  |> Result.map List.rev

let init_from_env () =
  match Sys.getenv_opt "PROXJOIN_FAILPOINTS" with
  | None | Some "" -> Ok ()
  | Some spec -> (
      match parse spec with
      | Error _ as e -> e
      | Ok rs ->
          let seed =
            match Sys.getenv_opt "PROXJOIN_FAILPOINT_SEED" with
            | Some s -> (
                match int_of_string_opt (String.trim s) with
                | Some n -> n
                | None -> default_seed)
            | None -> default_seed
          in
          configure ~seed rs;
          Ok ())
