let now () = Unix.gettimeofday ()

external monotonic_now : unit -> float = "pj_monotonic_now"

let time f =
  let t0 = monotonic_now () in
  let result = f () in
  (result, monotonic_now () -. t0)

type measurement = {
  mean_s : float;
  stdev_s : float;
  cov : float;
  repetitions : int;
}

let measure ?(repetitions = 3) f =
  assert (repetitions > 0);
  let samples =
    Array.init repetitions (fun _ ->
        let (), dt = time f in
        dt)
  in
  {
    mean_s = Stats.mean samples;
    stdev_s = Stats.stdev samples;
    cov = Stats.coefficient_of_variation samples;
    repetitions;
  }

let pp_measurement ppf m =
  Format.fprintf ppf "%.4fs (cov %.1f%%, n=%d)" m.mean_s (100. *. m.cov)
    m.repetitions
