(** Multicore helpers (OCaml 5 domains).

    Document collections are embarrassingly parallel for the join
    algorithms: each document's match lists are solved independently.
    [map_array] splits an array into contiguous chunks, one per domain. *)

val recommended_domains : unit -> int
(** A sensible domain count for this machine
    ([Domain.recommended_domain_count], capped at 8 by default). The cap
    can be overridden through the [PROXJOIN_DOMAINS] environment
    variable (clamped to at least 1; non-numeric values are ignored) —
    e.g. to let a dedicated server box use more than 8 cores, or to
    pin CI to a single domain. *)

val recommended_shards : unit -> int
(** Default index shard count: the [PROXJOIN_SHARDS] environment
    variable (clamped to at least 1; non-numeric values are ignored),
    or 1 — a monolithic index — when unset. Read by the [serve] and
    [isearch] subcommands as the default of their [--shards] flag, so
    a deployment can be resharded without touching the command line. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], preserving order. [domains] defaults to
    {!recommended_domains}; [1] (or arrays shorter than 2 elements) runs
    sequentially with no domain spawns. The function must be safe to run
    concurrently with itself (the solvers are: they share no mutable
    state). An exception in any chunk is re-raised after every domain is
    joined. *)
