(** Bounded least-recently-used map: O(1) lookup, insertion and
    eviction (hash table threaded with a doubly-linked recency list).

    The substrate for the query-result cache in [Pj_server]: repeated
    queries — the common case under heavy traffic — are answered
    without re-running the join solvers. Not thread-safe; callers that
    share an instance across domains must serialize access. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup, marking the entry most-recently used on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test {e without} touching recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, marking the entry most-recently used; evicts
    the least-recently-used entry when the cache is at capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit
val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries most-recently-used first (exposed for tests). *)
