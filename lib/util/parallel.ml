let default_cap = 8

let domain_cap () =
  match Sys.getenv_opt "PROXJOIN_DOMAINS" with
  | None -> default_cap
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Stdlib.max 1 n
      | None -> default_cap)

let recommended_domains () =
  Stdlib.min (domain_cap ()) (Domain.recommended_domain_count ())

let recommended_shards () =
  match Sys.getenv_opt "PROXJOIN_SHARDS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Stdlib.max 1 n
      | None -> 1)

let map_array ?domains f a =
  let n = Array.length a in
  let domains =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> recommended_domains ()
  in
  let domains = Stdlib.min domains n in
  if domains <= 1 || n < 2 then Array.map f a
  else begin
    (* Contiguous chunks, sized within one of each other. *)
    let chunk_of i =
      let base = n / domains and extra = n mod domains in
      let start = (i * base) + Stdlib.min i extra in
      let len = base + (if i < extra then 1 else 0) in
      (start, len)
    in
    let run i =
      let start, len = chunk_of i in
      Array.init len (fun j -> f a.(start + j))
    in
    (* Spawn domains for all chunks but the first, which runs here. *)
    let handles =
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> run (i + 1)))
    in
    let first = run 0 in
    let rest = List.map Domain.join handles in
    Array.concat (first :: rest)
  end
