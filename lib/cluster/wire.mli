(** Socket/channel IO for the binary protocol: read and write
    {!Frame}s over the same [in_channel]/[out_channel] pairs the text
    protocol uses, plus the first-byte sniff that lets one listening
    socket serve both protocols.

    Sniffing: the first byte of a text protocol connection is an ASCII
    letter (every verb is uppercase ASCII), while every binary frame
    starts with {!Frame.magic_byte} (0xB1, > 0x7f). Peeking one byte
    ([MSG_PEEK], so the byte stays in the kernel buffer for whichever
    reader wins) classifies the connection before any channel
    buffering happens. *)

type read_result =
  | Frame of Frame.t
  | Closed  (** clean EOF at a frame boundary *)
  | Bad of Frame.error
      (** torn, corrupt or oversized frame: the stream can no longer
          be parsed at frame boundaries — send one {!Frame.Error_frame}
          and close (see {!Pj_server.Protocol.max_line_bytes} for the
          text-side analogue). *)

val read : ?max_body:int -> in_channel -> read_result
(** Read exactly one frame. [Oversized] is detected from the fixed
    header before the body is read or allocated. *)

val write : out_channel -> Frame.t -> unit
(** Append one frame; does not flush (callers batch pipelined writes
    and flush once). *)

val write_flush : out_channel -> Frame.t -> unit

val sniff : Unix.file_descr -> [ `Binary | `Text | `Eof ]
(** Block until the connection's first byte is available and classify
    it without consuming it. [`Eof] when the peer closed (or the peek
    failed) before sending anything. *)
