(** The scatter-gather router: answers one SEARCH by querying every
    shard-server {e leg} in parallel over pipelined {!Backend}
    connections, failing a broken leg over to its replicas, and
    merging the survivors' top-k into an exact global answer.

    {2 Legs, replicas, and doc-id bases}

    A {e leg} is one contiguous slice of the global corpus, served by
    a primary backend and any number of replicas holding the same
    slice. Backends index their slice with local doc ids [0..n-1];
    the router rebases hits by the leg's {e base} — given explicitly
    ([HOST:PORT\@BASE]) or derived at {!create} time by fetching each
    leg's [docs=] from STATS and accumulating in leg order (so legs
    partition the corpus in the order configured, exactly like the
    in-process sharded index's contiguous doc-id ranges).

    {2 Why the merge is exact (the PR 4 argument)}

    Every leg returns its local top-k for the {e same} k as the
    client's query. Any document of a surviving leg that belongs to
    the global top-k of the surviving set must rank in the top-k of
    its own leg — so concatenating the surviving legs' lists and
    taking the best k (score desc, doc id asc, the searcher's order)
    is the exact top-k over every document the surviving legs hold.
    With all legs surviving it is byte-identical to a single-process
    search over the whole corpus; with failures it is the exact
    top-k-of-survivors that [OK-DEGRADED] promises
    (see {!Pj_engine.Shard_searcher.search_degraded}).

    {2 Failover state machine}

    Per leg, per query: scatter submits to the primary (site
    [router.leg.N] fires first — an injected error fails the attempt
    before it is sent). A leg attempt fails on connection failure
    ([Down]), deadline ([Timed_out] or a backend [TIMEOUT] line),
    backpressure ([BUSY]), a backend [ERR], or a backend that is
    itself degraded (its slice would be silently incomplete — treated
    as leg failure, keeping the top-k-of-survivors contract honest).
    Each failure fires [router.retry] and moves to the next replica
    with whatever deadline budget remains; when the chain is
    exhausted the leg is failed and reported in [OK-DEGRADED]. A leg
    answered by a replica counts one {e failover}; every extra
    attempt counts one {e backend retry}. *)

type spec = { host : string; port : int; base : int option }

val spec_of_string : string -> (spec, string) result
(** Parse [HOST:PORT] or [HOST:PORT\@BASE]. *)

type t

val create :
  ?connect_deadline_s:float ->
  legs:(spec * spec list) list ->
  unit ->
  (t, string) result
(** One [(primary, replicas)] per leg, in corpus order. Connects to
    each leg (primary first, then replicas) to derive doc-id bases
    unless every leg carries an explicit [\@BASE] (a replica's
    explicit base, if any, must agree with its primary's — it serves
    the same slice and is validated at failover time, not here).
    [connect_deadline_s] (default 5) bounds the STATS round-trips.
    [Error] when a base cannot be derived — a router that cannot
    place a leg's doc ids must not start. *)

val n_legs : t -> int

val search :
  t ->
  Pj_server.Protocol.search_request ->
  deadline:float ->
  Pj_server.Server.forward_outcome
(** The {!Pj_server.Server.forward} hook. Thread-safe; called
    concurrently by every router connection thread. [Forwarded_timeout]
    only when {e every} leg timed out; legs that failed for mixed
    reasons yield [Forwarded_degraded] (possibly with zero hits). *)

val stats_extra : t -> string
(** Router-tier STATS tokens: [router_legs=], [backend_retries=],
    [failovers=], and per backend [backend.<leg>.<i>=host:port] with
    [.up], [.requests], [.failures], [.p50_ms], [.p99_ms] ([i] = 0 is
    the primary). Appended to the server's STATS line via
    [?extra_stats]. *)

val backend_retries : t -> int
val failovers : t -> int

val close : t -> unit
(** Close every backend connection and join their threads. *)
