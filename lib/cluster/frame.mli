(** The binary protocol's frame codec: a pure, fuzz-testable
    encoder/decoder over strings. Channel/socket IO lives in {!Wire}.

    Every frame is:

    {v
    offset  size  field
    0       1     magic byte 0xB1 (the sniff byte -- see {!Wire})
    1       2     "PJ"
    3       1     version (currently 1)
    4       4     body length, signed 32-bit big-endian
    8       n     body: varint request id, varint kind,
                  length-prefixed payload (Storage string codec)
    8+n     4     CRC-32 of the body, big-endian
    v}

    The body reuses {!Pj_index.Storage}'s LEB128 varint and
    length-prefixed string primitives, so every proxjoin binary
    format — on-disk corpus, WAL records, wire frames — shares one
    integer encoding. The payload of a [Request] is exactly one text
    protocol request line (without the newline), and the payload of a
    [Response] is the corresponding response line: the binary protocol
    changes the framing and adds request-id pipelining, not the
    request grammar.

    The declared body length is bounded ([max_body] — negative or
    oversized lengths are rejected before any allocation), mirroring
    how {!Pj_server.Protocol.max_line_bytes} bounds text lines. *)

type kind =
  | Request  (** client -> server: payload is a request line *)
  | Response  (** server -> client: payload is the response line *)
  | Error_frame
      (** server -> client: the connection is being failed; payload is
          an [ERR ...] line. Sent once (request id 0 when the broken
          frame's id is unrecoverable), then the server closes. *)

type t = {
  kind : kind;
  id : int;
      (** Request id, echoed verbatim in the response so many requests
          can be in flight on one connection and answered out of
          order. Non-negative (a varint on the wire). *)
  payload : string;
}

type error =
  | Truncated of string
      (** The input ends mid-frame (torn header, body or CRC). *)
  | Corrupt of string
      (** Bad magic, unsupported version, CRC mismatch, or a body that
          does not decode to (id, kind, payload) exactly. *)
  | Oversized of int
      (** The declared body length is negative or exceeds [max_body];
          carries the declared length. Detected from the fixed-size
          header, before any body allocation. *)

val magic_byte : char
(** [0xB1]. Deliberately > 0x7f: every text protocol request starts
    with an ASCII letter, so the first byte of a connection
    classifies it (see {!Wire.sniff}). *)

val version : int
val header_bytes : int
(** Fixed header size: magic + "PJ" + version + body length = 8. *)

val trailer_bytes : int
(** CRC-32 size: 4. *)

val max_body_bytes : int
(** Default body-length bound (1 MiB): comfortably above the largest
    legitimate response (k = 10000 hits at full float precision) and
    far below anything that could pressure the allocator. *)

val encode : Buffer.t -> t -> unit
(** Append the frame's wire image. Raises [Invalid_argument] on a
    negative id or a payload longer than {!max_body_bytes}. *)

val to_string : t -> string
(** [encode] into a fresh string. *)

val decode_body_length : string -> pos:int -> (int, error) result
(** Validate the fixed-size header at [pos] (magic, version, length
    bounds against {!max_body_bytes}) and return the declared body
    length. [Truncated] if fewer than {!header_bytes} bytes remain.
    The frame's total wire size is
    [header_bytes + length + trailer_bytes]. *)

val decode : ?max_body:int -> string -> pos:int ref -> (t, error) result
(** Decode one frame at [!pos], advancing it past the frame on
    success ([!pos] is untouched on error). [?max_body] tightens (or
    relaxes) the body-length bound; default {!max_body_bytes}. *)
