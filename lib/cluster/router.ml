module Protocol = Pj_server.Protocol
module Server = Pj_server.Server

type spec = { host : string; port : int; base : int option }

let spec_of_string s =
  let parse_hostport hp =
    match String.rindex_opt hp ':' with
    | None -> Error (Printf.sprintf "bad backend %S (want HOST:PORT[@BASE])" s)
    | Some i -> (
        let host = String.sub hp 0 i in
        let port = String.sub hp (i + 1) (String.length hp - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
        | _ -> Error (Printf.sprintf "bad backend port in %S" s))
  in
  match String.index_opt s '@' with
  | None ->
      Result.map (fun (host, port) -> { host; port; base = None })
        (parse_hostport s)
  | Some i -> (
      let hp = String.sub s 0 i in
      let b = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt b with
      | Some b when b >= 0 ->
          Result.map
            (fun (host, port) -> { host; port; base = Some b })
            (parse_hostport hp)
      | _ -> Error (Printf.sprintf "bad doc-id base in %S (want an int >= 0)" s))

type leg = {
  base : int;
  backends : Backend.t array;  (* primary at 0, replicas after *)
}

type t = {
  legs : leg array;
  retries : int Atomic.t;
  failovers : int Atomic.t;
}

let n_legs t = Array.length t.legs
let backend_retries t = Atomic.get t.retries
let failovers t = Atomic.get t.failovers

let close t =
  Array.iter (fun leg -> Array.iter Backend.close leg.backends) t.legs

let create ?(connect_deadline_s = 5.) ~legs () =
  if legs = [] then Error "a router needs at least one --backend"
  else begin
    let all =
      List.map
        (fun ((p : spec), replicas) ->
          ( p,
            Backend.create ~host:p.host ~port:p.port,
            List.map
              (fun (r : spec) -> Backend.create ~host:r.host ~port:r.port)
              replicas ))
        legs
    in
    let close_all () =
      List.iter
        (fun (_, b, rs) ->
          Backend.close b;
          List.iter Backend.close rs)
        all
    in
    (* Doc-id bases: explicit @BASE wins; otherwise accumulate each
       leg's docs= in order. Deriving needs every *predecessor's* doc
       count, so a leg whose successors are all explicit never gets
       asked. A leg's count may come from any of its backends — they
       serve the same slice. *)
    let rec resolve acc_base resolved = function
      | [] -> Ok (List.rev resolved)
      | ((p : spec), primary, replicas) :: rest ->
          let base = match p.base with Some b -> b | None -> acc_base in
          let next_needs_derived =
            List.exists (fun ((s : spec), _, _) -> s.base = None) rest
          in
          let docs =
            if not next_needs_derived then Ok 0
            else begin
              let deadline =
                Pj_util.Timing.monotonic_now () +. connect_deadline_s
              in
              let rec first_ok errs = function
                | [] ->
                    Error
                      (Printf.sprintf "cannot size leg %s: %s"
                         (Backend.name primary)
                         (String.concat "; " (List.rev errs)))
                | b :: bs -> (
                    match Backend.fetch_docs b ~deadline with
                    | Ok n -> Ok n
                    | Error e -> first_ok (e :: errs) bs)
              in
              first_ok [] (primary :: replicas)
            end
          in
          (match docs with
          | Error e -> Error e
          | Ok n ->
              resolve (base + n)
                ({ base; backends = Array.of_list (primary :: replicas) }
                :: resolved)
                rest)
    in
    match resolve 0 [] all with
    | Error e ->
        close_all ();
        Error e
    | Ok legs ->
        Ok
          {
            legs = Array.of_list legs;
            retries = Atomic.make 0;
            failovers = Atomic.make 0;
          }
  end

(* Re-render the client's (already validated) request for the legs.
   Alpha at exact precision so the leg scores a bit-identical query;
   terms are forwarded as the original specs. Every leg gets the same
   k as the client — the exactness of the merge depends on it. *)
let leg_line (sr : Protocol.search_request) =
  Printf.sprintf "SEARCH %s %.17g %d %s" sr.Protocol.family sr.Protocol.alpha
    sr.Protocol.k
    (String.concat " " sr.Protocol.terms)

(* One leg attempt's verdict over a backend response line. *)
type attempt =
  | Hits of (int * float) list
  | Leg_timeout
  | Leg_failed of string

let classify = function
  | Backend.Timed_out -> Leg_timeout
  | Backend.Down reason -> Leg_failed reason
  | Backend.Line line -> (
      if line = Protocol.timeout then Leg_timeout
      else
        match Protocol.parse_hits line with
        | Ok pairs -> Hits pairs
        | Error _ ->
            (* BUSY, ERR, or a backend that is itself OK-DEGRADED: its
               slice would be silently incomplete, which would turn our
               "exact top-k of survivors" into a lie — fail the leg
               (and let the replica chain try for a complete answer). *)
            Leg_failed ("backend answered: " ^ line))

let search t (sr : Protocol.search_request) ~deadline =
  let line = leg_line sr in
  let n = Array.length t.legs in
  (* Scatter: one pipelined submit per leg; no thread is spawned —
     concurrency comes from all frames being in flight before the
     first await. [router.leg.N] can fail the attempt pre-submit. *)
  let scattered =
    Array.mapi
      (fun i leg ->
        match Pj_util.Failpoint.hit (Printf.sprintf "router.leg.%d" i) with
        | () -> `Waiter (Backend.submit leg.backends.(0) ~line ~deadline)
        | exception Pj_util.Failpoint.Injected site ->
            `Failed (Printf.sprintf "failpoint %s" site))
      t.legs
  in
  (* Gather, with failover: a failed attempt walks the replica chain
     with whatever deadline budget remains. Sequential within a leg,
     but other legs' responses are already in flight. *)
  let gather i =
    let leg = t.legs.(i) in
    let first =
      match scattered.(i) with
      | `Waiter w -> classify (Backend.await w)
      | `Failed reason -> Leg_failed reason
    in
    let rec failover attempt ri =
      match attempt with
      | Hits pairs -> Hits pairs
      | Leg_timeout | Leg_failed _ ->
          if ri >= Array.length leg.backends then attempt
          else if Pj_util.Timing.monotonic_now () >= deadline then attempt
          else begin
            Atomic.incr t.retries;
            match Pj_util.Failpoint.hit "router.retry" with
            | exception Pj_util.Failpoint.Injected site ->
                failover (Leg_failed (Printf.sprintf "failpoint %s" site))
                  (ri + 1)
            | () ->
                let next =
                  classify
                    (Backend.request leg.backends.(ri) ~line ~deadline)
                in
                (match next with
                | Hits _ -> Atomic.incr t.failovers
                | _ -> ());
                failover next (ri + 1)
          end
    in
    failover first 1
  in
  let outcomes = Array.init n gather in
  let survivors = ref [] and failed = ref [] and timeouts = ref 0 in
  Array.iteri
    (fun i -> function
      | Hits pairs ->
          let base = t.legs.(i).base in
          survivors :=
            List.rev_append
              (List.rev_map (fun (id, score) -> (id + base, score)) pairs)
              !survivors
      | Leg_timeout ->
          incr timeouts;
          failed := i :: !failed
      | Leg_failed _ -> failed := i :: !failed)
    outcomes;
  let failed = List.rev !failed in
  if List.length failed = n && !timeouts = n then Server.Forwarded_timeout
  else begin
    (* Exact top-k of the survivor set: every leg returned its local
       top-k for the same k, so one sort of the union suffices — the
       searcher's order, score desc then doc id asc. *)
    let merged =
      List.sort
        (fun (i1, s1) (i2, s2) ->
          match compare s2 s1 with 0 -> compare i1 i2 | c -> c)
        !survivors
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    let top = take sr.Protocol.k merged in
    if failed = [] then Server.Forwarded_hits top
    else Server.Forwarded_degraded (top, failed)
  end

let stats_extra t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "router_legs=%d backend_retries=%d failovers=%d"
    (Array.length t.legs) (Atomic.get t.retries) (Atomic.get t.failovers);
  Array.iteri
    (fun li leg ->
      Array.iteri
        (fun bi b ->
          let h = Backend.health b in
          Printf.bprintf buf
            " backend.%d.%d=%s backend.%d.%d.up=%d backend.%d.%d.requests=%d \
             backend.%d.%d.failures=%d backend.%d.%d.p50_ms=%.3f \
             backend.%d.%d.p99_ms=%.3f"
            li bi (Backend.name b) li bi
            (if h.Backend.up then 1 else 0)
            li bi h.Backend.requests li bi h.Backend.failures li bi
            h.Backend.p50_ms li bi h.Backend.p99_ms)
        leg.backends)
    t.legs;
  Buffer.contents buf
