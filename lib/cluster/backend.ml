type outcome = Line of string | Down of string | Timed_out

type waiter = {
  mutable result : outcome option;
  wm : Mutex.t;
  wc : Condition.t;
  deadline : float;
  t0 : float;  (* submit time, for the latency histogram *)
}

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

type t = {
  host : string;
  port : int;
  name : string;
  m : Mutex.t;
      (* Guards every mutable field below plus the histogram. Held
         across the (loopback, small-frame) request write: the write
         itself is the serialization point for pipelined frames. *)
  mutable conn : conn option;
  mutable readers : Thread.t list;
      (* Every reader thread ever spawned; exited ones join
         instantly at [close]. One live reader per connection. *)
  mutable timer : Thread.t option;
  mutable next_id : int;
  pending : (int, waiter) Hashtbl.t;
  mutable requests : int;
  mutable failures : int;
  mutable consecutive_failures : int;
  mutable last_connect_attempt : float;
      (* Circuit breaker: with [breaker_failures]+ consecutive failures,
         reconnects are attempted at most once per [breaker_cooldown_s];
         submits inside the window fail [Down] without a connect. A dead
         backend otherwise costs every request a serialized (under
         [t.m]) TCP connect — the failure path must be cheaper than the
         success path, not dearer. *)
  mutable closed : bool;
  latency : Pj_util.Histogram.t;
}

let breaker_failures = 3
let breaker_cooldown_s = 0.05

let create ~host ~port =
  {
    host;
    port;
    name = Printf.sprintf "%s:%d" host port;
    m = Mutex.create ();
    conn = None;
    readers = [];
    timer = None;
    next_id = 0;
    pending = Hashtbl.create 64;
    requests = 0;
    failures = 0;
    consecutive_failures = 0;
    last_connect_attempt = neg_infinity;
    closed = false;
    latency = Pj_util.Histogram.create ();
  }

let name t = t.name

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let resolve w outcome =
  Mutex.lock w.wm;
  (match w.result with
  | Some _ -> () (* first resolution wins; late responses are dropped *)
  | None ->
      w.result <- Some outcome;
      Condition.broadcast w.wc);
  Mutex.unlock w.wm

let await w =
  Mutex.lock w.wm;
  while w.result = None do
    Condition.wait w.wc w.wm
  done;
  let r = Option.get w.result in
  Mutex.unlock w.wm;
  r

(* Record one request's fate. Caller holds [t.m]. *)
let observe_locked t w outcome =
  (match outcome with
  | Line _ ->
      t.consecutive_failures <- 0;
      Pj_util.Histogram.observe t.latency
        (Pj_util.Timing.monotonic_now () -. w.t0)
  | Down _ | Timed_out ->
      t.failures <- t.failures + 1;
      t.consecutive_failures <- t.consecutive_failures + 1);
  resolve w outcome

(* Drop [c] (if it is still the current connection) and fail every
   in-flight request: once a frame boundary or the transport is gone,
   no pending response can be trusted to arrive. Caller holds [t.m]. *)
let fail_conn_locked t c reason =
  let is_current = match t.conn with Some c' -> c' == c | None -> false in
  if is_current then begin
    t.conn <- None;
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    close_out_noerr c.oc;
    close_in_noerr c.ic;
    let pending = Hashtbl.fold (fun id w acc -> (id, w) :: acc) t.pending [] in
    Hashtbl.reset t.pending;
    List.iter (fun (_, w) -> observe_locked t w (Down reason)) pending
  end

let reader t c =
  let rec loop () =
    let event =
      match Pj_frame.Wire.read c.ic with
      | exception Sys_error _ -> `Fail "connection error"
      | Pj_frame.Wire.Closed -> `Fail "backend closed connection"
      | Pj_frame.Wire.Bad _ -> `Fail "bad frame from backend"
      | Pj_frame.Wire.Frame f -> `Frame f
    in
    match event with
    | `Fail reason -> with_lock t (fun () -> fail_conn_locked t c reason)
    | `Frame { Pj_frame.Frame.kind; id; payload } ->
        let continue =
          with_lock t (fun () ->
              match t.conn with
              | Some c' when c' == c -> begin
                  match kind with
                  | Pj_frame.Frame.Response ->
                      (match Hashtbl.find_opt t.pending id with
                      | Some w ->
                          Hashtbl.remove t.pending id;
                          observe_locked t w (Line payload)
                      | None -> () (* the deadline won the race; drop it *));
                      true
                  | Pj_frame.Frame.Error_frame ->
                      (* The server is failing the whole connection
                         (its text analogue closes after one ERR). *)
                      fail_conn_locked t c
                        (Printf.sprintf "backend failed connection: %s" payload);
                      false
                  | Pj_frame.Frame.Request ->
                      fail_conn_locked t c "protocol violation from backend";
                      false
                end
              | _ -> false (* a newer connection took over; exit *))
        in
        if continue then loop ()
  in
  loop ()

(* Expire pending requests whose deadline has passed. 5 ms granularity
   bounds only how late a TIMEOUT fires — successful responses wake
   their waiter from the reader immediately. *)
let timer t =
  let rec loop () =
    let live =
      with_lock t (fun () ->
          if t.closed then false
          else begin
            let now = Pj_util.Timing.monotonic_now () in
            let expired =
              Hashtbl.fold
                (fun id w acc ->
                  if w.deadline <= now then (id, w) :: acc else acc)
                t.pending []
            in
            List.iter
              (fun (id, w) ->
                Hashtbl.remove t.pending id;
                observe_locked t w Timed_out)
              expired;
            true
          end)
    in
    if live then begin
      Thread.delay 0.005;
      loop ()
    end
  in
  loop ()

exception Breaker_open

let connect_locked t =
  let now = Pj_util.Timing.monotonic_now () in
  if
    t.consecutive_failures >= breaker_failures
    && now < t.last_connect_attempt +. breaker_cooldown_s
  then raise Breaker_open;
  t.last_connect_attempt <- now;
  Pj_util.Failpoint.hit "router.connect";
  let addr =
    try Unix.inet_addr_of_string t.host
    with Failure _ -> (Unix.gethostbyname t.host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (addr, t.port)) with
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  | () ->
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      let c =
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
      in
      t.conn <- Some c;
      t.readers <- Thread.create (fun () -> reader t c) () :: t.readers;
      if t.timer = None then
        t.timer <- Some (Thread.create (fun () -> timer t) ());
      c

let submit t ~line ~deadline =
  let w =
    {
      result = None;
      wm = Mutex.create ();
      wc = Condition.create ();
      deadline;
      t0 = Pj_util.Timing.monotonic_now ();
    }
  in
  with_lock t (fun () ->
      t.requests <- t.requests + 1;
      if t.closed then observe_locked t w (Down "backend handle closed")
      else
        match (match t.conn with Some c -> c | None -> connect_locked t) with
        | exception Pj_util.Failpoint.Injected site ->
            observe_locked t w (Down (Printf.sprintf "failpoint %s" site))
        | exception Breaker_open ->
            observe_locked t w
              (Down (Printf.sprintf "%s down (breaker open)" t.name))
        | exception Unix.Unix_error (e, _, _) ->
            observe_locked t w
              (Down
                 (Printf.sprintf "connect %s: %s" t.name
                    (Unix.error_message e)))
        | c -> (
            let id = t.next_id in
            t.next_id <- t.next_id + 1;
            Hashtbl.replace t.pending id w;
            match
              Pj_frame.Wire.write_flush c.oc
                {
                  Pj_frame.Frame.kind = Pj_frame.Frame.Request;
                  id;
                  payload = line;
                }
            with
            | () -> ()
            | exception Sys_error msg ->
                (* [fail_conn_locked] resolves [w] too — it is pending. *)
                fail_conn_locked t c (Printf.sprintf "write failed: %s" msg)));
  w

let request t ~line ~deadline = await (submit t ~line ~deadline)

(* Extract [key=<int>] from a STATS line ([key] preceded by a space,
   so [docs=] never matches [segment_docs=]). *)
let int_field line key =
  let needle = " " ^ key ^ "=" in
  let nl = String.length needle and ll = String.length line in
  let rec find i =
    if i + nl > ll then None
    else if String.sub line i nl = needle then begin
      let s = i + nl in
      let e = ref s in
      while !e < ll && line.[!e] <> ' ' do
        incr e
      done;
      int_of_string_opt (String.sub line s (!e - s))
    end
    else find (i + 1)
  in
  find 0

let fetch_docs t ~deadline =
  match request t ~line:"STATS" ~deadline with
  | Down reason -> Error reason
  | Timed_out -> Error "STATS timed out"
  | Line line -> (
      match int_field line "docs" with
      | Some n -> Ok n
      | None ->
          Error
            (Printf.sprintf
               "%s reports no docs= in STATS (older server? give an explicit \
                @BASE)"
               t.name))

type health = {
  up : bool;
  requests : int;
  failures : int;
  consecutive_failures : int;
  p50_ms : float;
  p99_ms : float;
}

let health t =
  with_lock t (fun () ->
      {
        up = t.conn <> None;
        requests = t.requests;
        failures = t.failures;
        consecutive_failures = t.consecutive_failures;
        p50_ms = 1000. *. Pj_util.Histogram.percentile t.latency 50.;
        p99_ms = 1000. *. Pj_util.Histogram.percentile t.latency 99.;
      })

let close t =
  let to_join =
    with_lock t (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          (match t.conn with
          | Some c -> fail_conn_locked t c "backend handle closed"
          | None -> ());
          let ths = t.readers @ Option.to_list t.timer in
          t.readers <- [];
          t.timer <- None;
          ths
        end)
  in
  List.iter Thread.join to_join
