type read_result = Frame of Frame.t | Closed | Bad of Frame.error

(* [really_input_string] raises [End_of_file] whether zero or some
   bytes arrived; distinguishing a clean close from a torn frame needs
   byte-at-a-time accounting only for the first header byte. *)
let read_exact ic n =
  match really_input_string ic n with
  | s -> Some s
  | exception End_of_file -> None

let read ?(max_body = Frame.max_body_bytes) ic =
  match input_char ic with
  | exception End_of_file -> Closed
  | first -> begin
      match read_exact ic (Frame.header_bytes - 1) with
      | None -> Bad (Frame.Truncated "frame header")
      | Some rest -> begin
          let header = String.make 1 first ^ rest in
          match Frame.decode_body_length header ~pos:0 with
          | Error e -> Bad e
          | Ok len when len > max_body -> Bad (Frame.Oversized len)
          | Ok len -> begin
              match read_exact ic (len + Frame.trailer_bytes) with
              | None -> Bad (Frame.Truncated "frame body")
              | Some body -> begin
                  let pos = ref 0 in
                  match Frame.decode ~max_body (header ^ body) ~pos with
                  | Ok f -> Frame f
                  | Error e -> Bad e
                end
            end
        end
    end

let write oc f =
  let buf = Buffer.create (String.length f.Frame.payload + 16) in
  Frame.encode buf f;
  Buffer.output_buffer oc buf

let write_flush oc f =
  write oc f;
  flush oc

let sniff fd =
  let b = Bytes.create 1 in
  match Unix.recv fd b 0 1 [ Unix.MSG_PEEK ] with
  | 0 -> `Eof
  | _ -> if Bytes.get b 0 = Frame.magic_byte then `Binary else `Text
  | exception Unix.Unix_error _ -> `Eof
