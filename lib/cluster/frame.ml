type kind = Request | Response | Error_frame

type t = { kind : kind; id : int; payload : string }

type error = Truncated of string | Corrupt of string | Oversized of int

let magic_byte = '\xB1'
let version = 1
let header_bytes = 8
let trailer_bytes = 4
let max_body_bytes = 1 lsl 20

let tag_of_kind = function Request -> 1 | Response -> 2 | Error_frame -> 3

let kind_of_tag = function
  | 1 -> Some Request
  | 2 -> Some Response
  | 3 -> Some Error_frame
  | _ -> None

let encode buf t =
  if t.id < 0 then invalid_arg "Frame.encode: negative request id";
  if String.length t.payload > max_body_bytes then
    invalid_arg "Frame.encode: payload exceeds max_body_bytes";
  let body = Buffer.create (String.length t.payload + 8) in
  Pj_index.Storage.write_varint body t.id;
  Pj_index.Storage.write_varint body (tag_of_kind t.kind);
  Pj_index.Storage.write_string body t.payload;
  let body = Buffer.contents body in
  Buffer.add_char buf magic_byte;
  Buffer.add_string buf "PJ";
  Buffer.add_char buf (Char.chr version);
  let len = Bytes.create 4 in
  Bytes.set_int32_be len 0 (Int32.of_int (String.length body));
  Buffer.add_bytes buf len;
  Buffer.add_string buf body;
  let crc = Bytes.create 4 in
  Bytes.set_int32_be crc 0 (Pj_index.Storage.crc32 body);
  Buffer.add_bytes buf crc

let to_string t =
  let buf = Buffer.create (String.length t.payload + header_bytes + trailer_bytes + 8) in
  encode buf t;
  Buffer.contents buf

(* The header is fixed-size and self-contained, so a reader can bound
   its allocation before touching the body: [Oversized] fires off the
   declared length alone. *)
let decode_body_length s ~pos =
  if String.length s - pos < header_bytes then
    Error (Truncated "frame header")
  else if s.[pos] <> magic_byte then Error (Corrupt "bad magic byte")
  else if s.[pos + 1] <> 'P' || s.[pos + 2] <> 'J' then
    Error (Corrupt "bad magic")
  else if Char.code s.[pos + 3] <> version then
    Error
      (Corrupt
         (Printf.sprintf "unsupported frame version %d" (Char.code s.[pos + 3])))
  else
    let len = Int32.to_int (String.get_int32_be s (pos + 4)) in
    if len < 0 || len > max_body_bytes then Error (Oversized len)
    else Ok len

let decode ?(max_body = max_body_bytes) s ~pos =
  let p = !pos in
  match decode_body_length s ~pos:p with
  | Error e -> Error e
  | Ok len ->
      if len > max_body then Error (Oversized len)
      else if String.length s - p < header_bytes + len + trailer_bytes then
        Error (Truncated "frame body")
      else begin
        let body_start = p + header_bytes in
        let stored = String.get_int32_be s (body_start + len) in
        let computed = Pj_index.Storage.crc32 ~pos:body_start ~len s in
        if stored <> computed then Error (Corrupt "CRC mismatch")
        else begin
          match
            let body = String.sub s body_start len in
            let bpos = ref 0 in
            let id = Pj_index.Storage.read_varint body ~pos:bpos in
            let tag = Pj_index.Storage.read_varint body ~pos:bpos in
            let payload = Pj_index.Storage.read_string body ~pos:bpos in
            (id, tag, payload, !bpos)
          with
          | exception Failure _ -> Error (Corrupt "bad frame body")
          | id, _, _, _ when id < 0 -> Error (Corrupt "negative request id")
          | _, _, _, consumed when consumed <> len ->
              Error (Corrupt "trailing bytes in frame body")
          | id, tag, payload, _ -> begin
              match kind_of_tag tag with
              | None -> Error (Corrupt (Printf.sprintf "unknown frame kind %d" tag))
              | Some kind ->
                  pos := p + header_bytes + len + trailer_bytes;
                  Ok { kind; id; payload }
            end
        end
      end
