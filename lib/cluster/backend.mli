(** One shard-server backend as seen from the router: a persistent,
    pipelined binary-protocol connection plus health accounting.

    Many router threads submit concurrently; requests are written to
    one connection tagged with fresh request ids, and a reader thread
    demultiplexes response frames to the waiting threads — so a
    backend connection carries as many in-flight requests as the
    router has concurrent queries, with no per-request connect.

    Failure model: any connection-level failure (connect refused,
    write error, torn/corrupt frame, EOF) fails {e every} in-flight
    request on that connection with [Down] and drops the connection;
    the next submit reconnects. A request whose deadline passes
    first resolves [Timed_out] (a response arriving later is
    discarded by id). The failpoint site [router.connect] fires
    before every (re)connect attempt.

    A circuit breaker keeps a dead backend cheap: after 3 consecutive
    failures, reconnects are attempted at most once per 50 ms and
    submits inside the cooldown resolve [Down] immediately — the
    failure path must cost less than the success path, or a dead
    backend would serialize every request behind futile TCP connects.
    Any success closes the breaker. *)

type t

type outcome =
  | Line of string  (** the backend's response line, verbatim *)
  | Down of string  (** connection-level failure; the reason *)
  | Timed_out  (** deadline passed with no response *)

type waiter
(** A pending request: submitted, not yet resolved. *)

val create : host:string -> port:int -> t
(** No connection is attempted until the first {!submit}. *)

val name : t -> string
(** ["host:port"]. *)

val submit : t -> line:string -> deadline:float -> waiter
(** Write one request frame (connecting first if needed) and return
    its waiter. A waiter is always returned: connect/write failures
    resolve it [Down] immediately. [deadline] is absolute monotonic
    time; a timer resolves the waiter [Timed_out] shortly after it
    passes. Never blocks past the write itself — scatter over many
    backends by submitting to all, then awaiting each. *)

val await : waiter -> outcome
(** Block until the waiter resolves (response, failure, or deadline —
    the deadline guarantees this terminates). Idempotent. *)

val request : t -> line:string -> deadline:float -> outcome
(** [await (submit ...)]. *)

val fetch_docs : t -> deadline:float -> (int, string) result
(** Ask the backend for its STATS line and extract [docs=] — the
    document count a router needs to derive doc-id bases. *)

type health = {
  up : bool;  (** a connection is currently established *)
  requests : int;
  failures : int;  (** requests resolved [Down] or [Timed_out] *)
  consecutive_failures : int;  (** reset by any success *)
  p50_ms : float;  (** round-trip latency of successful requests *)
  p99_ms : float;
}

val health : t -> health

val close : t -> unit
(** Fail in-flight requests, drop the connection, join the reader and
    timer threads. Subsequent submits resolve [Down]. *)
