type search_request = {
  family : string;
  alpha : float;
  k : int;
  terms : string list;
}

type request =
  | Ping
  | Stats
  | Quit
  | Search of search_request
  | Add_doc of string
  | Del_doc of int
  | Flush

let families = [ "win"; "med"; "max" ]
let max_k = 10_000
let max_terms = 16
let max_line_bytes = 4096

let scoring_of ~family ~alpha =
  match family with
  | "win" -> Ok (Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha))
  | "med" -> Ok (Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha))
  | "max" -> Ok (Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha))
  | other -> Error (Printf.sprintf "unknown scoring family %S" other)

(* Tokens are maximal runs of non-blank characters, so any amount of
   spacing (including a trailing "\r" from netcat-style clients) is
   accepted between arguments. *)
let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let parse_search = function
  | family :: alpha :: k :: terms ->
      if not (List.mem family families) then
        Error (Printf.sprintf "unknown scoring family %S (want win|med|max)" family)
      else begin
        match float_of_string_opt alpha with
        | None -> Error (Printf.sprintf "bad alpha %S (want a float)" alpha)
        | Some a when (not (Float.is_finite a)) || a < 0. ->
            (* Non-finite alpha (nan, inf) would poison the exponential
               scoring closures — every score becomes nan/0. *)
            Error (Printf.sprintf "bad alpha %S (want a finite float >= 0)" alpha)
        | Some alpha -> begin
            match int_of_string_opt k with
            | None -> Error (Printf.sprintf "bad k %S (want an integer)" k)
            | Some k when k < 0 -> Error "bad k (want k >= 0)"
            | Some k when k > max_k ->
                Error (Printf.sprintf "bad k (at most %d)" max_k)
            | Some k ->
                if terms = [] then Error "SEARCH needs at least one term"
                else if List.length terms > max_terms then
                  Error (Printf.sprintf "too many terms (at most %d)" max_terms)
                else Ok (Search { family; alpha; k; terms })
          end
      end
  | _ -> Error "usage: SEARCH <win|med|max> <alpha> <k> <term> ..."

(* ADDDOC carries raw document text, not protocol tokens: the verb is
   the first non-blank run of the line and everything after it (minus
   surrounding blanks and a trailing "\r") is the document — the
   whitespace-collapsing [tokenize] must not touch it. *)
let adddoc_text line =
  let n = String.length line in
  let is_blank c = c = ' ' || c = '\t' || c = '\r' in
  let start = ref 0 in
  while !start < n && is_blank line.[!start] do incr start done;
  (* the caller matched the verb already, so this cannot underrun *)
  let after = !start + String.length "ADDDOC" in
  let b = ref after and e = ref n in
  while !b < n && is_blank line.[!b] do incr b done;
  while !e > !b && is_blank line.[!e - 1] do decr e done;
  String.sub line !b (!e - !b)

let parse_request line =
  if String.length line > max_line_bytes then Error "request line too long"
  else
    match tokenize line with
    | [] -> Error "empty request"
    | [ "PING" ] -> Ok Ping
    | [ "STATS" ] -> Ok Stats
    | [ "QUIT" ] -> Ok Quit
    | [ "FLUSH" ] -> Ok Flush
    | "SEARCH" :: rest -> parse_search rest
    | "ADDDOC" :: _ -> (
        match adddoc_text line with
        | "" -> Error "ADDDOC needs document text"
        | text -> Ok (Add_doc text))
    | [ "DELDOC"; id ] -> (
        match int_of_string_opt id with
        | Some id when id >= 0 -> Ok (Del_doc id)
        | Some _ -> Error "bad doc id (want id >= 0)"
        | None -> Error (Printf.sprintf "bad doc id %S (want an integer)" id))
    | "DELDOC" :: _ -> Error "usage: DELDOC <id>"
    | ("PING" | "STATS" | "QUIT" | "FLUSH") :: _ :: _ ->
        Error "PING, STATS, QUIT and FLUSH take no arguments"
    | cmd :: _ ->
        Error
          (Printf.sprintf
             "unknown command %S (want SEARCH|ADDDOC|DELDOC|FLUSH|PING|STATS|QUIT)"
             cmd)

(* The key under which a search is cached: scoring parameters plus the
   terms sorted, so queries differing only in term order share an
   entry (every scoring family is symmetric in its terms). *)
let cache_key { family; alpha; k; terms } =
  Printf.sprintf "%s|%.17g|%d|%s" family alpha k
    (String.concat "\x00" (List.sort compare terms))

(* Error payloads come from arbitrary exception messages
   ([Printexc.to_string] in the ingest batcher and worker pool), so
   they may carry newlines — a phantom protocol line to the client —
   or other control bytes (tabs, NUL, ANSI escapes) that tear the
   framing or smuggle terminal escapes. Collapse every run of
   whitespace/control bytes to a single space and trim the ends, so
   whatever the exception printed, the response is one clean line. *)
let one_line msg =
  let buf = Buffer.create (String.length msg) in
  let pending = ref false in
  String.iter
    (fun c ->
      if c <= ' ' || c = '\x7f' then begin
        if Buffer.length buf > 0 then pending := true
      end
      else begin
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf c
      end)
    msg;
  Buffer.contents buf

(* Two render precisions share one formatter: the human-facing text
   protocol keeps 9 significant digits, while the binary wire renders
   17 — enough for a float64 to round-trip exactly through
   [float_of_string], which is what lets a router parse a backend's
   scores, merge, and re-render byte-identically to a single-process
   server. *)
let text_precision = 9
let exact_precision = 17

let string_of_id_scores ?(precision = text_precision) pairs =
  let body =
    List.map (fun (id, score) -> Printf.sprintf "%d:%.*g" id precision score) pairs
  in
  String.concat " " (Printf.sprintf "HITS %d" (List.length pairs) :: body)

let string_of_hits ?precision hits =
  string_of_id_scores ?precision
    (List.map
       (fun (h : Pj_engine.Searcher.hit) ->
         (h.Pj_engine.Searcher.doc_id, h.Pj_engine.Searcher.score))
       hits)

(* A degraded answer is a complete HITS line prefixed with which
   shards are missing, so clients that only want best-effort results
   can strip everything up to "HITS" and proceed. *)
let ok_degraded_ids ?precision ~failed_shards pairs =
  Printf.sprintf "OK-DEGRADED shards=%s %s"
    (String.concat "," (List.map string_of_int failed_shards))
    (string_of_id_scores ?precision pairs)

let ok_degraded ?precision ~failed_shards hits =
  ok_degraded_ids ?precision ~failed_shards
    (List.map
       (fun (h : Pj_engine.Searcher.hit) ->
         (h.Pj_engine.Searcher.doc_id, h.Pj_engine.Searcher.score))
       hits)

(* Inverse of [string_of_id_scores], for router legs and test oracles.
   Strict: the declared count must match, every token must be
   [id:score] with a non-negative id and a finite-or-parsable score. *)
let parse_hits line =
  match tokenize line with
  | "HITS" :: n :: rest -> begin
      match int_of_string_opt n with
      | None -> Error (Printf.sprintf "bad HITS count %S" n)
      | Some n when n <> List.length rest ->
          Error
            (Printf.sprintf "HITS count mismatch (declared %d, got %d)" n
               (List.length rest))
      | Some _ ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | tok :: tl -> begin
                match String.index_opt tok ':' with
                | None -> Error (Printf.sprintf "bad hit token %S" tok)
                | Some i -> begin
                    let id = String.sub tok 0 i in
                    let score =
                      String.sub tok (i + 1) (String.length tok - i - 1)
                    in
                    match (int_of_string_opt id, float_of_string_opt score) with
                    | Some id, Some score when id >= 0 ->
                        go ((id, score) :: acc) tl
                    | _ -> Error (Printf.sprintf "bad hit token %S" tok)
                  end
              end
          in
          go [] rest
    end
  | _ -> Error "not a HITS line"

let added id = Printf.sprintf "ADDED %d" id
let deleted id = Printf.sprintf "DELETED %d" id

let flushed ~generation ~segments =
  Printf.sprintf "FLUSHED gen=%d segments=%d" generation segments

let pong = "PONG"
let bye = "BYE"
let busy = "BUSY"
let timeout = "TIMEOUT"
let err msg = "ERR " ^ one_line msg

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Only complete results may be replayed from the cache: a TIMEOUT is
   a statement about one request's wall clock, a degraded line about
   one request's shard luck — neither is a property of the query. *)
let cacheable response = has_prefix "HITS " response

(* Responses that answer a search with hits (complete or degraded),
   as opposed to an error/backpressure outcome — what the latency
   histogram observes. *)
let is_search_success response =
  has_prefix "HITS " response || has_prefix "OK-DEGRADED " response

(* The response acknowledges a completed write — what the ingest
   latency histogram observes. Never cacheable (writes are not
   queries). *)
let is_ingest_success response =
  has_prefix "ADDED " response
  || has_prefix "DELETED " response
  || has_prefix "FLUSHED " response
