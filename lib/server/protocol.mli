(** The line-oriented request protocol spoken by {!Server}.

    One request per line, one response line per request (so a client
    can pipeline naively). Grammar:

    {v
    request  ::= "SEARCH" family alpha k term+   ; top-k query
               | "ADDDOC" text                   ; ingest one document
               | "DELDOC" id                     ; tombstone a document
               | "FLUSH"                         ; seal the memtable (durability barrier)
               | "PING"                          ; liveness probe
               | "STATS"                         ; metrics snapshot
               | "QUIT"                          ; close the connection
    family   ::= "win" | "med" | "max"
    alpha    ::= float >= 0                      ; distance decay rate
    k        ::= int in [0, 10000]
    term     ::= a Pj_matching.Query_parser spec (no spaces)
    text     ::= the rest of the line, verbatim  ; tokenized server-side
    id       ::= int >= 0                        ; a doc id from ADDED
    v}

    Responses: ["HITS n doc:score ..."], ["OK-DEGRADED shards=i,j HITS
    n doc:score ..."] (a complete answer from the surviving shards
    when shards [i,j] failed or blew the deadline — see
    {!Pj_engine.Shard_searcher.search_degraded}), ["ADDED id"],
    ["DELETED id"], ["FLUSHED gen=g segments=n"], ["PONG"], ["BYE"],
    ["BUSY"] (queue full), ["TIMEOUT"] (deadline exceeded),
    ["ERR reason"], or a single ["STATS ..."] key=value line. A
    malformed request yields [ERR] and leaves the connection open.
    The write verbs require a server started over a live index
    ([--live]); a read-only server answers them with [ERR]. *)

type search_request = {
  family : string;  (** "win", "med" or "max" — validated by the parser *)
  alpha : float;
  k : int;
  terms : string list;  (** non-empty *)
}

type request =
  | Ping
  | Stats
  | Quit
  | Search of search_request
  | Add_doc of string  (** raw document text, surrounding blanks stripped *)
  | Del_doc of int
  | Flush

val parse_request : string -> (request, string) result
(** Parse one request line (whitespace-tolerant, ["\r"]-tolerant).
    [ADDDOC]'s document text is taken verbatim from the line (internal
    spacing preserved — token positions matter to proximity scoring);
    everything else is parsed word-wise. Errors name the offending
    argument and never raise. *)

val scoring_of :
  family:string -> alpha:float -> (Pj_core.Scoring.t, string) result
(** The paper's exponential WIN/MED and sum-MAX instances, keyed by
    family name — the same mapping the CLI uses. *)

val cache_key : search_request -> string
(** Normalized cache key: scoring family, alpha, k, and the terms
    sorted (term order does not affect scores). *)

val text_precision : int
(** Significant digits of a score on the text wire (9): short enough
    for humans, stable across rendering. *)

val exact_precision : int
(** Significant digits on the binary wire (17): a float64 round-trips
    [Printf "%.17g"] → [float_of_string] exactly, so a router can
    parse a backend's scores, merge, and re-render byte-identically
    to a single-process server. *)

val string_of_hits :
  ?precision:int -> Pj_engine.Searcher.hit list -> string
(** ["HITS n doc:score ..."] — the canonical SEARCH response line.
    [precision] is the score's significant digits, default
    {!text_precision}. *)

val string_of_id_scores : ?precision:int -> (int * float) list -> string
(** {!string_of_hits} over bare [(doc_id, score)] pairs — the form a
    router holds after parsing backend responses. *)

val parse_hits : string -> ((int * float) list, string) result
(** Parse a ["HITS n doc:score ..."] line back into pairs (strict:
    count must match, ids non-negative). The inverse of
    {!string_of_id_scores} at {!exact_precision}. *)

val ok_degraded :
  ?precision:int ->
  failed_shards:int list ->
  Pj_engine.Searcher.hit list ->
  string
(** ["OK-DEGRADED shards=1,3 HITS n doc:score ..."]: the surviving
    shards' merged top-k plus which shard indexes are missing from
    it. Never cached (see {!cacheable}). *)

val ok_degraded_ids :
  ?precision:int -> failed_shards:int list -> (int * float) list -> string
(** {!ok_degraded} over bare pairs, for the router's merged legs. *)

val cacheable : string -> bool
(** Whether a response line may be stored in (and replayed from) the
    {!Result_cache}: only complete ["HITS ..."] lines are — [TIMEOUT],
    [OK-DEGRADED], [BUSY] and [ERR] describe one request's luck, not
    the query's answer. *)

val is_search_success : string -> bool
(** The response carries hits (complete or degraded) — what latency
    metrics observe. *)

val added : int -> string
(** ["ADDED id"] — the new document's global doc id. *)

val deleted : int -> string
(** ["DELETED id"]. *)

val flushed : generation:int -> segments:int -> string
(** ["FLUSHED gen=g segments=n"] — the durable generation and sealed
    segment count after the flush. *)

val is_ingest_success : string -> bool
(** The response acknowledges a completed write ([ADDED]/[DELETED]/
    [FLUSHED]) — what the ingest latency histogram observes. Ingest
    responses are never cacheable. *)

val pong : string
val bye : string
val busy : string
val timeout : string

val err : string -> string
(** ["ERR reason"], sanitized to a single line: every run of
    whitespace/control bytes (newlines, tabs, NUL, escapes) in the
    reason — exception messages are arbitrary — collapses to one
    space, leading/trailing runs are dropped. *)

val max_k : int
val max_terms : int

val max_line_bytes : int
(** Longest request line accepted, in bytes, newline excluded (4096).
    {!parse_request} rejects longer strings, and the server's
    connection reader stops buffering at this cap — a client streaming
    an endless line costs at most this much memory before the
    connection is failed. *)
