type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Work_queue.create: capacity must be >= 1";
  {
    capacity;
    items = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

(* Blocking push: waits for a slot instead of refusing, so a producer
   that must not drop work (the binary frame reader, whose in-flight
   cap is the queue capacity) gets TCP-style backpressure. [false]
   only when the queue was closed. *)
let push t x =
  with_lock t (fun () ->
      while (not t.closed) && Queue.length t.items >= t.capacity do
        Condition.wait t.nonfull t.mutex
      done;
      if t.closed then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.nonempty t.mutex
      done;
      if Queue.is_empty t.items then None
      else begin
        let x = Queue.pop t.items in
        Condition.signal t.nonfull;
        Some x
      end)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty;
      Condition.broadcast t.nonfull)

let length t = with_lock t (fun () -> Queue.length t.items)
let capacity t = t.capacity
