type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Work_queue.create: capacity must be >= 1";
  {
    capacity;
    items = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.nonempty t.mutex
      done;
      if Queue.is_empty t.items then None else Some (Queue.pop t.items))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Queue.length t.items)
let capacity t = t.capacity
