type outcome =
  | Hits of Pj_engine.Searcher.hit list
  | Timed_out
  | Failed of string

type search =
  scoring:Pj_core.Scoring.t ->
  k:int ->
  deadline:float ->
  Pj_matching.Query.t ->
  (Pj_engine.Searcher.hit list, [ `Timeout ]) result

let of_searcher searcher ~scoring ~k ~deadline query =
  Pj_engine.Searcher.search_within ~k ~deadline searcher scoring query

let of_shard_searcher sharded ~scoring ~k ~deadline query =
  Pj_engine.Shard_searcher.search_within ~k ~deadline sharded scoring query

(* A one-shot result cell the submitting thread blocks on. *)
type cell = {
  m : Mutex.t;
  c : Condition.t;
  mutable result : outcome option;
}

type job = {
  scoring : Pj_core.Scoring.t;
  k : int;
  deadline : float;
  query : Pj_matching.Query.t;
  cell : cell;
}

type t = {
  queue : job Work_queue.t;
  workers : unit Domain.t array;
  domains : int;
}

let fill cell outcome =
  Mutex.lock cell.m;
  cell.result <- Some outcome;
  Condition.signal cell.c;
  Mutex.unlock cell.m

let execute (search : search) job =
  let outcome =
    (* A job that sat in the queue past its deadline is not worth
       starting — the client's budget is wall-clock, queueing
       included. *)
    if Pj_util.Timing.monotonic_now () > job.deadline then Timed_out
    else
      match
        search ~scoring:job.scoring ~k:job.k ~deadline:job.deadline job.query
      with
      | Ok hits -> Hits hits
      | Error `Timeout -> Timed_out
      | exception e -> Failed (Printexc.to_string e)
  in
  fill job.cell outcome

let worker_loop search queue =
  let rec go () =
    match Work_queue.pop queue with
    | None -> ()
    | Some job ->
        execute search job;
        go ()
  in
  go ()

let create ~domains ~queue_capacity search =
  let domains = Stdlib.max 1 domains in
  let queue = Work_queue.create ~capacity:queue_capacity in
  let workers =
    Array.init domains (fun _ ->
        Domain.spawn (fun () -> worker_loop search queue))
  in
  { queue; workers; domains }

let domains t = t.domains
let queue_length t = Work_queue.length t.queue

let run t ~scoring ~k ~deadline query =
  let cell = { m = Mutex.create (); c = Condition.create (); result = None } in
  let job = { scoring; k; deadline; query; cell } in
  if not (Work_queue.try_push t.queue job) then `Busy
  else begin
    Mutex.lock cell.m;
    while cell.result = None do
      Condition.wait cell.c cell.m
    done;
    let r = Option.get cell.result in
    Mutex.unlock cell.m;
    `Done r
  end

let shutdown t =
  Work_queue.close t.queue;
  Array.iter Domain.join t.workers
