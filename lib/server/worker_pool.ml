type outcome =
  | Hits of Pj_engine.Searcher.hit list
  | Degraded of Pj_engine.Searcher.hit list * int list
  | Timed_out
  | Failed of string

type search =
  scoring:Pj_core.Scoring.t ->
  k:int ->
  deadline:float ->
  Pj_matching.Query.t ->
  (Pj_engine.Searcher.hit list * int list, [ `Timeout ]) result

let of_searcher ?(blockmax = true) searcher ~scoring ~k ~deadline query =
  (* A monolithic index has no shards to lose: complete or timed out. *)
  Result.map
    (fun hits -> (hits, []))
    (Pj_engine.Searcher.search_within ~k ~blockmax ~deadline searcher scoring
       query)

let of_shard_searcher ?(blockmax = true) sharded ~scoring ~k ~deadline query =
  Result.map
    (fun { Pj_engine.Shard_searcher.hits; failed } -> (hits, failed))
    (Pj_engine.Shard_searcher.search_degraded ~k ~blockmax ~deadline sharded
       scoring query)

let of_live ?(blockmax = true) live ~scoring ~k ~deadline query =
  (* Like a monolithic index: a snapshot search is complete or timed
     out, never degraded. *)
  Result.map
    (fun hits -> (hits, []))
    (Pj_live.Live_index.search_within ~k ~blockmax ~deadline live scoring
       query)

(* A one-shot result cell the submitting thread blocks on. *)
type cell = {
  m : Mutex.t;
  c : Condition.t;
  mutable result : outcome option;
}

type task_cell = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable tresult : (string, string) result option;
}

(* Searches and ingest tasks share the queue and the worker domains:
   one pool, one backpressure bound, one supervision story. *)
type job =
  | Search_job of {
      scoring : Pj_core.Scoring.t;
      k : int;
      deadline : float;
      query : Pj_matching.Query.t;
      cell : cell;
    }
  | Task_job of { run : unit -> string; cell : task_cell }

type t = {
  queue : job Work_queue.t;
  search : search;
  domains : int;
  workers : unit Domain.t option array;
      (* [None] after the supervisor reclaimed a panicked domain it did
         not replace (shutdown); otherwise the slot's current domain. *)
  m : Mutex.t;
  c : Condition.t;  (* wakes the supervisor: dead slot, exit, or stop *)
  dead : int Queue.t;  (* slots whose domain died on a panic *)
  mutable live : int;  (* worker domains that have not terminated *)
  mutable stopping : bool;
  panics : int Atomic.t;
  respawns : int Atomic.t;
  mutable supervisor : Thread.t option;
}

let fill (cell : cell) outcome =
  Mutex.lock cell.m;
  cell.result <- Some outcome;
  Condition.signal cell.c;
  Mutex.unlock cell.m

let fill_task (cell : task_cell) r =
  Mutex.lock cell.tm;
  cell.tresult <- Some r;
  Condition.signal cell.tc;
  Mutex.unlock cell.tm

let execute (search : search) = function
  | Search_job job -> (
      (* A job that sat in the queue past its deadline is not worth
         starting — the client's budget is wall-clock, queueing
         included. *)
      if Pj_util.Timing.monotonic_now () > job.deadline then
        fill job.cell Timed_out
      else
        match
          Pj_util.Failpoint.hit "worker.job";
          search ~scoring:job.scoring ~k:job.k ~deadline:job.deadline job.query
        with
        | Ok (hits, []) -> fill job.cell (Hits hits)
        | Ok (hits, failed) -> fill job.cell (Degraded (hits, failed))
        | Error `Timeout -> fill job.cell Timed_out
        | exception (Pj_util.Failpoint.Panicked site as e) ->
            (* A panic models a crash of this worker: answer the waiting
               client (it must never hang on a dead domain), then let the
               exception kill the worker loop — the supervisor respawns. *)
            fill job.cell
              (Failed (Printf.sprintf "worker panicked (failpoint %s)" site));
            raise e
        | exception e -> fill job.cell (Failed (Printexc.to_string e)))
  | Task_job { run; cell } -> (
      (* No deadline: a write the queue accepted is carried out — a
         client that has seen ADDED must find the document. *)
      match
        Pj_util.Failpoint.hit "worker.job";
        run ()
      with
      | line -> fill_task cell (Ok line)
      | exception (Pj_util.Failpoint.Panicked site as e) ->
          fill_task cell
            (Error (Printf.sprintf "worker panicked (failpoint %s)" site));
          raise e
      | exception e -> fill_task cell (Error (Printexc.to_string e)))

let worker_loop search queue =
  let rec go () =
    match Work_queue.pop queue with
    | None -> ()
    | Some job ->
        execute search job;
        go ()
  in
  go ()

let rec worker_body t slot () =
  match worker_loop t.search t.queue with
  | () ->
      (* Normal exit: the queue closed and drained. *)
      Mutex.lock t.m;
      t.live <- t.live - 1;
      Condition.broadcast t.c;
      Mutex.unlock t.m
  | exception _ ->
      (* Only a panic escapes [execute]; this domain is done for.
         Report the slot so the supervisor can reclaim and replace
         it. *)
      Atomic.incr t.panics;
      Mutex.lock t.m;
      Queue.push slot t.dead;
      Condition.broadcast t.c;
      Mutex.unlock t.m

(* Supervision: join each panicked domain and spawn a replacement into
   its slot, so the pool never silently shrinks. During shutdown a
   replacement is still spawned while jobs remain queued (their
   submitters are blocked on result cells and must not deadlock);
   once the queue is empty the slot is retired instead. The loop ends
   only when a stop was requested, every dead slot is reclaimed, and
   every worker domain has terminated — so after [Thread.join
   supervisor] the [workers] array is stable and fully joinable. *)
and supervisor_loop t () =
  Mutex.lock t.m;
  let rec go () =
    if Queue.is_empty t.dead && not (t.stopping && t.live = 0) then begin
      Condition.wait t.c t.m;
      go ()
    end
    else if not (Queue.is_empty t.dead) then begin
      let slot = Queue.pop t.dead in
      let dead_domain =
        match t.workers.(slot) with Some d -> d | None -> assert false
      in
      let respawn = (not t.stopping) || Work_queue.length t.queue > 0 in
      if not respawn then begin
        t.workers.(slot) <- None;
        t.live <- t.live - 1
      end;
      Mutex.unlock t.m;
      Domain.join dead_domain;
      if respawn then begin
        let d = Domain.spawn (worker_body t slot) in
        Atomic.incr t.respawns;
        Mutex.lock t.m;
        t.workers.(slot) <- Some d
      end
      else Mutex.lock t.m;
      go ()
    end
  in
  go ();
  Mutex.unlock t.m

let create ~domains ~queue_capacity search =
  let domains = Stdlib.max 1 domains in
  let queue = Work_queue.create ~capacity:queue_capacity in
  let t =
    {
      queue;
      search;
      domains;
      workers = Array.make domains None;
      m = Mutex.create ();
      c = Condition.create ();
      dead = Queue.create ();
      live = domains;
      stopping = false;
      panics = Atomic.make 0;
      respawns = Atomic.make 0;
      supervisor = None;
    }
  in
  for slot = 0 to domains - 1 do
    t.workers.(slot) <- Some (Domain.spawn (worker_body t slot))
  done;
  t.supervisor <- Some (Thread.create (supervisor_loop t) ());
  t

let domains t = t.domains
let queue_length t = Work_queue.length t.queue
let panics t = Atomic.get t.panics
let respawns t = Atomic.get t.respawns

let live t =
  Mutex.lock t.m;
  let n = t.live in
  Mutex.unlock t.m;
  n

let run t ~scoring ~k ~deadline query =
  let cell = { m = Mutex.create (); c = Condition.create (); result = None } in
  let job = Search_job { scoring; k; deadline; query; cell } in
  if not (Work_queue.try_push t.queue job) then `Busy
  else begin
    Mutex.lock cell.m;
    while cell.result = None do
      Condition.wait cell.c cell.m
    done;
    let r = Option.get cell.result in
    Mutex.unlock cell.m;
    `Done r
  end

let run_task t f =
  let cell =
    { tm = Mutex.create (); tc = Condition.create (); tresult = None }
  in
  if not (Work_queue.try_push t.queue (Task_job { run = f; cell })) then `Busy
  else begin
    Mutex.lock cell.tm;
    while cell.tresult = None do
      Condition.wait cell.tc cell.tm
    done;
    let r = Option.get cell.tresult in
    Mutex.unlock cell.tm;
    `Done r
  end

let shutdown t =
  Work_queue.close t.queue;
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  (match t.supervisor with
  | Some th ->
      Thread.join th;
      t.supervisor <- None
  | None -> ());
  (* Every remaining slot holds a terminated domain (the supervisor
     only returns once live = 0); join reclaims them. *)
  Array.iteri
    (fun slot d ->
      match d with
      | Some d ->
          Domain.join d;
          t.workers.(slot) <- None
      | None -> ())
    t.workers
