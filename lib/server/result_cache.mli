(** Thread-safe LRU cache of rendered SEARCH responses.

    Keys come from {!Protocol.cache_key} (normalized query + scoring
    parameters); values are complete response lines, so a hit is
    byte-identical to the response the solvers would have produced and
    costs one lock plus one hash lookup — no query parsing, no queue
    slot, no worker domain. Hit/miss counters feed the [STATS]
    report. *)

type t

val create : capacity:int -> t

val find : t -> string -> string option
(** Counts a hit or a miss, and refreshes recency on hits. *)

val add : t -> string -> string -> unit
(** Store a response line — but only when {!Protocol.cacheable} says
    it is a complete answer. [TIMEOUT], [OK-DEGRADED], [BUSY] and
    [ERR] lines are silently refused: a degraded or timed-out request
    must never be replayed to healthy clients. *)

val stats : t -> int * int * int
(** [(hits, misses, current length)]. *)

val clear : t -> unit
(** Drop all entries and reset the counters. *)
