(** Thread-safe LRU cache of rendered SEARCH responses.

    Keys come from {!Protocol.cache_key} (normalized query + scoring
    parameters); values are complete response lines, so a hit is
    byte-identical to the response the solvers would have produced and
    costs one lock plus one hash lookup — no query parsing, no queue
    slot, no worker domain. Hit/miss counters feed the [STATS]
    report.

    When the server fronts a live index, every entry is keyed under
    the index generation it was computed against ({!set_generation});
    bumping the generation makes all older entries unreachable, so a
    response cached before an ingest can never be replayed after it. *)

type t

val create : capacity:int -> t

val find : t -> string -> string option
(** Counts a hit or a miss, and refreshes recency on hits. *)

val add : t -> string -> string -> unit
(** Store a response line — but only when {!Protocol.cacheable} says
    it is a complete answer. [TIMEOUT], [OK-DEGRADED], [BUSY] and
    [ERR] lines are silently refused: a degraded or timed-out request
    must never be replayed to healthy clients. *)

val set_generation : t -> int -> unit
(** Invalidate every entry cached against an older index generation
    by switching the key namespace. Monotone: a generation lower than
    the current one is ignored (out-of-order swap notifications must
    not resurrect stale entries). Superseded entries are not swept;
    they age out of the LRU. *)

val generation : t -> int
(** The current key-namespace generation (0 until the first
    {!set_generation}). *)

val stats : t -> int * int * int
(** [(hits, misses, current length)]. *)

val clear : t -> unit
(** Drop all entries and reset the counters. *)
