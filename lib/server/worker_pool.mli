(** A fixed pool of OCaml 5 worker domains executing searches against
    one shared, immutable {!Pj_engine.Searcher.t}.

    The searcher and its index are built before the pool starts and
    never mutated afterwards, so the domains race on nothing; the only
    synchronization is the bounded {!Work_queue} in front of the pool
    and a per-job result cell. Parallelism therefore scales with
    domains up to memory bandwidth, exactly like
    {!Pj_util.Parallel.map_array} over documents. *)

type outcome =
  | Hits of Pj_engine.Searcher.hit list
  | Timed_out  (** the per-query deadline passed (queueing included) *)
  | Failed of string
      (** the search raised, e.g. a matcher without finite expansions *)

type t

val create : domains:int -> queue_capacity:int -> Pj_engine.Searcher.t -> t
(** Spawn [max 1 domains] workers sharing a bounded queue. *)

val run :
  t ->
  scoring:Pj_core.Scoring.t ->
  k:int ->
  deadline:float ->
  Pj_matching.Query.t ->
  [ `Busy | `Done of outcome ]
(** Submit a job and block until its outcome. [`Busy] — without
    blocking — when the queue is full (backpressure) or the pool is
    shut down. [deadline] is an absolute time on the monotonic clock
    ([Pj_util.Timing.monotonic_now]); a job still
    queued at its deadline is answered [Timed_out] without starting. *)

val domains : t -> int
val queue_length : t -> int

val shutdown : t -> unit
(** Stop accepting jobs, finish the ones already queued, and join
    every worker domain. *)
