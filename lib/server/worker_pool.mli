(** A supervised pool of OCaml 5 worker domains executing searches
    against one shared, immutable search function.

    The function closes over a searcher (monolithic
    {!Pj_engine.Searcher.t}, sharded {!Pj_engine.Shard_searcher.t}, or
    a {!Pj_live.Live_index.t} whose queries read immutable
    generation-swapped snapshots), so the domains race on nothing; the
    only synchronization is the bounded {!Work_queue} in front of the
    pool and a per-job result cell. Ingest tasks ({!run_task}) ride
    the same queue and serialize on the live index's writer lock. Parallelism therefore scales with
    domains up to memory bandwidth, exactly like
    {!Pj_util.Parallel.map_array} over documents.

    Supervision: a worker that {e panics} (a
    {!Pj_util.Failpoint.Panicked} escaping a job — modelling a crash
    rather than an ordinary error) first answers its waiting client
    with [Failed] (no submitter ever hangs on a dead domain), then
    dies; a supervisor thread detects the death, reclaims the domain,
    and spawns a replacement into the same slot, so the pool returns
    to full strength within one respawn cycle instead of silently
    shrinking. Ordinary exceptions never kill a worker — they are
    caught per job and reported as [Failed]. *)

type outcome =
  | Hits of Pj_engine.Searcher.hit list  (** complete result *)
  | Degraded of Pj_engine.Searcher.hit list * int list
      (** hits from the surviving shards plus the failed shard
          indexes (ascending, non-empty) — see
          {!Pj_engine.Shard_searcher.search_degraded} *)
  | Timed_out  (** the per-query deadline passed (queueing included) *)
  | Failed of string
      (** the search raised, e.g. a matcher without finite expansions,
          or the worker executing it panicked *)

type search =
  scoring:Pj_core.Scoring.t ->
  k:int ->
  deadline:float ->
  Pj_matching.Query.t ->
  (Pj_engine.Searcher.hit list * int list, [ `Timeout ]) result
(** What a worker runs per job: [Ok (hits, failed_shards)] where an
    empty [failed_shards] means the result is complete. Must be safe
    to call from several domains at once (both provided constructors
    are: they only read an immutable index). *)

val of_searcher : ?blockmax:bool -> Pj_engine.Searcher.t -> search
(** [Pj_engine.Searcher.search_within] over one monolithic index;
    never degraded. [blockmax] (default true) selects block-max pruned
    candidate generation; [false] is the exhaustive-traversal escape
    hatch (the server's [--no-blockmax]). *)

val of_shard_searcher :
  ?blockmax:bool -> Pj_engine.Shard_searcher.t -> search
(** [Pj_engine.Shard_searcher.search_degraded] — fault-isolated
    scatter-gather over the shards, byte-identical results to
    {!of_searcher} on the same corpus when every shard answers. *)

val of_live : ?blockmax:bool -> Pj_live.Live_index.t -> search
(** [Pj_live.Live_index.search_within] over the live index's current
    snapshot — domain-safe because each query reads one immutable
    snapshot; never degraded. *)

type t

val create : domains:int -> queue_capacity:int -> search -> t
(** Spawn [max 1 domains] workers sharing a bounded queue, plus the
    supervisor thread. *)

val run :
  t ->
  scoring:Pj_core.Scoring.t ->
  k:int ->
  deadline:float ->
  Pj_matching.Query.t ->
  [ `Busy | `Done of outcome ]
(** Submit a job and block until its outcome. [`Busy] — without
    blocking — when the queue is full (backpressure) or the pool is
    shut down. [deadline] is an absolute time on the monotonic clock
    ([Pj_util.Timing.monotonic_now]); a job still
    queued at its deadline is answered [Timed_out] without starting. *)

val run_task : t -> (unit -> string) -> [ `Busy | `Done of (string, string) result ]
(** Submit an arbitrary task — the ingest path: ADDDOC/DELDOC/FLUSH
    run on the worker domains through the same bounded queue as
    searches, so writes get the same backpressure ([`Busy]) and
    supervision story. No deadline: once queued, the task runs to
    completion (a write the server acknowledged must have happened).
    [Ok line] is the task's response line; [Error reason] when it
    raised (a panic also kills the worker, which the supervisor
    respawns, exactly as for searches). *)

val domains : t -> int
val queue_length : t -> int

val panics : t -> int
(** Worker domains lost to a panic since {!create}. *)

val respawns : t -> int
(** Replacement domains the supervisor has spawned. Steady state:
    [panics = respawns] and {!live} [= domains]. *)

val live : t -> int
(** Worker domains currently running (i.e. not yet terminated). Equal
    to [domains] except in the window between a panic and its
    respawn, or during {!shutdown}. *)

val shutdown : t -> unit
(** Stop accepting jobs, finish the ones already queued (respawning
    panicked workers as long as jobs remain, so no submitter
    deadlocks), then join every worker domain and the supervisor.
    Idempotent; concurrent {!run} calls race benignly into [`Busy]. *)
