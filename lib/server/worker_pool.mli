(** A fixed pool of OCaml 5 worker domains executing searches against
    one shared, immutable search function.

    The function closes over a searcher (monolithic
    {!Pj_engine.Searcher.t} or sharded {!Pj_engine.Shard_searcher.t})
    whose index is built before the pool starts and never mutated
    afterwards, so the domains race on nothing; the only
    synchronization is the bounded {!Work_queue} in front of the pool
    and a per-job result cell. Parallelism therefore scales with
    domains up to memory bandwidth, exactly like
    {!Pj_util.Parallel.map_array} over documents. *)

type outcome =
  | Hits of Pj_engine.Searcher.hit list
  | Timed_out  (** the per-query deadline passed (queueing included) *)
  | Failed of string
      (** the search raised, e.g. a matcher without finite expansions *)

type search =
  scoring:Pj_core.Scoring.t ->
  k:int ->
  deadline:float ->
  Pj_matching.Query.t ->
  (Pj_engine.Searcher.hit list, [ `Timeout ]) result
(** What a worker runs per job. Must be safe to call from several
    domains at once (both provided constructors are: they only read an
    immutable index). *)

val of_searcher : Pj_engine.Searcher.t -> search
(** [Pj_engine.Searcher.search_within] over one monolithic index. *)

val of_shard_searcher : Pj_engine.Shard_searcher.t -> search
(** [Pj_engine.Shard_searcher.search_within] — scatter-gather over the
    shards, byte-identical results to {!of_searcher} on the same
    corpus. *)

type t

val create : domains:int -> queue_capacity:int -> search -> t
(** Spawn [max 1 domains] workers sharing a bounded queue. *)

val run :
  t ->
  scoring:Pj_core.Scoring.t ->
  k:int ->
  deadline:float ->
  Pj_matching.Query.t ->
  [ `Busy | `Done of outcome ]
(** Submit a job and block until its outcome. [`Busy] — without
    blocking — when the queue is full (backpressure) or the pool is
    shut down. [deadline] is an absolute time on the monotonic clock
    ([Pj_util.Timing.monotonic_now]); a job still
    queued at its deadline is answered [Timed_out] without starting. *)

val domains : t -> int
val queue_length : t -> int

val shutdown : t -> unit
(** Stop accepting jobs, finish the ones already queued, and join
    every worker domain. *)
