type t = {
  mutex : Mutex.t;
  started_at : float;
  mutable searches : int;
  mutable pings : int;
  mutable stats_calls : int;
  mutable parse_errors : int;
  mutable search_errors : int;
  mutable busy : int;
  mutable timeouts : int;
  mutable degraded : int;
  mutable shard_failures : int;
  mutable adds : int;
  mutable deletes : int;
  mutable flushes : int;
  mutable ingest_errors : int;
  mutable ingest_batches : int;
  mutable batched_adds : int;
  latency : Pj_util.Histogram.t;
  degraded_latency : Pj_util.Histogram.t;
  ingest_latency : Pj_util.Histogram.t;
}

let create () =
  {
    mutex = Mutex.create ();
    started_at = Pj_util.Timing.monotonic_now ();
    searches = 0;
    pings = 0;
    stats_calls = 0;
    parse_errors = 0;
    search_errors = 0;
    busy = 0;
    timeouts = 0;
    degraded = 0;
    shard_failures = 0;
    adds = 0;
    deletes = 0;
    flushes = 0;
    ingest_errors = 0;
    ingest_batches = 0;
    batched_adds = 0;
    latency = Pj_util.Histogram.create ();
    degraded_latency = Pj_util.Histogram.create ();
    ingest_latency = Pj_util.Histogram.create ();
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_search t = with_lock t (fun () -> t.searches <- t.searches + 1)
let record_ping t = with_lock t (fun () -> t.pings <- t.pings + 1)
let record_stats t = with_lock t (fun () -> t.stats_calls <- t.stats_calls + 1)

let record_parse_error t =
  with_lock t (fun () -> t.parse_errors <- t.parse_errors + 1)

let record_search_error t =
  with_lock t (fun () -> t.search_errors <- t.search_errors + 1)

let record_busy t = with_lock t (fun () -> t.busy <- t.busy + 1)
let record_timeout t = with_lock t (fun () -> t.timeouts <- t.timeouts + 1)

(* One degraded response lost [n_failed_shards] shard legs; both the
   response count and the per-leg count are tracked, so "how often do
   users see partial answers" and "how flaky are the shards" read off
   separately. *)
let record_degraded t ~n_failed_shards =
  with_lock t (fun () ->
      t.degraded <- t.degraded + 1;
      t.shard_failures <- t.shard_failures + n_failed_shards)

let record_add t = with_lock t (fun () -> t.adds <- t.adds + 1)
let record_delete t = with_lock t (fun () -> t.deletes <- t.deletes + 1)
let record_flush t = with_lock t (fun () -> t.flushes <- t.flushes + 1)

let record_ingest_error t =
  with_lock t (fun () -> t.ingest_errors <- t.ingest_errors + 1)

let record_ingest_batch t ~size =
  with_lock t (fun () ->
      t.ingest_batches <- t.ingest_batches + 1;
      t.batched_adds <- t.batched_adds + size)

let observe_latency t seconds =
  with_lock t (fun () -> Pj_util.Histogram.observe t.latency seconds)

let observe_degraded_latency t seconds =
  with_lock t (fun () -> Pj_util.Histogram.observe t.degraded_latency seconds)

let observe_ingest_latency t seconds =
  with_lock t (fun () -> Pj_util.Histogram.observe t.ingest_latency seconds)

type snapshot = {
  uptime_s : float;
  requests : int;
  searches : int;
  pings : int;
  stats_calls : int;
  parse_errors : int;
  search_errors : int;
  errors : int;
  busy : int;
  timeouts : int;
  degraded : int;
  shard_failures : int;
  adds : int;
  deletes : int;
  flushes : int;
  ingest_errors : int;
  ingest_batches : int;
  batched_adds : int;
  served : int;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_p99_ms : float;
  latency_max_ms : float;
  ingest_p50_ms : float;
  ingest_p99_ms : float;
}

let snapshot t =
  with_lock t (fun () ->
      let ms f = 1000. *. f in
      let h = t.latency in
      {
        uptime_s = Pj_util.Timing.monotonic_now () -. t.started_at;
        (* A search that fails inside handle_search was already counted
           in [searches]; only requests that never parsed into a
           command add to the total here. Summing [errors] instead
           would double-count every failed SEARCH. The same holds for
           the write verbs: an ADDDOC that fails in the worker was
           already counted in [adds]. *)
        requests =
          t.searches + t.pings + t.stats_calls + t.parse_errors + t.adds
          + t.deletes + t.flushes;
        searches = t.searches;
        pings = t.pings;
        stats_calls = t.stats_calls;
        parse_errors = t.parse_errors;
        search_errors = t.search_errors;
        errors = t.parse_errors + t.search_errors + t.ingest_errors;
        busy = t.busy;
        timeouts = t.timeouts;
        degraded = t.degraded;
        shard_failures = t.shard_failures;
        adds = t.adds;
        deletes = t.deletes;
        flushes = t.flushes;
        ingest_errors = t.ingest_errors;
        ingest_batches = t.ingest_batches;
        batched_adds = t.batched_adds;
        served = Pj_util.Histogram.count h;
        latency_mean_ms = ms (Pj_util.Histogram.mean h);
        latency_p50_ms = ms (Pj_util.Histogram.percentile h 50.);
        latency_p95_ms = ms (Pj_util.Histogram.percentile h 95.);
        latency_p99_ms = ms (Pj_util.Histogram.percentile h 99.);
        latency_max_ms = ms (Pj_util.Histogram.max_value h);
        ingest_p50_ms = ms (Pj_util.Histogram.percentile t.ingest_latency 50.);
        ingest_p99_ms = ms (Pj_util.Histogram.percentile t.ingest_latency 99.);
      })

let render t ~cache_hits ~cache_misses ~cache_len ~queue_len ~domains
    ~worker_panics ~worker_respawns =
  let s = snapshot t in
  Printf.sprintf
    "STATS uptime_s=%.1f requests=%d searches=%d served=%d pings=%d \
     stats=%d errors=%d parse_errors=%d search_errors=%d busy=%d \
     timeouts=%d degraded=%d shard_failures=%d adds=%d deletes=%d \
     flushes=%d ingest_errors=%d ingest_batches=%d batched_adds=%d \
     worker_panics=%d \
     worker_respawns=%d cache_hits=%d cache_misses=%d cache_len=%d \
     queue_len=%d domains=%d lat_mean_ms=%.3f p50_ms=%.3f p95_ms=%.3f \
     p99_ms=%.3f max_ms=%.3f ingest_p50_ms=%.3f ingest_p99_ms=%.3f"
    s.uptime_s s.requests s.searches s.served s.pings s.stats_calls s.errors
    s.parse_errors s.search_errors s.busy s.timeouts s.degraded
    s.shard_failures s.adds s.deletes s.flushes s.ingest_errors
    s.ingest_batches s.batched_adds worker_panics
    worker_respawns cache_hits cache_misses cache_len queue_len domains
    s.latency_mean_ms s.latency_p50_ms s.latency_p95_ms s.latency_p99_ms
    s.latency_max_ms s.ingest_p50_ms s.ingest_p99_ms
