(** Bounded multi-producer multi-consumer queue — the server's
    backpressure point.

    Producers (connection handlers) use the non-blocking {!try_push}:
    when the queue is full the request is rejected with [BUSY] instead
    of queueing unboundedly, which keeps worst-case latency bounded
    under overload (clients retry; the server never builds an
    invisible backlog). Consumers (worker domains) block in {!pop}.
    Safe across domains and threads (mutex + condition variable). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue without blocking; [false] when the queue is full or
    closed. *)

val push : 'a t -> 'a -> bool
(** Enqueue, blocking while the queue is full — backpressure for
    producers that must not drop work (the binary protocol's frame
    reader stops reading its socket instead of shedding requests).
    [false] only when the queue is (or becomes) closed. *)

val pop : 'a t -> 'a option
(** Block until an item is available and dequeue it. After {!close},
    drains remaining items, then returns [None] — so accepted work is
    still completed during shutdown. *)

val close : 'a t -> unit
(** Reject future pushes and wake every blocked consumer. *)

val length : 'a t -> int
val capacity : 'a t -> int
