(** The concurrent query-serving loop: a TCP server speaking
    {!Protocol} over a hot search function (a monolithic
    {!Pj_engine.Searcher.t}, a sharded {!Pj_engine.Shard_searcher.t},
    or a {!Pj_live.Live_index.t}, via the {!Worker_pool.search}
    constructors).

    Architecture: one accept loop hands each connection to a
    lightweight thread that parses requests and consults the
    {!Result_cache}; cache misses are submitted to a {!Worker_pool} of
    OCaml 5 domains through a bounded {!Work_queue}. Failure semantics
    per request: queue full → [BUSY]; per-query wall-clock deadline
    exceeded → [TIMEOUT]; malformed request or failing query → [ERR]
    with the connection left open; a sharded search that lost some
    (but not all) shard legs → [OK-DEGRADED] carrying the surviving
    shards' merged top-k, never cached. {!Metrics} aggregates counters and
    latency percentiles for [STATS] and the optional periodic log
    line on stderr.

    Live ingestion: when started with [?live], the server additionally
    accepts the write verbs [ADDDOC]/[DELDOC]/[FLUSH]. Writes ride the
    same bounded queue and worker domains as searches (same [BUSY]
    backpressure, same supervision) but carry no deadline — an
    acknowledged write has happened. Every index generation swap
    switches the {!Result_cache} key namespace, so a response cached
    before an ingest is never replayed after it, and [STATS] grows the
    live-index fields ([docs=], [segments=], [memtable_docs=],
    [generation=], ...). Without [?live] the write verbs answer
    [ERR]. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  domains : int;  (** worker domains, default {!Pj_util.Parallel.recommended_domains} *)
  queue_capacity : int;  (** pending searches before [BUSY], default 64 *)
  cache_capacity : int;  (** LRU entries, default 1024 *)
  deadline_s : float;  (** per-query wall-clock budget, default 2.0 *)
  drain_s : float;
      (** how long {!stop} lets in-flight requests finish before
          force-closing their connections, default 5.0 *)
  log_every_s : float option;  (** stderr stats period, default [None] *)
  binary_inflight : int;
      (** per-connection in-flight cap on the binary wire: how many
          pipelined requests one connection may have unanswered before
          the server stops reading its socket (TCP backpressure, not
          shedding), default 32 *)
}

val default_config : config

(** The result of a forwarded (routed) search — what a {!forward}
    hook returns in place of a local worker-pool outcome. Carries
    bare [(doc_id, score)] pairs: the server renders them at the
    client's wire precision and applies the same caching and metrics
    taxonomy as local results. *)
type forward_outcome =
  | Forwarded_hits of (int * float) list  (** complete; cacheable *)
  | Forwarded_degraded of (int * float) list * int list
      (** exact top-k of the surviving legs, plus the failed leg
          indexes — rendered as [OK-DEGRADED], never cached *)
  | Forwarded_timeout
  | Forwarded_busy
  | Forwarded_error of string

type forward = Protocol.search_request -> deadline:float -> forward_outcome
(** A scatter-gather hook replacing the local worker pool for SEARCH
    (parsing, validation, caching, metrics and both wire dialects stay
    in the server). [deadline] is absolute monotonic time, computed
    from [config.deadline_s]. Must be callable from many connection
    threads at once. *)

type t

val start :
  ?config:config ->
  ?live:Pj_live.Live_index.t ->
  ?forward:forward ->
  ?extra_stats:(unit -> string) ->
  ?n_docs:int ->
  graph:Pj_ontology.Graph.t ->
  Worker_pool.search ->
  t
(** Bind, listen, spawn the worker pool and the accept thread, and
    return immediately. The search function must be domain-safe (use
    {!Worker_pool.of_searcher}, {!Worker_pool.of_shard_searcher} or
    {!Worker_pool.of_live}); [graph] is the lemma graph query terms
    are parsed against. [?live] enables the write verbs and wires the
    index's generation swaps into the result cache — pass the same
    index the search function closes over. The server does not own
    the live index: close it after {!stop}. Raises [Unix.Unix_error]
    when the address cannot be bound.

    [?forward] turns the server into a router front-end: SEARCH is
    answered by the hook instead of the worker pool (a pool is still
    created — size it to 1 domain). [?extra_stats] appends extra
    key=value tokens to the STATS line (must render one-line).
    [?n_docs] adds a [docs=] field to STATS for static indexes, which
    is how a router derives backend doc-id bases; ignored when
    [?live] is given (the live index reports its own [docs=]).

    Both wire dialects are served on the one socket: a connection's
    first byte picks text ({!Protocol} lines) or binary
    ({!Pj_frame.Frame}s, request-id pipelined, score rendering at
    {!Protocol.exact_precision}). *)

val port : t -> int
(** The actual bound port (useful with [port = 0]). *)

val connections : t -> int
(** Number of currently open client connections — i.e. the size of the
    internal connection table, which handler threads remove themselves
    from on exit. Steady at 0 after all clients disconnect; grows only
    with concurrently open connections, never with connection
    turnover. *)

val stop : t -> unit
(** Graceful shutdown in three phases: stop accepting (close the
    listening socket, join the accept loop); drain — requests already
    read off a socket get up to [drain_s] seconds to finish and flush
    their response; then force-close remaining connections, finish
    queued jobs, and join every thread and domain. Idempotent. *)

val kill : t -> unit
(** {!stop} minus the drain and the goodbyes: every connection is
    dropped immediately, in-flight requests lose their answers — the
    socket-level behaviour of kill -9, for chaos tests that need a
    backend to vanish mid-stream without leaking threads in the test
    process. Idempotent with {!stop}. *)

val inflight : t -> int
(** Requests currently between line-read and response-flush — what the
    drain phase of {!stop} waits on. *)

val wait : t -> unit
(** Block until the accept loop exits (i.e. until {!stop}). *)

val stats_line : t -> string
(** The current [STATS] response line. *)

val metrics : t -> Metrics.t
val cache : t -> Result_cache.t
