(** The concurrent query-serving loop: a TCP server speaking
    {!Protocol} over a hot, immutable search function (a monolithic
    {!Pj_engine.Searcher.t} or a sharded
    {!Pj_engine.Shard_searcher.t}, via the {!Worker_pool.search}
    constructors).

    Architecture: one accept loop hands each connection to a
    lightweight thread that parses requests and consults the
    {!Result_cache}; cache misses are submitted to a {!Worker_pool} of
    OCaml 5 domains through a bounded {!Work_queue}. Failure semantics
    per request: queue full → [BUSY]; per-query wall-clock deadline
    exceeded → [TIMEOUT]; malformed request or failing query → [ERR]
    with the connection left open; a sharded search that lost some
    (but not all) shard legs → [OK-DEGRADED] carrying the surviving
    shards' merged top-k, never cached. {!Metrics} aggregates counters and
    latency percentiles for [STATS] and the optional periodic log
    line on stderr. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  domains : int;  (** worker domains, default {!Pj_util.Parallel.recommended_domains} *)
  queue_capacity : int;  (** pending searches before [BUSY], default 64 *)
  cache_capacity : int;  (** LRU entries, default 1024 *)
  deadline_s : float;  (** per-query wall-clock budget, default 2.0 *)
  drain_s : float;
      (** how long {!stop} lets in-flight requests finish before
          force-closing their connections, default 5.0 *)
  log_every_s : float option;  (** stderr stats period, default [None] *)
}

val default_config : config

type t

val start :
  ?config:config -> graph:Pj_ontology.Graph.t -> Worker_pool.search -> t
(** Bind, listen, spawn the worker pool and the accept thread, and
    return immediately. The search function must close over a fully
    built index shared read-only across domains (use
    {!Worker_pool.of_searcher} or {!Worker_pool.of_shard_searcher});
    [graph] is the lemma graph query terms are parsed against. Raises
    [Unix.Unix_error] when the address cannot be bound. *)

val port : t -> int
(** The actual bound port (useful with [port = 0]). *)

val connections : t -> int
(** Number of currently open client connections — i.e. the size of the
    internal connection table, which handler threads remove themselves
    from on exit. Steady at 0 after all clients disconnect; grows only
    with concurrently open connections, never with connection
    turnover. *)

val stop : t -> unit
(** Graceful shutdown in three phases: stop accepting (close the
    listening socket, join the accept loop); drain — requests already
    read off a socket get up to [drain_s] seconds to finish and flush
    their response; then force-close remaining connections, finish
    queued jobs, and join every thread and domain. Idempotent. *)

val inflight : t -> int
(** Requests currently between line-read and response-flush — what the
    drain phase of {!stop} waits on. *)

val wait : t -> unit
(** Block until the accept loop exits (i.e. until {!stop}). *)

val stats_line : t -> string
(** The current [STATS] response line. *)

val metrics : t -> Metrics.t
val cache : t -> Result_cache.t
