type t = {
  lru : (string, string) Pj_util.Lru.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable generation : int;
}

let create ~capacity =
  {
    lru = Pj_util.Lru.create ~capacity;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    generation = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Generation-aware keys: entries cached under an older index
   generation can never be found again after a bump — a stale
   pre-ingest response is structurally unreachable, with no costly
   clear-on-swap sweep. Superseded entries age out of the LRU on
   their own. Caller must hold the lock. *)
let versioned t key =
  if t.generation = 0 then key
  else Printf.sprintf "g%d|%s" t.generation key

let find t key =
  with_lock t (fun () ->
      match Pj_util.Lru.find t.lru (versioned t key) with
      | Some _ as v ->
          t.hits <- t.hits + 1;
          v
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Last line of defense, independent of the server's own filtering: a
   response that is not a complete answer (TIMEOUT, OK-DEGRADED, BUSY,
   ERR) describes one request's luck — replaying it to healthy
   clients would be wrong, so such lines are never stored. *)
let add t key response =
  if Protocol.cacheable response then
    with_lock t (fun () -> Pj_util.Lru.add t.lru (versioned t key) response)

let set_generation t gen =
  (* Monotone: concurrent swap notifications may arrive out of order;
     moving backwards would resurrect stale entries. *)
  with_lock t (fun () -> if gen > t.generation then t.generation <- gen)

let generation t = with_lock t (fun () -> t.generation)

let stats t =
  with_lock t (fun () -> (t.hits, t.misses, Pj_util.Lru.length t.lru))

let clear t =
  with_lock t (fun () ->
      Pj_util.Lru.clear t.lru;
      t.hits <- 0;
      t.misses <- 0)
