(* Group commit for ADDDOC: concurrent connection threads submit their
   (already stemmed) documents; one of them — the leader — drains the
   whole pending queue into a single [Live_index.add_batch] executed
   through one [Worker_pool.run_task], then fills in every submitter's
   acknowledgement. One writer-lock acquisition, one snapshot
   publication (hence one generation bump and one cache invalidation)
   and one queue slot per batch, however many clients are appending.

   Leadership is implicit: a submitter whose response is not yet filled
   and who sees no leader elects itself, swaps out everything pending
   (its own request included), executes, fills responses, steps down
   and broadcasts. Threads that arrived during the execution wake up,
   find the leadership vacant, and one of them runs the next round — so
   every submission is answered after at most one in-flight batch, and
   the batch size adapts to however much arrived while the previous
   batch was committing. *)

type waiter = {
  stems : string array;
  mutable response : string option; (* protected by [lock] *)
}

type t = {
  live : Pj_live.Live_index.t;
  pool : Worker_pool.t;
  on_batch : size:int -> unit; (* success observability hook *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable pending : waiter list; (* newest first *)
  mutable leading : bool;
}

let create ~on_batch pool live =
  {
    live;
    pool;
    on_batch;
    lock = Mutex.create ();
    cond = Condition.create ();
    pending = [];
    leading = false;
  }

(* Execute one batch outside [t.lock]: the worker task assigns dense
   ids for the whole batch and each waiter is acknowledged with its
   own. The [first] ref is written inside the task and read after
   [run_task] returns — the pool's completion cell synchronizes the
   two, so the read is well-ordered. Returns the per-waiter responses
   for the caller to publish under the lock. *)
let execute t batch =
  let docs = List.map (fun w -> w.stems) batch in
  let first = ref (-1) in
  match
    Worker_pool.run_task t.pool (fun () ->
        first := Pj_live.Live_index.add_batch t.live docs;
        "")
  with
  | `Busy -> List.map (fun w -> (w, Protocol.busy)) batch
  | `Done (Ok _) ->
      t.on_batch ~size:(List.length batch);
      List.mapi (fun i w -> (w, Protocol.added (!first + i))) batch
  | `Done (Error msg) -> List.map (fun w -> (w, Protocol.err msg)) batch

let submit t stems =
  let w = { stems; response = None } in
  Mutex.lock t.lock;
  t.pending <- w :: t.pending;
  let rec await () =
    match w.response with
    | Some r ->
        Mutex.unlock t.lock;
        r
    | None ->
        if t.leading then begin
          (* Someone else is committing; our request is either in their
             batch or queued for the next round. *)
          Condition.wait t.cond t.lock;
          await ()
        end
        else begin
          t.leading <- true;
          let batch = List.rev t.pending in
          t.pending <- [];
          Mutex.unlock t.lock;
          let filled =
            (* A leader that dies without stepping down would deadlock
               every waiter; answer ERR rather than wedge the server. *)
            try execute t batch
            with e ->
              let line = Protocol.err (Printexc.to_string e) in
              List.map (fun w -> (w, line)) batch
          in
          Mutex.lock t.lock;
          List.iter (fun (w, r) -> w.response <- Some r) filled;
          t.leading <- false;
          Condition.broadcast t.cond;
          await ()
        end
  in
  await ()
