type config = {
  host : string;
  port : int;
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
  deadline_s : float;
  drain_s : float;
  log_every_s : float option;
  binary_inflight : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = Pj_util.Parallel.recommended_domains ();
    queue_capacity = 64;
    cache_capacity = 1024;
    deadline_s = 2.0;
    drain_s = 5.0;
    log_every_s = None;
    binary_inflight = 32;
  }

type forward_outcome =
  | Forwarded_hits of (int * float) list
  | Forwarded_degraded of (int * float) list * int list
  | Forwarded_timeout
  | Forwarded_busy
  | Forwarded_error of string

type forward = Protocol.search_request -> deadline:float -> forward_outcome

(* One live connection. The handler thread is stored next to the fd so
   [stop] can join exactly the threads still running: entries are
   removed by [handle_connection] on exit, so the table never outgrows
   the set of open connections (the old [conn_threads] list kept every
   thread ever accepted alive for the server's lifetime). *)
type conn = {
  fd : Unix.file_descr;
  mutable thread : Thread.t option;
      (* [None] only in the window between accept and [Thread.create]
         returning; a conn observed without a thread at [stop] time has
         nothing running to join. *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  port : int;
  graph : Pj_ontology.Graph.t;
  pool : Worker_pool.t;
  live : Pj_live.Live_index.t option;
  batcher : Ingest_batcher.t option; (* Some iff [live] is Some *)
  cache : Result_cache.t;
  metrics : Metrics.t;
  forward : forward option;
      (* A router's scatter-gather, replacing the worker pool for
         SEARCH: parse/validate/cache/metrics stay here, result
         production is remote. *)
  extra_stats : (unit -> string) option;
      (* Extra key=value tokens appended to the STATS line (a router's
         per-backend health). Must render as a single line. *)
  n_docs : int option;
      (* Documents served, for static (non-live) indexes: rendered as
         [docs=] in STATS so a router can derive doc-id bases. Live
         servers render their own [docs=]. *)
  running : bool Atomic.t;
  inflight : int Atomic.t;
      (* Requests between line-read and response-flush; what [stop]'s
         drain phase waits on. Handler threads parked in [read] don't
         count — they have nothing half-answered to lose. *)
  mutable accept_thread : Thread.t option;
  mutable log_thread : Thread.t option;
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
}

let port t = t.port
let metrics t = t.metrics
let cache t = t.cache
let inflight t = Atomic.get t.inflight

let stats_line t =
  let cache_hits, cache_misses, cache_len = Result_cache.stats t.cache in
  let base =
    Metrics.render t.metrics ~cache_hits ~cache_misses ~cache_len
      ~queue_len:(Worker_pool.queue_length t.pool)
      ~domains:(Worker_pool.domains t.pool)
      ~worker_panics:(Worker_pool.panics t.pool)
      ~worker_respawns:(Worker_pool.respawns t.pool)
  in
  let base =
    match (t.live, t.n_docs) with
    | None, Some n -> Printf.sprintf "%s docs=%d" base n
    | _ -> base
  in
  let line =
    match t.live with
    | None -> base
    | Some live ->
      (* The live-index accounting invariant
         [docs = segment_docs + memtable_docs - tombstones] is readable
         straight off this line — test/server asserts it over the
         socket. *)
      let s = Pj_live.Live_index.stats live in
      Printf.sprintf
        "%s live=1 docs=%d total_docs=%d segments=%d segment_docs=%d \
         memtable_docs=%d tombstones=%d generation=%d merges=%d \
         index_flushes=%d wal_appends=%d wal_fsyncs=%d durable_lag=%d"
        base s.Pj_live.Live_index.docs s.Pj_live.Live_index.total_docs
        s.Pj_live.Live_index.segments s.Pj_live.Live_index.segment_docs
        s.Pj_live.Live_index.memtable_docs s.Pj_live.Live_index.tombstones
        s.Pj_live.Live_index.generation s.Pj_live.Live_index.merges
        s.Pj_live.Live_index.flushes s.Pj_live.Live_index.wal_appends
        s.Pj_live.Live_index.wal_fsyncs s.Pj_live.Live_index.durable_lag
  in
  match t.extra_stats with None -> line | Some f -> line ^ " " ^ f ()

(* Run one validated SEARCH to a response line, either remotely (a
   router's scatter-gather [forward]) or on the local worker pool.
   [precision] is the score rendering of the client's wire (text or
   binary); either way the metrics taxonomy is identical. *)
let execute_search t (sr : Protocol.search_request) ~precision ~key =
  (* Monotonic clock: an NTP step must not expire (or extend) every
     in-flight query's budget. *)
  let deadline = Pj_util.Timing.monotonic_now () +. t.config.deadline_s in
  match t.forward with
  | Some forward -> begin
      match forward sr ~deadline with
      | Forwarded_hits pairs ->
          let response = Protocol.string_of_id_scores ~precision pairs in
          Result_cache.add t.cache key response;
          response
      | Forwarded_degraded (pairs, failed_legs) ->
          Metrics.record_degraded t.metrics
            ~n_failed_shards:(List.length failed_legs);
          Protocol.ok_degraded_ids ~precision ~failed_shards:failed_legs pairs
      | Forwarded_timeout ->
          Metrics.record_timeout t.metrics;
          Protocol.timeout
      | Forwarded_busy ->
          Metrics.record_busy t.metrics;
          Protocol.busy
      | Forwarded_error msg ->
          Metrics.record_search_error t.metrics;
          Protocol.err msg
    end
  | None -> begin
      match Protocol.scoring_of ~family:sr.Protocol.family ~alpha:sr.Protocol.alpha with
      | Error msg ->
          Metrics.record_search_error t.metrics;
          Protocol.err msg
      | Ok scoring -> begin
          match Pj_matching.Query_parser.parse t.graph sr.Protocol.terms with
          | Error msg ->
              Metrics.record_search_error t.metrics;
              Protocol.err msg
          | Ok query ->
              (* The served index is built over Porter stems (see the
                 serve subcommand), so matcher expansions are stemmed to
                 the same normalization — as in [proxjoin isearch]. *)
              let query =
                {
                  query with
                  Pj_matching.Query.matchers =
                    Array.map Pj_matching.Matcher.stem_expansions
                      query.Pj_matching.Query.matchers;
                }
              in
              begin
                match
                  Worker_pool.run t.pool ~scoring ~k:sr.Protocol.k ~deadline
                    query
                with
                | `Busy ->
                    Metrics.record_busy t.metrics;
                    Protocol.busy
                | `Done (Worker_pool.Hits hits) ->
                    let response = Protocol.string_of_hits ~precision hits in
                    Result_cache.add t.cache key response;
                    response
                | `Done (Worker_pool.Degraded (hits, failed)) ->
                    (* A partial answer is this request's shard luck,
                       not the query's answer — flag it, count it, and
                       keep it out of the cache so the next attempt
                       gets a fresh scatter-gather. *)
                    Metrics.record_degraded t.metrics
                      ~n_failed_shards:(List.length failed);
                    Protocol.ok_degraded ~precision ~failed_shards:failed hits
                | `Done Worker_pool.Timed_out ->
                    Metrics.record_timeout t.metrics;
                    Protocol.timeout
                | `Done (Worker_pool.Failed msg) ->
                    Metrics.record_search_error t.metrics;
                    Protocol.err msg
              end
        end
    end

(* Answer one SEARCH. The cache is consulted before the worker pool
   (or router legs), so a repeated query costs one hash lookup and no
   queue slot; live results are rendered once and cached as the final
   response line. Text and binary clients render scores at different
   precisions, so the cache key carries the precision — the cached
   value is a fully rendered line of one wire dialect. *)
let handle_search t (sr : Protocol.search_request) ~precision =
  let key = Printf.sprintf "%d|%s" precision (Protocol.cache_key sr) in
  match Result_cache.find t.cache key with
  | Some response -> response
  | None -> execute_search t sr ~precision ~key

(* Answer one write verb (ADDDOC/DELDOC/FLUSH). Writes ride the same
   worker pool and bounded queue as searches — one backpressure bound,
   one supervision story — but through [run_task], which has no
   deadline: a write the queue accepted is carried out, because a
   client that has seen ADDED must find the document. The ingest verbs
   are serialized by the live index's writer lock, so concurrent
   clients interleave whole operations, never partial ones. ADDDOCs
   additionally group-commit through [Ingest_batcher]: stemming runs
   on the connection thread (parallel across clients), then concurrent
   adds coalesce into one [add_batch] — one queue slot, one writer-lock
   acquisition and one generation bump per batch. *)
let handle_ingest t request =
  match (t.live, request) with
  | None, _ ->
      Metrics.record_ingest_error t.metrics;
      Protocol.err "not serving a live index (start with --live)"
  | Some _, Protocol.Add_doc text ->
      let batcher = Option.get t.batcher in
      (* Same normalization as the corpus the server was seeded from
         (see stemmed_corpus_of_file in the CLI): Porter stems over
         lowercase word tokens. *)
      let stems =
        Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)
      in
      let line = Ingest_batcher.submit batcher stems in
      if line = Protocol.busy then Metrics.record_busy t.metrics
      else if not (Protocol.is_ingest_success line) then
        Metrics.record_ingest_error t.metrics;
      line
  | Some live, _ ->
      let task () =
        match request with
        | Protocol.Del_doc id -> begin
            match Pj_live.Live_index.delete live id with
            | Ok () -> Protocol.deleted id
            | Error `Not_found ->
                Protocol.err (Printf.sprintf "no such document %d" id)
          end
        | Protocol.Flush ->
            let generation = Pj_live.Live_index.flush live in
            let stats = Pj_live.Live_index.stats live in
            Protocol.flushed ~generation
              ~segments:stats.Pj_live.Live_index.segments
        | Protocol.Add_doc _ | Protocol.Ping | Protocol.Stats | Protocol.Quit
        | Protocol.Search _ ->
            assert false (* ADDDOC goes through the batcher above *)
      in
      begin
        match Worker_pool.run_task t.pool task with
        | `Busy ->
            Metrics.record_busy t.metrics;
            Protocol.busy
        | `Done (Ok line) ->
            (* The task itself can answer ERR (e.g. DELDOC of an
               unknown id) — an ingest error even though the worker
               ran fine. *)
            if not (Protocol.is_ingest_success line) then
              Metrics.record_ingest_error t.metrics;
            line
        | `Done (Error msg) ->
            Metrics.record_ingest_error t.metrics;
            Protocol.err msg
      end

(* One response line per request line; [false] ends the connection. *)
let respond t ~precision line =
  match Protocol.parse_request line with
  | Error msg ->
      Metrics.record_parse_error t.metrics;
      (Protocol.err msg, true)
  | Ok Protocol.Ping ->
      Metrics.record_ping t.metrics;
      (Protocol.pong, true)
  | Ok Protocol.Quit -> (Protocol.bye, false)
  | Ok Protocol.Stats ->
      Metrics.record_stats t.metrics;
      (stats_line t, true)
  | Ok (Protocol.Search sr) ->
      Metrics.record_search t.metrics;
      let t0 = Pj_util.Timing.monotonic_now () in
      let response = handle_search t sr ~precision in
      let dt = Pj_util.Timing.monotonic_now () -. t0 in
      (* Separate histograms: a degraded request often burns its whole
         deadline on the failed leg, which would smear the healthy-path
         percentiles. *)
      if Protocol.cacheable response then Metrics.observe_latency t.metrics dt
      else if Protocol.is_search_success response then
        Metrics.observe_degraded_latency t.metrics dt;
      (response, true)
  | Ok ((Protocol.Add_doc _ | Protocol.Del_doc _ | Protocol.Flush) as req) ->
      (match req with
      | Protocol.Add_doc _ -> Metrics.record_add t.metrics
      | Protocol.Del_doc _ -> Metrics.record_delete t.metrics
      | _ -> Metrics.record_flush t.metrics);
      let t0 = Pj_util.Timing.monotonic_now () in
      let response = handle_ingest t req in
      let dt = Pj_util.Timing.monotonic_now () -. t0 in
      if Protocol.is_ingest_success response then
        Metrics.observe_ingest_latency t.metrics dt;
      (response, true)

let register_conn t id conn =
  Mutex.lock t.conns_mutex;
  Hashtbl.replace t.conns id conn;
  Mutex.unlock t.conns_mutex

let set_conn_thread t id thread =
  Mutex.lock t.conns_mutex;
  (match Hashtbl.find_opt t.conns id with
  | Some conn -> conn.thread <- Some thread
  | None ->
      (* The handler already ran to completion and unregistered itself;
         the thread is (as good as) done, so there is nothing for
         [stop] to join. *)
      ());
  Mutex.unlock t.conns_mutex

let unregister_conn t id =
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns id;
  Mutex.unlock t.conns_mutex

let connections t =
  Mutex.lock t.conns_mutex;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_mutex;
  n

(* Read one newline-terminated request, never buffering more than
   [Protocol.max_line_bytes] of it. [input_line] would buffer the
   whole line before the parser's length check ever saw it, so a
   client streaming bytes without a newline could grow the heap
   without bound; here the line is abandoned the moment it exceeds
   the cap. Trailing bytes before EOF count as a line, as with
   [input_line]. *)
let read_line_bounded ic =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | exception End_of_file ->
        if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if Buffer.length buf >= Protocol.max_line_bytes then `Too_long
        else begin
          Buffer.add_char buf c;
          go ()
        end
  in
  go ()

let handle_text t ic oc =
  let rec loop () =
    match read_line_bounded ic with
    | exception Sys_error _ -> ()
    | `Eof -> ()
    | `Too_long ->
        (* One diagnostic, then the connection is failed: the rest of
           the over-long line is unread, so the stream can no longer
           be parsed at request boundaries. *)
        Metrics.record_parse_error t.metrics;
        output_string oc (Protocol.err "request line too long");
        output_char oc '\n';
        flush oc
    | `Line line ->
        (* In-flight from line-read to response-flush, exception-safe:
           [stop]'s drain phase must never wait on a request whose
           handler already died. *)
        Atomic.incr t.inflight;
        let continue =
          Fun.protect
            ~finally:(fun () -> Atomic.decr t.inflight)
            (fun () ->
              (* Chaos site for connection handling itself: an injected
                 error (or panic) here tears down this connection only
                 — the catch-all below owns the cleanup. *)
              Pj_util.Failpoint.hit "server.conn";
              let response, continue =
                respond t ~precision:Protocol.text_precision line
              in
              output_string oc response;
              output_char oc '\n';
              flush oc;
              continue)
        in
        if continue then loop ()
  in
  loop ()

(* The binary dialect of the same request/response protocol: framed,
   CRC-checked, and pipelined — request ids let [binary_inflight]
   requests from one connection be answered as they complete, out of
   order. The reader thread (this one) only frames and enqueues;
   worker threads (spawned lazily, at most [binary_inflight]) call
   [respond] and write response frames under a shared write lock. The
   per-connection Work_queue is the in-flight cap: when it is full the
   reader blocks in [push] and stops reading the socket, which is
   exactly TCP backpressure, not request shedding. *)
let handle_binary t fd ic oc =
  let cap = t.config.binary_inflight in
  let q : (int * string) Work_queue.t = Work_queue.create ~capacity:cap in
  let write_mutex = Mutex.create () in
  let send frame =
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () -> Pj_frame.Wire.write_flush oc frame)
  in
  (* A broken stream (torn/corrupt/oversized frame, or a non-request
     frame) gets one framed diagnostic, then the connection is failed
     — the frame boundary is lost, mirroring the text side's
     "request line too long". *)
  let send_fatal msg =
    try
      send
        {
          Pj_frame.Frame.kind = Pj_frame.Frame.Error_frame;
          id = 0;
          payload = Protocol.err msg;
        }
    with _ -> ()
  in
  let stop_reading () =
    Work_queue.close q;
    (* Wake the reader out of a blocking [input_char]: after QUIT the
       client owes us nothing more. *)
    try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ()
  in
  let worker () =
    let rec wloop () =
      match Work_queue.pop q with
      | None -> ()
      | Some (rid, line) ->
          let continue =
            Fun.protect
              ~finally:(fun () -> Atomic.decr t.inflight)
              (fun () ->
                Pj_util.Failpoint.hit "server.conn";
                let response, continue =
                  respond t ~precision:Protocol.exact_precision line
                in
                send
                  {
                    Pj_frame.Frame.kind = Pj_frame.Frame.Response;
                    id = rid;
                    payload = response;
                  };
                continue)
          in
          if continue then wloop () else stop_reading ()
    in
    try wloop () with _ -> stop_reading ()
  in
  let workers = ref [] in
  let n_workers = ref 0 in
  let workers_mutex = Mutex.create () in
  let spawn_if_starved () =
    Mutex.lock workers_mutex;
    if !n_workers < cap && Work_queue.length q > 0 then begin
      incr n_workers;
      workers := Thread.create worker () :: !workers
    end;
    Mutex.unlock workers_mutex
  in
  let request_cap = Protocol.max_line_bytes + 64 in
  let rec rloop () =
    match Pj_frame.Wire.read ~max_body:request_cap ic with
    | exception Sys_error _ -> ()
    | Pj_frame.Wire.Closed -> ()
    | Pj_frame.Wire.Bad e ->
        Metrics.record_parse_error t.metrics;
        let msg =
          match e with
          | Pj_frame.Frame.Oversized n ->
              Printf.sprintf "frame too large (%d bytes, max %d)" n request_cap
          | Pj_frame.Frame.Truncated what -> "truncated frame: " ^ what
          | Pj_frame.Frame.Corrupt what -> "corrupt frame: " ^ what
        in
        send_fatal msg
    | Pj_frame.Wire.Frame { Pj_frame.Frame.kind = Pj_frame.Frame.Request; id; payload } ->
        Atomic.incr t.inflight;
        if Work_queue.push q (id, payload) then begin
          spawn_if_starved ();
          rloop ()
        end
        else (* QUIT raced us: the queue is closed, the request is
                abandoned unread-equivalent. *)
          Atomic.decr t.inflight
    | Pj_frame.Wire.Frame _ ->
        Metrics.record_parse_error t.metrics;
        send_fatal "unexpected frame kind (want request)"
  in
  rloop ();
  Work_queue.close q;
  Mutex.lock workers_mutex;
  let ws = !workers in
  Mutex.unlock workers_mutex;
  List.iter Thread.join ws

let handle_connection t id fd =
  (* Any per-connection failure (client gone mid-write, etc.) closes
     this connection only; the accept loop and other connections are
     unaffected. One listening socket serves both protocol dialects:
     the first byte classifies the connection (text verbs are ASCII,
     binary frames start with 0xB1) without consuming anything. *)
  (try
     match Pj_frame.Wire.sniff fd with
     | `Eof -> ()
     | (`Text | `Binary) as sniffed ->
         let ic = Unix.in_channel_of_descr fd in
         let oc = Unix.out_channel_of_descr fd in
         (match sniffed with
         | `Text -> handle_text t ic oc
         | `Binary -> handle_binary t fd ic oc)
   with _ -> ());
  unregister_conn t id;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let next_id = ref 0 in
  while Atomic.get t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        let id = !next_id in
        incr next_id;
        register_conn t id { fd; thread = None };
        let thread = Thread.create (fun () -> handle_connection t id fd) () in
        set_conn_thread t id thread
    | exception Unix.Unix_error _ ->
        (* [stop] closes the listening socket to break us out; anything
           else (EMFILE, ECONNABORTED) is transient — keep accepting. *)
        if Atomic.get t.running then Thread.yield ()
  done

let log_loop t period =
  let rec sleep remaining =
    if remaining > 0. && Atomic.get t.running then begin
      Thread.delay (Float.min remaining 0.25);
      sleep (remaining -. 0.25)
    end
  in
  while Atomic.get t.running do
    sleep period;
    if Atomic.get t.running then
      Printf.eprintf "[pj_server] %s\n%!" (stats_line t)
  done

let start ?(config = default_config) ?live ?forward ?extra_stats ?n_docs
    ~graph search =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (try Unix.bind listen_fd addr
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 128;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let pool =
    Worker_pool.create ~domains:config.domains
      ~queue_capacity:config.queue_capacity search
  in
  let metrics = Metrics.create () in
  let batcher =
    Option.map
      (fun live ->
        Ingest_batcher.create
          ~on_batch:(fun ~size -> Metrics.record_ingest_batch metrics ~size)
          pool live)
      live
  in
  let t =
    {
      config;
      listen_fd;
      port;
      graph;
      pool;
      live;
      batcher;
      forward;
      extra_stats;
      n_docs;
      cache = Result_cache.create ~capacity:config.cache_capacity;
      metrics;
      running = Atomic.make true;
      inflight = Atomic.make 0;
      accept_thread = None;
      log_thread = None;
      conns = Hashtbl.create 64;
      conns_mutex = Mutex.create ();
    }
  in
  (match live with
  | Some live ->
      (* Every generation swap (add, delete, flush, merge) switches the
         cache's key namespace, so a response computed against an older
         snapshot can never be replayed. Seed with the current
         generation: the index may have been recovered from disk at
         gen > 0. *)
      Result_cache.set_generation t.cache
        (Pj_live.Live_index.generation live);
      Pj_live.Live_index.on_swap live (fun gen ->
          Result_cache.set_generation t.cache gen)
  | None -> ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  (match config.log_every_s with
  | Some period when period > 0. ->
      t.log_thread <- Some (Thread.create (fun () -> log_loop t period) ())
  | Some _ | None -> ());
  t

let stop_with ~drain t =
  if Atomic.exchange t.running false then begin
    (* Closing the listening socket breaks the accept loop out of
       [Unix.accept]. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Join the accept loop first: once it is gone, no new conns can
       appear and every registered conn has had [set_conn_thread] run,
       so the snapshot below is complete. *)
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* Drain: requests already read off a socket get up to [drain_s]
       to finish and flush their response before connections are
       forced closed. Handler threads parked in [read] hold no
       half-answered request and are not waited for. [kill] skips
       this phase entirely — in-flight requests lose their answers,
       as they would under kill -9. *)
    let drain_deadline =
      Pj_util.Timing.monotonic_now ()
      +. (if drain then t.config.drain_s else 0.)
    in
    while
      drain
      && Atomic.get t.inflight > 0
      && Pj_util.Timing.monotonic_now () < drain_deadline
    do
      Thread.delay 0.002
    done;
    (* Nudge open connections: a shutdown makes their next read see
       end-of-file, so handler threads drain and exit. Only the
       threads of still-registered conns are joined — finished
       handlers already removed themselves. *)
    Mutex.lock t.conns_mutex;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    Mutex.unlock t.conns_mutex;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter
      (fun c -> match c.thread with Some th -> Thread.join th | None -> ())
      conns;
    Worker_pool.shutdown t.pool;
    (match t.log_thread with Some th -> Thread.join th | None -> ())
  end

let stop t = stop_with ~drain:true t

(* Chaos support: the socket-level behaviour of kill -9 — every
   connection dropped mid-whatever, no drain, no goodbye. (The kernel
   of a killed process closes its sockets the same way: FIN now, RST
   for anyone who keeps writing.) Threads and domains are still
   joined so the *calling* test process stays leak-free. *)
let kill t = stop_with ~drain:false t

let wait t =
  match t.accept_thread with Some th -> Thread.join th | None -> ()
