type config = {
  host : string;
  port : int;
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
  deadline_s : float;
  log_every_s : float option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = Pj_util.Parallel.recommended_domains ();
    queue_capacity = 64;
    cache_capacity = 1024;
    deadline_s = 2.0;
    log_every_s = None;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  port : int;
  graph : Pj_ontology.Graph.t;
  pool : Worker_pool.t;
  cache : Result_cache.t;
  metrics : Metrics.t;
  running : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable log_thread : Thread.t option;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable conn_threads : Thread.t list;
}

let port t = t.port
let metrics t = t.metrics
let cache t = t.cache

let stats_line t =
  let cache_hits, cache_misses, cache_len = Result_cache.stats t.cache in
  Metrics.render t.metrics ~cache_hits ~cache_misses ~cache_len
    ~queue_len:(Worker_pool.queue_length t.pool)
    ~domains:(Worker_pool.domains t.pool)

(* Answer one SEARCH. The cache is consulted before the worker pool, so
   a repeated query costs one hash lookup and no queue slot; live
   results are rendered once and cached as the final response line. *)
let handle_search t (sr : Protocol.search_request) =
  let key = Protocol.cache_key sr in
  match Result_cache.find t.cache key with
  | Some response -> response
  | None -> begin
      match Protocol.scoring_of ~family:sr.Protocol.family ~alpha:sr.Protocol.alpha with
      | Error msg ->
          Metrics.record_error t.metrics;
          Protocol.err msg
      | Ok scoring -> begin
          match Pj_matching.Query_parser.parse t.graph sr.Protocol.terms with
          | Error msg ->
              Metrics.record_error t.metrics;
              Protocol.err msg
          | Ok query ->
              (* The served index is built over Porter stems (see the
                 serve subcommand), so matcher expansions are stemmed to
                 the same normalization — as in [proxjoin isearch]. *)
              let query =
                {
                  query with
                  Pj_matching.Query.matchers =
                    Array.map Pj_matching.Matcher.stem_expansions
                      query.Pj_matching.Query.matchers;
                }
              in
              (* Monotonic clock: an NTP step must not expire (or
                 extend) every in-flight query's budget. *)
              let deadline =
                Pj_util.Timing.monotonic_now () +. t.config.deadline_s
              in
              begin
                match
                  Worker_pool.run t.pool ~scoring ~k:sr.Protocol.k ~deadline
                    query
                with
                | `Busy ->
                    Metrics.record_busy t.metrics;
                    Protocol.busy
                | `Done (Worker_pool.Hits hits) ->
                    let response = Protocol.string_of_hits hits in
                    Result_cache.add t.cache key response;
                    response
                | `Done Worker_pool.Timed_out ->
                    Metrics.record_timeout t.metrics;
                    Protocol.timeout
                | `Done (Worker_pool.Failed msg) ->
                    Metrics.record_error t.metrics;
                    Protocol.err msg
              end
        end
    end

(* One response line per request line; [false] ends the connection. *)
let respond t line =
  match Protocol.parse_request line with
  | Error msg ->
      Metrics.record_error t.metrics;
      (Protocol.err msg, true)
  | Ok Protocol.Ping ->
      Metrics.record_ping t.metrics;
      (Protocol.pong, true)
  | Ok Protocol.Quit -> (Protocol.bye, false)
  | Ok Protocol.Stats ->
      Metrics.record_stats t.metrics;
      (stats_line t, true)
  | Ok (Protocol.Search sr) ->
      Metrics.record_search t.metrics;
      let t0 = Pj_util.Timing.monotonic_now () in
      let response = handle_search t sr in
      if String.length response >= 4 && String.sub response 0 4 = "HITS" then
        Metrics.observe_latency t.metrics (Pj_util.Timing.monotonic_now () -. t0);
      (response, true)

let register_conn t id fd =
  Mutex.lock t.conns_mutex;
  Hashtbl.replace t.conns id fd;
  Mutex.unlock t.conns_mutex

let unregister_conn t id =
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns id;
  Mutex.unlock t.conns_mutex

let handle_connection t id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
        let response, continue = respond t line in
        output_string oc response;
        output_char oc '\n';
        flush oc;
        if continue then loop ()
  in
  (* Any per-connection failure (client gone mid-write, etc.) closes
     this connection only; the accept loop and other connections are
     unaffected. *)
  (try loop () with _ -> ());
  unregister_conn t id;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let next_id = ref 0 in
  while Atomic.get t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        let id = !next_id in
        incr next_id;
        register_conn t id fd;
        let thread = Thread.create (fun () -> handle_connection t id fd) () in
        t.conn_threads <- thread :: t.conn_threads
    | exception Unix.Unix_error _ ->
        (* [stop] closes the listening socket to break us out; anything
           else (EMFILE, ECONNABORTED) is transient — keep accepting. *)
        if Atomic.get t.running then Thread.yield ()
  done

let log_loop t period =
  let rec sleep remaining =
    if remaining > 0. && Atomic.get t.running then begin
      Thread.delay (Float.min remaining 0.25);
      sleep (remaining -. 0.25)
    end
  in
  while Atomic.get t.running do
    sleep period;
    if Atomic.get t.running then
      Printf.eprintf "[pj_server] %s\n%!" (stats_line t)
  done

let start ?(config = default_config) ~graph searcher =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (try Unix.bind listen_fd addr
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 128;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let pool =
    Worker_pool.create ~domains:config.domains
      ~queue_capacity:config.queue_capacity searcher
  in
  let t =
    {
      config;
      listen_fd;
      port;
      graph;
      pool;
      cache = Result_cache.create ~capacity:config.cache_capacity;
      metrics = Metrics.create ();
      running = Atomic.make true;
      accept_thread = None;
      log_thread = None;
      conns = Hashtbl.create 64;
      conns_mutex = Mutex.create ();
      conn_threads = [];
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  (match config.log_every_s with
  | Some period when period > 0. ->
      t.log_thread <- Some (Thread.create (fun () -> log_loop t period) ())
  | Some _ | None -> ());
  t

let stop t =
  if Atomic.exchange t.running false then begin
    (* Closing the listening socket breaks the accept loop out of
       [Unix.accept]. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* Nudge open connections: a shutdown makes their next read see
       end-of-file, so handler threads drain and exit. *)
    Mutex.lock t.conns_mutex;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
    Mutex.unlock t.conns_mutex;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds;
    List.iter Thread.join t.conn_threads;
    Worker_pool.shutdown t.pool;
    (match t.log_thread with Some th -> Thread.join th | None -> ())
  end

let wait t =
  match t.accept_thread with Some th -> Thread.join th | None -> ()
