(** Group commit for ADDDOC acknowledgements.

    Concurrent connection threads hand their stemmed documents to
    {!submit}; a leader thread drains everything pending into a single
    {!Pj_live.Live_index.add_batch} through one
    {!Worker_pool.run_task}, so a burst of N concurrent ADDDOCs costs
    one writer-lock acquisition, one queue slot and one generation
    bump instead of N of each — then every submitter gets its own
    [ADDED <id>] line (ids dense in arrival order). Under no
    contention a batch holds exactly one document and behaves like the
    former per-request path. *)

type t

val create :
  on_batch:(size:int -> unit) -> Worker_pool.t -> Pj_live.Live_index.t -> t
(** [on_batch ~size] fires once per successfully committed batch (from
    whichever connection thread led it) — the observability hook for
    {!Metrics.record_ingest_batch}. *)

val submit : t -> string array -> string
(** Submit one document (pre-stemmed tokens) and block until its
    acknowledgement is available: [ADDED <id>] on success, [BUSY] when
    the worker queue rejected the whole batch, [ERR ...] when the
    batch failed. Safe to call from any number of threads. *)
