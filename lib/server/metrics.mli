(** Server observability: request/error counters and a latency
    histogram, reported through the [STATS] command and the periodic
    log line.

    All operations are mutex-protected; recording is O(1) (the
    histogram is {!Pj_util.Histogram}, constant-memory log buckets), so
    metrics never become the hot path they are measuring.

    Errors are counted at two distinct levels and never mixed:
    a {e parse} error is a request line that never became a command
    (malformed, unknown verb, over-long line) — it is a request in its
    own right; a {e search} error is a SEARCH that parsed fine but
    failed during evaluation (bad scoring family, unknown term, worker
    exception) — that request is already counted in [searches], and an
    {e ingest} error likewise in [adds]/[deletes]/[flushes]. Keeping
    the levels apart is what makes the invariant
    [requests = searches + pings + stats + parse_errors + adds +
    deletes + flushes] hold exactly; a single error counter would put
    failed requests in both terms of the sum. *)

type t

val create : unit -> t

val record_search : t -> unit
val record_ping : t -> unit
val record_stats : t -> unit

val record_parse_error : t -> unit
(** A request line that parsed into no command at all. Counted as a
    request; never overlaps [record_search]. *)

val record_search_error : t -> unit
(** A SEARCH (already counted by [record_search]) that failed during
    evaluation. Not counted as an extra request. *)

val record_busy : t -> unit
(** Also counted under its verb's counter; tracks queue-full
    rejections. *)

val record_timeout : t -> unit
(** Also counted as a search; tracks deadline expiries. *)

val record_degraded : t -> n_failed_shards:int -> unit
(** An OK-DEGRADED response (already counted as a search): bumps the
    degraded-response count by one and the cumulative shard-failure
    count by [n_failed_shards] — the first says how often clients see
    partial answers, the second how flaky the shards are. *)

val record_add : t -> unit
(** An ADDDOC request (attempted, whatever its outcome). *)

val record_delete : t -> unit
(** A DELDOC request (attempted, whatever its outcome). *)

val record_flush : t -> unit
(** A FLUSH request (attempted, whatever its outcome). *)

val record_ingest_batch : t -> size:int -> unit
(** One group-commit batch of [size] ADDDOCs executed through the
    worker pool (each ADDDOC is still counted by [record_add]); the
    ratio [batched_adds / ingest_batches] is the achieved group-commit
    factor. *)

val record_ingest_error : t -> unit
(** A write verb (already counted by [record_add]/[record_delete]/
    [record_flush]) that failed during execution — including writes
    refused because the server fronts a read-only index. Not counted
    as an extra request. *)

val observe_latency : t -> float -> unit
(** Seconds from request receipt to response for a served search
    (cache hits included). *)

val observe_degraded_latency : t -> float -> unit
(** Same clock, but for OK-DEGRADED responses — kept in a separate
    histogram so degraded requests (which often burn the whole
    deadline on a failed leg) don't skew the healthy-path
    percentiles. *)

val observe_ingest_latency : t -> float -> unit
(** Seconds from request receipt to acknowledgement for a completed
    write (ADDED/DELETED/FLUSHED). Separate histogram: a FLUSH's
    fsync-bound latency has nothing in common with a search's. *)

type snapshot = {
  uptime_s : float;
  requests : int;
      (** searches + pings + stats + parse errors + adds + deletes +
          flushes, exactly *)
  searches : int;
  pings : int;
  stats_calls : int;
  parse_errors : int;
  search_errors : int;
  errors : int;  (** parse_errors + search_errors + ingest_errors *)
  busy : int;
  timeouts : int;
  degraded : int;  (** OK-DEGRADED responses *)
  shard_failures : int;  (** total failed shard legs across them *)
  adds : int;
  deletes : int;
  flushes : int;
  ingest_errors : int;
  ingest_batches : int;
      (** group-commit batches executed for ADDDOC acknowledgements *)
  batched_adds : int;  (** ADDDOCs carried by those batches *)
  served : int;  (** searches answered with a HITS line *)
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_p99_ms : float;
  latency_max_ms : float;
  ingest_p50_ms : float;
  ingest_p99_ms : float;
}

val snapshot : t -> snapshot

val render :
  t ->
  cache_hits:int ->
  cache_misses:int ->
  cache_len:int ->
  queue_len:int ->
  domains:int ->
  worker_panics:int ->
  worker_respawns:int ->
  string
(** The single-line key=value [STATS] response. [worker_panics] and
    [worker_respawns] come from {!Worker_pool} (they live in the pool,
    not here, because the supervisor owns them). When the server
    fronts a live index it appends the live-index fields itself. *)
