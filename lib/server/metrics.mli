(** Server observability: request/error counters and a latency
    histogram, reported through the [STATS] command and the periodic
    log line.

    All operations are mutex-protected; recording is O(1) (the
    histogram is {!Pj_util.Histogram}, constant-memory log buckets), so
    metrics never become the hot path they are measuring. *)

type t

val create : unit -> t

val record_search : t -> unit
val record_ping : t -> unit
val record_stats : t -> unit
val record_error : t -> unit

val record_busy : t -> unit
(** Also counted as a search; tracks queue-full rejections. *)

val record_timeout : t -> unit
(** Also counted as a search; tracks deadline expiries. *)

val observe_latency : t -> float -> unit
(** Seconds from request receipt to response for a served search
    (cache hits included). *)

type snapshot = {
  uptime_s : float;
  requests : int;  (** searches + pings + stats + parse errors *)
  searches : int;
  pings : int;
  stats_calls : int;
  errors : int;
  busy : int;
  timeouts : int;
  served : int;  (** searches answered with a HITS line *)
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_p99_ms : float;
  latency_max_ms : float;
}

val snapshot : t -> snapshot

val render :
  t ->
  cache_hits:int ->
  cache_misses:int ->
  cache_len:int ->
  queue_len:int ->
  domains:int ->
  string
(** The single-line key=value [STATS] response. *)
