(** Server observability: request/error counters and a latency
    histogram, reported through the [STATS] command and the periodic
    log line.

    All operations are mutex-protected; recording is O(1) (the
    histogram is {!Pj_util.Histogram}, constant-memory log buckets), so
    metrics never become the hot path they are measuring.

    Errors are counted at two distinct levels and never mixed:
    a {e parse} error is a request line that never became a command
    (malformed, unknown verb, over-long line) — it is a request in its
    own right; a {e search} error is a SEARCH that parsed fine but
    failed during evaluation (bad scoring family, unknown term, worker
    exception) — that request is already counted in [searches].
    Keeping the two apart is what makes the invariant
    [requests = searches + pings + stats + parse_errors] hold exactly;
    the previous single counter put failed SEARCHes in both terms of
    the sum. *)

type t

val create : unit -> t

val record_search : t -> unit
val record_ping : t -> unit
val record_stats : t -> unit

val record_parse_error : t -> unit
(** A request line that parsed into no command at all. Counted as a
    request; never overlaps [record_search]. *)

val record_search_error : t -> unit
(** A SEARCH (already counted by [record_search]) that failed during
    evaluation. Not counted as an extra request. *)

val record_busy : t -> unit
(** Also counted as a search; tracks queue-full rejections. *)

val record_timeout : t -> unit
(** Also counted as a search; tracks deadline expiries. *)

val record_degraded : t -> n_failed_shards:int -> unit
(** An OK-DEGRADED response (already counted as a search): bumps the
    degraded-response count by one and the cumulative shard-failure
    count by [n_failed_shards] — the first says how often clients see
    partial answers, the second how flaky the shards are. *)

val observe_latency : t -> float -> unit
(** Seconds from request receipt to response for a served search
    (cache hits included). *)

val observe_degraded_latency : t -> float -> unit
(** Same clock, but for OK-DEGRADED responses — kept in a separate
    histogram so degraded requests (which often burn the whole
    deadline on a failed leg) don't skew the healthy-path
    percentiles. *)

type snapshot = {
  uptime_s : float;
  requests : int;  (** searches + pings + stats + parse errors, exactly *)
  searches : int;
  pings : int;
  stats_calls : int;
  parse_errors : int;
  search_errors : int;
  errors : int;  (** parse_errors + search_errors *)
  busy : int;
  timeouts : int;
  degraded : int;  (** OK-DEGRADED responses *)
  shard_failures : int;  (** total failed shard legs across them *)
  served : int;  (** searches answered with a HITS line *)
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_p99_ms : float;
  latency_max_ms : float;
}

val snapshot : t -> snapshot

val render :
  t ->
  cache_hits:int ->
  cache_misses:int ->
  cache_len:int ->
  queue_len:int ->
  domains:int ->
  worker_panics:int ->
  worker_respawns:int ->
  string
(** The single-line key=value [STATS] response. [worker_panics] and
    [worker_respawns] come from {!Worker_pool} (they live in the pool,
    not here, because the supervisor owns them). *)
