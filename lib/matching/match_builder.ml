let scan vocab (doc : Pj_text.Document.t) (q : Query.t) =
  let n = Query.n_terms q in
  let lists = Array.init n (fun _ -> Pj_util.Vec.create ()) in
  (* Memoize per distinct token id: the per-term score vector. *)
  let cache : (int, float option array) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun pos tok ->
      let scores =
        match Hashtbl.find_opt cache tok with
        | Some s -> s
        | None ->
            let word = Pj_text.Vocab.word vocab tok in
            let s =
              Array.map (fun m -> m.Matcher.score_token word) q.Query.matchers
            in
            Hashtbl.add cache tok s;
            s
      in
      Array.iteri
        (fun j score ->
          match score with
          | None -> ()
          | Some score ->
              Pj_util.Vec.push lists.(j)
                (Pj_core.Match0.make ~payload:tok ~loc:pos ~score ()))
        scores)
    doc.Pj_text.Document.tokens;
  Array.map Pj_util.Vec.to_array lists

let of_form_matches arr =
  (* Several expansion forms can share a location only if two distinct
     lexicon forms intern to the same token, which the vocabulary
     forbids; still, sort defensively and keep one match per location
     (the best-scoring). *)
  Array.sort
    (fun a b ->
      let c = compare a.Pj_core.Match0.loc b.Pj_core.Match0.loc in
      if c <> 0 then c
      else compare b.Pj_core.Match0.score a.Pj_core.Match0.score)
    arr;
  let out = Pj_util.Vec.create () in
  Array.iter
    (fun m ->
      if
        Pj_util.Vec.is_empty out
        || (Pj_util.Vec.last out).Pj_core.Match0.loc <> m.Pj_core.Match0.loc
      then Pj_util.Vec.push out m)
    arr;
  Pj_core.Match_list.of_unsorted (Pj_util.Vec.to_array out)

let from_index idx ~doc_id (q : Query.t) =
  let vocab = Pj_index.Corpus.vocab (Pj_index.Inverted_index.corpus idx) in
  Array.map
    (fun m ->
      match m.Matcher.expansions with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Match_builder.from_index: matcher %s has no finite expansions"
               m.Matcher.name)
      | Some expansions ->
          let matches = Pj_util.Vec.create () in
          List.iter
            (fun (form, score) ->
              match Pj_text.Vocab.find vocab form with
              | None -> ()
              | Some tok ->
                  Array.iter
                    (fun pos ->
                      Pj_util.Vec.push matches
                        (Pj_core.Match0.make ~payload:tok ~loc:pos ~score ()))
                    (Pj_index.Inverted_index.positions_in idx ~token:tok
                       ~doc_id))
            expansions;
          of_form_matches (Pj_util.Vec.to_array matches))
    q.Query.matchers

let scan_corpus corpus q =
  let vocab = Pj_index.Corpus.vocab corpus in
  Array.init (Pj_index.Corpus.size corpus) (fun i ->
      let doc = Pj_index.Corpus.document corpus i in
      (doc, scan vocab doc q))
