(** Building match-list problem instances from documents.

    Two strategies, both discussed in Section II of the paper:
    - [scan]: compute match lists online by scanning the document and
      matching each token against every query term;
    - [from_index]: derive match lists from a precomputed positional
      inverted index by merging the posting lists of each matcher's
      expansion forms (footnote 1's strategy). This requires matchers
      with finite expansions and an index whose tokens are in the same
      normalization as the expansion forms (e.g. a stemmed corpus for
      stemming matchers).

    Match payloads carry the document token id (scan) or the expansion
    form's token id (index), so applications can show what matched. *)

val scan :
  Pj_text.Vocab.t ->
  Pj_text.Document.t ->
  Query.t ->
  Pj_core.Match_list.problem
(** One match list per query term, sorted by location. *)

val of_form_matches : Pj_core.Match0.t array -> Pj_core.Match_list.t
(** Finalize one term's match list from per-expansion-form matches
    collected in arbitrary order: sort by location (best score first
    within a location), keep one match per location, build the list.
    Shared by [from_index] and by consumers that harvest positions
    straight off posting-list cursors (the DAAT searcher, which at
    candidate time already holds every form cursor positioned on the
    document). *)

val from_index :
  Pj_index.Inverted_index.t ->
  doc_id:int ->
  Query.t ->
  Pj_core.Match_list.problem
(** Raises [Invalid_argument] when some matcher has no finite
    expansions. *)

val scan_corpus :
  Pj_index.Corpus.t ->
  Query.t ->
  (Pj_text.Document.t * Pj_core.Match_list.problem) array
(** [scan] over every document of a corpus. *)
