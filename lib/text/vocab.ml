type t = {
  lock : Mutex.t;
  ids : (string, int) Hashtbl.t;
  words : string Pj_util.Vec.t;
}

let create () =
  {
    lock = Mutex.create ();
    ids = Hashtbl.create 1024;
    words = Pj_util.Vec.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let intern t w =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.ids w with
      | Some id -> id
      | None ->
          let id = Pj_util.Vec.length t.words in
          Hashtbl.add t.ids w id;
          Pj_util.Vec.push t.words w;
          id)

let find t w = with_lock t (fun () -> Hashtbl.find_opt t.ids w)

let word t id =
  with_lock t (fun () ->
      if id < 0 || id >= Pj_util.Vec.length t.words then
        invalid_arg "Vocab.word: unknown id";
      Pj_util.Vec.get t.words id)

let size t = with_lock t (fun () -> Pj_util.Vec.length t.words)

let intern_all t ws = Array.map (intern t) ws
