(** String interning: a bidirectional mapping between tokens and dense
    integer ids.

    The index and the matchers work on token ids; ids also ride in the
    [payload] field of core matches so that applications can print which
    token produced a match.

    All operations are thread-safe: a vocabulary is shared between the
    live-index writer (which interns new tokens while ingesting) and
    search domains (which [find] query forms concurrently), so every
    operation takes a short internal lock. The lock is uncontended in
    read-only workloads and its cost is a few nanoseconds next to the
    hashtable probe it guards. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** The id of the token, allocating a fresh one on first sight. *)

val find : t -> string -> int option
(** The id of the token if it has been interned. *)

val word : t -> int -> string
(** The token of an id. Raises [Invalid_argument] for unknown ids. *)

val size : t -> int
(** Number of interned tokens. *)

val intern_all : t -> string array -> int array
