type t = {
  corpus : Corpus.t;
  lists : Posting_list.t array;  (* indexed by token id *)
}

let build corpus =
  let vocab_size = Pj_text.Vocab.size (Corpus.vocab corpus) in
  (* Accumulate positions per (token, doc) with one Vec per token. *)
  let acc : (int * int Pj_util.Vec.t) Pj_util.Vec.t array =
    Array.init vocab_size (fun _ -> Pj_util.Vec.create ())
  in
  Corpus.iter
    (fun d ->
      Array.iteri
        (fun pos tok ->
          let per_tok = acc.(tok) in
          let doc_id = d.Pj_text.Document.id in
          if
            Pj_util.Vec.is_empty per_tok
            || fst (Pj_util.Vec.last per_tok) <> doc_id
          then begin
            let v = Pj_util.Vec.create () in
            Pj_util.Vec.push v pos;
            Pj_util.Vec.push per_tok (doc_id, v)
          end
          else Pj_util.Vec.push (snd (Pj_util.Vec.last per_tok)) pos)
        d.Pj_text.Document.tokens)
    corpus;
  let lists =
    Array.map
      (fun per_tok ->
        Pj_util.Vec.to_list per_tok
        |> List.map (fun (doc_id, v) ->
               Posting.make ~doc_id ~positions:(Pj_util.Vec.to_array v))
        |> Posting_list.of_postings)
      acc
  in
  { corpus; lists }

let postings t token =
  if token < 0 || token >= Array.length t.lists then Posting_list.empty
  else t.lists.(token)

let postings_of_word t w =
  match Pj_text.Vocab.find (Corpus.vocab t.corpus) w with
  | None -> Posting_list.empty
  | Some token -> postings t token

let positions_in t ~token ~doc_id =
  match Posting_list.find (postings t token) doc_id with
  | None -> [||]
  | Some p -> p.Posting.positions

let document_frequency t token =
  Posting_list.document_frequency (postings t token)

let vocabulary_size t = Array.length t.lists

type stats = {
  n_tokens : int;
  n_postings : int;
  n_positions : int;
}

let stats t =
  let n_postings = ref 0 and n_positions = ref 0 in
  Array.iter
    (fun pl ->
      n_postings := !n_postings + Posting_list.document_frequency pl;
      n_positions := !n_positions + Posting_list.collection_frequency pl)
    t.lists;
  {
    n_tokens = Array.length t.lists;
    n_postings = !n_postings;
    n_positions = !n_positions;
  }

let corpus t = t.corpus
