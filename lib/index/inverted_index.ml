type stats = {
  n_tokens : int;
  n_postings : int;
  n_positions : int;
}

(* External storage engines (the mmap-backed block reader of
   [Pj_ondisk]) plug in through this record: postings stay wherever the
   engine keeps them and are decoded on demand, per cursor block or per
   looked-up document — never the whole index at once. *)
type provider = {
  pr_postings : int -> Posting_list.t;
      (* full materialization of one term's list *)
  pr_cursor : int -> Posting_list.cursor;
  pr_positions : token:int -> doc_id:int -> int array;
  pr_document_frequency : int -> int;
  pr_n_tokens : int; (* distinct indexed tokens *)
  pr_stats : unit -> stats;
  pr_iter : ((int -> Posting_list.t -> unit) -> unit) option;
      (* enumerate every (token, list) pair with postings, arbitrary
         order, each token once. [None] when the engine can't afford
         enumeration (e.g. fully on-disk layouts) — [concat_adjacent]
         then declines and compaction falls back to a rebuild. *)
}

(* Three storage layouts share one read interface:

   - [Dense]: one slot per vocabulary token, built by [build]. Right for
     the frozen full-corpus index where most tokens have postings.
   - [Sparse]: a hashtable over just the tokens that occur, built by
     [build_docs]. Right for live memtables and sealed segments, whose
     doc ranges touch a sliver of the (global, shared) vocabulary — a
     dense array would cost O(vocab) per memtable rebuild.
   - [Virtual]: reads delegated to a [provider]; nothing lives on the
     OCaml heap beyond what a query touches. *)
type store =
  | Dense of Posting_list.t array (* indexed by token id *)
  | Sparse of (int, Posting_list.t) Hashtbl.t
  | Virtual of provider

type t = {
  corpus : Corpus.t;
  store : store;
}

(* Shared accumulation: positions per (token, doc), one Vec per token,
   relying on [iter_docs] visiting documents in increasing id order so
   each per-token Vec stays sorted. *)
let accumulate per_tok_of iter_docs =
  iter_docs (fun d ->
      Array.iteri
        (fun pos tok ->
          let per_tok = per_tok_of tok in
          let doc_id = d.Pj_text.Document.id in
          if
            Pj_util.Vec.is_empty per_tok
            || fst (Pj_util.Vec.last per_tok) <> doc_id
          then begin
            let v = Pj_util.Vec.create () in
            Pj_util.Vec.push v pos;
            Pj_util.Vec.push per_tok (doc_id, v)
          end
          else Pj_util.Vec.push (snd (Pj_util.Vec.last per_tok)) pos)
        d.Pj_text.Document.tokens)

let list_of_acc per_tok =
  let pl =
    Pj_util.Vec.to_list per_tok
    |> List.map (fun (doc_id, v) ->
           Posting.make ~doc_id ~positions:(Pj_util.Vec.to_array v))
    |> Posting_list.of_postings
  in
  (* Freeze/seal time: build the per-block skip sidecar up front, so
     block-max traversal never pays the one-off build on a query. *)
  Posting_list.seal pl;
  pl

let build corpus =
  let vocab_size = Pj_text.Vocab.size (Corpus.vocab corpus) in
  let acc : (int * int Pj_util.Vec.t) Pj_util.Vec.t array =
    Array.init vocab_size (fun _ -> Pj_util.Vec.create ())
  in
  accumulate (fun tok -> acc.(tok)) (fun f -> Corpus.iter f corpus);
  { corpus; store = Dense (Array.map list_of_acc acc) }

let build_docs ?(skip = fun _ -> false) corpus docs =
  let acc : (int, (int * int Pj_util.Vec.t) Pj_util.Vec.t) Hashtbl.t =
    Hashtbl.create 256
  in
  let per_tok_of tok =
    match Hashtbl.find_opt acc tok with
    | Some v -> v
    | None ->
        let v = Pj_util.Vec.create () in
        Hashtbl.add acc tok v;
        v
  in
  accumulate per_tok_of (fun f ->
      Array.iter
        (fun d -> if not (skip d.Pj_text.Document.id) then f d)
        docs);
  let lists = Hashtbl.create (Hashtbl.length acc) in
  Hashtbl.iter (fun tok per_tok -> Hashtbl.add lists tok (list_of_acc per_tok)) acc;
  { corpus; store = Sparse lists }

let of_provider corpus provider = { corpus; store = Virtual provider }

let postings t token =
  match t.store with
  | Dense lists ->
      if token < 0 || token >= Array.length lists then Posting_list.empty
      else lists.(token)
  | Sparse lists -> (
      match Hashtbl.find_opt lists token with
      | Some pl -> pl
      | None -> Posting_list.empty)
  | Virtual p -> p.pr_postings token

let postings_of_word t w =
  match Pj_text.Vocab.find (Corpus.vocab t.corpus) w with
  | None -> Posting_list.empty
  | Some token -> postings t token

(* The cursor entry point the DAAT searcher drives: in-memory stores
   hand out array cursors over the materialized list; a [Virtual] store
   answers with the engine's own streaming cursor, so the traversal
   decodes only the blocks it lands on. *)
let cursor t token =
  match t.store with
  | Virtual p -> p.pr_cursor token
  | Dense _ | Sparse _ -> Posting_list.cursor (postings t token)

let cursor_of_word t w =
  match Pj_text.Vocab.find (Corpus.vocab t.corpus) w with
  | None -> Posting_list.cursor Posting_list.empty
  | Some token -> cursor t token

let positions_in t ~token ~doc_id =
  match t.store with
  | Virtual p -> p.pr_positions ~token ~doc_id
  | Dense _ | Sparse _ -> (
      match Posting_list.find (postings t token) doc_id with
      | None -> [||]
      | Some p -> p.Posting.positions)

let document_frequency t token =
  match t.store with
  | Virtual p -> p.pr_document_frequency token
  | Dense _ | Sparse _ -> Posting_list.document_frequency (postings t token)

let document_frequency_of_word t w =
  match Pj_text.Vocab.find (Corpus.vocab t.corpus) w with
  | None -> 0
  | Some token -> document_frequency t token

let iter_lists f t =
  match t.store with
  | Dense lists -> Array.iter f lists
  | Sparse lists -> Hashtbl.iter (fun _ pl -> f pl) lists
  | Virtual p ->
      for token = 0 to p.pr_n_tokens - 1 do
        f (p.pr_postings token)
      done

let vocabulary_size t =
  match t.store with
  | Dense lists -> Array.length lists
  | Sparse lists -> Hashtbl.length lists
  | Virtual p -> p.pr_n_tokens

let stats t =
  match t.store with
  | Virtual p -> p.pr_stats ()
  | Dense _ | Sparse _ ->
      let n_postings = ref 0 and n_positions = ref 0 in
      iter_lists
        (fun pl ->
          n_postings := !n_postings + Posting_list.document_frequency pl;
          n_positions := !n_positions + Posting_list.collection_frequency pl)
        t;
      {
        n_tokens = vocabulary_size t;
        n_postings = !n_postings;
        n_positions = !n_positions;
      }

(* Term enumeration, when the layout supports it: (token, list) pairs
   in arbitrary order, tokens without postings omitted. *)
let iter_token_lists t =
  match t.store with
  | Dense lists ->
      Some
        (fun f ->
          Array.iteri
            (fun tok pl ->
              if Posting_list.document_frequency pl > 0 then f tok pl)
            lists)
  | Sparse lists -> Some (fun f -> Hashtbl.iter f lists)
  | Virtual p -> p.pr_iter

let concat_adjacent ?skip a b =
  match (iter_token_lists a, iter_token_lists b) with
  | Some iter_a, Some iter_b ->
      (* No [skip] means no per-posting scan at all — the common case
         (merging segments with no deletions) is pure array splicing. *)
      let filter =
        match skip with
        | None -> fun pl -> pl
        | Some f -> Posting_list.reject f
      in
      let acc = Hashtbl.create 1024 in
      let add tok pl =
        let pl = filter pl in
        if Posting_list.document_frequency pl > 0 then
          match Hashtbl.find_opt acc tok with
          | None -> Hashtbl.replace acc tok pl
          | Some prev ->
              Hashtbl.replace acc tok (Posting_list.append_disjoint prev pl)
      in
      (* [a] wholly before [b], so a shared term's postings stay sorted
         by splicing [a]'s run first. *)
      iter_a add;
      iter_b add;
      Some { corpus = a.corpus; store = Sparse acc }
  | _ -> None

let corpus t = t.corpus
