(** Posting lists: all postings of one term, sorted by document id.

    Supports the operations the paper's footnote 1 relies on: deriving a
    match list for a concept by merging the posting lists of several
    specific terms (e.g. "PC maker" from "lenovo", "dell", ...). *)

type t

val empty : t
val of_postings : Posting.t list -> t
(** Builds a list from unordered postings; postings of the same document
    are merged (position arrays unioned). *)

val document_frequency : t -> int
(** Number of documents containing the term. *)

val collection_frequency : t -> int
(** Total number of occurrences across documents. *)

val find : t -> int -> Posting.t option
(** Posting for a document id (binary search). *)

val iter : (Posting.t -> unit) -> t -> unit
(** Visit postings in increasing document id. *)

val fold : ('acc -> Posting.t -> 'acc) -> 'acc -> t -> 'acc

val doc_ids : t -> int array

val union : t -> t -> t
(** Merge two posting lists (documents present in either; positions
    unioned) — the match-list merging primitive of footnote 1. *)

val to_list : t -> Posting.t list

val of_sorted_array : Posting.t array -> t
(** A list over postings already sorted by strictly increasing document
    id: O(n) validation, no sort, and the array is adopted as-is (the
    caller must not mutate it afterwards). Raises [Invalid_argument]
    when the order does not hold. *)

val reject : (int -> bool) -> t -> t
(** [reject f t] keeps the postings whose document id does {e not}
    satisfy [f] — the tombstone-purge primitive of segment compaction.
    Returns [t] itself (no copy) when nothing matches. *)

val append_disjoint : t -> t -> t
(** [append_disjoint a b] splices two lists whose doc-id ranges are
    disjoint and ordered (every id of [a] below every id of [b]) in one
    O(df) array append — how adjacent segments merge a shared term.
    When [a]'s length is a whole number of blocks and both inputs carry
    built block sidecars, the result's sidecar is spliced from theirs
    (O(blocks)) instead of recomputed. Raises [Invalid_argument] when
    the ranges overlap. *)

val seal : t -> unit
(** Build (and cache) the per-block skip sidecar now — the freeze/seal
    hook for lists that will serve many queries, so the first search
    does not pay the one-off O(df) sidecar build. Idempotent; without
    it the sidecar is still built lazily on first use. *)

(** {1 Cursors}

    Document-at-a-time traversal: a cursor walks the postings in
    increasing document id and supports a galloping [seek], so a
    conjunctive intersection of several lists costs O(min list length ×
    log max list length) comparisons instead of materializing any
    per-term document set (the substrate for
    [Pj_engine.Searcher]'s DAAT candidate generation). *)

type cursor

val cursor : t -> cursor
(** A fresh cursor positioned on the first posting. *)

val cursor_prefix : Posting.t array -> len:int -> cursor
(** A fresh array cursor over the first [len] entries of [a] only —
    same galloping traversal as {!cursor}, but entries at index
    [>= len] are invisible (including to [block_last_doc]). The
    substrate for snapshot isolation over a growing postings array:
    the live memtable hands out cursors over the committed prefix
    while its single writer appends beyond it. The visible prefix
    must already be sorted by strictly increasing document id.
    Raises [Invalid_argument] when [len] is out of range. *)

val custom :
  current:(unit -> Posting.t option) ->
  current_doc:(unit -> int) ->
  next:(unit -> unit) ->
  seek:(int -> unit) ->
  block_max_score:(unit -> float) ->
  block_last_doc:(unit -> int) ->
  cursor
(** A cursor over postings that live somewhere other than an in-memory
    array — the extension point for storage engines (the mmap-backed
    block reader of [Pj_ondisk] streams compressed blocks through this).
    The closures must respect the same contract as the array cursor:
    documents visited in strictly increasing id order, [current_doc]
    returning [-1] once exhausted, [seek] never moving backwards. *)

val current : cursor -> Posting.t option
(** The posting under the cursor; [None] once exhausted. *)

val current_doc : cursor -> int
(** Document id under the cursor, or [-1] once exhausted — the
    allocation-free fast path of [current] for the intersection loop
    (document ids are non-negative). *)

val next : cursor -> unit
(** Advance by one posting; no-op once exhausted. *)

val seek : cursor -> int -> unit
(** [seek c target] advances to the first posting with
    [doc_id >= target] (exhausting the cursor when none remains), by
    galloping search from the current position. Never moves backwards:
    a [target] at or before the current document id is a no-op. *)

(** {1 Block-max metadata}

    Per-block score ceilings, the substrate for block-max (WAND-style)
    pruning: a traversal may skip a whole block whenever the block's
    maximum possible contribution cannot beat the current threshold.
    The on-disk block format stores a round-up-quantized per-block
    maximum of the posting impact [impact ~tf]; in-memory lists carry
    an equivalent [block_size]-posting sidecar (built lazily, or at
    seal time via {!seal}), so every cursor — heap, memtable prefix, or
    mmap-backed — reports real, block-granular bounds. *)

val block_size : int
(** Postings per metadata block (same granularity as the on-disk
    format): 128. *)

val impact : tf:int -> float
(** Impact of one posting with term frequency [tf]: the saturation
    [tf /. (tf + 1)], strictly increasing in [tf] and in [0, 1). *)

val impact_ceiling : float
(** Least upper bound of {!impact} over every possible posting (1.0) —
    what a bound must assume when no block metadata is available. *)

val block_max_score : cursor -> float
(** Upper bound on [impact] over the (visible) postings of the cursor's
    current block; [0.] once exhausted. Never less than the true
    maximum (both the on-disk and the in-memory quantization round
    up). *)

val block_last_doc : cursor -> int
(** Last (visible) document id of the cursor's current block — the id
    up to which [block_max_score] is the governing bound, and the
    "next-shallow" skip target of block-max traversal; [-1] once
    exhausted. A prefix cursor clamps this to its visible prefix. *)
