(** A positional inverted index partitioned into document shards.

    Documents are split by doc-id range into [S] contiguous shards,
    each holding its own {!Inverted_index.t} over a {!Corpus.sub} view
    of the one shared corpus. Because the views share the corpus
    vocabulary and keep global document ids, a per-shard search returns
    exactly the hits (ids, scores, matchsets) the monolithic index
    would for the same documents — shard outputs merge without any id
    or token remapping, and a one-shard partition is observationally
    identical to {!Inverted_index.build}. This is the index layout
    behind [Pj_engine.Shard_searcher]'s scatter-gather search. *)

type t

val build : shards:int -> Corpus.t -> t
(** Partition into [max 1 shards] contiguous doc-id ranges whose sizes
    differ by at most one (the first [n mod shards] ranges get the
    extra document). With more shards than documents, trailing shards
    are empty — legal, they answer every query with no candidates. *)

val build_with_counts : Corpus.t -> int array -> t
(** Explicit layout: shard [i] holds the next [counts.(i)] documents.
    Raises [Invalid_argument] when [counts] is empty or does not sum to
    the corpus size. This is how [Storage] reopens a persisted layout. *)

val of_prebuilt :
  Corpus.t ->
  counts:int array ->
  shard_of:(int -> pos:int -> len:int -> Inverted_index.t) ->
  t
(** Assemble from already-constructed shard indexes: [shard_of i ~pos
    ~len] must return an index over exactly the documents [pos, pos +
    len) carrying global ids — e.g. a provider-backed range view of one
    mmap segment ([Pj_ondisk.Mapped_index.shard_index]). Layout
    validation as in [build_with_counts]; nothing is rebuilt. *)

val n_shards : t -> int

val shard : t -> int -> Inverted_index.t
(** The [i]-th shard's index. Its postings carry global document ids. *)

val range : t -> int -> int * int
(** [(first doc id, document count)] of the [i]-th shard. *)

val counts : t -> int array
(** Per-shard document counts, in shard order. *)

val shard_of_doc : t -> int -> int option
(** Which shard holds a document id, [None] when out of range. *)

val corpus : t -> Corpus.t
(** The full shared corpus (vocabulary + every document). *)

val stats : t -> Inverted_index.stats
(** Merged size accounting: postings and positions sum across shards;
    [n_tokens] is the shared vocabulary size (every shard's lists array
    spans the full vocabulary). *)
