(** Incremental per-term postings: the live memtable's index structure.

    A mutable map from token id to a growable array of positional
    postings, appended to in O(document tokens) per added document —
    no rebuild, ever. Reads go through the {!Inverted_index.provider}
    seam ({!index}), so the DAAT searcher, tombstone [accept] filter
    and fragment threshold cascade run over a memtable unchanged, and
    quiesced results stay byte-identical to an
    {!Inverted_index.build} from scratch.

    {b Concurrency contract}: exactly one writer at a time may call
    {!add_doc} (the live index serializes writers under its writer
    lock); any number of concurrent readers may search through
    indexes returned by {!index}. Every published term state is an
    immutable record behind an [Atomic.t], so readers are lock-free
    and never observe a partially appended posting.

    {b Snapshot isolation}: [index t corpus ~max_doc] clamps every
    read to postings with [doc_id <= max_doc]. Documents appended
    after the snapshot was taken — including into the very same
    arrays — stay invisible to it, so an in-flight query keeps seeing
    exactly the memtable it started with. *)

type t

val create : unit -> t

val add_doc : t -> Pj_text.Document.t -> unit
(** Append one document's postings, one per distinct token, positions
    in increasing location order. Documents must arrive in strictly
    increasing id order ([Invalid_argument] otherwise) — the order the
    live corpus assigns ids in. Single writer only. *)

val index : t -> Corpus.t -> max_doc:int -> Inverted_index.t
(** A read view over the postings of documents with
    [doc_id <= max_doc], as a virtual {!Inverted_index.t} over
    [corpus]. O(1) to create; safe to use concurrently with later
    {!add_doc} calls (which it will not observe). The caller must
    take [max_doc] no larger than the newest committed document id at
    call time. *)
