let magic = "PJIX"
let version = 3

(* Standard CRC-32 (polynomial 0xEDB88320, reflected), as used by zlib
   and PNG — implemented here so the format needs no C bindings. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let write_varint buf n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read_varint s ~pos =
  let value = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= String.length s then failwith "Storage: truncated varint";
    if !shift > 56 then failwith "Storage: varint overflow";
    let b = Char.code s.[!pos] in
    incr pos;
    value := !value lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !value

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let read_string s ~pos =
  let len = read_varint s ~pos in
  if !pos + len > String.length s then failwith "Storage: truncated string";
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

(* Crash-safe publish: the bytes go to [path.tmp], reach the disk
   (fsync), and only then replace [path] with an atomic rename — a
   crash at any point leaves either the old complete file or the old
   file plus a stale [.tmp] that the next write overwrites. The
   optional failpoints bracket the vulnerable windows for chaos tests.
   Shared by corpus saves and the live index's segment/manifest
   writers. *)
let write_file_atomic ?fp_write ?fp_rename path buf =
  let hit = function
    | Some site -> Pj_util.Failpoint.hit site
    | None -> ()
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      hit fp_write;
      Buffer.output_buffer oc buf;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  hit fp_rename;
  Sys.rename tmp path;
  (* Durability of the rename itself: fsync the directory when the
     platform allows opening one (best-effort — the data file is
     already safe either way). *)
  try
    let dir = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close dir) (fun () -> Unix.fsync dir)
  with Unix.Unix_error _ | Sys_error _ -> ()

let save_with_counts corpus counts path =
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf magic;
  write_varint buf version;
  let payload_start = Buffer.length buf in
  let vocab = Corpus.vocab corpus in
  let vocab_size = Pj_text.Vocab.size vocab in
  write_varint buf vocab_size;
  for id = 0 to vocab_size - 1 do
    write_string buf (Pj_text.Vocab.word vocab id)
  done;
  write_varint buf (Corpus.size corpus);
  Corpus.iter
    (fun d ->
      write_varint buf (Pj_text.Document.length d);
      Array.iter (write_varint buf) d.Pj_text.Document.tokens)
    corpus;
  (* v3 shard layout: the number of doc-id-range shards followed by the
     per-shard document counts (contiguous, in shard order). Part of
     the CRC-protected payload. *)
  write_varint buf (Array.length counts);
  Array.iter (write_varint buf) counts;
  (* Integrity footer (since v2): CRC-32 of the payload (everything
     between the header and the footer), little-endian. *)
  let contents = Buffer.contents buf in
  let crc =
    crc32 ~pos:payload_start ~len:(String.length contents - payload_start)
      contents
  in
  let footer = Bytes.create 4 in
  Bytes.set_int32_le footer 0 crc;
  Buffer.add_bytes buf footer;
  write_file_atomic ~fp_write:"storage.save.write"
    ~fp_rename:"storage.save.rename" path buf

let save_corpus corpus path =
  save_with_counts corpus [| Corpus.size corpus |] path

let save_sharded sharded path =
  save_with_counts (Sharded_index.corpus sharded) (Sharded_index.counts sharded)
    path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Core loader: the corpus plus the persisted shard layout. v1/v2 files
   predate shard layouts and load as one shard covering everything. *)
let parse_with_counts s =
  let pos = ref 0 in
  if String.length s < 4 || String.sub s 0 4 <> magic then
    failwith "Storage: not a proxjoin corpus file";
  pos := 4;
  let v = read_varint s ~pos in
  (* v2+ appends a CRC-32 footer over the payload; verify it and strip
     it so the body parser sees exactly the payload. v1 files (no
     footer) keep loading unchanged. *)
  let s =
    match v with
    | 1 -> s
    | 2 | 3 ->
        let payload_start = !pos in
        if String.length s < payload_start + 4 then
          failwith "Storage: truncated file (missing CRC footer)";
        let payload_len = String.length s - payload_start - 4 in
        let stored = String.get_int32_le s (payload_start + payload_len) in
        let computed = crc32 ~pos:payload_start ~len:payload_len s in
        if stored <> computed then
          failwith
            (Printf.sprintf
               "Storage: CRC mismatch (stored %08lx, computed %08lx) — file \
                truncated or corrupted"
               stored computed);
        String.sub s 0 (payload_start + payload_len)
    | v -> failwith (Printf.sprintf "Storage: unsupported version %d" v)
  in
  let vocab_size = read_varint s ~pos in
  let words = Array.init vocab_size (fun _ -> read_string s ~pos) in
  let corpus = Corpus.create () in
  (* Re-interning the words in id order reproduces the same ids; the
     document token arrays can then be mapped through [words]. *)
  let vocab = Corpus.vocab corpus in
  Array.iter (fun w -> ignore (Pj_text.Vocab.intern vocab w)) words;
  let n_docs = read_varint s ~pos in
  for _ = 1 to n_docs do
    let len = read_varint s ~pos in
    let tokens =
      Array.init len (fun _ ->
          let id = read_varint s ~pos in
          if id >= vocab_size then failwith "Storage: token id out of range";
          words.(id))
    in
    ignore (Corpus.add_tokens corpus tokens)
  done;
  let counts =
    if v < 3 then [| n_docs |]
    else begin
      let n_shards = read_varint s ~pos in
      if n_shards < 1 then failwith "Storage: shard layout with no shards";
      let counts = Array.init n_shards (fun _ -> read_varint s ~pos) in
      if Array.fold_left ( + ) 0 counts <> n_docs then
        failwith "Storage: shard layout does not cover the documents";
      counts
    end
  in
  if !pos <> String.length s then failwith "Storage: trailing bytes";
  (corpus, counts)

let load_with_counts path =
  Pj_util.Failpoint.hit "storage.load";
  let s = read_file path in
  (* Every malformation the parser detects is a [Failure "Storage:
     ..."]; anything else a corrupt file manages to trigger is wrapped
     so no raw exception ([Invalid_argument], [Out_of_memory] from an
     absurd length, ...) escapes to callers. *)
  try parse_with_counts s with
  | Failure _ as e -> raise e
  | e ->
      failwith
        (Printf.sprintf "Storage: corrupt index file %s (%s)" path
           (Printexc.to_string e))

let load_corpus path = fst (load_with_counts path)

let save idx path = save_corpus (Inverted_index.corpus idx) path

let load path = Inverted_index.build (load_corpus path)

let load_sharded path =
  let corpus, counts = load_with_counts path in
  Sharded_index.build_with_counts corpus counts

