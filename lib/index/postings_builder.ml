(* Incremental per-term postings, single writer / many lock-free
   readers.

   Every term's state is an immutable record republished through its
   own [Atomic.t] on each append, so a reader's [Atomic.get] (acquire)
   observes a fully initialized [entries] prefix written before the
   corresponding [Atomic.set] (release) — the OCaml multicore memory
   model gives no such guarantee for plain mutable fields, which is
   why the obvious "bump a length field" design is wrong here. The
   slack slots of [entries] beyond [count] are never read.

   Snapshot isolation is by doc-id clamp, not by copying: a consumer
   fixes [max_doc] at snapshot time and every read binary-searches the
   committed prefix down to the entries at or below it, so appends
   published after the snapshot stay invisible to it. *)

module IntMap = Map.Make (Int)

type term_state = {
  entries : Posting.t array; (* slots [0, count) valid, ascending doc_id *)
  count : int;
}

type t = {
  terms : term_state Atomic.t IntMap.t Atomic.t;
  (* Count of keys in [terms]; an O(1) [pr_n_tokens] (Map.cardinal is
     O(n)). Monotone, so a stale read only undercounts brand-new
     terms — all of which live beyond any older snapshot's clamp. *)
  n_terms : int Atomic.t;
}

let create () = { terms = Atomic.make IntMap.empty; n_terms = Atomic.make 0 }

(* Find-or-create a term cell. Publishing the grown map is a plain
   read-modify-write: the builder's contract is a single writer (the
   live index's writer lock), so no CAS loop is needed — readers only
   ever [Atomic.get]. *)
let term_cell t tok =
  let m = Atomic.get t.terms in
  match IntMap.find_opt tok m with
  | Some cell -> cell
  | None ->
      let cell = Atomic.make { entries = [||]; count = 0 } in
      Atomic.set t.terms (IntMap.add tok cell m);
      Atomic.incr t.n_terms;
      cell

let append cell posting =
  let st = Atomic.get cell in
  if
    st.count > 0
    && st.entries.(st.count - 1).Posting.doc_id >= posting.Posting.doc_id
  then invalid_arg "Postings_builder: doc ids must be strictly increasing";
  let entries =
    if st.count = Array.length st.entries then begin
      (* Full: grow into a fresh array (doubling), leaving the old one
         untouched for concurrent readers of the previous state. *)
      let cap = if st.count = 0 then 4 else 2 * st.count in
      let a = Array.make cap posting in
      Array.blit st.entries 0 a 0 st.count;
      a
    end
    else begin
      (* Slack slot available: fill it, then publish the larger count.
         Readers of the old state never look past their [count]. *)
      st.entries.(st.count) <- posting;
      st.entries
    end
  in
  Atomic.set cell { entries; count = st.count + 1 }

let add_doc t (d : Pj_text.Document.t) =
  let doc_id = d.Pj_text.Document.id in
  (* Accumulate positions per distinct token first (documents repeat
     terms; each term must be appended exactly once, with all its
     positions), preserving first-occurrence order. *)
  let occ : (int, int Pj_util.Vec.t) Hashtbl.t = Hashtbl.create 16 in
  let order = Pj_util.Vec.create () in
  Array.iteri
    (fun pos tok ->
      match Hashtbl.find_opt occ tok with
      | Some v -> Pj_util.Vec.push v pos
      | None ->
          let v = Pj_util.Vec.create () in
          Pj_util.Vec.push v pos;
          Hashtbl.add occ tok v;
          Pj_util.Vec.push order tok)
    d.Pj_text.Document.tokens;
  Pj_util.Vec.iter
    (fun tok ->
      let positions = Pj_util.Vec.to_array (Hashtbl.find occ tok) in
      append (term_cell t tok) (Posting.make ~doc_id ~positions))
    order

(* First index in [entries.(0..count)] whose doc_id exceeds [max_doc] —
   the length of the clamped prefix. The common case (snapshot taken at
   the newest document, no later appends yet) exits on the cheap last-
   entry check. *)
let clamp st ~max_doc =
  if st.count = 0 then 0
  else if st.entries.(st.count - 1).Posting.doc_id <= max_doc then st.count
  else begin
    let lo = ref 0 and hi = ref st.count in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if st.entries.(mid).Posting.doc_id <= max_doc then lo := mid + 1
      else hi := mid
    done;
    !lo
  end

let lookup t ~max_doc tok =
  match IntMap.find_opt tok (Atomic.get t.terms) with
  | None -> None
  | Some cell ->
      let st = Atomic.get cell in
      let hi = clamp st ~max_doc in
      if hi = 0 then None else Some (st, hi)

let find_posting st ~hi doc_id =
  let lo = ref 0 and up = ref (hi - 1) in
  let found = ref None in
  while !found = None && !lo <= !up do
    let mid = (!lo + !up) / 2 in
    let p = st.entries.(mid) in
    if p.Posting.doc_id = doc_id then found := Some p
    else if p.Posting.doc_id < doc_id then lo := mid + 1
    else up := mid - 1
  done;
  !found

let index t corpus ~max_doc =
  let pr_postings tok =
    match lookup t ~max_doc tok with
    | None -> Posting_list.empty
    | Some (st, hi) ->
        (* Entries are appended in strictly increasing doc order, so
           the clamped prefix is already a valid list. *)
        Posting_list.of_sorted_array (Array.sub st.entries 0 hi)
  in
  let pr_cursor tok =
    match lookup t ~max_doc tok with
    | None -> Posting_list.cursor Posting_list.empty
    | Some (st, hi) -> Posting_list.cursor_prefix st.entries ~len:hi
  in
  let pr_positions ~token ~doc_id =
    if doc_id > max_doc then [||]
    else
      match lookup t ~max_doc token with
      | None -> [||]
      | Some (st, hi) -> (
          match find_posting st ~hi doc_id with
          | None -> [||]
          | Some p -> p.Posting.positions)
  in
  let pr_document_frequency tok =
    match lookup t ~max_doc tok with None -> 0 | Some (_, hi) -> hi
  in
  let pr_stats () =
    let n_tokens = ref 0 and n_postings = ref 0 and n_positions = ref 0 in
    IntMap.iter
      (fun _ cell ->
        let st = Atomic.get cell in
        let hi = clamp st ~max_doc in
        if hi > 0 then begin
          incr n_tokens;
          n_postings := !n_postings + hi;
          for i = 0 to hi - 1 do
            n_positions :=
              !n_positions + Array.length st.entries.(i).Posting.positions
          done
        end)
      (Atomic.get t.terms);
    {
      Inverted_index.n_tokens = !n_tokens;
      n_postings = !n_postings;
      n_positions = !n_positions;
    }
  in
  Inverted_index.of_provider corpus
    {
      Inverted_index.pr_postings;
      pr_cursor;
      pr_positions;
      pr_document_frequency;
      (* Counted at creation time: every term committed so far has at
         least one entry at or below [max_doc] (the writer appends in
         doc order and takes snapshots at the newest id), so the live
         counter is exact here. Terms born later are invisible through
         the clamped closures anyway. *)
      pr_n_tokens = Atomic.get t.n_terms;
      pr_stats;
      (* Enumeration powers the splice-based segment merge: a sealed
         memtable's postings are handed over per term, clamped to the
         snapshot like every other read. *)
      pr_iter =
        Some
          (fun f ->
            IntMap.iter
              (fun tok cell ->
                let st = Atomic.get cell in
                let hi = clamp st ~max_doc in
                if hi > 0 then
                  f tok
                    (Posting_list.of_sorted_array (Array.sub st.entries 0 hi)))
              (Atomic.get t.terms));
    }
