(** Corpus persistence: a compact custom binary format, so an indexed
    collection can be built once and reopened without re-tokenizing.

    Layout: a magic header and version, the vocabulary as
    length-prefixed strings, then each document's token ids — integers
    throughout are LEB128 varints. Version 2 appended a little-endian
    CRC-32 footer over the payload, so a truncated or bit-flipped file
    fails with a clear error instead of decoding garbage. Version 3
    additionally records the shard layout (shard count, then per-shard
    document counts of the contiguous doc-id ranges) at the end of the
    CRC-protected payload, so a sharded deployment reopens with the
    same partitioning it was saved with; v1/v2 files (no layout) load
    as a single shard. The inverted index is rebuilt on load (it is a
    deterministic function of the corpus and loads at disk speed
    anyway). The format is independent of OCaml's [Marshal] so files
    are stable across compiler versions. *)

val save_corpus : Corpus.t -> string -> unit
(** Write the corpus (vocabulary + documents) to the path. The write
    is crash-safe: bytes land in [path.tmp], are fsynced, and replace
    [path] via an atomic rename — a crash (or a
    [storage.save.write]/[storage.save.rename] failpoint) at any
    moment leaves any pre-existing file at [path] intact, at worst
    alongside a stale [.tmp] the next save overwrites. Raises
    [Sys_error] on I/O failure. *)

val load_corpus : string -> Corpus.t
(** Read a corpus back. Raises [Failure] with a ["Storage: ..."]
    message on any malformed, truncated or wrong-version file (the
    CRC footer catches silent corruption; no raw decoding exception
    escapes), [Sys_error] on I/O failure. *)

val save : Inverted_index.t -> string -> unit
(** [save idx path] persists the index's corpus. *)

val load : string -> Inverted_index.t
(** Load a corpus and rebuild its inverted index as one monolithic
    index, whatever shard layout the file records. *)

val save_sharded : Sharded_index.t -> string -> unit
(** Persist the corpus together with its shard layout (format v3). *)

val load_sharded : string -> Sharded_index.t
(** Reopen with the persisted shard layout; v1/v2 files load as one
    shard covering every document. *)

(** {1 Encoding and file primitives}

    Exposed for tests and for sibling on-disk formats — the live
    index's segment and manifest files ({!Pj_live}) share these
    primitives so every proxjoin file gets the same varint encoding,
    CRC-32 integrity footer, and crash-safe publication discipline. *)

val write_varint : Buffer.t -> int -> unit
(** LEB128 encoding of a non-negative integer. *)

val read_varint : string -> pos:int ref -> int
(** Decode at [!pos], advancing it. Raises [Failure] on truncation or
    overflow. *)

val write_string : Buffer.t -> string -> unit
(** Length-prefixed (varint) string. *)

val read_string : string -> pos:int ref -> string
(** Decode at [!pos], advancing it. Raises [Failure] on truncation. *)

val crc32 : ?pos:int -> ?len:int -> string -> int32
(** Standard CRC-32 (zlib/PNG polynomial) of a substring ([pos]
    defaults to 0, [len] to the rest of the string). *)

val write_file_atomic :
  ?fp_write:string -> ?fp_rename:string -> string -> Buffer.t -> unit
(** Crash-safe file publication: write the buffer to [path.tmp], fsync,
    atomically rename over [path], then best-effort fsync the directory.
    A crash at any moment leaves any pre-existing [path] intact.
    [fp_write]/[fp_rename] name optional failpoint sites hit just
    before the write and the rename. Raises [Sys_error] on I/O
    failure. *)

val read_file : string -> string
(** The whole file as a string. Raises [Sys_error]. *)
