(** Positional inverted index over a corpus.

    Maps token ids to posting lists. The paper assumes match lists can
    be "derived from precomputed inverted lists" (Section II); this is
    that precomputation. Match lists for a document are obtained by
    looking up the postings of every token related to a query term and
    merging them with per-token scores (see [Pj_matching.Match_builder]). *)

type t

val build : Corpus.t -> t
(** Index every document of the corpus (dense layout: one posting-list
    slot per vocabulary token). *)

val build_docs : ?skip:(int -> bool) -> Corpus.t -> Pj_text.Document.t array -> t
(** Index exactly the given documents of [corpus] — the substrate for
    live memtables and sealed segments, which cover a contiguous doc-id
    range of a corpus that keeps growing. Documents must be in strictly
    increasing id order; ids and token ids are global, exactly as in
    [Corpus.sub] shards, so per-range indexes agree with a monolithic
    [build]. [skip id] filters documents out (tombstone compaction).
    Uses a sparse layout keyed on the tokens that actually occur, so
    cost is O(tokens in [docs]) rather than O(global vocabulary) —
    [vocabulary_size] therefore reports distinct {e indexed} tokens for
    such an index, not the corpus vocabulary size. *)

type stats = {
  n_tokens : int;    (** distinct indexed tokens *)
  n_postings : int;  (** (token, document) pairs across all lists *)
  n_positions : int; (** total stored occurrence locations *)
}

type provider = {
  pr_postings : int -> Posting_list.t;
      (** full materialization of one term's list ([Posting_list.empty]
          when the token has none) *)
  pr_cursor : int -> Posting_list.cursor;
      (** streaming traversal of one term's list; must visit the same
          postings as [pr_postings], in increasing doc id *)
  pr_positions : token:int -> doc_id:int -> int array;
  pr_document_frequency : int -> int;
  pr_n_tokens : int;            (** distinct indexed tokens *)
  pr_stats : unit -> stats;
  pr_iter : ((int -> Posting_list.t -> unit) -> unit) option;
      (** enumerate every (token, list) pair with postings — arbitrary
          order, each token once — or [None] when the engine cannot
          afford enumeration (fully on-disk layouts); [concat_adjacent]
          then declines *)
}
(** The plug-in surface for external storage engines: an index whose
    postings live outside the OCaml heap (e.g. the block-compressed
    mmap segments of [Pj_ondisk]) implements these and the rest of the
    system — DAAT searcher, sharding, serving — runs unchanged. *)

val of_provider : Corpus.t -> provider -> t
(** An index whose reads are delegated to [provider]. The corpus
    supplies the vocabulary (word/token mapping); it may itself be a
    paged view served from the same storage engine. *)

val postings : t -> int -> Posting_list.t
(** Posting list of a token id ([Posting_list.empty] when absent).
    On a provider-backed index this materializes the whole list —
    prefer [cursor] on hot paths. *)

val postings_of_word : t -> string -> Posting_list.t
(** Posting list of a raw token (lookup through the corpus vocabulary). *)

val cursor : t -> int -> Posting_list.cursor
(** Streaming cursor over a token's postings — the DAAT entry point.
    In-memory stores answer with an array cursor; provider-backed
    stores stream straight off their own layout (an exhausted cursor
    when the token is absent). *)

val cursor_of_word : t -> string -> Posting_list.cursor

val positions_in : t -> token:int -> doc_id:int -> int array
(** Occurrence locations of a token in one document (empty when absent). *)

val document_frequency : t -> int -> int

val document_frequency_of_word : t -> string -> int
(** [document_frequency] through the vocabulary, without materializing
    the posting list (provider-backed indexes answer from their
    dictionary). *)

val vocabulary_size : t -> int
(** Number of distinct indexed tokens. *)

val stats : t -> stats
(** Size accounting over every posting list — the denominator for
    per-query traversal-cost reporting (a set-based candidate pass
    touches all [n_postings] of the query's terms; the DAAT cursor pass
    is sublinear in it). O(vocabulary) per call. *)

val corpus : t -> Corpus.t

val concat_adjacent : ?skip:(int -> bool) -> t -> t -> t option
(** Merge two indexes over adjacent, disjoint doc-id ranges — every
    document of the first strictly below every document of the second,
    over the same corpus — by per-term posting-list splicing:
    O(surviving postings) array appends, position arrays shared with
    the sources, instead of [build_docs]'s O(tokens) re-accumulation.
    [skip id] drops that document's postings (tombstone purge). [None]
    when either side cannot enumerate its terms (a provider without
    [pr_iter]); the caller falls back to [build_docs]. The result is
    byte-equivalent to [build_docs] over the union range. *)
