(** Positional inverted index over a corpus.

    Maps token ids to posting lists. The paper assumes match lists can
    be "derived from precomputed inverted lists" (Section II); this is
    that precomputation. Match lists for a document are obtained by
    looking up the postings of every token related to a query term and
    merging them with per-token scores (see [Pj_matching.Match_builder]). *)

type t

val build : Corpus.t -> t
(** Index every document of the corpus (dense layout: one posting-list
    slot per vocabulary token). *)

val build_docs : ?skip:(int -> bool) -> Corpus.t -> Pj_text.Document.t array -> t
(** Index exactly the given documents of [corpus] — the substrate for
    live memtables and sealed segments, which cover a contiguous doc-id
    range of a corpus that keeps growing. Documents must be in strictly
    increasing id order; ids and token ids are global, exactly as in
    [Corpus.sub] shards, so per-range indexes agree with a monolithic
    [build]. [skip id] filters documents out (tombstone compaction).
    Uses a sparse layout keyed on the tokens that actually occur, so
    cost is O(tokens in [docs]) rather than O(global vocabulary) —
    [vocabulary_size] therefore reports distinct {e indexed} tokens for
    such an index, not the corpus vocabulary size. *)

val postings : t -> int -> Posting_list.t
(** Posting list of a token id ([Posting_list.empty] when absent). *)

val postings_of_word : t -> string -> Posting_list.t
(** Posting list of a raw token (lookup through the corpus vocabulary). *)

val positions_in : t -> token:int -> doc_id:int -> int array
(** Occurrence locations of a token in one document (empty when absent). *)

val document_frequency : t -> int -> int

val vocabulary_size : t -> int
(** Number of distinct indexed tokens. *)

type stats = {
  n_tokens : int;    (** distinct indexed tokens *)
  n_postings : int;  (** (token, document) pairs across all lists *)
  n_positions : int; (** total stored occurrence locations *)
}

val stats : t -> stats
(** Size accounting over every posting list — the denominator for
    per-query traversal-cost reporting (a set-based candidate pass
    touches all [n_postings] of the query's terms; the DAAT cursor pass
    is sublinear in it). O(vocabulary) per call. *)

val corpus : t -> Corpus.t
