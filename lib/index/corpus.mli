(** Document collections sharing one vocabulary. *)

type t

val create : unit -> t

val of_paged :
  vocab:Pj_text.Vocab.t ->
  count:int ->
  total_tokens:int ->
  (int -> Pj_text.Document.t) ->
  t
(** A read-only corpus whose documents are fetched on demand by
    absolute id — the substrate for mmap-backed storage, where document
    token arrays decode straight off the page cache and the heap holds
    only the vocabulary. The fetch function must return a document
    whose [id] equals its argument; it is called anew on every access
    (no memoization), so it should be cheap. [total_tokens] is the
    precomputed sum of document lengths (kept out of band so
    [average_length] needs no full scan). [add_text]/[add_tokens]
    raise [Invalid_argument]. *)

val vocab : t -> Pj_text.Vocab.t

val add_text : t -> string -> Pj_text.Document.t
(** Tokenize, intern and store a document; returns it with its assigned
    id (dense, starting at 0). *)

val add_tokens : t -> string array -> Pj_text.Document.t

val sub : t -> pos:int -> len:int -> t
(** A view of documents [pos, pos + len) sharing the parent's
    vocabulary object and keeping every document's original id — the
    substrate for doc-id-range index shards, whose postings must carry
    global ids and whose token ids must agree with the full corpus.
    In the view, [document v i] is the [i]-th *held* document, so its
    [id] is [pos + i], not [i]. Views are read-only: [add_text] and
    [add_tokens] on a view raise [Invalid_argument], because an added
    document would get a view-local id that violates the [id = pos + i]
    invariant while still interning into the shared vocabulary.
    Raises [Invalid_argument] when the range is out of bounds. *)

val size : t -> int
val document : t -> int -> Pj_text.Document.t
val iter : (Pj_text.Document.t -> unit) -> t -> unit
val fold : ('acc -> Pj_text.Document.t -> 'acc) -> 'acc -> t -> 'acc

val docs_slice : t -> pos:int -> len:int -> Pj_text.Document.t array
(** The documents [pos, pos + len) as a fresh array (ids untouched).
    Unlike [sub] this copies nothing but the array spine, so it is the
    cheap way for a live-index merger to capture a stable slice under
    the writer lock before building outside it. Raises
    [Invalid_argument] when the range is out of bounds. *)

val total_tokens : t -> int
val average_length : t -> float
