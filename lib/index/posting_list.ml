(* --- block sidecar ------------------------------------------------------ *)

(* Per-block skip metadata for in-memory lists, mirroring the on-disk
   skip entries of [Pj_ondisk.Codec]: the last document id and a
   round-up-quantized maximum posting impact for every [block_size]-run
   of postings. Built lazily (or at freeze/seal time via [seal]) and
   cached on the list, so repeated cursors share one sidecar. *)
type blocks = {
  b_last : int array;
  b_qmax : float array;
}

type t = {
  posts : Posting.t array; (* sorted by doc_id, unique doc_ids *)
  blocks : blocks option Atomic.t;
      (* Lazily published; the build is deterministic, so a racy
         double-build from sibling domains installs equal values. *)
}

let block_size = 128

(* Impact of one posting: the term-frequency saturation tf/(tf+1),
   strictly increasing in tf and < 1. This is the score the on-disk
   format quantizes per posting and maximizes per block; the in-memory
   sidecar applies the same round-up quantization, so both layouts
   report identical (and never under-reporting) block ceilings. *)
let impact_ceiling = 1.

let impact ~tf = float_of_int tf /. float_of_int (tf + 1)

(* Round-up 8-bit quantization, as [Pj_ondisk.Codec.quantize_up]
   followed by dequantization: never below [v], so a block bound built
   from it never under-reports the true maximum impact. *)
let quantized_ceiling v =
  let q = Float.ceil (v *. 255.) in
  (if q < 0. then 0. else if q > 255. then 255. else q) /. 255.

let build_blocks posts =
  let df = Array.length posts in
  let nb = (df + block_size - 1) / block_size in
  let b_last = Array.make nb 0 and b_qmax = Array.make nb 0. in
  for b = 0 to nb - 1 do
    let lo = b * block_size and hi = Stdlib.min df ((b + 1) * block_size) in
    b_last.(b) <- posts.(hi - 1).Posting.doc_id;
    let q = ref 0. in
    for i = lo to hi - 1 do
      let tf = Array.length posts.(i).Posting.positions in
      let v = quantized_ceiling (impact ~tf) in
      if v > !q then q := v
    done;
    b_qmax.(b) <- !q
  done;
  { b_last; b_qmax }

let force_blocks t =
  match Atomic.get t.blocks with
  | Some b -> b
  | None ->
      let b = build_blocks t.posts in
      Atomic.set t.blocks (Some b);
      b

let seal t = ignore (force_blocks t)

let wrap posts = { posts; blocks = Atomic.make None }

let empty : t = wrap [||]

let merge_positions a b =
  let merged = Array.append a b in
  Array.sort compare merged;
  (* Keep duplicate positions only once. *)
  let n = Array.length merged in
  if n = 0 then merged
  else begin
    let out = Pj_util.Vec.create () in
    Pj_util.Vec.push out merged.(0);
    for i = 1 to n - 1 do
      if merged.(i) <> merged.(i - 1) then Pj_util.Vec.push out merged.(i)
    done;
    Pj_util.Vec.to_array out
  end

let of_postings postings =
  let sorted =
    List.sort (fun a b -> compare a.Posting.doc_id b.Posting.doc_id) postings
  in
  let out = Pj_util.Vec.create () in
  List.iter
    (fun p ->
      if
        (not (Pj_util.Vec.is_empty out))
        && (Pj_util.Vec.last out).Posting.doc_id = p.Posting.doc_id
      then begin
        let last = Pj_util.Vec.pop out in
        Pj_util.Vec.push out
          (Posting.make ~doc_id:p.Posting.doc_id
             ~positions:(merge_positions last.Posting.positions p.Posting.positions))
      end
      else Pj_util.Vec.push out p)
    sorted;
  wrap (Pj_util.Vec.to_array out)

let document_frequency t = Array.length t.posts

let collection_frequency t =
  Array.fold_left (fun acc p -> acc + Posting.term_frequency p) 0 t.posts

let find t doc_id =
  let a = t.posts in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = a.(mid).Posting.doc_id in
    if d = doc_id then found := Some a.(mid)
    else if d < doc_id then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter f t = Array.iter f t.posts
let fold f acc t = Array.fold_left f acc t.posts
let doc_ids t = Array.map (fun p -> p.Posting.doc_id) t.posts

let union a b : t =
  of_postings (Array.to_list a.posts @ Array.to_list b.posts)

let of_sorted_array (a : Posting.t array) : t =
  for i = 1 to Array.length a - 1 do
    if a.(i - 1).Posting.doc_id >= a.(i).Posting.doc_id then
      invalid_arg "Posting_list.of_sorted_array: ids not strictly increasing"
  done;
  wrap a

let reject f t : t =
  if Array.exists (fun p -> f p.Posting.doc_id) t.posts then
    wrap
      (Array.of_list
         (List.filter (fun p -> not (f p.Posting.doc_id)) (Array.to_list t.posts)))
  else t

let append_disjoint a b : t =
  let na = Array.length a.posts and nb = Array.length b.posts in
  if na = 0 then b
  else if nb = 0 then a
  else if a.posts.(na - 1).Posting.doc_id >= b.posts.(0).Posting.doc_id then
    invalid_arg "Posting_list.append_disjoint: doc-id ranges overlap"
  else begin
    let posts = Array.append a.posts b.posts in
    (* Block boundaries survive the splice exactly when [a] fills whole
       blocks; then the sidecars concatenate instead of being recomputed
       over the merged postings — the common case for segment merges,
       whose left inputs grow in multiples of the flush size. *)
    let blocks =
      if na mod block_size = 0 then
        match (Atomic.get a.blocks, Atomic.get b.blocks) with
        | Some ba, Some bb ->
            Some
              {
                b_last = Array.append ba.b_last bb.b_last;
                b_qmax = Array.append ba.b_qmax bb.b_qmax;
              }
        | _ -> None
      else None
    in
    { posts; blocks = Atomic.make blocks }
  end

let to_list t = Array.to_list t.posts

(* --- cursors ----------------------------------------------------------- *)

(* Two cursor implementations behind one dispatch: the in-memory array
   walk, and an open [custom] record so storage engines (e.g. the
   block-compressed mmap reader in [Pj_ondisk]) can stream postings
   straight off their own layout without materializing an array. *)

(* [hi] bounds the walk to a prefix of [list]: entries at index >= hi
   are invisible. [cursor] sets hi to the full length; [cursor_prefix]
   lets a growing array (the live memtable's per-term postings) hand
   out cursors over just its committed, snapshot-visible prefix while
   a writer keeps appending beyond it.

   [sidecar] is the owning list when the cursor covers it whole — its
   cached block metadata then answers [block_max_score]. A prefix
   cursor has no owner (the underlying array is still growing), so it
   computes the current block's ceiling on demand and memoizes it in
   [cb]/[cb_qmax]: one O(block_size) scan per block entered, amortized
   O(1) per posting. *)
type mem_cursor = {
  list : Posting.t array;
  hi : int;
  mutable pos : int;
  sidecar : t option;
  mutable cb : int; (* block index of the cached ceiling; -1 = none *)
  mutable cb_qmax : float;
}

type custom = {
  cu_current : unit -> Posting.t option;
  cu_current_doc : unit -> int;
  cu_next : unit -> unit;
  cu_seek : int -> unit;
  cu_block_max_score : unit -> float;
  cu_block_last_doc : unit -> int;
}

type cursor =
  | Mem of mem_cursor
  | Custom of custom

let cursor t =
  Mem
    {
      list = t.posts;
      hi = Array.length t.posts;
      pos = 0;
      sidecar = Some t;
      cb = -1;
      cb_qmax = 0.;
    }

let cursor_prefix a ~len =
  if len < 0 || len > Array.length a then
    invalid_arg "Posting_list.cursor_prefix: len out of range";
  Mem { list = a; hi = len; pos = 0; sidecar = None; cb = -1; cb_qmax = 0. }

let custom ~current ~current_doc ~next ~seek ~block_max_score ~block_last_doc =
  Custom
    {
      cu_current = current;
      cu_current_doc = current_doc;
      cu_next = next;
      cu_seek = seek;
      cu_block_max_score = block_max_score;
      cu_block_last_doc = block_last_doc;
    }

let mem_current c = if c.pos >= c.hi then None else Some c.list.(c.pos)

let mem_current_doc c =
  if c.pos >= c.hi then -1 else c.list.(c.pos).Posting.doc_id

let mem_next c = if c.pos < c.hi then c.pos <- c.pos + 1

(* Galloping (exponential) advance: double a probe offset until the
   posting there reaches the target, then binary-search the bracketed
   range. O(log gap) comparisons whatever the jump size, so a seek
   driven by a sparse list across a dense one never degrades to a
   linear scan of the dense list. *)
let mem_seek c target =
  let n = c.hi in
  let doc i = c.list.(i).Posting.doc_id in
  if c.pos < n && doc c.pos < target then begin
    let bound = ref 1 in
    while c.pos + !bound < n && doc (c.pos + !bound) < target do
      bound := !bound * 2
    done;
    (* Invariant: doc (pos + bound/2) < target <= doc (pos + bound)
       when in range; binary search in (pos + bound/2, pos + bound]. *)
    let lo = ref (c.pos + (!bound / 2) + 1)
    and hi = ref (min (c.pos + !bound) (n - 1)) in
    if c.pos + !bound >= n && doc (n - 1) < target then c.pos <- n
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if doc mid < target then lo := mid + 1 else hi := mid
      done;
      c.pos <- !lo
    end
  end

let current = function Mem c -> mem_current c | Custom c -> c.cu_current ()

let current_doc = function
  | Mem c -> mem_current_doc c
  | Custom c -> c.cu_current_doc ()

let next = function Mem c -> mem_next c | Custom c -> c.cu_next ()

let seek c target =
  match c with Mem c -> mem_seek c target | Custom c -> c.cu_seek target

let mem_block_qmax c =
  let b = c.pos / block_size in
  if c.cb = b then c.cb_qmax
  else begin
    let q =
      match c.sidecar with
      | Some t -> (force_blocks t).b_qmax.(b)
      | None ->
          let lo = b * block_size
          and hi = Stdlib.min c.hi ((b + 1) * block_size) in
          let q = ref 0. in
          for i = lo to hi - 1 do
            let tf = Array.length c.list.(i).Posting.positions in
            let v = quantized_ceiling (impact ~tf) in
            if v > !q then q := v
          done;
          !q
    in
    c.cb <- b;
    c.cb_qmax <- q;
    q
  end

let block_max_score = function
  | Mem c -> if c.pos >= c.hi then 0. else mem_block_qmax c
  | Custom c -> c.cu_block_max_score ()

(* Last visible document of the cursor's current [block_size]-run —
   index arithmetic, clamped to the visible prefix, so a prefix cursor
   never reports past its snapshot. *)
let block_last_doc = function
  | Mem c ->
      if c.pos >= c.hi then -1
      else
        c.list.(Stdlib.min c.hi (((c.pos / block_size) + 1) * block_size) - 1)
          .Posting.doc_id
  | Custom c -> c.cu_block_last_doc ()
