type t = Posting.t array (* sorted by doc_id, unique doc_ids *)

let empty : t = [||]

let merge_positions a b =
  let merged = Array.append a b in
  Array.sort compare merged;
  (* Keep duplicate positions only once. *)
  let n = Array.length merged in
  if n = 0 then merged
  else begin
    let out = Pj_util.Vec.create () in
    Pj_util.Vec.push out merged.(0);
    for i = 1 to n - 1 do
      if merged.(i) <> merged.(i - 1) then Pj_util.Vec.push out merged.(i)
    done;
    Pj_util.Vec.to_array out
  end

let of_postings postings =
  let sorted =
    List.sort (fun a b -> compare a.Posting.doc_id b.Posting.doc_id) postings
  in
  let out = Pj_util.Vec.create () in
  List.iter
    (fun p ->
      if
        (not (Pj_util.Vec.is_empty out))
        && (Pj_util.Vec.last out).Posting.doc_id = p.Posting.doc_id
      then begin
        let last = Pj_util.Vec.pop out in
        Pj_util.Vec.push out
          (Posting.make ~doc_id:p.Posting.doc_id
             ~positions:(merge_positions last.Posting.positions p.Posting.positions))
      end
      else Pj_util.Vec.push out p)
    sorted;
  Pj_util.Vec.to_array out

let document_frequency (t : t) = Array.length t

let collection_frequency (t : t) =
  Array.fold_left (fun acc p -> acc + Posting.term_frequency p) 0 t

let find (t : t) doc_id =
  let lo = ref 0 and hi = ref (Array.length t - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = t.(mid).Posting.doc_id in
    if d = doc_id then found := Some t.(mid)
    else if d < doc_id then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter f (t : t) = Array.iter f t
let fold f acc (t : t) = Array.fold_left f acc t
let doc_ids (t : t) = Array.map (fun p -> p.Posting.doc_id) t

let union (a : t) (b : t) : t =
  of_postings (Array.to_list a @ Array.to_list b)

let of_sorted_array (a : Posting.t array) : t =
  for i = 1 to Array.length a - 1 do
    if a.(i - 1).Posting.doc_id >= a.(i).Posting.doc_id then
      invalid_arg "Posting_list.of_sorted_array: ids not strictly increasing"
  done;
  a

let reject f (t : t) : t =
  if Array.exists (fun p -> f p.Posting.doc_id) t then
    Array.of_list
      (List.filter (fun p -> not (f p.Posting.doc_id)) (Array.to_list t))
  else t

let append_disjoint (a : t) (b : t) : t =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else if a.(na - 1).Posting.doc_id >= b.(0).Posting.doc_id then
    invalid_arg "Posting_list.append_disjoint: doc-id ranges overlap"
  else Array.append a b

let to_list (t : t) = Array.to_list t

(* --- cursors ----------------------------------------------------------- *)

(* Two cursor implementations behind one dispatch: the in-memory array
   walk, and an open [custom] record so storage engines (e.g. the
   block-compressed mmap reader in [Pj_ondisk]) can stream postings
   straight off their own layout without materializing an array. *)

(* [hi] bounds the walk to a prefix of [list]: entries at index >= hi
   are invisible. [cursor] sets hi to the full length; [cursor_prefix]
   lets a growing array (the live memtable's per-term postings) hand
   out cursors over just its committed, snapshot-visible prefix while
   a writer keeps appending beyond it. *)
type mem_cursor = {
  list : t;
  hi : int;
  mutable pos : int;
}

type custom = {
  cu_current : unit -> Posting.t option;
  cu_current_doc : unit -> int;
  cu_next : unit -> unit;
  cu_seek : int -> unit;
  cu_block_max_score : unit -> float;
  cu_block_last_doc : unit -> int;
}

type cursor =
  | Mem of mem_cursor
  | Custom of custom

let cursor (t : t) = Mem { list = t; hi = Array.length t; pos = 0 }

let cursor_prefix a ~len =
  if len < 0 || len > Array.length a then
    invalid_arg "Posting_list.cursor_prefix: len out of range";
  Mem { list = a; hi = len; pos = 0 }

let custom ~current ~current_doc ~next ~seek ~block_max_score ~block_last_doc =
  Custom
    {
      cu_current = current;
      cu_current_doc = current_doc;
      cu_next = next;
      cu_seek = seek;
      cu_block_max_score = block_max_score;
      cu_block_last_doc = block_last_doc;
    }

let mem_current c = if c.pos >= c.hi then None else Some c.list.(c.pos)

let mem_current_doc c =
  if c.pos >= c.hi then -1 else c.list.(c.pos).Posting.doc_id

let mem_next c = if c.pos < c.hi then c.pos <- c.pos + 1

(* Galloping (exponential) advance: double a probe offset until the
   posting there reaches the target, then binary-search the bracketed
   range. O(log gap) comparisons whatever the jump size, so a seek
   driven by a sparse list across a dense one never degrades to a
   linear scan of the dense list. *)
let mem_seek c target =
  let n = c.hi in
  let doc i = c.list.(i).Posting.doc_id in
  if c.pos < n && doc c.pos < target then begin
    let bound = ref 1 in
    while c.pos + !bound < n && doc (c.pos + !bound) < target do
      bound := !bound * 2
    done;
    (* Invariant: doc (pos + bound/2) < target <= doc (pos + bound)
       when in range; binary search in (pos + bound/2, pos + bound]. *)
    let lo = ref (c.pos + (!bound / 2) + 1)
    and hi = ref (min (c.pos + !bound) (n - 1)) in
    if c.pos + !bound >= n && doc (n - 1) < target then c.pos <- n
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if doc mid < target then lo := mid + 1 else hi := mid
      done;
      c.pos <- !lo
    end
  end

let current = function Mem c -> mem_current c | Custom c -> c.cu_current ()

let current_doc = function
  | Mem c -> mem_current_doc c
  | Custom c -> c.cu_current_doc ()

let next = function Mem c -> mem_next c | Custom c -> c.cu_next ()

let seek c target =
  match c with Mem c -> mem_seek c target | Custom c -> c.cu_seek target

(* Impact of one posting: the term-frequency saturation tf/(tf+1),
   strictly increasing in tf and < 1. This is the score the on-disk
   format quantizes per posting and maximizes per block; an in-memory
   list reports the ceiling, which is a valid (if loose) bound. *)
let impact_ceiling = 1.

let impact ~tf = float_of_int tf /. float_of_int (tf + 1)

let block_max_score = function
  | Mem c -> if c.pos >= c.hi then 0. else impact_ceiling
  | Custom c -> c.cu_block_max_score ()

let block_last_doc = function
  | Mem c -> if c.pos >= c.hi then -1 else c.list.(c.hi - 1).Posting.doc_id
  | Custom c -> c.cu_block_last_doc ()
