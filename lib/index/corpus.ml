(* Two document stores behind one interface:

   - [Mem]: the growable in-memory vector every writable corpus uses.
   - [Paged]: documents fetched on demand from an external store (the
     mmap-backed v4 format of [Pj_ondisk]) — the corpus then costs
     O(vocabulary) heap however many documents the file holds, and a
     fetched document lives only as long as its caller keeps it. *)

type paged = {
  count : int;          (* documents held by this (view of the) corpus *)
  first : int;          (* absolute id of the first held document *)
  fetch : int -> Pj_text.Document.t; (* by absolute document id *)
  paged_tokens : int;   (* total tokens across the held documents *)
}

type store =
  | Mem of Pj_text.Document.t Pj_util.Vec.t
  | Paged of paged

type t = {
  vocab : Pj_text.Vocab.t;
  store : store;
  view : bool;
}

let create () =
  {
    vocab = Pj_text.Vocab.create ();
    store = Mem (Pj_util.Vec.create ());
    view = false;
  }

let of_paged ~vocab ~count ~total_tokens fetch =
  if count < 0 then invalid_arg "Corpus.of_paged: negative count";
  {
    vocab;
    store = Paged { count; first = 0; fetch; paged_tokens = total_tokens };
    view = true;
  }

let vocab t = t.vocab

let check_writable t fn =
  if t.view then
    invalid_arg (fn ^ ": cannot add documents to a read-only corpus view")

let mem_docs t fn =
  match t.store with
  | Mem docs -> docs
  | Paged _ -> invalid_arg (fn ^ ": paged corpus")

let add_tokens t tokens =
  check_writable t "Corpus.add_tokens";
  let docs = mem_docs t "Corpus.add_tokens" in
  let id = Pj_util.Vec.length docs in
  let d = Pj_text.Document.of_tokens t.vocab ~id tokens in
  Pj_util.Vec.push docs d;
  d

let add_text t text =
  check_writable t "Corpus.add_text";
  add_tokens t (Pj_text.Tokenizer.tokenize_array text)

let size t =
  match t.store with
  | Mem docs -> Pj_util.Vec.length docs
  | Paged p -> p.count

let document t i =
  match t.store with
  | Mem docs -> Pj_util.Vec.get docs i
  | Paged p ->
      if i < 0 || i >= p.count then invalid_arg "Corpus.document";
      p.fetch (p.first + i)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > size t then invalid_arg "Corpus.sub";
  match t.store with
  | Mem docs ->
      let view = Pj_util.Vec.create () in
      for i = pos to pos + len - 1 do
        Pj_util.Vec.push view (Pj_util.Vec.get docs i)
      done;
      { vocab = t.vocab; store = Mem view; view = true }
  | Paged p ->
      (* Token accounting of a strict sub-range is unknown without a
         scan; count lazily in [total_tokens] (views are rare and the
         full-range case keeps the stored total). *)
      let paged_tokens = if len = p.count then p.paged_tokens else -1 in
      {
        vocab = t.vocab;
        store = Paged { count = len; first = p.first + pos; fetch = p.fetch; paged_tokens };
        view = true;
      }

let iter f t =
  match t.store with
  | Mem docs -> Pj_util.Vec.iter f docs
  | Paged p ->
      for i = 0 to p.count - 1 do
        f (p.fetch (p.first + i))
      done

let fold f acc t =
  match t.store with
  | Mem docs -> Pj_util.Vec.fold_left f acc docs
  | Paged p ->
      let acc = ref acc in
      for i = 0 to p.count - 1 do
        acc := f !acc (p.fetch (p.first + i))
      done;
      !acc

let docs_slice t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > size t then
    invalid_arg "Corpus.docs_slice";
  Array.init len (fun i -> document t (pos + i))

let total_tokens t =
  match t.store with
  | Paged p when p.paged_tokens >= 0 -> p.paged_tokens
  | Mem _ | Paged _ ->
      fold (fun acc d -> acc + Pj_text.Document.length d) 0 t

let average_length t =
  if size t = 0 then 0.
  else float_of_int (total_tokens t) /. float_of_int (size t)
