type t = {
  vocab : Pj_text.Vocab.t;
  docs : Pj_text.Document.t Pj_util.Vec.t;
  view : bool;
}

let create () =
  {
    vocab = Pj_text.Vocab.create ();
    docs = Pj_util.Vec.create ();
    view = false;
  }

let vocab t = t.vocab

let check_writable t fn =
  if t.view then
    invalid_arg (fn ^ ": cannot add documents to a Corpus.sub view")

let add_tokens t tokens =
  check_writable t "Corpus.add_tokens";
  let id = Pj_util.Vec.length t.docs in
  let d = Pj_text.Document.of_tokens t.vocab ~id tokens in
  Pj_util.Vec.push t.docs d;
  d

let add_text t text =
  check_writable t "Corpus.add_text";
  add_tokens t (Pj_text.Tokenizer.tokenize_array text)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Pj_util.Vec.length t.docs then
    invalid_arg "Corpus.sub";
  let docs = Pj_util.Vec.create () in
  for i = pos to pos + len - 1 do
    Pj_util.Vec.push docs (Pj_util.Vec.get t.docs i)
  done;
  { vocab = t.vocab; docs; view = true }

let size t = Pj_util.Vec.length t.docs
let document t i = Pj_util.Vec.get t.docs i
let iter f t = Pj_util.Vec.iter f t.docs
let fold f acc t = Pj_util.Vec.fold_left f acc t.docs

let docs_slice t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Pj_util.Vec.length t.docs then
    invalid_arg "Corpus.docs_slice";
  Array.init len (fun i -> Pj_util.Vec.get t.docs (pos + i))

let total_tokens t =
  fold (fun acc d -> acc + Pj_text.Document.length d) 0 t

let average_length t =
  if size t = 0 then 0.
  else float_of_int (total_tokens t) /. float_of_int (size t)
