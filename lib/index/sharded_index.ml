type t = {
  corpus : Corpus.t;
  shards : Inverted_index.t array;
  ranges : (int * int) array; (* (first doc id, doc count) per shard *)
}

(* Contiguous doc-id ranges, sized within one of each other — the same
   balancing rule as [Pj_util.Parallel.map_array]'s chunking, so shard
   work is even when documents are. *)
let balanced_counts ~shards n =
  let base = n / shards and extra = n mod shards in
  Array.init shards (fun i -> base + if i < extra then 1 else 0)

let build_with_counts corpus counts =
  let n = Corpus.size corpus in
  let total = Array.fold_left ( + ) 0 counts in
  if Array.length counts = 0 then invalid_arg "Sharded_index: no shards";
  if total <> n then
    invalid_arg
      (Printf.sprintf "Sharded_index: shard layout covers %d of %d documents"
         total n);
  let ranges = Array.make (Array.length counts) (0, 0) in
  let start = ref 0 in
  Array.iteri
    (fun i len ->
      ranges.(i) <- (!start, len);
      start := !start + len)
    counts;
  let shards =
    Array.map
      (fun (pos, len) -> Inverted_index.build (Corpus.sub corpus ~pos ~len))
      ranges
  in
  { corpus; shards; ranges }

let build ~shards corpus =
  let shards = Stdlib.max 1 shards in
  build_with_counts corpus (balanced_counts ~shards (Corpus.size corpus))

(* Assemble from already-constructed per-range indexes — the storage
   engine's entry point, where each shard is a provider-backed index
   over a doc-id range of one mmap file and nothing is rebuilt. *)
let of_prebuilt corpus ~counts ~shard_of =
  let n = Corpus.size corpus in
  if Array.length counts = 0 then invalid_arg "Sharded_index: no shards";
  let total = Array.fold_left ( + ) 0 counts in
  if total <> n then
    invalid_arg
      (Printf.sprintf "Sharded_index: shard layout covers %d of %d documents"
         total n);
  let ranges = Array.make (Array.length counts) (0, 0) in
  let start = ref 0 in
  Array.iteri
    (fun i len ->
      ranges.(i) <- (!start, len);
      start := !start + len)
    counts;
  let shards = Array.mapi (fun i (pos, len) -> shard_of i ~pos ~len) ranges in
  { corpus; shards; ranges }

let n_shards t = Array.length t.shards
let shard t i = t.shards.(i)
let range t i = t.ranges.(i)
let corpus t = t.corpus
let counts t = Array.map snd t.ranges

let shard_of_doc t doc_id =
  let rec go i =
    if i >= Array.length t.ranges then None
    else
      let start, len = t.ranges.(i) in
      if doc_id >= start && doc_id < start + len then Some i else go (i + 1)
  in
  if doc_id < 0 then None else go 0

let stats t =
  Array.fold_left
    (fun acc idx ->
      let s = Inverted_index.stats idx in
      {
        Inverted_index.n_tokens = Stdlib.max acc.Inverted_index.n_tokens s.Inverted_index.n_tokens;
        n_postings = acc.Inverted_index.n_postings + s.Inverted_index.n_postings;
        n_positions = acc.Inverted_index.n_positions + s.Inverted_index.n_positions;
      })
    { Inverted_index.n_tokens = 0; n_postings = 0; n_positions = 0 }
    t.shards
