(** Scatter-gather top-k search over a sharded index.

    One query fans out across the shards of a
    {!Pj_index.Sharded_index.t}, each shard running the full DAAT +
    max-score search ({!Searcher.search_fragment}) on
    {!Pj_util.Parallel} domains. The fragments cooperate through one
    [Atomic.t] threshold — the best known lower bound on the global
    k-th score, in the spirit of Fagin-style threshold algorithms — so
    every shard prunes against the *global* weakest held hit, not just
    its own. Per-shard top-k lists then merge by (score desc, doc id
    asc) into a final top-k that is byte-identical to
    {!Searcher.search} over the monolithic index: same hits, same
    scores, same order, same smaller-doc-id tie-breaks (enforced by
    [test/engine/test_shard_oracle.ml] across all three scoring
    families).

    Why the merge is exact: shards share the corpus vocabulary and
    keep global doc ids ({!Pj_index.Corpus.sub}), so each candidate's
    match-list problem — hence its score and matchset — is computed
    from the same data the monolithic searcher sees; the shared
    threshold only discards documents *strictly* below a proven lower
    bound on the global k-th score; and a fragment's local heap only
    evicts documents beaten by k same-shard documents that also beat
    them globally. *)

type t

val create : Pj_index.Sharded_index.t -> t

val n_shards : t -> int
val sharded_index : t -> Pj_index.Sharded_index.t

val search :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  Searcher.hit list
(** Same contract (and same result, bit for bit) as
    {!Searcher.search} on the unsharded index. *)

val search_within :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  deadline:float ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  (Searcher.hit list, [ `Timeout ]) result
(** Same contract as {!Searcher.search_within}; the deadline applies to
    every fragment, and any fragment expiring times the query out
    (a partial scatter is as unsound as a partial scan). *)
