(** Scatter-gather top-k search over a sharded index.

    One query fans out across the shards of a
    {!Pj_index.Sharded_index.t}, each shard running the full DAAT +
    max-score search ({!Searcher.search_fragment}) on
    {!Pj_util.Parallel} domains. The fragments cooperate through one
    [Atomic.t] threshold — the best known lower bound on the global
    k-th score, in the spirit of Fagin-style threshold algorithms — so
    every shard prunes against the *global* weakest held hit, not just
    its own. Per-shard top-k lists then merge by (score desc, doc id
    asc) into a final top-k that is byte-identical to
    {!Searcher.search} over the monolithic index: same hits, same
    scores, same order, same smaller-doc-id tie-breaks (enforced by
    [test/engine/test_shard_oracle.ml] across all three scoring
    families).

    Why the merge is exact: shards share the corpus vocabulary and
    keep global doc ids ({!Pj_index.Corpus.sub}), so each candidate's
    match-list problem — hence its score and matchset — is computed
    from the same data the monolithic searcher sees; the shared
    threshold only discards documents *strictly* below a proven lower
    bound on the global k-th score; and a fragment's local heap only
    evicts documents beaten by k same-shard documents that also beat
    them globally. *)

type t

val create : Pj_index.Sharded_index.t -> t

val n_shards : t -> int
val sharded_index : t -> Pj_index.Sharded_index.t

val search :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  ?blockmax:bool ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  Searcher.hit list
(** Same contract (and same result, bit for bit) as
    {!Searcher.search} on the unsharded index. *)

val search_within :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  ?blockmax:bool ->
  deadline:float ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  (Searcher.hit list, [ `Timeout ]) result
(** Same contract as {!Searcher.search_within}; the deadline applies to
    every fragment, and any fragment expiring times the query out
    (a partial scatter is as unsound as a partial scan). *)

type degraded = {
  hits : Searcher.hit list;  (** merged top-k of the surviving shards *)
  failed : int list;
      (** shard indexes that raised or blew the deadline, ascending;
          [[]] means the result is complete and byte-identical to
          {!search_within}'s [Ok] *)
}

val search_degraded :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  ?blockmax:bool ->
  deadline:float ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  (degraded, [ `Timeout ]) result
(** Fault-isolated {!search_within}: a per-shard leg that raises (any
    exception, including an armed ["shard.<i>"]
    {!Pj_util.Failpoint}) or misses the deadline is dropped from the
    merge and reported in [failed] instead of propagating. When no
    shard fails the result is byte-identical to {!search_within} —
    the healthy path is the same fragments, shared prune threshold,
    and merge. [Error `Timeout] only when {e every} shard blew the
    deadline (the degenerate case indistinguishable from a monolithic
    timeout). When a shard fails before publishing into the shared
    threshold — e.g. at its entry failpoint — the surviving merge
    equals the monolithic top-k over exactly the surviving doc
    ranges; a shard dying mid-scan may have published a bound that
    pruned survivors, in which case hits remain genuine and exactly
    scored but the list may be shorter than that oracle. *)
