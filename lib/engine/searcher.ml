type t = { index : Pj_index.Inverted_index.t }

let create index = { index }
let index t = t.index

type hit = {
  doc_id : int;
  score : float;
  matchset : Pj_core.Matchset.t;
}

(* Document ids with at least one posting for some expansion form of the
   matcher. *)
let term_doc_ids t (m : Pj_matching.Matcher.t) =
  match m.Pj_matching.Matcher.expansions with
  | None ->
      invalid_arg
        (Printf.sprintf "Searcher: matcher %s has no finite expansions"
           m.Pj_matching.Matcher.name)
  | Some expansions ->
      let module Iset = Set.Make (Int) in
      List.fold_left
        (fun acc (form, _) ->
          let pl = Pj_index.Inverted_index.postings_of_word t.index form in
          Pj_index.Posting_list.fold
            (fun acc p -> Iset.add p.Pj_index.Posting.doc_id acc)
            acc pl)
        Iset.empty expansions

let candidates t (q : Pj_matching.Query.t) =
  let module Iset = Set.Make (Int) in
  let sets = Array.map (term_doc_ids t) q.Pj_matching.Query.matchers in
  let smallest =
    Array.fold_left
      (fun acc s -> if Iset.cardinal s < Iset.cardinal acc then s else acc)
      sets.(0) sets
  in
  let all =
    Iset.filter
      (fun doc -> Array.for_all (fun s -> Iset.mem doc s) sets)
      smallest
  in
  Array.of_list (Iset.elements all)

exception Expired

let search_impl ?deadline ~k ~dedup ~prune t scoring q =
  if k < 0 then invalid_arg "Searcher.search: negative k";
  (* Bounded result set: a min-heap of size k; the root is the weakest
     hit and is evicted when a better one arrives. *)
  let heap =
    Pj_util.Heap.create ~leq:(fun a b ->
        (* max-heap orders by leq; invert to keep the weakest on top.
           Prefer evicting larger doc ids on ties. *)
        match compare b.score a.score with
        | 0 -> a.doc_id <= b.doc_id
        | c -> c <= 0)
  in
  (* Once the heap is full, a candidate whose proximity-free upper bound
     cannot beat the weakest kept hit needs no solving. *)
  let worth_solving ~doc_id problem =
    (not prune)
    || Pj_util.Heap.length heap < k
    ||
    match Pj_util.Heap.peek heap with
    | None -> true
    | Some weakest ->
        let best_scores =
          Array.map
            (fun list ->
              Array.fold_left
                (fun acc m -> Float.max acc m.Pj_core.Match0.score)
                0. list)
            problem
        in
        let bound = Pj_core.Scoring.upper_bound scoring best_scores in
        (* A bound that only ties the weakest hit can still win the
           doc-id tiebreak, so keep solving in that case. *)
        bound > weakest.score
        || (bound = weakest.score && doc_id < weakest.doc_id)
  in
  (* The deadline is checked between candidates: each per-document solve
     is small (linear in the document's match lists), so the overrun
     past the deadline is bounded by one document's work. *)
  let check_deadline =
    match deadline with
    | None -> fun () -> ()
    | Some d -> fun () -> if Pj_util.Timing.now () > d then raise Expired
  in
  check_deadline ();
  Array.iter
    (fun doc_id ->
      check_deadline ();
      let problem =
        Pj_matching.Match_builder.from_index t.index ~doc_id q
      in
      if not (worth_solving ~doc_id problem) then ()
      else begin
      match Pj_core.Best_join.solve ~dedup scoring problem with
      | None -> ()
      | Some r ->
          let hit =
            {
              doc_id;
              score = r.Pj_core.Naive.score;
              matchset = r.Pj_core.Naive.matchset;
            }
          in
          if Pj_util.Heap.length heap < k then Pj_util.Heap.push heap hit
          else begin
            match Pj_util.Heap.peek heap with
            | Some weakest
              when hit.score > weakest.score
                   || (hit.score = weakest.score && hit.doc_id < weakest.doc_id)
              ->
                ignore (Pj_util.Heap.pop heap);
                Pj_util.Heap.push heap hit
            | Some _ | None -> ()
          end
      end)
    (candidates t q);
  (* Drain the heap weakest-first, then reverse into best-first order. *)
  let out = ref [] in
  let rec drain () =
    match Pj_util.Heap.pop heap with
    | Some h ->
        out := h :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  !out

let search ?(k = 10) ?(dedup = true) ?(prune = true) t scoring q =
  search_impl ~k ~dedup ~prune t scoring q

let search_within ?(k = 10) ?(dedup = true) ?(prune = true) ~deadline t scoring
    q =
  try Ok (search_impl ~deadline ~k ~dedup ~prune t scoring q)
  with Expired -> Error `Timeout
