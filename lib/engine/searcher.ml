type t = { index : Pj_index.Inverted_index.t }

let create index = { index }
let index t = t.index

type hit = {
  doc_id : int;
  score : float;
  matchset : Pj_core.Matchset.t;
}

(* --- document-at-a-time cursors ---------------------------------------- *)

(* One query term = the union of its expansion forms' posting lists,
   traversed as a bank of cursors (never materialized). [max_score] is
   the best expansion score with any posting at all — the term's
   contribution ceiling for max-score pruning. *)
type term_cursor = {
  forms : Pj_index.Posting_list.cursor array;
  scores : float array;
  payloads : int array;  (** token id of each form, for match payloads *)
  max_score : float;
}

let term_cursor t (m : Pj_matching.Matcher.t) =
  match m.Pj_matching.Matcher.expansions with
  | None ->
      invalid_arg
        (Printf.sprintf "Searcher: matcher %s has no finite expansions"
           m.Pj_matching.Matcher.name)
  | Some expansions ->
      let vocab =
        Pj_index.Corpus.vocab (Pj_index.Inverted_index.corpus t.index)
      in
      let forms = Pj_util.Vec.create ()
      and scores = Pj_util.Vec.create ()
      and payloads = Pj_util.Vec.create () in
      List.iter
        (fun (form, score) ->
          match Pj_text.Vocab.find vocab form with
          | None -> ()
          | Some tok ->
              (* Cursor, not list: a mmap-backed index streams blocks on
                 demand, so a form is "present" iff its fresh cursor
                 sits on a first document. *)
              let c = Pj_index.Inverted_index.cursor t.index tok in
              if Pj_index.Posting_list.current_doc c >= 0 then begin
                Pj_util.Vec.push forms c;
                Pj_util.Vec.push scores score;
                Pj_util.Vec.push payloads tok
              end)
        expansions;
      let scores = Pj_util.Vec.to_array scores in
      {
        forms = Pj_util.Vec.to_array forms;
        scores;
        payloads = Pj_util.Vec.to_array payloads;
        max_score = Array.fold_left Float.max 0. scores;
      }

(* Smallest document id under any form cursor; -1 once all exhausted. *)
let term_current tc =
  let d = ref (-1) in
  Array.iter
    (fun c ->
      let cd = Pj_index.Posting_list.current_doc c in
      if cd >= 0 && (!d < 0 || cd < !d) then d := cd)
    tc.forms;
  !d

let term_seek tc target =
  Array.iter (fun c -> Pj_index.Posting_list.seek c target) tc.forms

(* Best expansion score among forms present in [doc] — equals the
   maximum individual match score of the term's match list for [doc],
   without building it. *)
let term_best_at tc doc =
  let best = ref 0. in
  Array.iteri
    (fun i c ->
      if Pj_index.Posting_list.current_doc c = doc then
        best := Float.max !best tc.scores.(i))
    tc.forms;
  !best

(* Leapfrog the term cursors over every document carrying at least one
   posting for every term, in increasing id order. [check] runs once
   per alignment round (so deadlines hold even through long barren
   stretches of the intersection); [on_candidate] may raise to stop. *)
let daat_iter ~check terms on_candidate =
  let n = Array.length terms in
  (* Invariant: term 0 sits on [start]; realign the rest round-robin
     until n consecutive cursors agree on one document. *)
  let align start =
    let target = ref start
    and idx = ref (1 mod n)
    and agreed = ref 1
    and result = ref (-2) in
    while !result = -2 do
      check ();
      if !agreed = n then result := !target
      else begin
        let tc = terms.(!idx) in
        term_seek tc !target;
        let d = term_current tc in
        if d < 0 then result := -1
        else begin
          if d = !target then incr agreed
          else begin
            target := d;
            agreed := 1
          end;
          idx := (!idx + 1) mod n
        end
      end
    done;
    !result
  in
  let continue_from start =
    if start < 0 then -1 else align start
  in
  let current = ref (continue_from (term_current terms.(0))) in
  while !current >= 0 do
    let doc = !current in
    on_candidate doc;
    term_seek terms.(0) (doc + 1);
    current := continue_from (term_current terms.(0))
  done

let with_term_cursors t (q : Pj_matching.Query.t) ~none ~some =
  let n = Array.length q.Pj_matching.Query.matchers in
  if n = 0 then none
  else begin
    let terms = Array.map (term_cursor t) q.Pj_matching.Query.matchers in
    (* A term with no indexed form makes the conjunction empty. *)
    if Array.exists (fun tc -> Array.length tc.forms = 0) terms then none
    else some terms
  end

let candidates t q =
  with_term_cursors t q ~none:[||] ~some:(fun terms ->
      let out = Pj_util.Vec.create () in
      daat_iter ~check:(fun () -> ()) terms (fun doc ->
          Pj_util.Vec.push out doc);
      Pj_util.Vec.to_array out)

exception Expired
exception Early_stop

(* Raise a shared threshold to [v] (monotone: only ever increases).
   [compare_and_set] on the freshly read box retries cleanly under
   contention from sibling shard domains. *)
let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let search_impl ?deadline ?threshold ?accept ?(blockmax = true) ~k ~dedup
    ~prune t scoring q =
  if k < 0 then invalid_arg "Searcher.search: negative k";
  (* Block-max traversal is a pruning strategy; without pruning there
     is no threshold to skip against. *)
  let blockmax = blockmax && prune in
  let accepted =
    match accept with None -> fun _ -> true | Some f -> f
  in
  let check_deadline =
    match deadline with
    | None -> fun () -> ()
    | Some d ->
        fun () -> if Pj_util.Timing.monotonic_now () > d then raise Expired
  in
  (* A deadline already in the past times out before anything else. *)
  check_deadline ();
  if k = 0 then []
  else
    with_term_cursors t q ~none:[] ~some:(fun terms ->
        (* Bounded result set: a min-heap of size k; the root is the
           weakest hit and is evicted when a better one arrives. *)
        let heap =
          Pj_util.Heap.create ~leq:(fun a b ->
              (* max-heap orders by leq; invert to keep the weakest on
                 top. Prefer evicting larger doc ids on ties. *)
              match compare b.score a.score with
              | 0 -> a.doc_id <= b.doc_id
              | c -> c <= 0)
        in
        (* The same-for-every-document score ceiling: once the heap root
           beats it, no remaining document can enter the heap (later
           candidates also lose every doc-id tie), so the whole scan can
           stop. *)
        let global_bound =
          lazy
            (Pj_core.Scoring.upper_bound scoring
               (Array.map (fun tc -> tc.max_score) terms))
        in
        (* Once this fragment holds k hits, its weakest score is a
           lower bound on the *global* k-th score (a subset's k-th best
           never exceeds the union's), so it is safe to publish into
           the shared threshold for sibling shards to prune against. *)
        let publish () =
          match threshold with
          | None -> ()
          | Some tau ->
              if Pj_util.Heap.length heap = k then begin
                match Pj_util.Heap.peek heap with
                | Some weakest -> atomic_max tau weakest.score
                | None -> ()
              end
        in
        (* Match lists come straight off the term cursors: at candidate
           time [daat_iter] has sought every form cursor of every term
           to at least [doc_id], and a cursor sits exactly on [doc_id]
           iff its form occurs there — so the positions are already in
           hand, with no per-form re-seek through the index (which on a
           mmap-backed index would decode blocks from scratch for every
           solved candidate). *)
        let solve doc_id =
          (* Under block-max traversal, non-essential form cursors are
             not driven by the alignment; drag them up to the candidate
             now so the match lists are complete. A cursor already at
             or past [doc_id] makes this a no-op. *)
          if blockmax then
            Array.iter (fun tc -> term_seek tc doc_id) terms;
          let problem =
            Array.map
              (fun tc ->
                let matches = Pj_util.Vec.create () in
                Array.iteri
                  (fun i c ->
                    if Pj_index.Posting_list.current_doc c = doc_id then
                      match Pj_index.Posting_list.current c with
                      | None -> ()
                      | Some p ->
                          let score = tc.scores.(i)
                          and payload = tc.payloads.(i) in
                          Array.iter
                            (fun loc ->
                              Pj_util.Vec.push matches
                                (Pj_core.Match0.make ~payload ~loc ~score ()))
                            p.Pj_index.Posting.positions)
                  tc.forms;
                Pj_matching.Match_builder.of_form_matches
                  (Pj_util.Vec.to_array matches))
              terms
          in
          match Pj_core.Best_join.solve ~dedup scoring problem with
          | None -> ()
          | Some r ->
              let hit =
                {
                  doc_id;
                  score = r.Pj_core.Naive.score;
                  matchset = r.Pj_core.Naive.matchset;
                }
              in
              if Pj_util.Heap.length heap < k then begin
                Pj_util.Heap.push heap hit;
                publish ()
              end
              else begin
                match Pj_util.Heap.peek heap with
                | Some weakest
                  when hit.score > weakest.score
                       || (hit.score = weakest.score
                          && hit.doc_id < weakest.doc_id) ->
                    ignore (Pj_util.Heap.pop heap);
                    Pj_util.Heap.push heap hit;
                    publish ()
                | Some _ | None -> ()
              end
        in
        (* The cross-shard prunes are *strict*: the shared threshold
           comes from hits whose doc ids may be smaller than this
           fragment's candidates, so — unlike the within-fragment
           checks — a tied bound could still win the global tiebreak
           and must be solved. *)
        let shared () =
          match threshold with
          | None -> Float.neg_infinity
          | Some tau -> Atomic.get tau
        in
        let on_candidate doc_id =
          check_deadline ();
          (* Tombstoned documents are invisible: skipped before any
             solving or threshold publication, exactly as if their
             postings were absent. *)
          if not (accepted doc_id) then ()
          else if not prune then solve doc_id
          else begin
            let tau = shared () in
            if Lazy.force global_bound < tau then
              (* No document of this fragment can reach the global
                 top-k: even the proximity-free per-term ceilings fall
                 strictly short of a score k hits already beat. *)
              raise Early_stop;
            if Pj_util.Heap.length heap < k then begin
              if tau = Float.neg_infinity then solve doc_id
              else begin
                let best =
                  Array.map (fun tc -> term_best_at tc doc_id) terms
                in
                let bound = Pj_core.Scoring.upper_bound scoring best in
                if bound >= tau then solve doc_id
              end
            end
            else begin
              match Pj_util.Heap.peek heap with
              | None -> solve doc_id
              | Some weakest ->
                  if Lazy.force global_bound <= weakest.score then
                    (* Candidates arrive in increasing doc id, so a tied
                       bound can never win the tiebreak either. *)
                    raise Early_stop
                  else begin
                    (* Per-document upper bound from the forms actually
                       present — the proximity-free prune of
                       [Scoring.upper_bound], now without building the
                       match-list problem first. *)
                    let best =
                      Array.map (fun tc -> term_best_at tc doc_id) terms
                    in
                    let bound = Pj_core.Scoring.upper_bound scoring best in
                    if bound < tau then ()
                    else if
                      bound > weakest.score
                      || (bound = weakest.score && doc_id < weakest.doc_id)
                    then solve doc_id
                  end
            end
          end
        in
        (* --- block-max traversal --------------------------------------
           The skip metadata the cursors already carry ([block_max_score]
           / [block_last_doc]), put to work. Two lossless accelerations
           on top of the plain conjunction:

           - Essential-form pruning (max-score over the expansion
             banks): a form whose score ceiling cannot lift any document
             past the current threshold — even with every *other* term
             at its live maximum — stops driving the alignment. Its
             postings are only dragged forward when a candidate is
             actually solved, so dense low-scored expansions no longer
             force the intersection to crawl their lists. Live maxima
             are exhaustion-aware: a finished cursor's score leaves the
             bound, which tightens the early-stop as lists drain.

           - Block-granular region skips ("next-shallow" moves): at an
             aligned candidate [d], let [h] be the shallowest
             [block_last_doc] among the driving cursors. Within [d, h]
             only forms whose cursor already sits at or before [h] can
             occur, so [Scoring.upper_bound] over those per-term
             regional maxima bounds every document in the region at
             once; when it loses to the threshold, every driving cursor
             skips past [h] in one galloping move — on a mmap-backed
             index that crosses block boundaries through the skip table
             without decoding a posting.

           Both prunes are sound for the strict shared-threshold rule
           and the tie-aware in-fragment rule (candidates arrive in
           increasing doc id, so a tied bound always loses), keeping
           results byte-identical to the exhaustive scan. Match scores
           are the static expansion-form scores, so form presence — not
           the tf-impact ceiling — is the per-block quantity these
           bounds are built from; the impact metadata itself stays an
           admissible ceiling for impact-weighted consumers. *)
        let run_blockmax () =
          let n = Array.length terms in
          let ess =
            Array.map (fun tc -> Array.make (Array.length tc.forms) true) terms
          in
          let live_max = Array.map (fun tc -> tc.max_score) terms in
          let last_full = ref false
          and last_root = ref Float.neg_infinity
          and last_shared = ref Float.neg_infinity in
          (* Could a document with upper bound [b] still enter the heap?
             Strict against the shared threshold (a sibling shard's tied
             hit may have a larger doc id); tie-losing against our own
             root (later candidates have larger ids). *)
          let could_win b =
            b >= !last_shared && ((not !last_full) || b > !last_root)
          in
          let sig_changed () =
            let full = Pj_util.Heap.length heap = k in
            let root =
              match Pj_util.Heap.peek heap with
              | Some w -> w.score
              | None -> Float.neg_infinity
            in
            let sh = shared () in
            if full <> !last_full || root <> !last_root || sh <> !last_shared
            then begin
              last_full := full;
              last_root := root;
              last_shared := sh;
              true
            end
            else false
          in
          (* Recompute live maxima and re-classify the form banks
             against the moved threshold. Essential sets only shrink
             (thresholds are monotone), and whenever the traversal may
             continue, each term's top live form is essential — its
             per-form bound *is* the global live bound. *)
          let refresh () =
            Array.iteri
              (fun j tc ->
                let m = ref 0. in
                Array.iteri
                  (fun i c ->
                    if
                      Pj_index.Posting_list.current_doc c >= 0
                      && tc.scores.(i) > !m
                    then m := tc.scores.(i))
                  tc.forms;
                live_max.(j) <- !m)
              terms;
            if not (could_win (Pj_core.Scoring.upper_bound scoring live_max))
            then raise Early_stop;
            Array.iteri
              (fun j tc ->
                let saved = live_max.(j) in
                Array.iteri
                  (fun i c ->
                    if ess.(j).(i) then
                      if Pj_index.Posting_list.current_doc c < 0 then
                        ess.(j).(i) <- false
                      else begin
                        live_max.(j) <- tc.scores.(i);
                        if
                          not
                            (could_win
                               (Pj_core.Scoring.upper_bound scoring live_max))
                        then ess.(j).(i) <- false
                      end)
                  tc.forms;
                live_max.(j) <- saved)
              terms
          in
          let ess_current j =
            let tc = terms.(j) and e = ess.(j) in
            let d = ref (-1) in
            Array.iteri
              (fun i c ->
                if e.(i) then begin
                  let cd = Pj_index.Posting_list.current_doc c in
                  if cd >= 0 && (!d < 0 || cd < !d) then d := cd
                end)
              tc.forms;
            !d
          in
          let ess_seek j target =
            let tc = terms.(j) and e = ess.(j) in
            Array.iteri
              (fun i c -> if e.(i) then Pj_index.Posting_list.seek c target)
              tc.forms
          in
          (* Essential-bank leapfrog, same invariant as [daat_iter]:
             term 0's essential view sits on [start]. *)
          let align start =
            let target = ref start
            and idx = ref (1 mod n)
            and agreed = ref 1
            and result = ref (-2) in
            while !result = -2 do
              check_deadline ();
              if !agreed = n then result := !target
              else begin
                ess_seek !idx !target;
                let d = ess_current !idx in
                if d < 0 then result := -1
                else begin
                  if d = !target then incr agreed
                  else begin
                    target := d;
                    agreed := 1
                  end;
                  idx := (!idx + 1) mod n
                end
              end
            done;
            !result
          in
          let rb = Array.make n 0. in
          (* The next-shallow move. Only meaningful once some threshold
             exists; returns true after skipping every driving cursor
             past the region. *)
          let region_skip d =
            if not (!last_full || !last_shared > Float.neg_infinity) then
              false
            else begin
              let h = ref max_int in
              Array.iteri
                (fun j _ ->
                  let tc = terms.(j) and e = ess.(j) in
                  Array.iteri
                    (fun i c ->
                      if
                        e.(i) && Pj_index.Posting_list.current_doc c >= 0
                      then begin
                        let bl = Pj_index.Posting_list.block_last_doc c in
                        if bl >= 0 && bl < !h then h := bl
                      end)
                    tc.forms)
                terms;
              if !h = max_int || !h < d then false
              else begin
                Array.iteri
                  (fun j tc ->
                    let e = ess.(j) in
                    let m = ref 0. in
                    Array.iteri
                      (fun i c ->
                        if e.(i) then begin
                          let cd = Pj_index.Posting_list.current_doc c in
                          if cd >= 0 && cd <= !h && tc.scores.(i) > !m then
                            m := tc.scores.(i)
                        end)
                      tc.forms;
                    rb.(j) <- !m)
                  terms;
                if could_win (Pj_core.Scoring.upper_bound scoring rb) then
                  false
                else begin
                  let target = !h + 1 in
                  for j = 0 to n - 1 do
                    ess_seek j target
                  done;
                  true
                end
              end
            end
          in
          (* Advance to the next candidate that survives the region
             bound. The deadline is checked on every iteration: one
             round here may gallop across an arbitrary doc-id range,
             and must not outlive the budget doing so. *)
          let next_candidate start =
            let result = ref (-2) and start = ref start in
            while !result = -2 do
              if !start < 0 then result := -1
              else begin
                let d = align !start in
                if d < 0 then result := -1
                else begin
                  check_deadline ();
                  if sig_changed () then begin
                    refresh ();
                    (* The banks may have shrunk under [d]; realign on
                       the surviving essential forms. *)
                    start := ess_current 0
                  end
                  else if region_skip d then start := ess_current 0
                  else result := d
                end
              end
            done;
            !result
          in
          let current = ref (next_candidate (ess_current 0)) in
          while !current >= 0 do
            let doc = !current in
            on_candidate doc;
            ess_seek 0 (doc + 1);
            current := next_candidate (ess_current 0)
          done
        in
        (try
           if blockmax then run_blockmax ()
           else daat_iter ~check:check_deadline terms on_candidate
         with Early_stop -> ());
        (* Drain the heap weakest-first, then reverse into best-first
           order. *)
        let out = ref [] in
        let rec drain () =
          match Pj_util.Heap.pop heap with
          | Some h ->
              out := h :: !out;
              drain ()
          | None -> ()
        in
        drain ();
        !out)

let search ?(k = 10) ?(dedup = true) ?(prune = true) ?(blockmax = true) t
    scoring q =
  search_impl ~blockmax ~k ~dedup ~prune t scoring q

let search_within ?(k = 10) ?(dedup = true) ?(prune = true) ?(blockmax = true)
    ~deadline t scoring q =
  try Ok (search_impl ~deadline ~blockmax ~k ~dedup ~prune t scoring q)
  with Expired -> Error `Timeout

let search_fragment ?deadline ?threshold ?accept ?(k = 10) ?(dedup = true)
    ?(prune = true) ?(blockmax = true) t scoring q =
  try
    Ok
      (search_impl ?deadline ?threshold ?accept ~blockmax ~k ~dedup ~prune t
         scoring q)
  with Expired -> Error `Timeout
