let corpus_size idx =
  Pj_index.Corpus.size (Pj_index.Inverted_index.corpus idx)

let idf_of_df ~n df = log (1. +. (float_of_int n /. float_of_int (1 + df)))

(* Dictionary lookup, not a list materialization — on a mmap-backed
   index this reads one fixed-width dictionary entry. *)
let df idx word = Pj_index.Inverted_index.document_frequency_of_word idx word

let idf idx word =
  let n = corpus_size idx in
  if n = 0 then 0. else idf_of_df ~n (df idx word)

let normalized_idf idx word =
  let n = corpus_size idx in
  if n = 0 then 1.
  else begin
    let max_idf = idf_of_df ~n 0 in
    idf_of_df ~n (df idx word) /. max_idf
  end

let matcher idx word =
  Pj_matching.Matcher.exact ~score:(normalized_idf idx word) word

let weighted_matcher idx (m : Pj_matching.Matcher.t) =
  {
    m with
    Pj_matching.Matcher.score_token =
      (fun tok ->
        match m.Pj_matching.Matcher.score_token tok with
        | None -> None
        | Some s -> Some (s *. normalized_idf idx tok));
    expansions =
      Option.map
        (List.map (fun (form, s) -> (form, s *. normalized_idf idx form)))
        m.Pj_matching.Matcher.expansions;
  }
