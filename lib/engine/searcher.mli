(** Query evaluation over an indexed corpus: document-at-a-time (DAAT)
    candidate generation from the inverted index, weighted proximity
    best-join scoring per document, and top-k selection.

    This is the document-search loop the paper's introduction motivates:
    instead of materializing match lists for every document, only
    documents containing at least one match for {e every} query term are
    considered, and each candidate is scored by its overall best
    matchset. Candidates come from a conjunctive leapfrog intersection
    of the expansion posting-list cursors ([Pj_index.Posting_list.seek])
    — no per-term document set is ever materialized — and per-term
    maximum expansion scores give proximity-free upper bounds that skip
    or stop the scan once the top-k can no longer change (max-score
    pruning in the sense of Fagin-style early termination). *)

type t

val create : Pj_index.Inverted_index.t -> t

type hit = {
  doc_id : int;
  score : float;
  matchset : Pj_core.Matchset.t;
}

val candidates : t -> Pj_matching.Query.t -> int array
(** Document ids containing at least one match for every term, in
    increasing order, from the DAAT cursor intersection. Requires
    matchers with finite expansions. A query with zero matchers has no
    candidates (empty array). *)

val search :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  ?blockmax:bool ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  hit list
(** Top-[k] (default 10) documents by overall-best-matchset score, best
    first; ties broken toward smaller document ids. [dedup] (default
    true) restricts to valid matchsets. Candidates whose only matchsets
    are invalid are skipped. [k = 0] and zero-matcher queries return []
    without touching the index. With [prune] (default true), once [k]
    hits are held, two lossless max-score prunes apply before any
    match-list materialization: a candidate whose
    [Scoring.upper_bound] over the expansion scores present in the
    document (proximity penalty dropped) cannot beat the weakest held
    hit is skipped without building its match lists, and the scan stops
    outright when even the per-term {e maximum} expansion scores cannot
    beat it — sound, since both bounds dominate every matchset score in
    any remaining document and later candidates lose every doc-id tie.

    With [blockmax] (default true; only meaningful under [prune]), the
    candidate generation itself turns threshold-aware, using the skip
    metadata every cursor carries ({!Pj_index.Posting_list.block_max_score}
    / [block_last_doc]): expansion forms whose score ceiling cannot lift
    any document past the current threshold stop driving the alignment
    (they are dragged forward only for solved candidates), per-term
    ceilings shrink as cursors exhaust, and whole cursor regions up to
    the shallowest block boundary are skipped in one move when the
    region's [Scoring.upper_bound] cannot win ("next-shallow" moves in
    the block-max WAND sense). All three accelerations are lossless —
    the returned top-[k] is byte-identical to the exhaustive scan;
    [blockmax:false] keeps the plain conjunction traversal as an escape
    hatch and an oracle. *)

val search_within :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  ?blockmax:bool ->
  deadline:float ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  (hit list, [ `Timeout ]) result
(** [search] with a wall-clock budget: [deadline] is an absolute time on
    the monotonic clock (as returned by [Pj_util.Timing.monotonic_now] —
    immune to NTP steps) after which evaluation stops. The deadline is
    checked on every cursor-alignment round and before each candidate
    solve, so the overrun is bounded by one document's work even when
    the intersection crosses long barren stretches of the posting
    lists. Returns [Error `Timeout] when the deadline passes before the
    candidate list is exhausted — partial results are discarded, since
    an incomplete top-k is not the true top-k. A deadline already in
    the past times out immediately (before any solving). *)

val search_fragment :
  ?deadline:float ->
  ?threshold:float Atomic.t ->
  ?accept:(int -> bool) ->
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  ?blockmax:bool ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  (hit list, [ `Timeout ]) result
(** One shard's leg of a scatter-gather search (see
    {!Shard_searcher}): [search_within] over this index, with an
    optional [threshold] shared between concurrent fragments of one
    query. Whenever this fragment holds [k] hits, it publishes its
    weakest score into [threshold] (monotonically, with a
    compare-and-set maximum); every fragment prunes candidates — and
    stops its whole scan — whose upper bound falls *strictly* below
    the shared value. Strictness is what keeps the merge
    byte-identical to the monolithic search: the shared threshold may
    come from hits with smaller doc ids in another shard, so a tied
    bound could still win the global smaller-id tiebreak and must be
    solved (the within-fragment prunes keep their tie-aware checks,
    where increasing-doc-id order makes ties safe). A fragment's k-th
    best score never exceeds the global k-th best (its documents are a
    subset), so pruning strictly below the shared threshold can never
    discard a global top-k hit. Without [threshold] this is exactly
    [search_within]; without [deadline] it cannot time out.

    [accept] (default: everything) filters candidate documents before
    any scoring, threshold publication, or heap insertion — a rejected
    document behaves exactly as if its postings were absent. This is
    how a live index hides tombstoned documents without rewriting
    segment posting lists (see {!Pj_live.Live_index}). *)

val index : t -> Pj_index.Inverted_index.t
