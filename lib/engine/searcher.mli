(** Query evaluation over an indexed corpus: candidate generation from
    the inverted index, weighted proximity best-join scoring per
    document, and top-k selection.

    This is the document-search loop the paper's introduction motivates:
    instead of materializing match lists for every document, only
    documents containing at least one match for {e every} query term are
    considered (their ids come from merging the expansion posting
    lists), and each candidate is scored by its overall best matchset. *)

type t

val create : Pj_index.Inverted_index.t -> t

type hit = {
  doc_id : int;
  score : float;
  matchset : Pj_core.Matchset.t;
}

val candidates : t -> Pj_matching.Query.t -> int array
(** Document ids containing at least one match for every term, in
    increasing order. Requires matchers with finite expansions. *)

val search :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  hit list
(** Top-[k] (default 10) documents by overall-best-matchset score, best
    first; ties broken toward smaller document ids. [dedup] (default
    true) restricts to valid matchsets. Candidates whose only matchsets
    are invalid are skipped. With [prune] (default true), once [k] hits
    are held, candidates whose [Scoring.upper_bound] (per-term maximum
    scores, proximity penalty dropped) cannot beat the weakest held hit
    are skipped without solving — sound, since the bound dominates every
    matchset score in the document. *)

val search_within :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  deadline:float ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  (hit list, [ `Timeout ]) result
(** [search] with a wall-clock budget: [deadline] is an absolute time
    (as returned by [Pj_util.Timing.now]) after which evaluation stops.
    The deadline is checked before each candidate document, so the
    overrun is bounded by one document's solve. Returns
    [Error `Timeout] when the deadline passes before the candidate list
    is exhausted — partial results are discarded, since an incomplete
    top-k is not the true top-k. A deadline already in the past times
    out immediately (before any solving). *)

val index : t -> Pj_index.Inverted_index.t
