type t = {
  index : Pj_index.Sharded_index.t;
  fragments : Searcher.t array;
}

let create index =
  {
    index;
    fragments =
      Array.init (Pj_index.Sharded_index.n_shards index) (fun i ->
          Searcher.create (Pj_index.Sharded_index.shard index i));
  }

let sharded_index t = t.index
let n_shards t = Array.length t.fragments

(* Global order on hits: score descending, ties toward smaller doc id —
   the same order [Searcher.search] drains its heap in. *)
let compare_hits (a : Searcher.hit) (b : Searcher.hit) =
  match compare b.Searcher.score a.Searcher.score with
  | 0 -> compare a.Searcher.doc_id b.Searcher.doc_id
  | c -> c

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Each fragment returns its own top-k; the global top-k is a subset of
   the union (at most S*k hits), so one sort of the concatenation
   merges exactly. *)
let merge ~k per_shard =
  List.concat per_shard |> List.sort compare_hits |> take k

let search_impl ?deadline ~k ~dedup ~prune t scoring q =
  if k < 0 then invalid_arg "Shard_searcher.search: negative k";
  if k = 0 then Ok []
  else begin
    let threshold = Atomic.make Float.neg_infinity in
    (* One domain per shard, but never more than the machine offers:
       surplus shards run sequentially inside a chunk, where the shared
       threshold cascades — a finished shard's k-th score lets the next
       one prune (often early-stop) from its very first candidate. *)
    let domains =
      Stdlib.min (Array.length t.fragments)
        (Pj_util.Parallel.recommended_domains ())
    in
    let results =
      Pj_util.Parallel.map_array ~domains
        (fun fragment ->
          Searcher.search_fragment ?deadline ~threshold ~k ~dedup ~prune
            fragment scoring q)
        t.fragments
    in
    if Array.exists (function Error `Timeout -> true | Ok _ -> false) results
    then Error `Timeout
    else
      Ok
        (merge ~k
           (Array.to_list results
           |> List.map (function Ok hits -> hits | Error `Timeout -> [])))
  end

let search ?(k = 10) ?(dedup = true) ?(prune = true) t scoring q =
  match search_impl ~k ~dedup ~prune t scoring q with
  | Ok hits -> hits
  | Error `Timeout -> assert false (* no deadline given *)

let search_within ?(k = 10) ?(dedup = true) ?(prune = true) ~deadline t scoring
    q =
  search_impl ~deadline ~k ~dedup ~prune t scoring q
