type t = {
  index : Pj_index.Sharded_index.t;
  fragments : Searcher.t array;
  sites : string array;
      (* Pre-built failpoint site names ("shard.0", "shard.1", ...):
         the degraded path hits one per shard per query, and the
         disabled fast path must not allocate. *)
}

let create index =
  let n = Pj_index.Sharded_index.n_shards index in
  {
    index;
    fragments =
      Array.init n (fun i ->
          Searcher.create (Pj_index.Sharded_index.shard index i));
    sites = Array.init n (Printf.sprintf "shard.%d");
  }

let sharded_index t = t.index
let n_shards t = Array.length t.fragments

(* Global order on hits: score descending, ties toward smaller doc id —
   the same order [Searcher.search] drains its heap in. *)
let compare_hits (a : Searcher.hit) (b : Searcher.hit) =
  match compare b.Searcher.score a.Searcher.score with
  | 0 -> compare a.Searcher.doc_id b.Searcher.doc_id
  | c -> c

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Each fragment returns its own top-k; the global top-k is a subset of
   the union (at most S*k hits), so one sort of the concatenation
   merges exactly. *)
let merge ~k per_shard =
  List.concat per_shard |> List.sort compare_hits |> take k

let search_impl ?deadline ~k ~dedup ~prune ~blockmax t scoring q =
  if k < 0 then invalid_arg "Shard_searcher.search: negative k";
  if k = 0 then Ok []
  else begin
    let threshold = Atomic.make Float.neg_infinity in
    (* One domain per shard, but never more than the machine offers:
       surplus shards run sequentially inside a chunk, where the shared
       threshold cascades — a finished shard's k-th score lets the next
       one prune (often early-stop) from its very first candidate. *)
    let domains =
      Stdlib.min (Array.length t.fragments)
        (Pj_util.Parallel.recommended_domains ())
    in
    let results =
      Pj_util.Parallel.map_array ~domains
        (fun fragment ->
          Searcher.search_fragment ?deadline ~threshold ~k ~dedup ~prune
            ~blockmax fragment scoring q)
        t.fragments
    in
    if Array.exists (function Error `Timeout -> true | Ok _ -> false) results
    then Error `Timeout
    else
      Ok
        (merge ~k
           (Array.to_list results
           |> List.map (function Ok hits -> hits | Error `Timeout -> [])))
  end

type degraded = { hits : Searcher.hit list; failed : int list }

(* Fault-isolated scatter-gather: every per-shard leg runs under a
   catch-all (plus its failpoint site), so a raising or deadline-blown
   shard contributes nothing instead of poisoning the whole query. The
   healthy path is byte-identical to [search_impl]: same fragments,
   same shared threshold, same merge.

   Soundness note on the shared threshold: a shard that fails at entry
   (the failpoint site fires before its scan starts) never publishes,
   so the surviving shards' merged top-k equals the monolithic top-k
   over the surviving doc ranges exactly — the oracle the degradation
   tests assert. A shard dying mid-scan may already have published a
   bound from its own (now discarded) documents; surviving hits are
   still genuine documents with exact scores, but documents weaker
   than the dead shard's bound may have been pruned, so the guarantee
   degrades from "exact top-k of survivors" to "genuine, exactly
   scored hits in order". *)
let search_degraded_impl ?deadline ~k ~dedup ~prune ~blockmax t scoring q =
  if k < 0 then invalid_arg "Shard_searcher.search_degraded: negative k";
  if k = 0 then Ok { hits = []; failed = [] }
  else begin
    let threshold = Atomic.make Float.neg_infinity in
    let n = Array.length t.fragments in
    let domains = Stdlib.min n (Pj_util.Parallel.recommended_domains ()) in
    let legs =
      Pj_util.Parallel.map_array ~domains
        (fun i ->
          match
            Pj_util.Failpoint.hit t.sites.(i);
            Searcher.search_fragment ?deadline ~threshold ~k ~dedup ~prune
              ~blockmax t.fragments.(i) scoring q
          with
          | Ok hits -> `Hits hits
          | Error `Timeout -> `Expired
          | exception _ -> `Raised)
        (Array.init n Fun.id)
    in
    let all_expired = Array.for_all (fun leg -> leg = `Expired) legs in
    if all_expired then Error `Timeout
    else begin
      let failed = ref [] and per_shard = ref [] in
      for i = n - 1 downto 0 do
        match legs.(i) with
        | `Hits hits -> per_shard := hits :: !per_shard
        | `Expired | `Raised -> failed := i :: !failed
      done;
      Ok { hits = merge ~k !per_shard; failed = !failed }
    end
  end

let search_degraded ?(k = 10) ?(dedup = true) ?(prune = true)
    ?(blockmax = true) ~deadline t scoring q =
  search_degraded_impl ~deadline ~k ~dedup ~prune ~blockmax t scoring q

let search ?(k = 10) ?(dedup = true) ?(prune = true) ?(blockmax = true) t
    scoring q =
  match search_impl ~k ~dedup ~prune ~blockmax t scoring q with
  | Ok hits -> hits
  | Error `Timeout -> assert false (* no deadline given *)

let search_within ?(k = 10) ?(dedup = true) ?(prune = true) ?(blockmax = true)
    ~deadline t scoring q =
  search_impl ~deadline ~k ~dedup ~prune ~blockmax t scoring q
