(** The manifest ("PJMF" v1) — root of a live index directory.

    Names the durable generation, the segment files in doc-id order
    (which must tile [0, total) contiguously), and the tombstone set.
    Rewritten crash-safely at every flush and merge install; a segment
    file the manifest does not name is an orphan from an interrupted
    operation and is ignored by recovery. *)

type entry = {
  file : string; (** segment file name, relative to the directory *)
  base : int;
  len : int;
}

type t = {
  generation : int;
  vocab : string list;
      (** every interned word, in id order — replayed before the
          segment documents so recovery reproduces the exact token ids
          (hence match payloads) of the original process, even for
          words whose only occurrences were compacted away *)
  segments : entry list; (** ascending, contiguous from document 0 *)
  tombstones : int list; (** deleted-but-not-yet-compacted ids, ascending *)
}

val filename : string
(** ["MANIFEST"]. *)

val write : dir:string -> t -> unit
(** Publish a new manifest crash-safely (failpoint site
    [live.manifest] before the write and the rename). Raises
    [Sys_error] / [Pj_util.Failpoint.Injected] / [Panicked]; the
    previous manifest survives any of them. *)

val read : dir:string -> t option
(** The current manifest, or [None] when the directory has none (a
    fresh or never-flushed index). Raises [Failure] with a
    ["Live: ..."] message on a malformed file, [Sys_error] on I/O
    failure. *)
