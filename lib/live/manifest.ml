(* The manifest ("PJMF") is the root of a live index directory: the
   durable generation, the segment files in doc-id order, and the
   tombstone set. It is rewritten — tmp+fsync+rename, so either the old
   or the new manifest is fully present after a crash — at every flush
   and merge install; segment files it does not name are orphans from
   interrupted operations and are ignored (then overwritten or left) by
   recovery. *)

let magic = "PJMF"
let version = 1
let filename = "MANIFEST"

type entry = {
  file : string; (* segment file name, relative to the directory *)
  base : int;
  len : int;
}

type t = {
  generation : int;
  vocab : string list;   (* every interned word, in id order *)
  segments : entry list; (* ascending, contiguous from document 0 *)
  tombstones : int list; (* deleted-but-not-yet-compacted ids, ascending *)
}

module Storage = Pj_index.Storage

let path ~dir = Filename.concat dir filename

let write ~dir t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Storage.write_varint buf version;
  let payload_start = Buffer.length buf in
  Storage.write_varint buf t.generation;
  Storage.write_varint buf (List.length t.vocab);
  List.iter (Storage.write_string buf) t.vocab;
  Storage.write_varint buf (List.length t.segments);
  List.iter
    (fun e ->
      Storage.write_string buf e.file;
      Storage.write_varint buf e.base;
      Storage.write_varint buf e.len)
    t.segments;
  Storage.write_varint buf (List.length t.tombstones);
  List.iter (Storage.write_varint buf) t.tombstones;
  let contents = Buffer.contents buf in
  let crc =
    Storage.crc32 ~pos:payload_start
      ~len:(String.length contents - payload_start)
      contents
  in
  let footer = Bytes.create 4 in
  Bytes.set_int32_le footer 0 crc;
  Buffer.add_bytes buf footer;
  Storage.write_file_atomic ~fp_write:"live.manifest"
    ~fp_rename:"live.manifest" (path ~dir) buf

let parse s =
  let pos = ref 0 in
  if String.length s < 4 || String.sub s 0 4 <> magic then
    failwith "Live: not a proxjoin manifest";
  pos := 4;
  let v = Storage.read_varint s ~pos in
  if v <> version then
    failwith (Printf.sprintf "Live: unsupported manifest version %d" v);
  let payload_start = !pos in
  if String.length s < payload_start + 4 then
    failwith "Live: truncated manifest (missing CRC footer)";
  let payload_len = String.length s - payload_start - 4 in
  let stored = String.get_int32_le s (payload_start + payload_len) in
  let computed = Storage.crc32 ~pos:payload_start ~len:payload_len s in
  if stored <> computed then
    failwith
      (Printf.sprintf
         "Live: manifest CRC mismatch (stored %08lx, computed %08lx) — file \
          truncated or corrupted"
         stored computed);
  let s = String.sub s 0 (payload_start + payload_len) in
  let generation = Storage.read_varint s ~pos in
  let n_vocab = Storage.read_varint s ~pos in
  let vocab = List.init n_vocab (fun _ -> Storage.read_string s ~pos) in
  let n_segments = Storage.read_varint s ~pos in
  let segments =
    List.init n_segments (fun _ ->
        let file = Storage.read_string s ~pos in
        let base = Storage.read_varint s ~pos in
        let len = Storage.read_varint s ~pos in
        { file; base; len })
  in
  let n_tombstones = Storage.read_varint s ~pos in
  let tombstones = List.init n_tombstones (fun _ -> Storage.read_varint s ~pos) in
  if !pos <> String.length s then failwith "Live: trailing bytes in manifest";
  (* Segments must tile [0, total) in order — recovery re-interns
     documents sequentially and depends on it. *)
  let next =
    List.fold_left
      (fun expected e ->
        if e.base <> expected || e.len < 0 then
          failwith "Live: manifest segments do not tile the doc-id space";
        e.base + e.len)
      0 segments
  in
  List.iter
    (fun id ->
      if id < 0 || id >= next then failwith "Live: tombstone out of range")
    tombstones;
  { generation; vocab; segments; tombstones }

let read ~dir =
  let p = path ~dir in
  if not (Sys.file_exists p) then None
  else
    let s = Storage.read_file p in
    Some
      (try parse s with
      | Failure _ as e -> raise e
      | e ->
          failwith
            (Printf.sprintf "Live: corrupt manifest %s (%s)" p
               (Printexc.to_string e)))
