(** On-disk format of one sealed segment ("PJSG" v1).

    A segment file records the token sequences of a contiguous doc-id
    range — words, not token ids, because the global vocabulary keeps
    growing after a segment seals and ids are only reproducible by
    re-interning in document order at recovery. Documents a merge has
    compacted away are written as empty token sequences and listed in
    [dead], so recovery can tell a purged document from a genuinely
    empty one and keep the live-document accounting exact.

    The format shares [Pj_index.Storage]'s primitives: LEB128 varints,
    length-prefixed strings through a file-local string table, a CRC-32
    footer over the payload, and crash-safe tmp+fsync+rename
    publication. *)

type t = {
  base : int;                (** id of the first document of the range *)
  docs : string array array; (** per document, its token words; [[||]]
                                 for compacted-away (and genuinely
                                 empty) documents *)
  dead : int list;           (** absolute ids compacted away, ascending *)
}

val write : failpoint:string -> string -> t -> unit
(** Write a segment crash-safely — as v2 ([Pj_ondisk.Segment_codec]),
    which carries a block-compressed postings section alongside the
    recovery sections so the segment can also be mmap-served.
    [failpoint] names the fault-injection site hit before the write and
    before the rename ([live.flush] when sealing a memtable,
    [live.merge] when installing a compaction). Raises [Sys_error] on
    I/O failure, [Pj_util.Failpoint.Injected] / [Panicked] under fault
    injection — in either case any previously published file at the
    path is left intact. *)

val write_v1 : failpoint:string -> string -> t -> unit
(** Write the legacy v1 layout (recovery sections only) — kept for
    compatibility testing; new code writes v2. *)

val read : string -> t
(** Read a segment back, either version. Raises [Failure] (["Live:
    ..."] or ["Ondisk: ..."]) on any malformed, truncated or
    wrong-version file; [Sys_error] on I/O failure. *)
