(* On-disk format of one sealed segment ("PJSG"): the token sequences
   of a contiguous doc-id range, written through a file-local string
   table, plus the ids of documents the segment has compacted away.
   Same primitives as the corpus format: LEB128 varints, length-prefixed
   strings, CRC-32 footer, crash-safe tmp+fsync+rename publication.

   New segments are written as v2 (Pj_ondisk.Segment_codec), which
   appends a block-compressed postings section so sealed segments can
   serve queries straight off an mmap; v1 files (recovery sections
   only) still load. *)

let magic = "PJSG"
let version = 1

type t = {
  base : int;                (* id of the first document of the range *)
  docs : string array array; (* per document, its token words; [||] for
                                compacted-away (and genuinely empty) docs *)
  dead : int list;           (* absolute ids compacted away, ascending *)
}

module Storage = Pj_index.Storage

let write ~failpoint path t =
  Pj_ondisk.Segment_codec.write ~failpoint path ~base:t.base ~docs:t.docs
    ~dead:t.dead

let write_v1 ~failpoint path t =
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf magic;
  Storage.write_varint buf version;
  let payload_start = Buffer.length buf in
  Storage.write_varint buf t.base;
  (* File-local string table so repeated words cost one varint each. *)
  let table = Hashtbl.create 1024 in
  let words = ref [] and n_words = ref 0 in
  Array.iter
    (Array.iter (fun w ->
         if not (Hashtbl.mem table w) then begin
           Hashtbl.add table w !n_words;
           words := w :: !words;
           incr n_words
         end))
    t.docs;
  Storage.write_varint buf !n_words;
  List.iter (Storage.write_string buf) (List.rev !words);
  Storage.write_varint buf (Array.length t.docs);
  Array.iter
    (fun doc ->
      Storage.write_varint buf (Array.length doc);
      Array.iter (fun w -> Storage.write_varint buf (Hashtbl.find table w)) doc)
    t.docs;
  Storage.write_varint buf (List.length t.dead);
  List.iter (Storage.write_varint buf) t.dead;
  let contents = Buffer.contents buf in
  let crc =
    Storage.crc32 ~pos:payload_start
      ~len:(String.length contents - payload_start)
      contents
  in
  let footer = Bytes.create 4 in
  Bytes.set_int32_le footer 0 crc;
  Buffer.add_bytes buf footer;
  Storage.write_file_atomic ~fp_write:failpoint ~fp_rename:failpoint path buf

let parse s =
  let pos = ref 0 in
  if String.length s < 4 || String.sub s 0 4 <> magic then
    failwith "Live: not a proxjoin segment file";
  pos := 4;
  let v = Storage.read_varint s ~pos in
  if v <> version then
    failwith (Printf.sprintf "Live: unsupported segment version %d" v);
  let payload_start = !pos in
  if String.length s < payload_start + 4 then
    failwith "Live: truncated segment file (missing CRC footer)";
  let payload_len = String.length s - payload_start - 4 in
  let stored = String.get_int32_le s (payload_start + payload_len) in
  let computed = Storage.crc32 ~pos:payload_start ~len:payload_len s in
  if stored <> computed then
    failwith
      (Printf.sprintf
         "Live: segment CRC mismatch (stored %08lx, computed %08lx) — file \
          truncated or corrupted"
         stored computed);
  let s = String.sub s 0 (payload_start + payload_len) in
  let base = Storage.read_varint s ~pos in
  let n_words = Storage.read_varint s ~pos in
  let words = Array.init n_words (fun _ -> Storage.read_string s ~pos) in
  let n_docs = Storage.read_varint s ~pos in
  let docs =
    Array.init n_docs (fun _ ->
        let len = Storage.read_varint s ~pos in
        Array.init len (fun _ ->
            let id = Storage.read_varint s ~pos in
            if id >= n_words then failwith "Live: word id out of range";
            words.(id)))
  in
  let n_dead = Storage.read_varint s ~pos in
  let dead = List.init n_dead (fun _ -> Storage.read_varint s ~pos) in
  if !pos <> String.length s then failwith "Live: trailing bytes in segment";
  List.iter
    (fun id ->
      if id < base || id >= base + n_docs then
        failwith "Live: dead id outside segment range")
    dead;
  { base; docs; dead }

(* Sniff the version varint after the magic: v2 parses through the
   ondisk codec (which also validates its postings layout), v1 through
   the legacy body above. *)
let parse_any s =
  if
    String.length s > 4
    && String.sub s 0 4 = magic
    &&
    let pos = ref 4 in
    match Storage.read_varint s ~pos with
    | v -> v = Pj_ondisk.Segment_codec.version
    | exception Failure _ -> false
  then begin
    let sc = Pj_ondisk.Segment_codec.of_string s in
    {
      base = Pj_ondisk.Segment_codec.base sc;
      docs = Pj_ondisk.Segment_codec.docs sc;
      dead = Pj_ondisk.Segment_codec.dead sc;
    }
  end
  else parse s

let read path =
  let s = Storage.read_file path in
  try parse_any s with
  | Failure _ as e -> raise e
  | e ->
      failwith
        (Printf.sprintf "Live: corrupt segment file %s (%s)" path
           (Printexc.to_string e))
