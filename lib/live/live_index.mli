(** A writable index: in-memory memtable + stack of sealed immutable
    segments, with tombstone deletes, background compaction, and
    generation-swapped snapshots.

    {2 Structure}

    Documents append through a shared {!Pj_index.Corpus} (one growing
    vocabulary, global doc ids). The newest documents live in a
    {e memtable} backed by {!Pj_index.Postings_builder}: an add appends
    to per-term postings arrays in O(document tokens) — no rebuild —
    and publishes an O(1) doc-id-clamped view of them; a {e flush}
    seals the memtable into an immutable {e segment} — an
    {!Pj_index.Inverted_index} over a contiguous doc-id range, exactly
    like a {!Pj_index.Sharded_index} shard. Deletes only mark a
    {e tombstone}; a background {e merger} domain compacts disjoint
    adjacent small segments (up to [merge_parallelism] pairs per step,
    concurrently) and purges the tombstones it folded in.

    {2 Memory model}

    Every mutation publishes a fresh immutable
    [(segments, memtable, tombstones, generation)] snapshot with one
    [Atomic.set]; a query reads the current snapshot with one
    [Atomic.get] and never takes a lock (the vocabulary's internal
    lock aside) — queries never block on writers, writers never wait
    for queries. Over a quiesced index, search results are
    byte-identical to {!Pj_engine.Searcher.search} on a from-scratch
    {!Pj_index.Inverted_index.build} over the surviving documents:
    fragments share the vocabulary and global ids, cascade one strict
    prune threshold (as in {!Pj_engine.Shard_searcher}), and merge by
    (score desc, doc id asc).

    {2 Durability}

    With a directory configured, a flush writes the sealed segment to
    a [PJSG] file and publishes a [MANIFEST] naming every segment file,
    the tombstones, and the generation — each write is
    tmp+fsync+rename ({!Pj_index.Storage.write_file_atomic}), so a
    crash (or an armed [live.flush] / [live.merge] / [live.manifest]
    failpoint) at any moment leaves the previous manifest and segments
    intact. Recovery ({!open_dir}) replays the manifest. Without a
    WAL, memtable documents added after the last flush are lost (by
    design — [FLUSH] is the durability barrier) and deletes become
    durable at the next flush or merge.

    With [wal = true] the acknowledged-write contract strengthens to:
    {e no acknowledged write is ever lost}. Every add/delete is
    appended to a per-directory write-ahead log ({!Wal}) before the
    call returns, group-committed (one log write — and, under
    [Per_batch], one fsync — per {!add_batch}), rotated away once a
    flush makes its records redundant, and replayed into the memtable
    by {!open_dir} up to the first torn or corrupt record. Recovery
    is byte-identical to the pre-crash acknowledged state: same doc
    and token ids, same search results. Operations that fail (real
    I/O errors or armed [live.wal.append] / [live.wal.fsync] /
    [live.wal.rotate] failpoints) raise before acknowledging, so an
    unacknowledged document is — post-recovery — either absent or
    fully present, never torn. *)

type t

type config = {
  dir : string option;
      (** segment/manifest directory; [None] = memory-only *)
  memtable_capacity : int;
      (** auto-flush once the memtable holds this many documents *)
  merge_threshold : int;
      (** compact while more than this many sealed segments exist *)
  background_merge : bool;
      (** spawn the merger domain (disable for deterministic tests) *)
  mmap_segments : bool;
      (** serve sealed segments zero-copy off their own files'
          block-compressed postings ([Pj_ondisk.Segment_codec]) instead
          of rebuilding heap indexes at flush/merge/recovery —
          byte-identical results, postings stay on disk. Requires
          [dir]; ignored (heap indexes) for a memory-only index, and
          legacy v1 or unreadable segment files fall back to the heap
          rebuild. *)
  merge_parallelism : int;
      (** how many disjoint adjacent segment pairs one compaction step
          may merge concurrently (each on its own domain); clamped to
          at least 1. The pairs never overlap, so results are
          independent of the parallelism. *)
  wal : bool;
      (** write-ahead-log every add/delete before acknowledging it, and
          replay the log on {!open_dir} — see {2:durability}. Requires
          [dir] (ignored for a memory-only index). When [false], any
          log left in the directory by a previous wal-enabled process
          is removed on open (its records must not leak into an epoch
          that no longer maintains them). *)
  fsync_policy : Wal.fsync_policy;
      (** when WAL commits reach the platter: [Per_batch] (default —
          full durability, one fsync per batch), [Every_ms ms]
          (bounded loss), or [Never] (OS write-through only; the log
          still bounds loss to an OS crash, not a process crash). *)
}

val default_config : config
(** [dir = None], [memtable_capacity = 256], [merge_threshold = 4],
    [background_merge = true], [mmap_segments = false],
    [merge_parallelism = 2], [wal = false],
    [fsync_policy = Wal.Per_batch]. *)

val create : ?config:config -> unit -> t
(** A fresh, empty live index (no recovery — see {!open_dir}). *)

val open_dir : ?config:config -> string -> t
(** Open (or create) a persistent live index rooted at the directory,
    recovering to the last durable state: the manifest is replayed
    (segment files re-read, their words re-interned in document order,
    reproducing the original doc and token ids, and their indexes
    rebuilt), then — with [wal] — the write-ahead log's intact records
    are re-applied into the memtable and its torn tail discarded.
    Orphan segment files and stale [.tmp] files from interrupted
    operations are removed, manifest or not. [config.dir] is
    overridden by the argument. Raises [Failure "Live: ..."] on a
    corrupt manifest, segment, or WAL header, [Sys_error] on I/O
    failure. *)

val close : t -> unit
(** Stop and join the background merger (idempotent), then close the
    WAL (final fsync — a clean shutdown is a durability barrier
    whatever the [fsync_policy]). In-memory state remains searchable;
    nothing new is flushed. *)

(** {1 Writing} *)

val add : t -> string array -> int
(** Append one document (pre-tokenized words), returning its global
    doc id. Visible to queries immediately; durable before returning
    with a [Per_batch] WAL, otherwise at the next flush. Auto-flushes
    when the memtable reaches capacity. *)

val add_batch : t -> string array list -> int
(** Append many documents under one writer-lock acquisition, returning
    the first assigned id (ids are dense in list order; the next free
    id for an empty batch). One snapshot publication — hence one
    generation observed by queries and [on_swap] hooks — per sealed
    chunk plus one for the residue, instead of one per document. The
    memtable is sealed at every [memtable_capacity] boundary *inside*
    the batch, so a batch larger than the capacity never grows the
    memtable past it. With a WAL the whole batch group-commits: one
    log write (and one [Per_batch] fsync) covers every document. *)

val delete : t -> int -> (unit, [ `Not_found ]) result
(** Tombstone a document: hidden from queries immediately, purged from
    postings by a later merge, durable at the next flush or merge.
    [Error `Not_found] for ids never added, already deleted, or
    already compacted away. *)

val flush : t -> int
(** Seal the memtable into an immutable segment (writing it and a new
    manifest when persistent — the durability barrier for adds and
    deletes) and return the new generation. No-op (returning the
    current generation) when there is nothing to persist. Raises
    [Sys_error] / [Pj_util.Failpoint.Injected] on failure, leaving the
    memtable intact for retry. *)

(** {1 Merging} *)

val merge_now : t -> bool
(** Run one compaction step in the caller (serialized with the
    background merger): up to [merge_parallelism] disjoint cheapest
    adjacent segment pairs are merged concurrently, their tombstones
    purged, and the results installed under one manifest write and one
    generation bump. False when the segment stack is within
    [merge_threshold]. *)

val quiesce : t -> unit
(** Run compactions until the merge policy is satisfied and no
    background step is in flight — after this, state is deterministic
    for a given operation history. *)

(** {1 Searching} *)

val search :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  ?blockmax:bool ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  Pj_engine.Searcher.hit list
(** Top-k over the current snapshot — same contract (and, over a
    quiesced index, the same bytes) as {!Pj_engine.Searcher.search} on
    a from-scratch index over the surviving documents. *)

val search_within :
  ?k:int ->
  ?dedup:bool ->
  ?prune:bool ->
  ?blockmax:bool ->
  deadline:float ->
  t ->
  Pj_core.Scoring.t ->
  Pj_matching.Query.t ->
  (Pj_engine.Searcher.hit list, [ `Timeout ]) result
(** [search] under a monotonic-clock deadline, as
    {!Pj_engine.Searcher.search_within}. *)

(** {1 Observability} *)

val generation : t -> int
(** The current snapshot's generation — bumped by every add, delete,
    flush, and merge, so equal generations imply identical results. *)

val on_swap : t -> (int -> unit) -> unit
(** Register a callback invoked (outside the writer lock) with the new
    generation after every snapshot publication — the result-cache
    invalidation hook. Registration is thread-safe (CAS retry loop) and
    may race with other registrations and with publications; a hook
    starts firing with the first publication after its registration
    lands. *)

type stats = {
  generation : int;
  docs : int;  (** searchable documents = [segment_docs + memtable_docs - tombstones] *)
  total_docs : int;  (** every id ever assigned, compacted or not *)
  segments : int;
  segment_docs : int;  (** live (non-compacted) docs across sealed segments *)
  memtable_docs : int;
  tombstones : int;  (** deleted but not yet compacted *)
  merges : int;
  flushes : int;
  merge_errors : int;  (** background merge attempts that failed *)
  wal_appends : int;  (** records logged through this handle (0 when off) *)
  wal_fsyncs : int;  (** log fsyncs performed through this handle *)
  durable_lag : int;
      (** generations between the current snapshot and the last state
          known durable on disk — 0 means a crash right now loses
          nothing; without a WAL it grows with every unflushed write *)
}

val stats : t -> stats

val corpus : t -> Pj_index.Corpus.t
(** The shared corpus (single source of truth for documents and the
    vocabulary). Do not mutate it directly. *)
