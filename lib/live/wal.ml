(* Write-ahead log: length-prefixed, CRC-32-framed add/delete records
   with group-commit fsync and rotation at flush. See wal.mli for the
   format and the recovery argument. *)

module Storage = Pj_index.Storage
module Failpoint = Pj_util.Failpoint

let filename = "WAL"
let magic = "PJWL"
let version = 1

(* A frame whose length prefix exceeds this is treated as the torn
   tail: no legitimate record (one document's tokens) comes close, and
   trusting a garbage length would make replay read gigabytes. *)
let max_payload = 1 lsl 26

type fsync_policy = Per_batch | Every_ms of int | Never

type record =
  | Add of { id : int; tokens : string array }
  | Delete of int

type t = {
  fd : Unix.file_descr;
  path : string;
  policy : fsync_policy;
  buf : Buffer.t;  (* records appended since the last commit/rotate *)
  mutable last_fsync : float;  (* monotonic; drives [Every_ms] *)
  mutable appends : int;
  mutable fsyncs : int;
  mutable closed : bool;
}

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "per-batch" | "per_batch" | "batch" -> Ok Per_batch
  | "never" -> Ok Never
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "every"
             || String.sub s 0 i = "every-ms"
             || String.sub s 0 i = "every_ms" -> (
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt rest with
          | Some ms when ms > 0 -> Ok (Every_ms ms)
          | _ -> Error (Printf.sprintf "invalid fsync interval %S" rest))
      | _ ->
          Error
            (Printf.sprintf
               "unknown fsync policy %S (expected per-batch, every:<ms> or never)"
               s))

let fsync_policy_to_string = function
  | Per_batch -> "per-batch"
  | Every_ms ms -> Printf.sprintf "every:%d" ms
  | Never -> "never"

let header =
  let b = Buffer.create 8 in
  Buffer.add_string b magic;
  Storage.write_varint b version;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let add_u32_le buf (v : int32) =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v;
  Buffer.add_bytes buf b

let encode_record buf r =
  let payload = Buffer.create 64 in
  (match r with
  | Add { id; tokens } ->
      Storage.write_varint payload 1;
      Storage.write_varint payload id;
      Storage.write_varint payload (Array.length tokens);
      Array.iter (Storage.write_string payload) tokens
  | Delete id ->
      Storage.write_varint payload 2;
      Storage.write_varint payload id);
  let p = Buffer.contents payload in
  add_u32_le buf (Int32.of_int (String.length p));
  Buffer.add_string buf p;
  add_u32_le buf (Storage.crc32 p)

let decode_payload p =
  let pos = ref 0 in
  let tag = Storage.read_varint p ~pos in
  let r =
    match tag with
    | 1 ->
        let id = Storage.read_varint p ~pos in
        let n = Storage.read_varint p ~pos in
        if n < 0 || n > String.length p then failwith "Wal: token count";
        let tokens = Array.init n (fun _ -> Storage.read_string p ~pos) in
        Add { id; tokens }
    | 2 -> Delete (Storage.read_varint p ~pos)
    | _ -> failwith "Wal: unknown record type"
  in
  if !pos <> String.length p then failwith "Wal: trailing payload bytes";
  r

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

(* Scan [s] from the end of the header to the first frame that is
   truncated, oversized or CRC-mismatching; return the intact records
   (in order) and the byte length of the intact prefix. *)
let scan s =
  let len = String.length s in
  let records = ref [] in
  let pos = ref (String.length header) in
  let stop = ref false in
  while not !stop do
    let p = !pos in
    if p + 8 > len then stop := true
    else
      let plen = Int32.to_int (String.get_int32_le s p) in
      if plen < 0 || plen > max_payload || p + 8 + plen > len then stop := true
      else
        let payload = String.sub s (p + 4) plen in
        let stored = String.get_int32_le s (p + 4 + plen) in
        if not (Int32.equal stored (Storage.crc32 payload)) then stop := true
        else
          match decode_payload payload with
          | r ->
              records := r :: !records;
              pos := p + 8 + plen
          | exception Failure _ -> stop := true
  done;
  (List.rev !records, !pos)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let fsync t =
  Failpoint.hit "live.wal.fsync";
  Unix.fsync t.fd;
  t.fsyncs <- t.fsyncs + 1;
  t.last_fsync <- Pj_util.Timing.monotonic_now ()

let open_dir ~dir ~fsync_policy =
  let path = Filename.concat dir filename in
  let records, valid_len =
    match Storage.read_file path with
    | s ->
        if String.length s < String.length header then ([], -1)
        else if String.sub s 0 (String.length header) <> header then
          failwith (Printf.sprintf "Live: corrupt WAL header in %s" path)
        else scan s
    | exception Sys_error _ -> ([], -1)
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let t =
    {
      fd;
      path;
      policy = fsync_policy;
      buf = Buffer.create 4096;
      last_fsync = Pj_util.Timing.monotonic_now ();
      appends = 0;
      fsyncs = 0;
      closed = false;
    }
  in
  (if valid_len < 0 then (
     (* Fresh log, or a crash tore the header itself (nothing after a
        torn header can be intact): start over. *)
     Unix.ftruncate fd 0;
     write_all fd header;
     Unix.fsync fd)
   else (
     (* Truncate the torn tail; appends resume after the last intact
        record. *)
     Unix.ftruncate fd valid_len;
     ignore (Unix.lseek fd valid_len Unix.SEEK_SET)));
  (records, t)

(* ------------------------------------------------------------------ *)
(* Append path                                                         *)

let append t r =
  Failpoint.hit "live.wal.append";
  encode_record t.buf r;
  t.appends <- t.appends + 1

let due t =
  match t.policy with
  | Per_batch -> true
  | Never -> false
  | Every_ms ms ->
      Pj_util.Timing.monotonic_now () -. t.last_fsync >= float_of_int ms /. 1000.

let commit t =
  if Buffer.length t.buf = 0 then false
  else begin
    let s = Buffer.contents t.buf in
    (* The failpoint fires before the write so an injected crash
       models the worst case: the record was acknowledged to no one
       and never reached the file. *)
    let do_sync = due t in
    if do_sync then Failpoint.hit "live.wal.fsync";
    write_all t.fd s;
    Buffer.clear t.buf;
    if do_sync then begin
      Unix.fsync t.fd;
      t.fsyncs <- t.fsyncs + 1;
      t.last_fsync <- Pj_util.Timing.monotonic_now ()
    end;
    do_sync
  end

let rotate t =
  Failpoint.hit "live.wal.rotate";
  Buffer.clear t.buf;
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  write_all t.fd header;
  fsync t

let rewrite t records =
  rotate t;
  List.iter (fun r -> encode_record t.buf r) records;
  if Buffer.length t.buf > 0 then begin
    write_all t.fd (Buffer.contents t.buf);
    Buffer.clear t.buf;
    fsync t
  end

let appends t = t.appends
let fsyncs t = t.fsyncs

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Clean shutdown is a durability barrier whatever the policy:
       anything buffered or written-through becomes real before the
       descriptor goes away. *)
    (try
       if Buffer.length t.buf > 0 then begin
         write_all t.fd (Buffer.contents t.buf);
         Buffer.clear t.buf
       end;
       Unix.fsync t.fd
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
