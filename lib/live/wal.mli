(** Write-ahead log for the live index: no acknowledged write is ever
    lost.

    The memtable acknowledges ADDDOC/DELDOC long before a flush seals
    them into a segment, so without a log a crash between flushes
    silently drops acknowledged writes. The WAL closes that gap with a
    single append-only file ([WAL] in the live directory) that records
    every add and delete {e before} the operation is acknowledged;
    {!Live_index.open_dir} replays it into the memtable on recovery.

    {2 Format}

    Header: the magic ["PJWL"] followed by a version varint. Then a
    sequence of records, each framed as

    {v [len : 4 bytes LE] [payload : len bytes] [crc32(payload) : 4 bytes LE] v}

    where the payload is a record-type varint (1 = add, 2 = delete),
    the document id as a varint, and — for adds — the token count
    followed by each token as a length-prefixed string. The frame
    makes the {e torn tail} after a crash detectable: {!replay} scans
    records in order and stops at the first truncated, oversized or
    CRC-mismatching frame; everything before it is intact (CRC-32
    per record), everything after it was never acknowledged-durable
    and is discarded when the log is reopened for append.

    {2 Group commit}

    {!append} only buffers; {!commit} writes the buffer and fsyncs
    according to the {!fsync_policy}. The live index calls [commit]
    once per {!Live_index.add_batch} — the ingest batcher's batch
    boundary — so durability costs one [fsync] per batch, not per
    document.

    {2 Rotation}

    A flush makes the log's contents redundant (the manifest and its
    segments now cover every logged operation), so
    {!Live_index.flush_locked} calls {!rotate}, which truncates the
    file back to a bare header. Replay is idempotent by document id
    (records for already-durable ids are skipped), so a crash between
    the manifest rename and the truncation merely replays no-ops. *)

type fsync_policy =
  | Per_batch  (** fsync on every {!commit} — full durability. *)
  | Every_ms of int
      (** fsync at most once per interval (piggybacked on commits);
          bounded data loss, higher throughput on slow disks. *)
  | Never  (** write-through to the OS only; durability at flush. *)

type record =
  | Add of { id : int; tokens : string array }
  | Delete of int

type t

val filename : string
(** ["WAL"] — the log's basename inside the live directory. *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** Parse the CLI spelling: ["per-batch"], ["never"], or
    ["every:<ms>"] with a positive interval. *)

val fsync_policy_to_string : fsync_policy -> string

val open_dir : dir:string -> fsync_policy:fsync_policy -> record list * t
(** Replay-then-open: returns every intact record (for the caller to
    re-apply) and the log opened for append positioned after the last
    intact record — the torn tail, if any, is truncated away. A
    missing, empty or header-torn file starts a fresh log; a file
    whose header bytes are present but wrong raises [Failure]
    (external corruption, not a crash artifact). *)

val append : t -> record -> unit
(** Buffer a record (failpoint [live.wal.append]). Nothing reaches
    the file until {!commit} or {!rewrite}. *)

val commit : t -> bool
(** Write buffered records to the file and fsync per the policy
    (failpoint [live.wal.fsync]); [true] iff an fsync was performed,
    meaning everything appended so far is durable. No-op on an empty
    buffer. *)

val rotate : t -> unit
(** Truncate back to a bare header and fsync (failpoint
    [live.wal.rotate]); any uncommitted buffered records are dropped
    — at the flush call site they are covered by the manifest being
    published. *)

val rewrite : t -> record list -> unit
(** Rotate, append the given records and commit with a forced fsync —
    used after recovery to compact a log whose prefix was made
    redundant by a manifest the crash interrupted before rotation. *)

val appends : t -> int
(** Records appended through this handle (not counting replayed or
    {!rewrite}-restored ones). *)

val fsyncs : t -> int
(** Fsyncs performed through this handle. *)

val close : t -> unit
(** Final best-effort commit + fsync, then close the descriptor. *)
