module IntSet = Set.Make (Int)
module Corpus = Pj_index.Corpus
module Inverted_index = Pj_index.Inverted_index
module Searcher = Pj_engine.Searcher

type config = {
  dir : string option;
  memtable_capacity : int;
  merge_threshold : int;
  background_merge : bool;
  mmap_segments : bool;
  merge_parallelism : int;
  wal : bool;
  fsync_policy : Wal.fsync_policy;
}

let default_config =
  { dir = None; memtable_capacity = 256; merge_threshold = 4;
    background_merge = true; mmap_segments = false; merge_parallelism = 2;
    wal = false; fsync_policy = Wal.Per_batch }

(* A sealed, immutable doc-id range with its own inverted index.
   [dead] holds the ids a compaction has already purged from the
   postings; tombstones of later deletions stay in the snapshot-level
   set until the next merge folds them in. *)
type segment = {
  seg_base : int;
  seg_len : int;
  dead : IntSet.t;
  file : string option; (* None in a memory-only index *)
  searcher : Searcher.t;
}

(* What a query observes, all-or-nothing: published with one atomic
   store, never mutated afterwards. Readers pay one [Atomic.get] and
   are immune to every concurrent add/delete/flush/merge. *)
type snapshot = {
  generation : int;
  segments : segment array; (* ascending, tiling [0, mem_base) *)
  mem_base : int;
  mem_len : int;
  mem : Searcher.t option; (* None iff mem_len = 0 *)
  tombstones : IntSet.t;   (* deleted but not yet compacted *)
}

type t = {
  config : config;
  corpus : Corpus.t;
  snap : snapshot Atomic.t;
  (* The memtable's incremental postings: appended to in O(document
     tokens) per add under the writer lock, read lock-free through
     doc-id-clamped provider views (see [Pj_index.Postings_builder]).
     Swapped for a fresh builder when a flush seals the memtable — the
     sealed segment's searcher keeps serving off the frozen one. *)
  mutable memtable : Pj_index.Postings_builder.t;
  (* Writer lock: serializes add/delete/flush and merge installation
     (all snapshot publications). Queries never take it. *)
  writer : Mutex.t;
  (* Merge lock: at most one compaction in flight; held across the
     whole plan/build/install so segment positions stay stable. Taken
     before [writer], never the other way. *)
  merge_lock : Mutex.t;
  hooks : (int -> unit) list Atomic.t;
  file_seq : int Atomic.t;
  adds : int Atomic.t;
  deletes : int Atomic.t;
  flushes : int Atomic.t;
  merges : int Atomic.t;
  merge_errors : int Atomic.t;
  (* True when the on-disk manifest lags the in-memory tombstone set
     (deletes are made durable by the next flush or merge). *)
  mutable durable_dirty : bool;
  (* Write-ahead log — present iff [config.wal] and [config.dir].
     Mutated (append/commit/rotate) only under the writer lock. *)
  mutable wal : Wal.t option;
  (* Highest generation known durable on disk: advanced by manifest
     publications (flush) and by WAL commits that fsynced. The STATS
     [durable_lag] gauge is [generation - last_durable_gen]. *)
  last_durable_gen : int Atomic.t;
  (* Background merger machinery; [m] guards [stopping] and the
     condition. *)
  m : Mutex.t;
  c : Condition.t;
  mutable stopping : bool;
  mutable merger : unit Domain.t option;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let with_writer t f = with_lock t.writer f

let notify t gen = List.iter (fun f -> f gen) (Atomic.get t.hooks)

(* Registration races with other registrations (and with [notify]'s
   reads): a plain get-then-set would let two concurrent registrants
   both read the same list and one overwrite the other's hook. The CAS
   retry loop makes every registration land exactly once. *)
let rec on_swap t f =
  let cur = Atomic.get t.hooks in
  if not (Atomic.compare_and_set t.hooks cur (cur @ [ f ])) then on_swap t f

let generation t = (Atomic.get t.snap).generation

(* --- persistence ------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let segment_filename id = Printf.sprintf "seg-%06d.seg" id

let segment_file_id name =
  try Scanf.sscanf name "seg-%d.seg%!" (fun n -> Some n)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let words_of_doc vocab (d : Pj_text.Document.t) =
  Array.map (Pj_text.Vocab.word vocab) d.Pj_text.Document.tokens

(* With [mmap_segments], a sealed segment's searcher runs over the
   block-compressed postings of its own file, mapped zero-copy
   ([Pj_ondisk.Segment_codec]) — byte-identical results to the
   in-memory [build_docs] fragment, but the postings stay on disk. The
   mapping outlives any later unlink of the file (a compaction removing
   a replaced segment), so in-flight snapshots stay valid. *)
let mmap_searcher ~corpus ~dir name =
  let ms = Pj_ondisk.Segment_codec.open_file (Filename.concat dir name) in
  Searcher.create (Pj_ondisk.Segment_codec.index ms corpus)

(* Write one segment's documents (dead ones as empty token sequences,
   so recovery keeps exact live-document accounting). *)
let write_segment_file t ~failpoint ~dir ~base ~dead docs =
  let vocab = Corpus.vocab t.corpus in
  let words =
    Array.map
      (fun (d : Pj_text.Document.t) ->
        if IntSet.mem d.Pj_text.Document.id dead then [||]
        else words_of_doc vocab d)
      docs
  in
  let name = segment_filename (Atomic.fetch_and_add t.file_seq 1) in
  Segment_file.write ~failpoint
    (Filename.concat dir name)
    { Segment_file.base; docs = words; dead = IntSet.elements dead };
  name

(* Publish a manifest naming [segments] — caller holds the writer lock,
   so the manifest always matches the snapshot installed right after.
   No-op for a memory-only index. *)
let write_manifest_locked t ~generation ~segments ~tombstones =
  match t.config.dir with
  | None -> ()
  | Some dir ->
      let entries =
        Array.to_list segments
        |> List.map (fun sg ->
               {
                 Manifest.file = Option.get sg.file;
                 base = sg.seg_base;
                 len = sg.seg_len;
               })
      in
      let vocab = Corpus.vocab t.corpus in
      let words =
        List.init (Pj_text.Vocab.size vocab) (Pj_text.Vocab.word vocab)
      in
      Manifest.write ~dir
        { Manifest.generation; vocab = words; segments = entries;
          tombstones = IntSet.elements tombstones };
      t.durable_dirty <- false

(* --- memtable ---------------------------------------------------------- *)

(* A fresh searchable view over the memtable's incremental postings,
   clamped to the documents committed so far. O(1): the builder holds
   the postings already (appended per add — no rebuild); the view only
   fixes [max_doc], which is what gives in-flight queries snapshot
   isolation against later appends into the same arrays. The corpus is
   the single source of truth: deriving [mem_len] from [Corpus.size]
   (not the previous snapshot) means a failed publication self-heals on
   the next add. *)
let refresh_mem_locked t ~mem_base =
  let mem_len = Corpus.size t.corpus - mem_base in
  if mem_len = 0 then (0, None)
  else
    let idx =
      Pj_index.Postings_builder.index t.memtable t.corpus
        ~max_doc:(mem_base + mem_len - 1)
    in
    (mem_len, Some (Searcher.create idx))

let signal_merger t =
  with_lock t.m (fun () -> Condition.broadcast t.c)

(* --- write-ahead log --------------------------------------------------- *)

(* All three helpers require the writer lock (the WAL handle is
   single-writer) and are no-ops on an index without one. *)

let wal_append t r =
  match t.wal with None -> () | Some w -> Wal.append w r

(* One group commit per acknowledged operation (or per [add_batch]):
   write the buffered records and, when the policy fsynced, advance
   the durable horizon to the generation just published. *)
let wal_commit_locked t =
  match t.wal with
  | None -> ()
  | Some w ->
      if Wal.commit w then
        Atomic.set t.last_durable_gen (Atomic.get t.snap).generation

(* A published manifest makes every logged record redundant — its
   segments and tombstone list now cover them. Called between the
   manifest write and the snapshot publication: if rotation fails the
   flush is still retryable (memtable untouched), and recovery after
   a crash here merely replays stale records, which the id-keyed
   replay skips. *)
let wal_rotate_locked t =
  match t.wal with None -> () | Some w -> Wal.rotate w

(* Seal the memtable into a segment (durably, when a directory is
   configured) and/or persist a tombstone set the manifest lags behind.
   Caller holds the writer lock. Any failure — injected or real —
   leaves the snapshot unpublished, so the memtable stays intact and
   the operation can simply be retried. *)
let flush_locked t =
  let s = Atomic.get t.snap in
  if s.mem_len = 0 then begin
    (* Nothing to seal; a manifest write may still be owed for
       deletes since the last flush. *)
    if t.durable_dirty then begin
      let gen = s.generation + 1 in
      write_manifest_locked t ~generation:gen ~segments:s.segments
        ~tombstones:s.tombstones;
      wal_rotate_locked t;
      Atomic.set t.snap { s with generation = gen };
      Atomic.set t.last_durable_gen gen;
      Atomic.incr t.flushes;
      gen
    end
    else begin
      (* Nothing in the memtable and the manifest is current, so the
         whole state is durable — FLUSH remains a durability barrier
         even when only a merge bumped the generation since. *)
      Atomic.set t.last_durable_gen s.generation;
      s.generation
    end
  end
  else begin
    let searcher = match s.mem with Some sr -> sr | None -> assert false in
    let file =
      match t.config.dir with
      | None -> None
      | Some dir ->
          let docs =
            Corpus.docs_slice t.corpus ~pos:s.mem_base ~len:s.mem_len
          in
          Some
            (write_segment_file t ~failpoint:"live.flush" ~dir ~base:s.mem_base
               ~dead:IntSet.empty docs)
    in
    (* The sealed segment can drop the memtable's heap index and serve
       off its own freshly written file. *)
    let searcher =
      match (file, t.config.dir) with
      | Some name, Some dir when t.config.mmap_segments ->
          mmap_searcher ~corpus:t.corpus ~dir name
      | _ -> searcher
    in
    let seg =
      { seg_base = s.mem_base; seg_len = s.mem_len; dead = IntSet.empty;
        file; searcher }
    in
    let segments = Array.append s.segments [| seg |] in
    let gen = s.generation + 1 in
    write_manifest_locked t ~generation:gen ~segments
      ~tombstones:s.tombstones;
    wal_rotate_locked t;
    Atomic.set t.snap
      {
        generation = gen;
        segments;
        mem_base = s.mem_base + s.mem_len;
        mem_len = 0;
        mem = None;
        tombstones = s.tombstones;
      };
    (* Only after the snapshot is safely published: the sealed segment
       (in the non-mmap case) keeps serving off the now-frozen builder,
       and the next memtable starts empty. On any failure above the
       builder is untouched, so the flush can simply be retried. *)
    t.memtable <- Pj_index.Postings_builder.create ();
    Atomic.set t.last_durable_gen gen;
    Atomic.incr t.flushes;
    signal_merger t;
    gen
  end

let flush t =
  let gen = with_writer t (fun () -> flush_locked t) in
  notify t gen;
  gen

let add_locked t tokens =
  let s = Atomic.get t.snap in
  (* Log before mutating: a failed append leaves the index untouched
     and the caller sees the error before anything was acknowledged. *)
  wal_append t (Wal.Add { id = Corpus.size t.corpus; tokens });
  let d = Corpus.add_tokens t.corpus tokens in
  Atomic.incr t.adds;
  Pj_index.Postings_builder.add_doc t.memtable d;
  let mem_len, mem = refresh_mem_locked t ~mem_base:s.mem_base in
  let gen = s.generation + 1 in
  Atomic.set t.snap { s with generation = gen; mem_len; mem };
  let gen =
    if mem_len >= t.config.memtable_capacity then flush_locked t
    else begin
      (* Durable before acknowledged: the record must reach the log
         (and, per policy, the platter) before [add] returns. *)
      wal_commit_locked t;
      gen
    end
  in
  (d.Pj_text.Document.id, gen)

let add t tokens =
  let id, gen = with_writer t (fun () -> add_locked t tokens) in
  notify t gen;
  id

(* Bulk load: one snapshot publication per sealed chunk plus one for
   the residue — but never an unbounded memtable. A batch larger than
   [memtable_capacity] seals at every capacity boundary *inside* the
   batch (the pre-fix code flushed only once at the end, so a big batch
   grew the memtable arbitrarily). Returns the first assigned id; ids
   are dense in list order. *)
let add_batch t docs =
  match docs with
  | [] -> Corpus.size t.corpus
  | _ ->
      let first, gen =
        with_writer t (fun () ->
            let first = Corpus.size t.corpus in
            List.iter
              (fun tokens ->
                wal_append t (Wal.Add { id = Corpus.size t.corpus; tokens });
                let d = Corpus.add_tokens t.corpus tokens in
                Atomic.incr t.adds;
                Pj_index.Postings_builder.add_doc t.memtable d;
                let s = Atomic.get t.snap in
                if
                  Corpus.size t.corpus - s.mem_base
                  >= t.config.memtable_capacity
                then begin
                  (* Capacity reached mid-batch: publish the chunk and
                     seal it, exactly as the per-add path would. *)
                  let mem_len, mem =
                    refresh_mem_locked t ~mem_base:s.mem_base
                  in
                  Atomic.set t.snap
                    { s with generation = s.generation + 1; mem_len; mem };
                  ignore (flush_locked t)
                end)
              docs;
            let s = Atomic.get t.snap in
            let gen =
              if Corpus.size t.corpus > s.mem_base + s.mem_len then begin
                let mem_len, mem =
                  refresh_mem_locked t ~mem_base:s.mem_base
                in
                let gen = s.generation + 1 in
                Atomic.set t.snap { s with generation = gen; mem_len; mem };
                gen
              end
              else s.generation
            in
            (* Group commit: one WAL write + (per policy) one fsync
               covers the whole batch — the ingest batcher's batch
               boundary is the durability boundary. Chunks sealed
               mid-batch were already rotated away by their flush. *)
            wal_commit_locked t;
            (first, gen))
      in
      notify t gen;
      first

(* A document is gone when it was never added, is already tombstoned,
   or was compacted away by a merge. *)
let find_segment segments id =
  Array.find_opt
    (fun sg -> id >= sg.seg_base && id < sg.seg_base + sg.seg_len)
    segments

let delete t id =
  let r =
    with_writer t (fun () ->
        let s = Atomic.get t.snap in
        if id < 0 || id >= Corpus.size t.corpus then Error `Not_found
        else if IntSet.mem id s.tombstones then Error `Not_found
        else if
          id < s.mem_base
          && (match find_segment s.segments id with
             | Some sg -> IntSet.mem id sg.dead
             | None -> false)
        then Error `Not_found
        else begin
          let gen = s.generation + 1 in
          wal_append t (Wal.Delete id);
          if t.config.dir <> None then t.durable_dirty <- true;
          Atomic.set t.snap
            { s with generation = gen; tombstones = IntSet.add id s.tombstones };
          Atomic.incr t.deletes;
          wal_commit_locked t;
          Ok gen
        end)
  in
  match r with
  | Ok gen ->
      notify t gen;
      Ok ()
  | Error e -> Error e

(* --- merging ----------------------------------------------------------- *)

(* Pick up to [limit] *disjoint* adjacent pairs once the sealed stack
   exceeds the threshold — a tiered policy in miniature: repeatedly
   folding the smallest neighbours keeps total merge work O(n log n) in
   documents merged while preserving doc-id order. Cheapest pairs
   first; never more pairs than the excess over the threshold (each
   merge shrinks the stack by one). Returns left indexes ascending. *)
let pick_merges s threshold ~limit =
  let n = Array.length s.segments in
  let excess = n - threshold in
  if excess <= 0 || limit <= 0 then []
  else begin
    let live i =
      s.segments.(i).seg_len - IntSet.cardinal s.segments.(i).dead
    in
    let pairs = Array.init (n - 1) (fun i -> (live i + live (i + 1), i)) in
    Array.sort compare pairs;
    let taken = Array.make n false in
    let out = ref [] and count = ref 0 in
    Array.iter
      (fun (_, i) ->
        if
          !count < limit && !count < excess
          && (not taken.(i))
          && not taken.(i + 1)
        then begin
          taken.(i) <- true;
          taken.(i + 1) <- true;
          out := i :: !out;
          incr count
        end)
      pairs;
    List.sort compare !out
  end

let merge_needed t =
  pick_merges (Atomic.get t.snap) t.config.merge_threshold ~limit:1 <> []

type merge_plan = {
  mp_index : int; (* left position of the pair at plan time *)
  mp_base : int;
  mp_len : int;
  mp_dead : IntSet.t;
  mp_tomb : IntSet.t; (* tombstones this merge makes durable *)
  mp_docs : Pj_text.Document.t array;
  mp_left : Searcher.t; (* the pair's searchers at plan time — the *)
  mp_right : Searcher.t; (* splice inputs for [concat_adjacent] *)
}

(* One compaction step: plan under the writer lock, build and write the
   merged segments outside every lock (queries and writers proceed
   untouched), install under the writer lock. Up to
   [merge_parallelism] *disjoint* adjacent pairs are planned together
   and built concurrently on their own domains — each build touches
   only its own doc range and writes its own file, and the single
   installation publishes one manifest and one generation for the
   whole round. Deletions that land in a range *during* the build stay
   in the tombstone set — only the tombstones captured at plan time are
   folded into [dead] and removed. Returns false when no merge is
   needed. *)
let merge_step t =
  with_lock t.merge_lock (fun () ->
      let plans =
        with_writer t (fun () ->
            let s = Atomic.get t.snap in
            pick_merges s t.config.merge_threshold
              ~limit:(max 1 t.config.merge_parallelism)
            |> List.map (fun i ->
                   let a = s.segments.(i) and b = s.segments.(i + 1) in
                   let base = a.seg_base in
                   let len = a.seg_len + b.seg_len in
                   let tomb =
                     IntSet.filter
                       (fun id -> id >= base && id < base + len)
                       s.tombstones
                   in
                   let dead =
                     IntSet.union (IntSet.union a.dead b.dead) tomb
                   in
                   let docs = Corpus.docs_slice t.corpus ~pos:base ~len in
                   { mp_index = i; mp_base = base; mp_len = len;
                     mp_dead = dead; mp_tomb = tomb; mp_docs = docs;
                     mp_left = a.searcher; mp_right = b.searcher }))
      in
      match plans with
      | [] -> false
      | first :: rest ->
          Pj_util.Failpoint.hit "live.merge";
          let build p =
            let file =
              match t.config.dir with
              | None -> None
              | Some dir ->
                  Some
                    (write_segment_file t ~failpoint:"live.merge" ~dir
                       ~base:p.mp_base ~dead:p.mp_dead p.mp_docs)
            in
            let searcher =
              match (file, t.config.dir) with
              | Some name, Some dir when t.config.mmap_segments ->
                  mmap_searcher ~corpus:t.corpus ~dir name
              | _ ->
                  (* Adjacent segments tile disjoint ascending doc-id
                     ranges, so merging their indexes is a per-term
                     splice of already-sorted postings — O(surviving
                     postings), position arrays shared by reference —
                     instead of re-tokenizing the whole range. Sources
                     that cannot enumerate terms (mmap segments) fall
                     back to the rebuild. The [skip] filter also purges
                     postings of docs that died after the source
                     segment was built. *)
                  let skip =
                    if IntSet.is_empty p.mp_dead then None
                    else Some (fun id -> IntSet.mem id p.mp_dead)
                  in
                  let idx =
                    match
                      Inverted_index.concat_adjacent ?skip
                        (Searcher.index p.mp_left)
                        (Searcher.index p.mp_right)
                    with
                    | Some idx -> idx
                    | None ->
                        Inverted_index.build_docs
                          ~skip:(fun id -> IntSet.mem id p.mp_dead)
                          t.corpus p.mp_docs
                  in
                  Searcher.create idx
            in
            ( p,
              { seg_base = p.mp_base; seg_len = p.mp_len; dead = p.mp_dead;
                file; searcher } )
          in
          (* Result-wrap each build so every spawned domain is always
             joined, even when a sibling fails (an unjoined domain
             would leak); the first failure then cleans up whatever the
             successful builds wrote and re-raises. *)
          let wrap p = try Ok (build p) with e -> Error e in
          let results =
            match rest with
            | [] -> [ wrap first ]
            | _ ->
                let handles =
                  List.map (fun p -> Domain.spawn (fun () -> wrap p)) rest
                in
                let r0 = wrap first in
                r0 :: List.map Domain.join handles
          in
          (match
             List.find_opt
               (function Error _ -> true | Ok _ -> false)
               results
           with
          | Some (Error e) ->
              (match t.config.dir with
              | Some dir ->
                  List.iter
                    (function
                      | Ok (_, sg) ->
                          Option.iter
                            (fun f ->
                              try Sys.remove (Filename.concat dir f)
                              with Sys_error _ -> ())
                            sg.file
                      | Error _ -> ())
                    results
              | None -> ());
              raise e
          | Some (Ok _) | None -> ());
          let merged =
            List.map (function Ok r -> r | Error _ -> assert false) results
          in
          let old_files, gen =
            with_writer t (fun () ->
                let s = Atomic.get t.snap in
                let by_index = Hashtbl.create 8 in
                List.iter
                  (fun (p, sg) -> Hashtbl.replace by_index p.mp_index (p, sg))
                  merged;
                (* Only the merger replaces sealed segments and we hold
                   the merge lock; flush only appends, so the planned
                   positions still name the planned (disjoint) pairs. *)
                let out = Pj_util.Vec.create () in
                let replaced = ref [] in
                let n = Array.length s.segments in
                let j = ref 0 in
                while !j < n do
                  (match Hashtbl.find_opt by_index !j with
                  | Some (p, sg) ->
                      let a = s.segments.(!j) and b = s.segments.(!j + 1) in
                      assert (
                        a.seg_base = p.mp_base
                        && a.seg_len + b.seg_len = p.mp_len);
                      replaced := b :: a :: !replaced;
                      Pj_util.Vec.push out sg;
                      j := !j + 2
                  | None ->
                      Pj_util.Vec.push out s.segments.(!j);
                      incr j)
                done;
                let segments = Pj_util.Vec.to_array out in
                let tomb_all =
                  List.fold_left
                    (fun acc (p, _) -> IntSet.union acc p.mp_tomb)
                    IntSet.empty merged
                in
                let tombstones = IntSet.diff s.tombstones tomb_all in
                let gen = s.generation + 1 in
                write_manifest_locked t ~generation:gen ~segments ~tombstones;
                Atomic.set t.snap
                  { s with generation = gen; segments; tombstones };
                List.iter (fun _ -> Atomic.incr t.merges) merged;
                (List.filter_map (fun sg -> sg.file) !replaced, gen))
          in
          (* The replaced files are no longer named by any manifest. *)
          (match t.config.dir with
          | Some dir ->
              List.iter
                (fun f ->
                  try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
                old_files
          | None -> ());
          notify t gen;
          true)

let merge_now t = merge_step t

(* Run compactions until the policy is satisfied and no background step
   is in flight (the merge lock serializes with the merger domain). *)
let quiesce t = while merge_step t do () done

let merger_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while not t.stopping && not (merge_needed t) do
      Condition.wait t.c t.m
    done;
    let stop = t.stopping in
    Mutex.unlock t.m;
    if not stop then begin
      (try ignore (merge_step t)
       with _ ->
         (* Injected faults and I/O errors leave the pre-merge snapshot
            intact; count, back off briefly (an armed failpoint would
            otherwise hot-spin), retry on the next round. *)
         Atomic.incr t.merge_errors;
         Unix.sleepf 0.05);
      loop ()
    end
  in
  loop ()

(* --- construction ------------------------------------------------------ *)

let make_t config corpus snap =
  {
    config;
    corpus;
    snap = Atomic.make snap;
    memtable = Pj_index.Postings_builder.create ();
    writer = Mutex.create ();
    merge_lock = Mutex.create ();
    hooks = Atomic.make [];
    file_seq = Atomic.make 0;
    adds = Atomic.make 0;
    deletes = Atomic.make 0;
    flushes = Atomic.make 0;
    merges = Atomic.make 0;
    merge_errors = Atomic.make 0;
    durable_dirty = false;
    wal = None;
    last_durable_gen = Atomic.make snap.generation;
    m = Mutex.create ();
    c = Condition.create ();
    stopping = false;
    merger = None;
  }

let spawn_merger t =
  if t.config.background_merge then
    t.merger <- Some (Domain.spawn (fun () -> merger_loop t))

(* Re-apply intact WAL records on recovery. Idempotent by document
   id: the manifest's segments already cover every id below
   [Corpus.size] (a crash between the manifest rename and the log
   rotation leaves such records behind), so only the dense run of
   fresh ids is applied; likewise a delete already tombstoned or
   compacted is a no-op. Token ids come out identical to the
   pre-crash process: the manifest vocabulary replays first (in id
   order), segment documents re-intern next, and the WAL documents
   intern last — the same first-occurrence order that assigned the
   original ids. Runs before the index is shared, so plain stores
   suffice. *)
let replay_wal t w records =
  let adds = ref 0 and dels = ref 0 in
  let applied = ref [] in
  List.iter
    (fun r ->
      match r with
      | Wal.Add { id; tokens } ->
          if id = Corpus.size t.corpus then begin
            let d = Corpus.add_tokens t.corpus tokens in
            Pj_index.Postings_builder.add_doc t.memtable d;
            incr adds;
            applied := r :: !applied
          end
      | Wal.Delete id ->
          let s = Atomic.get t.snap in
          let gone =
            id < 0
            || id >= Corpus.size t.corpus
            || IntSet.mem id s.tombstones
            || (match find_segment s.segments id with
               | Some sg -> IntSet.mem id sg.dead
               | None -> false)
          in
          if not gone then begin
            Atomic.set t.snap
              { s with tombstones = IntSet.add id s.tombstones };
            incr dels;
            applied := r :: !applied
          end)
    records;
  let n = !adds + !dels in
  if n > 0 then begin
    let s = Atomic.get t.snap in
    let mem_len, mem = refresh_mem_locked t ~mem_base:s.mem_base in
    Atomic.set t.snap { s with generation = s.generation + n; mem_len; mem };
    (* Replayed deletes are durable in the log but not yet in the
       manifest; the next flush writes them there. *)
    if !dels > 0 then t.durable_dirty <- true
  end;
  (* Stale (skipped) records mean a crash interrupted a rotation
     after its manifest landed; compact the log now so it holds
     exactly the live memtable + pending deletes again. *)
  if List.length !applied <> List.length records then
    Wal.rewrite w (List.rev !applied);
  Atomic.set t.last_durable_gen (Atomic.get t.snap).generation

(* Attach (or retire) the directory's write-ahead log. [replay] is
   false for a fresh index ([create]): any log on disk belongs to a
   previous incarnation and is discarded. With the WAL disabled an
   existing log file is removed rather than ignored: document ids
   restart reusing its slots, so its records must not survive into an
   epoch that no longer maintains them — the caller has chosen flush
   as the durability barrier. *)
let init_wal t ~replay =
  match t.config.dir with
  | None -> ()
  | Some dir ->
      let remove_log () =
        try Sys.remove (Filename.concat dir Wal.filename)
        with Sys_error _ -> ()
      in
      if not t.config.wal then remove_log ()
      else begin
        if not replay then remove_log ();
        let records, w =
          Wal.open_dir ~dir ~fsync_policy:t.config.fsync_policy
        in
        t.wal <- Some w;
        if replay then replay_wal t w records
      end

let empty_snap =
  {
    generation = 0;
    segments = [||];
    mem_base = 0;
    mem_len = 0;
    mem = None;
    tombstones = IntSet.empty;
  }

let create ?(config = default_config) () =
  (match config.dir with Some dir -> mkdir_p dir | None -> ());
  let t = make_t config (Corpus.create ()) empty_snap in
  init_wal t ~replay:false;
  spawn_merger t;
  t

(* Remove crash leftovers no manifest references: stale [.tmp] files
   from an interrupted atomic publication (tmp-write then rename) and
   segment files orphaned by a flush or merge that never installed.
   The WAL is neither — it matches no pattern and is managed by
   [init_wal]. *)
let cleanup_orphans ~dir ~named =
  Array.iter
    (fun f ->
      let stale_tmp = Filename.check_suffix f ".tmp" in
      let orphan_seg = segment_file_id f <> None && not (List.mem f named) in
      if stale_tmp || orphan_seg then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir)

let open_with_manifest config dir (m : Manifest.t) =
      let corpus = Corpus.create () in
      (* Replaying the persisted vocabulary first reproduces the very
         token ids (hence match payloads) of the original process —
         segment words alone would shift ids wherever a compaction
         dropped a word's only occurrences. *)
      let vocab = Corpus.vocab corpus in
      List.iter
        (fun w -> ignore (Pj_text.Vocab.intern vocab w))
        m.Manifest.vocab;
      let max_file = ref (-1) in
      let segments =
        List.map
          (fun (e : Manifest.entry) ->
            let sf = Segment_file.read (Filename.concat dir e.Manifest.file) in
            if sf.Segment_file.base <> e.Manifest.base
               || Array.length sf.Segment_file.docs <> e.Manifest.len
            then
              failwith
                (Printf.sprintf "Live: segment %s disagrees with the manifest"
                   e.Manifest.file);
            (* Re-interning words in document order reproduces the very
               same token ids the index was built with. *)
            Array.iter
              (fun words -> ignore (Corpus.add_tokens corpus words))
              sf.Segment_file.docs;
            (match segment_file_id e.Manifest.file with
            | Some n -> if n > !max_file then max_file := n
            | None -> ());
            let dead = IntSet.of_list sf.Segment_file.dead in
            let searcher =
              (* The mmap attempt is best-effort: a v1 file carries no
                 postings section ([Failure]), and a file whose
                 compressed sections went bad since [read]'s CRC pass —
                 or an I/O error from the map itself ([Unix_error],
                 injected faults, ...) — must not abort recovery
                 either. *Any* exception falls back to the heap
                 rebuild, which only needs the already-validated
                 documents. *)
              match
                if config.mmap_segments then begin
                  Pj_util.Failpoint.hit "live.mmap_open";
                  Some (mmap_searcher ~corpus ~dir e.Manifest.file)
                end
                else None
              with
              | Some sr -> sr
              | None | (exception _) ->
                  let docs =
                    Corpus.docs_slice corpus ~pos:e.Manifest.base
                      ~len:e.Manifest.len
                  in
                  Searcher.create
                    (Inverted_index.build_docs
                       ~skip:(fun id -> IntSet.mem id dead)
                       corpus docs)
            in
            {
              seg_base = e.Manifest.base;
              seg_len = e.Manifest.len;
              dead;
              file = Some e.Manifest.file;
              searcher;
            })
          m.Manifest.segments
      in
      let snap =
        {
          generation = m.Manifest.generation;
          segments = Array.of_list segments;
          mem_base = Corpus.size corpus;
          mem_len = 0;
          mem = None;
          tombstones = IntSet.of_list m.Manifest.tombstones;
        }
      in
      let t = make_t config corpus snap in
      Atomic.set t.file_seq (!max_file + 1);
      t

let open_dir ?(config = default_config) dir =
  mkdir_p dir;
  let config = { config with dir = Some dir } in
  let t, named =
    match Manifest.read ~dir with
    | None ->
        (* No manifest yet — but the directory may still hold a WAL
           with acknowledged pre-first-flush writes (replayed below)
           and crash leftovers (cleaned below). *)
        (make_t config (Corpus.create ()) empty_snap, [])
    | Some m ->
        ( open_with_manifest config dir m,
          List.map (fun (e : Manifest.entry) -> e.Manifest.file)
            m.Manifest.segments )
  in
  cleanup_orphans ~dir ~named;
  init_wal t ~replay:true;
  spawn_merger t;
  t

let close t =
  let merger =
    with_lock t.m (fun () ->
        t.stopping <- true;
        Condition.broadcast t.c;
        let d = t.merger in
        t.merger <- None;
        d)
  in
  Option.iter Domain.join merger;
  (* After the merger is gone; under the writer lock so an in-flight
     add never races the descriptor. Close is a durability barrier:
     anything still buffered or unsynced is flushed and fsynced. *)
  with_writer t (fun () ->
      match t.wal with
      | Some w ->
          Wal.close w;
          t.wal <- None
      | None -> ())

(* --- search ------------------------------------------------------------ *)

exception Frag_timeout

let compare_hits (a : Searcher.hit) (b : Searcher.hit) =
  match compare b.Searcher.score a.Searcher.score with
  | 0 -> compare a.Searcher.doc_id b.Searcher.doc_id
  | c -> c

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* Search one immutable snapshot: every fragment (sealed segments, then
   the memtable) runs the full DAAT + max-score search, cascading one
   shared threshold so later fragments prune against the best bound so
   far; tombstones are hidden by the [accept] filter. The merge by
   (score desc, doc id asc) is byte-identical to a monolithic search
   over the surviving documents — same vocabulary, same global doc ids,
   same strict cross-fragment prune as [Shard_searcher]. *)
let search_snapshot ?deadline ~k ~dedup ~prune ~blockmax s scoring q =
  if k = 0 then Ok []
  else begin
    let accept =
      if IntSet.is_empty s.tombstones then None
      else Some (fun doc_id -> not (IntSet.mem doc_id s.tombstones))
    in
    let threshold = Atomic.make Float.neg_infinity in
    let fragments =
      Array.to_list (Array.map (fun sg -> sg.searcher) s.segments)
      @ (match s.mem with Some sr -> [ sr ] | None -> [])
    in
    try
      let hits =
        List.concat_map
          (fun sr ->
            match
              Searcher.search_fragment ?deadline ~threshold ?accept ~k ~dedup
                ~prune ~blockmax sr scoring q
            with
            | Ok hits -> hits
            | Error `Timeout -> raise Frag_timeout)
          fragments
      in
      Ok (take k (List.sort compare_hits hits))
    with Frag_timeout -> Error `Timeout
  end

let search ?(k = 10) ?(dedup = true) ?(prune = true) ?(blockmax = true) t
    scoring q =
  match
    search_snapshot ~k ~dedup ~prune ~blockmax (Atomic.get t.snap) scoring q
  with
  | Ok hits -> hits
  | Error `Timeout -> assert false (* no deadline *)

let search_within ?(k = 10) ?(dedup = true) ?(prune = true) ?(blockmax = true)
    ~deadline t scoring q =
  search_snapshot ~deadline ~k ~dedup ~prune ~blockmax (Atomic.get t.snap)
    scoring q

(* --- stats ------------------------------------------------------------- *)

type stats = {
  generation : int;
  docs : int;
  total_docs : int;
  segments : int;
  segment_docs : int;
  memtable_docs : int;
  tombstones : int;
  merges : int;
  flushes : int;
  merge_errors : int;
  wal_appends : int;
  wal_fsyncs : int;
  durable_lag : int;
}

let stats t =
  let s = Atomic.get t.snap in
  let segment_docs =
    Array.fold_left
      (fun acc sg -> acc + sg.seg_len - IntSet.cardinal sg.dead)
      0 s.segments
  in
  let tombstones = IntSet.cardinal s.tombstones in
  {
    generation = s.generation;
    docs = segment_docs + s.mem_len - tombstones;
    total_docs = s.mem_base + s.mem_len;
    segments = Array.length s.segments;
    segment_docs;
    memtable_docs = s.mem_len;
    tombstones;
    merges = Atomic.get t.merges;
    flushes = Atomic.get t.flushes;
    merge_errors = Atomic.get t.merge_errors;
    wal_appends = (match t.wal with Some w -> Wal.appends w | None -> 0);
    wal_fsyncs = (match t.wal with Some w -> Wal.fsyncs w | None -> 0);
    durable_lag = max 0 (s.generation - Atomic.get t.last_durable_gen);
  }

let corpus t = t.corpus
